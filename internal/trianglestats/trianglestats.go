// Package trianglestats implements the paper's combined end-to-end
// application (§1.2.2): identify the frequent monochromatic triangles
// of an edge-colored graph and report their per-color frequencies, by
// composing the μ-CONGEST triangle listing (Theorem 1.2) with a
// fully-mergeable heavy-hitters simulation (Theorem 1.7, Misra–Gries)
// and the exact-count BFS refinement.
//
// Round complexity: n^(1+o(1))/√μ for the listing plus
// O(log m·(ε⁻¹·log(Δε⁻¹/μ) + D)) for the statistics, with
// μ = Ω(Δ + ε⁻¹) — the expression stated at the end of §1.2.2.
package trianglestats

import (
	"sort"

	"mucongest/internal/clique"
	"mucongest/internal/graph"
	"mucongest/internal/mergesim"
	"mucongest/internal/sim"
	"mucongest/internal/sketch"
)

// Config parameterizes the pipeline.
type Config struct {
	G      *graph.Graph
	Colors map[[2]int]int64 // edge -> color in [1, c]
	Mu     int64
	Eps    float64 // heavy-hitter threshold: colors with ≥ ε·T triangles
	Seed   int64
}

// Result reports the heavy monochromatic colors with exact triangle
// counts, plus the round totals of each stage and the aggregate
// message/memory footprint across the stages.
type Result struct {
	TotalTriangles int
	MonoTriangles  int64
	HeavyColors    []int64
	ExactCounts    map[int64]int64
	ListingRounds  int
	SketchRounds   int
	RefineRounds   int
	// Messages is the total delivered across all stages; PeakWords is
	// the largest per-node memory peak any stage reached.
	Messages  int64
	PeakWords int64
}

// monochrome returns the color if all three edges share it, else 0.
func monochrome(cfg *Config, t clique.Clique) int64 {
	c1 := cfg.Colors[[2]int{t[0], t[1]}]
	c2 := cfg.Colors[[2]int{t[0], t[2]}]
	c3 := cfg.Colors[[2]int{t[1], t[2]}]
	if c1 != 0 && c1 == c2 && c2 == c3 {
		return c1
	}
	return 0
}

// Run executes the pipeline: (1) list all triangles in μ-CONGEST; each
// triangle's monochromatic color becomes a stream item at the unique
// lowest-id detecting node (the paper's "each subgraph detected by
// exactly one node" convention, enforced by deduplication); (2) the
// Misra–Gries fully-mergeable simulation estimates per-color triangle
// frequencies to within ε·T; (3) candidates above (2/3)ε·T are counted
// exactly over a BFS tree.
func Run(cfg Config) (*Result, error) {
	// Stage 1: triangle listing.
	tris, listRes, err := clique.RunMuCongestTriangles(clique.MuTriangleConfig{
		G: cfg.G, Mu: cfg.Mu,
	}, sim.WithSeed(cfg.Seed))
	if err != nil {
		return nil, err
	}
	// Per-triangle items at the lowest-id corner.
	items := make([][]int64, cfg.G.N())
	var mono int64
	for _, t := range tris {
		if col := monochrome(&cfg, t); col != 0 {
			items[t[0]] = append(items[t[0]], col)
			mono++
		}
	}
	// Stage 2: fully-mergeable MG heavy hitters with k = ⌈3/ε⌉.
	k := int(3.0/cfg.Eps) + 1
	kind := sketch.NewMGKind(k)
	sum, sketchRes, err := mergesim.RunFully(cfg.G, items, kind, cfg.Mu, sim.WithSeed(cfg.Seed+1))
	if err != nil {
		return nil, err
	}
	mg := sum.(*sketch.MG)
	thresh := int64(2.0 / 3.0 * cfg.Eps * float64(mono))
	candidates := mg.Heavy(thresh)
	messages := listRes.Messages + sketchRes.Messages
	peak := listRes.MaxPeakWords()
	if p := sketchRes.MaxPeakWords(); p > peak {
		peak = p
	}
	// Stage 3: exact counts of the candidates over a BFS tree.
	var exact map[int64]int64
	var refineRounds int
	if len(candidates) > 0 {
		counts, refineRes, err := mergesim.RunExactCounts(cfg.G, items, candidates, sim.WithSeed(cfg.Seed+2))
		if err != nil {
			return nil, err
		}
		refineRounds = refineRes.Rounds
		messages += refineRes.Messages
		if p := refineRes.MaxPeakWords(); p > peak {
			peak = p
		}
		exact = make(map[int64]int64, len(candidates))
		for i, col := range candidates {
			exact[col] = counts[i]
		}
	}
	// Final heavy set: colors with exact count ≥ ε·T.
	final := int64(cfg.Eps * float64(mono))
	var heavy []int64
	for col, cnt := range exact {
		if cnt >= final {
			heavy = append(heavy, col)
		}
	}
	sort.Slice(heavy, func(i, j int) bool { return heavy[i] < heavy[j] })
	return &Result{
		TotalTriangles: len(tris),
		MonoTriangles:  mono,
		HeavyColors:    heavy,
		ExactCounts:    exact,
		ListingRounds:  listRes.Rounds,
		SketchRounds:   sketchRes.Rounds,
		RefineRounds:   refineRounds,
		Messages:       messages,
		PeakWords:      peak,
	}, nil
}
