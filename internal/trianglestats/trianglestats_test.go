package trianglestats

import (
	"math/rand"
	"testing"

	"mucongest/internal/clique"
	"mucongest/internal/graph"
)

func TestPipelineFindsHeavyColors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Color 1 dominates: most edges share it, so most monochromatic
	// triangles are color 1.
	g, colors := graph.ColoredGnp(36, 0.5, 6, []float64{20, 1, 1, 1, 1, 1}, rng)
	res, err := Run(Config{G: g, Colors: colors, Mu: int64(2 * g.N()), Eps: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth.
	truth := map[int64]int64{}
	var mono int64
	for _, tri := range clique.ListAll(g, 3) {
		c1 := colors[[2]int{tri[0], tri[1]}]
		c2 := colors[[2]int{tri[0], tri[2]}]
		c3 := colors[[2]int{tri[1], tri[2]}]
		if c1 == c2 && c2 == c3 {
			truth[c1]++
			mono++
		}
	}
	if res.MonoTriangles != mono {
		t.Fatalf("monochromatic count %d want %d", res.MonoTriangles, mono)
	}
	thresh := int64(0.2 * float64(mono))
	for col, cnt := range truth {
		isHeavy := cnt >= thresh
		found := false
		for _, h := range res.HeavyColors {
			if h == col {
				found = true
			}
		}
		if isHeavy && !found {
			t.Fatalf("heavy color %d (count %d ≥ %d) missed; got %v",
				col, cnt, thresh, res.HeavyColors)
		}
	}
	// Exact counts must match truth for reported colors.
	for col, cnt := range res.ExactCounts {
		if truth[col] != cnt {
			t.Fatalf("color %d exact count %d want %d", col, cnt, truth[col])
		}
	}
	if res.ListingRounds <= 0 || res.SketchRounds <= 0 {
		t.Fatal("missing round accounting")
	}
}

func TestPipelineNoMonochromatic(t *testing.T) {
	// A triangle-free graph yields no statistics and must not error.
	g := graph.Cycle(10)
	colors := map[[2]int]int64{}
	for _, e := range g.Edges() {
		colors[[2]int{e.U, e.V}] = 1
	}
	res, err := Run(Config{G: g, Colors: colors, Mu: 20, Eps: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTriangles != 0 || len(res.HeavyColors) != 0 {
		t.Fatalf("unexpected stats: %+v", res)
	}
}
