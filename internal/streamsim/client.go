// Package streamsim implements Section 3's single-node streaming
// simulations in μ-CONGEST: the naive recollect-per-pass simulator, the
// edge-caching simulator of Theorem 1.3 (O(n(Δ+p)) rounds, μ = M+n),
// and the random-order stream generator of Theorem 1.5 built on a
// distributed bucketized Fisher–Yates shuffle with Birkhoff-scheduled
// congestion-free rerouting (μ = M+n+Δ²).
package streamsim

import (
	"math"

	"mucongest/internal/graph"
)

// Client is a p-pass edge-streaming algorithm run at the simulator
// node. The simulator calls StartPass before each pass and Edge for
// every streamed edge; Result is emitted after the last pass.
type Client interface {
	// Passes returns p, the number of passes required.
	Passes() int
	// StartPass resets per-pass state.
	StartPass(pass int)
	// Edge processes one streamed edge.
	Edge(u, w int, label int64)
	// EndPass finalizes the pass (e.g. descends the search interval).
	EndPass()
	// Result returns the algorithm's output after the final pass.
	Result() []int64
	// MemoryWords returns the algorithm's memory footprint M in words.
	MemoryWords() int64
}

// MultipassSelect finds the exact k-th smallest edge label (1-based)
// in p passes using B counters: each pass splits the current candidate
// interval into B buckets, counts labels per bucket, and descends into
// the bucket containing the target rank — the classic p-pass selection
// algorithm with M = O(B) memory. Exact whenever B^p covers the label
// range.
type MultipassSelect struct {
	K       int64 // target rank, 1-based
	B       int   // buckets per pass
	P       int   // passes
	lo, hi  int64 // candidate interval [lo, hi]
	cnt     []int64
	below   int64
	found   int64
	settled bool
}

// NewMultipassSelect builds a selector for rank k over labels in
// [lo, hi] using B buckets and p passes.
func NewMultipassSelect(k int64, lo, hi int64, b, p int) *MultipassSelect {
	return &MultipassSelect{K: k, B: b, P: p, lo: lo, hi: hi, cnt: make([]int64, b)}
}

// Passes returns p.
func (s *MultipassSelect) Passes() int { return s.P }

// StartPass clears the bucket counters.
func (s *MultipassSelect) StartPass(int) {
	for i := range s.cnt {
		s.cnt[i] = 0
	}
	s.below = 0
}

func (s *MultipassSelect) width() int64 {
	span := s.hi - s.lo + 1
	w := (span + int64(s.B) - 1) / int64(s.B)
	if w < 1 {
		w = 1
	}
	return w
}

// Edge buckets one label.
func (s *MultipassSelect) Edge(_, _ int, label int64) {
	if s.settled {
		return
	}
	if label < s.lo {
		s.below++
		return
	}
	if label > s.hi {
		return
	}
	b := (label - s.lo) / s.width()
	if b >= int64(s.B) {
		b = int64(s.B) - 1
	}
	s.cnt[b]++
}

// EndPass descends into the bucket holding the target rank. Because
// every pass re-streams the whole input, the count of labels below the
// current interval is re-measured each pass, so the target rank inside
// the interval is simply K minus this pass's below-count.
func (s *MultipassSelect) EndPass() {
	if s.settled {
		return
	}
	need := s.K - s.below
	w := s.width()
	run := int64(0)
	for b := 0; b < s.B; b++ {
		if run+s.cnt[b] >= need {
			newLo := s.lo + int64(b)*w
			newHi := newLo + w - 1
			if newHi > s.hi {
				newHi = s.hi
			}
			s.lo, s.hi = newLo, newHi
			if s.lo == s.hi {
				s.found = s.lo
				s.settled = true
			}
			return
		}
		run += s.cnt[b]
	}
	// Rank beyond the stream: report the top of the range.
	s.found = s.hi
	s.settled = true
}

// Result returns [value]; exact once B^p covered the label range.
func (s *MultipassSelect) Result() []int64 {
	if !s.settled {
		s.found = s.lo
	}
	return []int64{s.found}
}

// MemoryWords returns O(B).
func (s *MultipassSelect) MemoryWords() int64 { return int64(s.B) + 8 }

// PassesNeeded returns the number of passes MultipassSelect needs for a
// label span with B buckets: ⌈log_B(span)⌉.
func PassesNeeded(span int64, b int) int {
	p := int(math.Ceil(math.Log(float64(span)) / math.Log(float64(b))))
	if p < 1 {
		p = 1
	}
	return p
}

// GreedyMatching is a one-pass semi-streaming maximal matching: an edge
// joins the matching when both endpoints are free. M = O(n).
type GreedyMatching struct {
	n       int
	matched []bool
	pairs   []int64
}

// NewGreedyMatching builds a matcher over n nodes.
func NewGreedyMatching(n int) *GreedyMatching {
	return &GreedyMatching{n: n, matched: make([]bool, n)}
}

// Passes returns 1.
func (gm *GreedyMatching) Passes() int { return 1 }

// StartPass resets state.
func (gm *GreedyMatching) StartPass(int) {
	for i := range gm.matched {
		gm.matched[i] = false
	}
	gm.pairs = gm.pairs[:0]
}

// EndPass is a no-op for the single-pass matcher.
func (gm *GreedyMatching) EndPass() {}

// Edge greedily matches.
func (gm *GreedyMatching) Edge(u, w int, _ int64) {
	if u < 0 || w < 0 || gm.matched[u] || gm.matched[w] {
		return
	}
	gm.matched[u] = true
	gm.matched[w] = true
	gm.pairs = append(gm.pairs, int64(u), int64(w))
}

// Result returns [size, u1, w1, u2, w2, ...].
func (gm *GreedyMatching) Result() []int64 {
	out := make([]int64, 0, 1+len(gm.pairs))
	out = append(out, int64(len(gm.pairs)/2))
	return append(out, gm.pairs...)
}

// MemoryWords returns O(n).
func (gm *GreedyMatching) MemoryWords() int64 { return int64(gm.n) + 8 }

// EdgeOwner returns the node responsible for streaming edge e (its
// smaller endpoint), so each edge enters the stream exactly once.
func EdgeOwner(e graph.Edge) int {
	if e.U < e.V {
		return e.U
	}
	return e.V
}

// OwnedEdges returns the edges of g owned by node v, with labels
// attached from the optional color map.
func OwnedEdges(g *graph.Graph, v int, labels map[[2]int]int64) []graph.Edge {
	var out []graph.Edge
	for _, u := range g.Neighbors(v) {
		if u > v {
			e := graph.Edge{U: v, V: u}
			if labels != nil {
				e.Label = labels[[2]int{v, u}]
			}
			out = append(out, e)
		}
	}
	return out
}
