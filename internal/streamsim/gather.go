package streamsim

import (
	"mucongest/internal/congest"
	"mucongest/internal/graph"
	"mucongest/internal/sim"
)

// Message kinds for the gather/replay protocols.
const (
	kindEdge int32 = congest.KindUser + iota
	kindDone
	kindCredit
	kindFinish
	kindCache       // sink -> neighbor: store this edge in the cache
	kindCacheCredit // kindCache that simultaneously grants one credit
	kindDirective   // sink -> neighbor: Birkhoff schedule entry (dest,count)
	kindShuffleEdge // rerouting traffic of the random-order shuffle
)

const creditWindow = 2

// gatherToSink pipelines every node's owned edges to the tree root with
// credit-based flow control (window 2 per child), so relay queues stay
// at O(deg) words and the μ-bound is respected. The sink consumes
// edges via onEdge in arrival order. With cache=true the sink
// additionally distributes every edge round-robin to its tree children
// (its graph neighbors) as cache entries of at most ⌈m/Δ⌉ ≤ n edges
// each — the Theorem 1.3 edge-caching step; the function returns this
// node's cache. Termination: DONE flags converge up the tree, then the
// sink floods a FINISH countdown so all nodes leave the subroutine on
// the same round.
func gatherToSink(c *sim.Ctx, tr *congest.Tree, maxDepth int,
	myEdges []graph.Edge, onEdge func(graph.Edge), cache bool) []graph.Edge {

	isSink := c.ID() == tr.Root
	var queue []graph.Edge  // upward relay queue (non-sink)
	var egress []graph.Edge // cache distribution queue (sink)
	var myCache []graph.Edge
	consume := func(e graph.Edge) {
		if onEdge != nil {
			onEdge(e)
		}
		if cache {
			egress = append(egress, e)
		}
	}
	if isSink {
		for _, e := range myEdges {
			consume(e)
		}
	} else {
		queue = append(queue, myEdges...)
	}
	charged := int64(len(myEdges) + 2*len(tr.Children) + 8)
	c.Charge(charged)
	defer c.Release(charged)

	childDone := make(map[int]bool, len(tr.Children))
	outstanding := make(map[int]int, len(tr.Children))
	credits := 0
	doneSent := false
	finished := false
	queueCap := 2*len(tr.Children) + 4
	nextCache := 0 // round-robin cache target index

	for {
		// Child side: forward one edge or announce completion.
		if !isSink {
			switch {
			case len(queue) > 0 && credits > 0:
				e := queue[0]
				queue = queue[1:]
				credits--
				c.SendID(tr.Parent, sim.Msg{Kind: kindEdge, A: int64(e.U), B: int64(e.V), C: e.Label})
			case len(queue) == 0 && !doneSent && len(childDone) == len(tr.Children):
				doneSent = true
				c.SendID(tr.Parent, sim.Msg{Kind: kindDone})
			}
		}
		// Parent side: one downward message per child per round —
		// a cache edge (optionally carrying a credit), a bare credit,
		// or nothing.
		wantCredit := make(map[int]bool, len(tr.Children))
		space := queueCap - len(queue)
		if isSink {
			space = len(tr.Children)
		}
		for _, ch := range tr.Children {
			if space <= 0 {
				break
			}
			if !childDone[ch] && outstanding[ch] < creditWindow {
				wantCredit[ch] = true
				space--
			}
		}
		sentDown := make(map[int]bool, len(tr.Children))
		if isSink && cache {
			for i := 0; i < len(tr.Children) && len(egress) > 0; i++ {
				ch := tr.Children[nextCache%len(tr.Children)]
				nextCache++
				e := egress[0]
				egress = egress[1:]
				kind := kindCache
				if wantCredit[ch] {
					kind = kindCacheCredit
					outstanding[ch]++
					delete(wantCredit, ch)
				}
				c.SendID(ch, sim.Msg{Kind: kind, A: int64(e.U), B: int64(e.V), C: e.Label})
				sentDown[ch] = true
			}
		}
		for _, ch := range tr.Children {
			if wantCredit[ch] && !sentDown[ch] {
				outstanding[ch]++
				c.SendID(ch, sim.Msg{Kind: kindCredit})
			}
		}
		// Sink: fire FINISH when the whole tree and cache egress drained.
		if isSink && !finished && len(childDone) == len(tr.Children) && len(egress) == 0 {
			finished = true
			for _, ch := range tr.Children {
				c.SendID(ch, sim.Msg{Kind: kindFinish, A: int64(maxDepth)})
			}
			c.Idle(maxDepth + 1)
			return myCache
		}

		in := c.Tick()
		for _, m := range in {
			switch m.Msg.Kind {
			case kindEdge:
				outstanding[m.From]--
				e := graph.Edge{U: int(m.Msg.A), V: int(m.Msg.B), Label: m.Msg.C}
				if isSink {
					consume(e)
				} else {
					queue = append(queue, e)
				}
			case kindDone:
				childDone[m.From] = true
			case kindCredit:
				credits++
			case kindCacheCredit:
				credits++
				myCache = append(myCache, graph.Edge{U: int(m.Msg.A), V: int(m.Msg.B), Label: m.Msg.C})
			case kindCache:
				myCache = append(myCache, graph.Edge{U: int(m.Msg.A), V: int(m.Msg.B), Label: m.Msg.C})
			case kindFinish:
				finishCountdown(c, tr, int(m.Msg.A))
				return myCache
			}
		}
	}
}

// finishCountdown forwards FINISH with a decremented ttl and idles so
// that every node exits the enclosing subroutine on the same global
// round as the sink.
func finishCountdown(c *sim.Ctx, tr *congest.Tree, ttl int) {
	if ttl <= 0 {
		return
	}
	for _, ch := range tr.Children {
		c.SendID(ch, sim.Msg{Kind: kindFinish, A: int64(ttl - 1)})
	}
	c.Idle(ttl)
}

// replayFromCache streams every sink-neighbor's cached edge list to the
// sink in parallel, one edge per link per round; the sink consumes via
// onEdge with the sender id (per round, arrivals are ordered by sender
// id, which the random-order shuffle uses as the slot convention).
// Dummy padding entries (U < 0) are delivered too — callers filter.
func replayFromCache(c *sim.Ctx, tr *congest.Tree, maxDepth int,
	myCache []graph.Edge, onEdge func(from int, e graph.Edge)) {

	isSink := c.ID() == tr.Root
	if isSink {
		waiting := make(map[int]bool, len(tr.Children))
		for _, ch := range tr.Children {
			waiting[ch] = true
		}
		for len(waiting) > 0 {
			in := c.Tick()
			for _, m := range in {
				switch m.Msg.Kind {
				case kindEdge:
					onEdge(m.From, graph.Edge{U: int(m.Msg.A), V: int(m.Msg.B), Label: m.Msg.C})
				case kindDone:
					delete(waiting, m.From)
				}
			}
		}
		for _, ch := range tr.Children {
			c.SendID(ch, sim.Msg{Kind: kindFinish, A: int64(maxDepth)})
		}
		c.Idle(maxDepth + 1)
		return
	}
	sendIdx := 0
	doneSent := false
	amNeighbor := tr.Parent == tr.Root
	for {
		if amNeighbor {
			if sendIdx < len(myCache) {
				e := myCache[sendIdx]
				sendIdx++
				c.SendID(tr.Parent, sim.Msg{Kind: kindEdge, A: int64(e.U), B: int64(e.V), C: e.Label})
			} else if !doneSent {
				doneSent = true
				c.SendID(tr.Parent, sim.Msg{Kind: kindDone})
			}
		}
		in := c.Tick()
		for _, m := range in {
			if m.Msg.Kind == kindFinish {
				finishCountdown(c, tr, int(m.Msg.A))
				return
			}
		}
	}
}
