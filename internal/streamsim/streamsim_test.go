package streamsim

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mucongest/internal/graph"
	"mucongest/internal/sim"
)

func labeledEdges(g *graph.Graph, rng *rand.Rand, lo, hi int64) map[[2]int]int64 {
	labels := make(map[[2]int]int64, g.M())
	for _, e := range g.Edges() {
		labels[[2]int{e.U, e.V}] = lo + rng.Int63n(hi-lo+1)
	}
	return labels
}

func TestMultipassSelectStandalone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 500)
	for i := range vals {
		vals[i] = rng.Int63n(1000)
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, k := range []int64{1, 100, 250, 500} {
		b := 10
		p := PassesNeeded(1000, b)
		s := NewMultipassSelect(k, 0, 999, b, p)
		for pass := 0; pass < p; pass++ {
			s.StartPass(pass)
			for _, v := range vals {
				s.Edge(0, 1, v)
			}
			s.EndPass()
		}
		if got := s.Result()[0]; got != sorted[k-1] {
			t.Fatalf("rank %d: got %d want %d", k, got, sorted[k-1])
		}
	}
}

func TestPPassNaiveAndCachedAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.HubAndBlob(24, 0.4, rng)
	labels := labeledEdges(g, rng, 0, 255)
	m := int64(g.M())
	b := 4
	p := PassesNeeded(256, b)
	mk := func() Client { return NewMultipassSelect((m+1)/2, 0, 255, b, p) }

	want := exactRankOf(labels, (m+1)/2)
	naive, resN, err := RunPPass(g, labels, mk, false)
	if err != nil {
		t.Fatal(err)
	}
	cached, resC, err := RunPPass(g, labels, mk, true)
	if err != nil {
		t.Fatal(err)
	}
	if naive[0] != want || cached[0] != want {
		t.Fatalf("median: naive %d cached %d want %d", naive[0], cached[0], want)
	}
	if resN.Rounds <= 0 || resC.Rounds <= 0 {
		t.Fatal("no rounds recorded")
	}
}

func exactRankOf(labels map[[2]int]int64, k int64) int64 {
	var vals []int64
	for _, v := range labels {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals[k-1]
}

func TestCachedBeatsNaiveOnCycleOfCliques(t *testing.T) {
	// Theorem 1.3 vs 1.4: on the cycle-of-cliques, recollection costs
	// Θ(m) per pass through the two bridge links, while replay costs
	// O(n) per pass. With enough passes cached must win decisively.
	g := graph.CycleOfCliques(4, 8)
	rng := rand.New(rand.NewSource(3))
	labels := labeledEdges(g, rng, 0, 63)
	p := 6
	mk := func() Client { return NewMultipassSelect(1, 0, 63, 2, p) }
	_, resN, err := RunPPass(g, labels, mk, false)
	if err != nil {
		t.Fatal(err)
	}
	_, resC, err := RunPPass(g, labels, mk, true)
	if err != nil {
		t.Fatal(err)
	}
	if resC.Rounds >= resN.Rounds {
		t.Fatalf("cached (%d rounds) must beat naive (%d rounds) at p=%d",
			resC.Rounds, resN.Rounds, p)
	}
}

func TestNaiveRoundsScaleLinearlyInPasses(t *testing.T) {
	g := graph.CycleOfCliques(3, 6)
	rng := rand.New(rand.NewSource(4))
	labels := labeledEdges(g, rng, 0, 15)
	rounds := func(p int) int {
		mk := func() Client { return NewMultipassSelect(1, 0, 15, 2, p) }
		_, res, err := RunPPass(g, labels, mk, false)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	r2, r8 := rounds(2), rounds(8)
	// Naive: rounds ≈ tree + p·collect. Growth factor ≈ 4 for p 2→8.
	growth := float64(r8) / float64(r2)
	if growth < 2.2 {
		t.Fatalf("naive growth %0.2f too flat (r2=%d r8=%d)", growth, r2, r8)
	}
	// Cached: replay passes are cheap; growth far below naive's.
	roundsC := func(p int) int {
		mk := func() Client { return NewMultipassSelect(1, 0, 15, 2, p) }
		_, res, err := RunPPass(g, labels, mk, true)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	c2, c8 := roundsC(2), roundsC(8)
	growthC := float64(c8) / float64(c2)
	if growthC >= growth {
		t.Fatalf("cached growth %0.2f should undercut naive growth %0.2f", growthC, growth)
	}
}

func TestGreedyMatchingClient(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.HubAndBlob(20, 0.3, rng)
	mk := func() Client { return NewGreedyMatching(g.N()) }
	out, _, err := RunPPass(g, nil, mk, true)
	if err != nil {
		t.Fatal(err)
	}
	size := out[0]
	if size < 1 {
		t.Fatal("empty matching on a dense graph")
	}
	// Validate it is a matching over real edges.
	used := map[int64]bool{}
	for i := int64(0); i < size; i++ {
		u, w := out[1+2*i], out[2+2*i]
		if !g.HasEdge(int(u), int(w)) {
			t.Fatalf("matched non-edge %d-%d", u, w)
		}
		if used[u] || used[w] {
			t.Fatalf("node reused in matching")
		}
		used[u] = true
		used[w] = true
	}
	// Maximality: no remaining edge with both endpoints free.
	for _, e := range g.Edges() {
		if !used[int64(e.U)] && !used[int64(e.V)] {
			t.Fatalf("matching not maximal: edge %d-%d free", e.U, e.V)
		}
	}
}

func TestRandomOrderDeliversAllEdgesEachPass(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.HubAndBlob(14, 0.5, rng)
	labels := make(map[[2]int]int64)
	for i, e := range g.Edges() {
		labels[[2]int{e.U, e.V}] = int64(i + 1) // unique labels
	}
	// mkClient runs at every node (each needs Passes()), so the factory
	// must be pure — the sink's result arrives via Emit.
	p := 3
	mk := func() Client { return NewRecorder(p) }
	sinkOut, _, err := RunRandomOrder(g, labels, mk)
	if err != nil {
		t.Fatal(err)
	}
	if len(sinkOut) != g.M() {
		t.Fatalf("final pass delivered %d edges want %d", len(sinkOut), g.M())
	}
	seen := map[int64]bool{}
	for _, l := range sinkOut {
		if seen[l] {
			t.Fatalf("label %d duplicated", l)
		}
		seen[l] = true
	}
	for i := 1; i <= g.M(); i++ {
		if !seen[int64(i)] {
			t.Fatalf("label %d missing", i)
		}
	}
}

func TestRandomOrderUniformity(t *testing.T) {
	// χ² test: the label appearing at stream position 0 must be uniform
	// over all m labels across independent seeds.
	g := graph.Star(5) // sink 0 with 4 neighbors; 4 edges
	labels := make(map[[2]int]int64)
	for i, e := range g.Edges() {
		labels[[2]int{e.U, e.V}] = int64(i + 1)
	}
	m := g.M()
	trials := 400
	firstCount := make(map[int64]int)
	posSum := make(map[int64]float64)
	for s := 0; s < trials; s++ {
		mk := func() Client { return NewRecorder(1) }
		out, _, err := RunRandomOrder(g, labels, mk, sim.WithSeed(int64(1000+s)))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != m {
			t.Fatalf("trial %d delivered %d labels", s, len(out))
		}
		firstCount[out[0]]++
		for pos, l := range out {
			posSum[l] += float64(pos)
		}
	}
	// χ² over first positions: df = m-1 = 3; reject above ~16 (p≈0.001).
	expected := float64(trials) / float64(m)
	chi2 := 0.0
	for l := int64(1); l <= int64(m); l++ {
		d := float64(firstCount[l]) - expected
		chi2 += d * d / expected
	}
	if chi2 > 16.3 {
		t.Fatalf("first-position χ² = %0.1f (counts %v): order not uniform", chi2, firstCount)
	}
	// Mean position of every label should be near (m-1)/2 = 1.5.
	for l := int64(1); l <= int64(m); l++ {
		mean := posSum[l] / float64(trials)
		if math.Abs(mean-1.5) > 0.3 {
			t.Fatalf("label %d mean position %0.2f, want ≈1.5", l, mean)
		}
	}
}

func TestRandomOrderRoundsLinear(t *testing.T) {
	// Theorem 1.5: O(n(Δ+p)) rounds. Doubling p must add only ~linear
	// replay cost, far below a full reshuffle per pass.
	rng := rand.New(rand.NewSource(7))
	g := graph.HubAndBlob(20, 0.4, rng)
	labels := labeledEdges(g, rng, 1, 100)
	rounds := func(p int) int {
		mk := func() Client { return NewRecorder(p) }
		_, res, err := RunRandomOrder(g, labels, mk)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	r1, r5 := rounds(1), rounds(5)
	perPass := (r5 - r1) / 4
	if perPass > 3*g.N() {
		t.Fatalf("replay pass costs %d rounds, want O(n)=%d", perPass, g.N())
	}
}

func TestEdgeOwnerAndOwnedEdges(t *testing.T) {
	g, _ := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 3}})
	if EdgeOwner(graph.Edge{U: 2, V: 1}) != 1 {
		t.Fatal("owner")
	}
	own0 := OwnedEdges(g, 0, nil)
	if len(own0) != 2 {
		t.Fatalf("node 0 owns %d edges", len(own0))
	}
	own2 := OwnedEdges(g, 2, nil)
	if len(own2) != 0 {
		t.Fatalf("node 2 owns %d edges", len(own2))
	}
}

func TestMaxDegreeNode(t *testing.T) {
	g := graph.Star(6)
	if MaxDegreeNode(g) != 0 {
		t.Fatal("star hub")
	}
}
