package streamsim

import (
	"fmt"

	"mucongest/internal/congest"
	"mucongest/internal/graph"
	"mucongest/internal/sim"
)

// MaxDegreeNode returns the paper's simulator choice: the node with the
// largest degree (ties to the smallest id).
func MaxDegreeNode(g *graph.Graph) int {
	best, bestDeg := 0, -1
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}

// PPassProgram builds the single-node p-pass edge-streaming simulation.
// With cached=false it is the naive baseline: every pass re-collects all
// edges at the sink (Θ(collection)·p rounds, the Theorem 1.4 regime).
// With cached=true it is Theorem 1.3: the first pass caches edges at
// the sink's neighbors (≤ ⌈m/Δ⌉ ≤ n each, μ = M+n), and later passes
// replay from the caches in O(n) rounds each, for O(n·(Δ+p)) total.
//
// mkClient is invoked only at the sink; passes must equal the client's
// Passes(). labels may be nil. maxDepth bounds the sink's eccentricity.
func PPassProgram(g *graph.Graph, labels map[[2]int]int64, sink int,
	maxDepth int, mkClient func() Client, cached bool) func(*sim.Ctx) {

	return func(c *sim.Ctx) {
		tr := congest.BuildBFSTree(c, sink, maxDepth)
		mine := OwnedEdges(g, c.ID(), labels)
		isSink := c.ID() == sink

		var client Client
		passes := 0
		onEdge := func(graph.Edge) {}
		if isSink {
			client = mkClient()
			passes = client.Passes()
			c.Charge(client.MemoryWords())
			defer c.Release(client.MemoryWords())
			onEdge = func(e graph.Edge) { client.Edge(e.U, e.V, e.Label) }
			client.StartPass(0)
		}

		cacheList := gatherToSink(c, tr, maxDepth, mine, onEdge, cached)
		if len(cacheList) > 0 {
			c.Charge(int64(len(cacheList)))
			defer c.Release(int64(len(cacheList)))
		}
		if isSink {
			client.EndPass()
			passes = client.Passes()
		}
		// All nodes know p from the globally agreed client construction.
		if !isSink {
			passes = mkClient().Passes()
		}
		for pass := 1; pass < passes; pass++ {
			if isSink {
				client.StartPass(pass)
			}
			if cached {
				replayFromCache(c, tr, maxDepth, cacheList, func(_ int, e graph.Edge) {
					if e.U >= 0 {
						onEdge(e)
					}
				})
			} else {
				gatherToSink(c, tr, maxDepth, mine, onEdge, false)
			}
			if isSink {
				client.EndPass()
			}
		}
		if isSink {
			c.Emit(client.Result())
		}
	}
}

// RunPPass executes the simulation on an engine and returns the sink's
// result and the run statistics.
func RunPPass(g *graph.Graph, labels map[[2]int]int64, mkClient func() Client,
	cached bool, opts ...sim.Option) ([]int64, *sim.Result, error) {

	sink := MaxDegreeNode(g)
	maxDepth := g.N()
	e := sim.New(g, opts...)
	res, err := e.Run(PPassProgram(g, labels, sink, maxDepth, mkClient, cached))
	if err != nil {
		return nil, res, err
	}
	if len(res.Outputs[sink]) == 0 {
		return nil, res, fmt.Errorf("streamsim: sink emitted nothing")
	}
	out, ok := res.Outputs[sink][0].([]int64)
	if !ok {
		return nil, res, fmt.Errorf("streamsim: unexpected sink output %T", res.Outputs[sink][0])
	}
	return out, res, nil
}
