package streamsim

import (
	"mucongest/internal/congest"
	"mucongest/internal/graph"
	"mucongest/internal/matching"
	"mucongest/internal/sim"
)

// RandomOrderProgram implements Theorem 1.5: it simulates a p-pass
// RANDOM-ORDER edge-streaming algorithm at the max-degree sink in
// O(n·(Δ+p)) rounds with μ = M + n + Δ² at the sink. Pipeline:
//
//  1. Cache all edges at the sink's Δ neighbors (Theorem 1.3 step),
//     padded with dummy entries to a common length K ≤ n.
//  2. The sink runs the bucketized Fisher–Yates selection (Appendix C):
//     for every target slot s (dest bucket = s mod Δ) it draws a source
//     bucket proportionally to remaining occupancy, producing a Δ×Δ
//     transfer matrix B with all row/column sums K.
//  3. Each neighbor learns its column of B, randomly partitions its
//     cached edges into destination piles (drawing identities locally,
//     as in the paper).
//  4. The sink decomposes B into permutation matrices one at a time
//     (Birkhoff's theorem, O(Δ²) memory) and schedules the rerouting:
//     per permutation block, every neighbor forwards edges of one pile
//     through the sink — one inbound and one outbound message per link
//     per transfer, hence congestion-free.
//  5. Each neighbor locally shuffles its received pile (the paper's
//     final intra-batch shuffle), yielding the slot-ordered array A′.
//  6. p replay passes stream A′ to the sink in slot order.
func RandomOrderProgram(g *graph.Graph, labels map[[2]int]int64, sink int,
	maxDepth int, mkClient func() Client) func(*sim.Ctx) {

	delta := g.Degree(sink)
	return func(c *sim.Ctx) {
		tr := congest.BuildBFSTree(c, sink, maxDepth)
		mine := OwnedEdges(g, c.ID(), labels)
		isSink := c.ID() == sink
		amNeighbor := tr.Parent == sink

		// Phase 1: cache at neighbors. The sink does not consume yet.
		cacheList := gatherToSink(c, tr, maxDepth, mine, nil, true)

		var newCache []graph.Edge
		switch {
		case isSink:
			newCache = nil
			runShuffleSink(c, tr, delta)
		case amNeighbor:
			newCache = runShuffleNeighbor(c, tr, cacheList)
		default:
			// Idle through the shuffle; no messages reach these nodes
			// until the replay FINISH floods.
		}

		// Phase 6: p replay passes in slot order.
		var client Client
		passes := mkClient().Passes()
		if isSink {
			client = mkClient()
			c.Charge(client.MemoryWords() + int64(delta*delta))
			defer c.Release(client.MemoryWords() + int64(delta*delta))
		}
		for pass := 0; pass < passes; pass++ {
			if isSink {
				client.StartPass(pass)
			}
			replayFromCache(c, tr, maxDepth, newCache, func(_ int, e graph.Edge) {
				if e.U >= 0 {
					client.Edge(e.U, e.V, e.Label)
				}
			})
			if isSink {
				client.EndPass()
			}
		}
		if isSink {
			c.Emit(client.Result())
		}
	}
}

// runShuffleSink drives phases 2–5 at the sink.
func runShuffleSink(c *sim.Ctx, tr *congest.Tree, delta int) {
	children := tr.Children // sorted ids; column j = children[j]
	d := len(children)
	if d == 0 {
		return
	}
	// Count per-neighbor cache sizes: the sink distributed them, but the
	// counts are easiest re-derived by one round of reporting.
	counts := make([]int64, d)
	colOf := make(map[int]int, d)
	for j, ch := range children {
		colOf[ch] = j
	}
	in := c.Tick() // neighbors report their cache sizes
	for _, m := range in {
		if m.Msg.Kind == kindDone {
			counts[colOf[m.From]] = m.Msg.A
		}
	}
	var K int64
	for _, k := range counts {
		if k > K {
			K = k
		}
	}
	// Phase 2: bucketized Fisher–Yates counts -> B (Δ×Δ, sums K).
	c.Charge(int64(2 * d * d))
	defer c.Release(int64(2 * d * d))
	B := make([][]int64, d)
	for i := range B {
		B[i] = make([]int64, d)
	}
	remain := make([]int64, d)
	for k := range remain {
		remain[k] = K
	}
	total := K * int64(d)
	for s := int64(0); s < K*int64(d); s++ {
		dest := int(s) % d
		r := c.Rand().Int63n(total - s)
		k := 0
		for r >= remain[k] {
			r -= remain[k]
			k++
		}
		remain[k]--
		B[dest][k]++
	}
	// Phase 3: announce K and column indices, then stream columns.
	for j, ch := range children {
		c.SendID(ch, sim.Msg{Kind: kindDirective, A: -1, B: K, C: int64(j)})
	}
	c.Tick()
	for i := 0; i < d; i++ {
		for j, ch := range children {
			c.SendID(ch, sim.Msg{Kind: kindDirective, A: int64(i), B: B[i][j]})
		}
		c.Tick()
	}
	// End-of-columns sentinel separating the column stream from the
	// permutation directives (both use A ≥ 0).
	for _, ch := range children {
		c.SendID(ch, sim.Msg{Kind: kindDirective, A: -5})
	}
	c.Tick()
	// Phase 4: incremental Birkhoff + block-scheduled rerouting.
	W := make([][]int64, d)
	for i := range B {
		W[i] = append([]int64(nil), B[i]...)
	}
	remaining := K
	hold := make([]sim.Msg, 0, d)
	for remaining > 0 {
		adj := make([][]int, d)
		for j := 0; j < d; j++ {
			for i := 0; i < d; i++ {
				if W[i][j] > 0 {
					adj[j] = append(adj[j], i)
				}
			}
		}
		m, err := matching.PerfectMatching(d, adj)
		if err != nil {
			panic("streamsim: Birkhoff schedule stalled: " + err.Error())
		}
		gamma := remaining
		for j := 0; j < d; j++ {
			if W[m[j]][j] < gamma {
				gamma = W[m[j]][j]
			}
		}
		for j := 0; j < d; j++ {
			W[m[j]][j] -= gamma
		}
		remaining -= gamma
		// Directive round: tell each neighbor its pile and count.
		for j, ch := range children {
			c.SendID(ch, sim.Msg{Kind: kindDirective, A: int64(m[j]), B: gamma})
		}
		c.Tick()
		for t := int64(0); t < gamma; t++ {
			// Up round: neighbors send; sink holds.
			in := c.Tick()
			hold = hold[:0]
			destOf := make(map[int]int, d)
			for j, ch := range children {
				destOf[ch] = m[j]
			}
			for _, mm := range in {
				if mm.Msg.Kind == kindShuffleEdge {
					out := mm.Msg
					out.Kind = kindCache
					c.SendID(children[destOf[mm.From]], out)
				}
			}
			// Down round: forwarded above; barrier.
			c.Tick()
		}
	}
	// Phase 5 trigger: announce shuffle completion.
	for _, ch := range children {
		c.SendID(ch, sim.Msg{Kind: kindDirective, A: -2})
	}
	c.Tick()
}

// runShuffleNeighbor is the neighbor side of phases 2–5; returns the
// reshuffled slot-ordered cache.
func runShuffleNeighbor(c *sim.Ctx, tr *congest.Tree, cacheList []graph.Edge) []graph.Edge {
	// Report cache size.
	c.SendID(tr.Parent, sim.Msg{Kind: kindDone, A: int64(len(cacheList))})
	in := c.Tick()
	var K int64 = -1
	for _, m := range in {
		if m.Msg.Kind == kindDirective && m.Msg.A == -1 {
			K = m.Msg.B
		}
	}
	for K < 0 { // K arrives one round after the report
		in = c.Tick()
		for _, m := range in {
			if m.Msg.Kind == kindDirective && m.Msg.A == -1 {
				K = m.Msg.B
			}
		}
	}
	// Pad with dummies to K and receive the column of B.
	pad := append([]graph.Edge(nil), cacheList...)
	for int64(len(pad)) < K {
		pad = append(pad, graph.Edge{U: -1, V: -1})
	}
	c.Charge(2 * K)
	defer c.Release(2 * K)
	col := make([]int64, 0, 64)
	for done := false; !done; {
		in = c.Tick()
		for _, m := range in {
			switch {
			case m.Msg.Kind == kindDirective && m.Msg.A == -5:
				done = true
			case m.Msg.Kind == kindDirective && m.Msg.A >= 0:
				for int(m.Msg.A) >= len(col) {
					col = append(col, 0)
				}
				col[m.Msg.A] = m.Msg.B
			}
		}
	}
	// Phase 3: random partition into destination piles.
	c.Rand().Shuffle(len(pad), func(i, j int) { pad[i], pad[j] = pad[j], pad[i] })
	piles := make([][]graph.Edge, len(col))
	idx := 0
	for i, cnt := range col {
		piles[i] = pad[idx : idx+int(cnt)]
		idx += int(cnt)
	}
	// Phase 4: follow directives until the -2 sentinel.
	var newCache []graph.Edge
	pilePos := make([]int, len(col))
	for {
		// Wait for a directive.
		var pile, gamma int64 = -3, 0
		for pile == -3 {
			in = c.Tick()
			for _, m := range in {
				switch {
				case m.Msg.Kind == kindDirective && m.Msg.A == -2:
					pile = -2
				case m.Msg.Kind == kindDirective && m.Msg.A >= 0:
					pile, gamma = m.Msg.A, m.Msg.B
				case m.Msg.Kind == kindCache:
					newCache = append(newCache, graph.Edge{U: int(m.Msg.A), V: int(m.Msg.B), Label: m.Msg.C})
				}
			}
		}
		if pile == -2 {
			break
		}
		for t := int64(0); t < gamma; t++ {
			p := int(pile)
			e := piles[p][pilePos[p]]
			pilePos[p]++
			c.SendID(tr.Parent, sim.Msg{Kind: kindShuffleEdge, A: int64(e.U), B: int64(e.V), C: e.Label})
			in = c.Tick() // up round
			for _, m := range in {
				if m.Msg.Kind == kindCache {
					newCache = append(newCache, graph.Edge{U: int(m.Msg.A), V: int(m.Msg.B), Label: m.Msg.C})
				}
			}
			in = c.Tick() // down round: forwarded edges arrive
			for _, m := range in {
				if m.Msg.Kind == kindCache {
					newCache = append(newCache, graph.Edge{U: int(m.Msg.A), V: int(m.Msg.B), Label: m.Msg.C})
				}
			}
		}
	}
	// Phase 5: local Fisher–Yates of the received pile.
	c.Rand().Shuffle(len(newCache), func(i, j int) {
		newCache[i], newCache[j] = newCache[j], newCache[i]
	})
	return newCache
}

// RunRandomOrder executes the Theorem 1.5 pipeline and returns the
// sink's client result plus run statistics.
func RunRandomOrder(g *graph.Graph, labels map[[2]int]int64, mkClient func() Client,
	opts ...sim.Option) ([]int64, *sim.Result, error) {

	sink := MaxDegreeNode(g)
	e := sim.New(g, opts...)
	res, err := e.Run(RandomOrderProgram(g, labels, sink, g.N(), mkClient))
	if err != nil {
		return nil, res, err
	}
	out := res.Outputs[sink][0].([]int64)
	return out, res, nil
}
