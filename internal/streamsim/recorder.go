package streamsim

// Recorder is a diagnostic client that records the exact order in which
// edge labels arrive in each pass; the shuffle-uniformity tests use it
// to χ²-test the realized stream order.
type Recorder struct {
	P     int
	Order [][]int64
}

// NewRecorder builds a p-pass recorder.
func NewRecorder(p int) *Recorder { return &Recorder{P: p} }

// Passes returns p.
func (r *Recorder) Passes() int { return r.P }

// StartPass opens a fresh order log.
func (r *Recorder) StartPass(int) { r.Order = append(r.Order, nil) }

// Edge appends the label to the current pass log.
func (r *Recorder) Edge(_, _ int, label int64) {
	r.Order[len(r.Order)-1] = append(r.Order[len(r.Order)-1], label)
}

// EndPass is a no-op.
func (r *Recorder) EndPass() {}

// Result returns the final pass's order.
func (r *Recorder) Result() []int64 {
	if len(r.Order) == 0 {
		return nil
	}
	return r.Order[len(r.Order)-1]
}

// MemoryWords reports the log size (a diagnostic client, not μ-bounded).
func (r *Recorder) MemoryWords() int64 {
	var t int64
	for _, o := range r.Order {
		t += int64(len(o))
	}
	return t + 4
}
