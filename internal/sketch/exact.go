package sketch

import (
	"fmt"
	"math"
	"sort"

	"mucongest/internal/stream"
)

// Exact is an exact frequency counter used as ground truth in tests and
// as the trivially fully-mergeable summary for small universes. Its
// serialized capacity is fixed at construction; exceeding it panics.
type Exact struct {
	cap int
	n   int64
	cnt map[int64]int64
}

// ExactKind configures exact counters holding at most Cap distinct
// labels.
type ExactKind struct{ Cap int }

// NewExactKind returns a Kind for exact counters of a ≤cap-label
// universe.
func NewExactKind(cap int) *ExactKind { return &ExactKind{Cap: cap} }

// New returns an empty counter.
func (k *ExactKind) New() stream.Summary {
	return &Exact{cap: k.Cap, cnt: make(map[int64]int64)}
}

// M returns the serialized size.
func (k *ExactKind) M() int { return 2 + 2*k.Cap }

// FromWords reconstructs a counter.
func (k *ExactKind) FromWords(words []int64) stream.Summary {
	s := k.New().(*Exact)
	s.n = words[0]
	for i := 0; i < int(words[1]); i++ {
		s.cnt[words[2+2*i]] = words[3+2*i]
	}
	return s
}

// SizeWords returns the fixed serialized size.
func (s *Exact) SizeWords() int { return 2 + 2*s.cap }

// Count returns the processed stream length.
func (s *Exact) Count() int64 { return s.n }

// Insert processes one label.
func (s *Exact) Insert(x int64) {
	s.n++
	s.cnt[x]++
	if len(s.cnt) > s.cap {
		panic(fmt.Sprintf("sketch: Exact exceeded capacity %d", s.cap))
	}
}

// Estimate returns the exact frequency.
func (s *Exact) Estimate(x int64) int64 { return s.cnt[x] }

// Entropy returns the exact empirical Shannon entropy in bits.
func (s *Exact) Entropy() float64 {
	if s.n == 0 {
		return 0
	}
	h := 0.0
	for _, c := range s.cnt {
		p := float64(c) / float64(s.n)
		h -= p * math.Log2(p)
	}
	return h
}

// F2 returns the exact second frequency moment.
func (s *Exact) F2() int64 {
	var f2 int64
	for _, c := range s.cnt {
		f2 += c * c
	}
	return f2
}

// Quantile returns the exact φ-quantile of the multiset.
func (s *Exact) Quantile(phi float64) int64 {
	labels := make([]int64, 0, len(s.cnt))
	for x := range s.cnt {
		labels = append(labels, x)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	target := int64(phi * float64(s.n))
	if target >= s.n {
		target = s.n - 1
	}
	var run int64
	for _, x := range labels {
		run += s.cnt[x]
		if run > target {
			return x
		}
	}
	if len(labels) == 0 {
		return 0
	}
	return labels[len(labels)-1]
}

// Labels returns the distinct labels sorted.
func (s *Exact) Labels() []int64 {
	out := make([]int64, 0, len(s.cnt))
	for x := range s.cnt {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Words serializes: [n, entries, (label,count)*].
func (s *Exact) Words() []int64 {
	w := make([]int64, s.SizeWords())
	w[0] = s.n
	labels := s.Labels()
	w[1] = int64(len(labels))
	for i, x := range labels {
		w[2+2*i] = x
		w[3+2*i] = s.cnt[x]
	}
	return w
}

// MergeFrom adds another exact counter.
func (s *Exact) MergeFrom(words []int64) {
	s.n += words[0]
	for i := 0; i < int(words[1]); i++ {
		s.cnt[words[2+2*i]] += words[3+2*i]
	}
	if len(s.cnt) > s.cap {
		panic(fmt.Sprintf("sketch: Exact exceeded capacity %d", s.cap))
	}
}

var _ stream.FullyMergeable = (*Exact)(nil)
var _ stream.Kind = (*ExactKind)(nil)
