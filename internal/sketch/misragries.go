package sketch

import (
	"sort"

	"mucongest/internal/stream"
)

// MG is the Misra–Gries heavy-hitters summary [64] with k counters.
// After processing a stream of total count m (across all merges), the
// estimate of any label's frequency satisfies
//
//	f(x) − m/(k+1) ≤ Estimate(x) ≤ f(x),
//
// and this guarantee is preserved under arbitrary merge trees — MG is
// fully mergeable (Agarwal et al., used by Theorem 1.7). With k = ⌈1/ε⌉
// the additive error is at most ε·m, the paper's application bound.
type MG struct {
	k   int
	n   int64
	cnt map[int64]int64
}

// MGKind configures Misra–Gries summaries with k counters.
type MGKind struct{ K int }

// NewMGKind returns a Kind for k-counter Misra–Gries summaries.
func NewMGKind(k int) *MGKind {
	if k < 1 {
		panic("sketch: MG requires k ≥ 1")
	}
	return &MGKind{K: k}
}

// New returns an empty summary.
func (kk *MGKind) New() stream.Summary {
	return &MG{k: kk.K, cnt: make(map[int64]int64, kk.K+1)}
}

// M returns the serialized size: 2 header words plus (label,count) per
// counter slot.
func (kk *MGKind) M() int { return 2 + 2*kk.K }

// FromWords reconstructs a summary.
func (kk *MGKind) FromWords(words []int64) stream.Summary {
	s := kk.New().(*MG)
	s.decode(words)
	return s
}

// SizeWords returns the fixed serialized size.
func (s *MG) SizeWords() int { return 2 + 2*s.k }

// Count returns the total stream count m.
func (s *MG) Count() int64 { return s.n }

// Insert processes one label.
func (s *MG) Insert(x int64) {
	s.n++
	if _, ok := s.cnt[x]; ok || len(s.cnt) < s.k {
		s.cnt[x]++
		return
	}
	// Decrement all; drop zeros.
	for y := range s.cnt {
		s.cnt[y]--
		if s.cnt[y] == 0 {
			delete(s.cnt, y)
		}
	}
}

// Estimate returns the (under-)estimate of label x's frequency.
func (s *MG) Estimate(x int64) int64 { return s.cnt[x] }

// ErrorBound returns m/(k+1), the maximum underestimation.
func (s *MG) ErrorBound() int64 { return s.n / int64(s.k+1) }

// Heavy returns all labels whose estimate is at least thresh, sorted by
// label.
func (s *MG) Heavy(thresh int64) []int64 {
	var out []int64
	for x, c := range s.cnt {
		if c >= thresh {
			out = append(out, x)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Words serializes: [n, entries, (label,count)*].
func (s *MG) Words() []int64 {
	w := make([]int64, s.SizeWords())
	w[0] = s.n
	labels := make([]int64, 0, len(s.cnt))
	for x := range s.cnt {
		labels = append(labels, x)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	w[1] = int64(len(labels))
	for i, x := range labels {
		w[2+2*i] = x
		w[3+2*i] = s.cnt[x]
	}
	return w
}

func (s *MG) decode(w []int64) {
	s.n = w[0]
	cnt := int(w[1])
	s.cnt = make(map[int64]int64, cnt)
	for i := 0; i < cnt; i++ {
		s.cnt[w[2+2*i]] = w[3+2*i]
	}
}

// MergeFrom merges another MG summary (full mergeability): counters
// add, then the (k+1)-th largest counter value is subtracted from all
// and non-positive counters are dropped, restoring the size bound while
// keeping the combined error at m/(k+1).
func (s *MG) MergeFrom(words []int64) {
	other := &MG{k: s.k}
	other.decode(words)
	s.n += other.n
	for x, c := range other.cnt {
		s.cnt[x] += c
	}
	if len(s.cnt) <= s.k {
		return
	}
	vals := make([]int64, 0, len(s.cnt))
	for _, c := range s.cnt {
		vals = append(vals, c)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
	sub := vals[s.k] // (k+1)-th largest
	for x := range s.cnt {
		s.cnt[x] -= sub
		if s.cnt[x] <= 0 {
			delete(s.cnt, x)
		}
	}
}

var _ stream.FullyMergeable = (*MG)(nil)
var _ stream.Kind = (*MGKind)(nil)
