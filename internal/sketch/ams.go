package sketch

import (
	"math/rand"
	"sort"

	"mucongest/internal/stream"
)

// AMS is the Alon–Matias–Szegedy tug-of-war sketch estimating the
// second frequency moment F2 = Σ f(x)². It keeps r·c sign counters
// (median of r means of c squares). Linear, hence composable.
type AMS struct {
	r, c int
	a, b []int64
	n    int64
	ctr  []int64
}

// AMSKind configures AMS sketches with r×c counters and shared hash
// seeds.
type AMSKind struct {
	R, C int
	Seed int64
	a, b []int64
}

// NewAMSKind returns a Kind for AMS F2 sketches (median of R means of C
// estimators).
func NewAMSKind(r, c int, seed int64) *AMSKind {
	if r < 1 || c < 1 {
		panic("sketch: AMS requires r,c ≥ 1")
	}
	rng := rand.New(rand.NewSource(seed))
	k := &AMSKind{R: r, C: c, Seed: seed, a: make([]int64, r*c), b: make([]int64, r*c)}
	for j := range k.a {
		k.a[j] = rng.Int63n(cmPrime-1) + 1
		k.b[j] = rng.Int63n(cmPrime)
	}
	return k
}

// New returns an empty sketch.
func (k *AMSKind) New() stream.Summary {
	return &AMS{r: k.R, c: k.C, a: k.a, b: k.b, ctr: make([]int64, k.R*k.C)}
}

// M returns the serialized size.
func (k *AMSKind) M() int { return 1 + k.R*k.C }

// FromWords reconstructs a sketch.
func (k *AMSKind) FromWords(words []int64) stream.Summary {
	s := k.New().(*AMS)
	s.n = words[0]
	copy(s.ctr, words[1:])
	return s
}

// SizeWords returns the fixed serialized size.
func (s *AMS) SizeWords() int { return 1 + s.r*s.c }

// Count returns the processed stream length.
func (s *AMS) Count() int64 { return s.n }

func (s *AMS) sign(j int, x int64) int64 {
	if hash61(s.a[j], s.b[j], x)&1 == 0 {
		return 1
	}
	return -1
}

// Insert processes one element.
func (s *AMS) Insert(x int64) {
	s.n++
	for j := range s.ctr {
		s.ctr[j] += s.sign(j, x)
	}
}

// EstimateF2 returns the median-of-means estimate of Σ f(x)².
func (s *AMS) EstimateF2() int64 {
	means := make([]int64, s.r)
	for i := 0; i < s.r; i++ {
		var sum int64
		for j := 0; j < s.c; j++ {
			v := s.ctr[i*s.c+j]
			sum += v * v
		}
		means[i] = sum / int64(s.c)
	}
	sort.Slice(means, func(i, j int) bool { return means[i] < means[j] })
	return means[s.r/2]
}

// Words serializes: [n, counters...].
func (s *AMS) Words() []int64 {
	w := make([]int64, s.SizeWords())
	w[0] = s.n
	copy(w[1:], s.ctr)
	return w
}

// MergeFrom adds another sketch word-wise.
func (s *AMS) MergeFrom(words []int64) {
	for i, w := range words {
		s.ComposeWord(i, w)
	}
}

// ComposeWord folds one serialized word (linearity).
func (s *AMS) ComposeWord(i int, w int64) {
	if i == 0 {
		s.n += w
		return
	}
	s.ctr[i-1] += w
}

var _ stream.Composable = (*AMS)(nil)
var _ stream.Kind = (*AMSKind)(nil)
