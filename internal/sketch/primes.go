package sketch

// primesFrom returns the first t primes that are ≥ lo.
func primesFrom(lo, t int) []int64 {
	out := make([]int64, 0, t)
	for p := int64(lo); len(out) < t; p++ {
		if isPrime(p) {
			out = append(out, p)
		}
	}
	return out
}

func isPrime(p int64) bool {
	if p < 2 {
		return false
	}
	for d := int64(2); d*d <= p; d++ {
		if p%d == 0 {
			return false
		}
	}
	return true
}
