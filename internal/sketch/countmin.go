package sketch

import (
	"math"
	"math/rand"

	"mucongest/internal/stream"
)

const cmPrime = int64(2305843009213693951) // 2^61 - 1, Mersenne

// CountMin is the standard Count-Min sketch: d rows of w counters with
// pairwise-independent hashes shared through the Kind. Point estimates
// overestimate by at most e·m/w with probability 1−e^(−d). The sketch
// is linear, hence composable; it serves as a randomized counterpart to
// CR-Precis in the Theorem 1.8 experiments.
type CountMin struct {
	d, w int
	a, b []int64
	n    int64
	rows []int64
}

// CountMinKind configures Count-Min sketches of d rows × w counters
// with hash seeds derived from Seed (all summaries of one Kind share
// hashes, as linearity requires).
type CountMinKind struct {
	D, W int
	Seed int64
	a, b []int64
}

// NewCountMinKind returns a Kind for d×w Count-Min sketches.
func NewCountMinKind(d, w int, seed int64) *CountMinKind {
	if d < 1 || w < 2 {
		panic("sketch: CountMin requires d ≥ 1, w ≥ 2")
	}
	rng := rand.New(rand.NewSource(seed))
	k := &CountMinKind{D: d, W: w, Seed: seed, a: make([]int64, d), b: make([]int64, d)}
	for j := 0; j < d; j++ {
		k.a[j] = rng.Int63n(cmPrime-1) + 1
		k.b[j] = rng.Int63n(cmPrime)
	}
	return k
}

// New returns an empty sketch.
func (k *CountMinKind) New() stream.Summary {
	return &CountMin{d: k.D, w: k.W, a: k.a, b: k.b, rows: make([]int64, k.D*k.W)}
}

// M returns the serialized size: one count word plus d·w counters.
func (k *CountMinKind) M() int { return 1 + k.D*k.W }

// FromWords reconstructs a sketch.
func (k *CountMinKind) FromWords(words []int64) stream.Summary {
	s := k.New().(*CountMin)
	s.n = words[0]
	copy(s.rows, words[1:])
	return s
}

func hash61(a, b, x int64) int64 {
	// ((a*x + b) mod p) via big-ish arithmetic through math/bits-free
	// float-safe route: use 128-bit style split multiplication.
	hi, lo := mul64(uint64(a), uint64(x))
	r := mod61(hi, lo)
	r += uint64(b)
	if r >= uint64(cmPrime) {
		r -= uint64(cmPrime)
	}
	return int64(r)
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

func mod61(hi, lo uint64) uint64 {
	// Reduce 128-bit value modulo 2^61-1.
	r := (lo & uint64(cmPrime)) + (lo>>61 | hi<<3&uint64(cmPrime)) + hi>>58
	for r >= uint64(cmPrime) {
		r -= uint64(cmPrime)
	}
	return r
}

// SizeWords returns the fixed serialized size.
func (s *CountMin) SizeWords() int { return 1 + s.d*s.w }

// Count returns the processed stream length.
func (s *CountMin) Count() int64 { return s.n }

// Insert processes one element.
func (s *CountMin) Insert(x int64) {
	s.n++
	for j := 0; j < s.d; j++ {
		idx := int(hash61(s.a[j], s.b[j], x) % int64(s.w))
		s.rows[j*s.w+idx]++
	}
}

// Estimate returns min over rows (never underestimates).
func (s *CountMin) Estimate(x int64) int64 {
	est := int64(math.MaxInt64)
	for j := 0; j < s.d; j++ {
		idx := int(hash61(s.a[j], s.b[j], x) % int64(s.w))
		if c := s.rows[j*s.w+idx]; c < est {
			est = c
		}
	}
	return est
}

// Words serializes: [n, counters...].
func (s *CountMin) Words() []int64 {
	w := make([]int64, s.SizeWords())
	w[0] = s.n
	copy(w[1:], s.rows)
	return w
}

// MergeFrom adds another sketch word-wise.
func (s *CountMin) MergeFrom(words []int64) {
	for i, w := range words {
		s.ComposeWord(i, w)
	}
}

// ComposeWord folds one serialized word (linearity).
func (s *CountMin) ComposeWord(i int, w int64) {
	if i == 0 {
		s.n += w
		return
	}
	s.rows[i-1] += w
}

var _ stream.Composable = (*CountMin)(nil)
var _ stream.Kind = (*CountMinKind)(nil)
