package sketch_test

import (
	"fmt"

	"mucongest/internal/sketch"
)

// Misra–Gries with k counters estimates every frequency to within
// n/(k+1) and is fully mergeable: two sketches combine via the word
// encoding that the merge simulations ship over the network.
func ExampleMG() {
	kind := sketch.NewMGKind(3)
	a := kind.New().(*sketch.MG)
	for _, x := range []int64{7, 7, 7, 7, 2, 2, 5, 7} {
		a.Insert(x)
	}
	b := kind.New().(*sketch.MG)
	for _, x := range []int64{7, 7, 2, 9} {
		b.Insert(x)
	}
	a.MergeFrom(b.Words())

	fmt.Println("items:", a.Count())
	fmt.Println("estimate(7):", a.Estimate(7))
	fmt.Println("error bound:", a.ErrorBound())
	fmt.Println("heavy(≥4):", a.Heavy(4))
	// Output:
	// items: 12
	// estimate(7): 6
	// error bound: 3
	// heavy(≥4): [7]
}
