// Package sketch implements the streaming summaries the paper's
// applications use: the Greenwald–Khanna quantile summary [41]
// (one-way mergeable), the Misra–Gries heavy-hitters sketch [64]
// (fully mergeable), the deterministic CR-Precis sketch [36]
// (linear, hence composable), plus Count-Min and AMS F2 linear
// sketches and an exact reference counter for tests.
package sketch

import (
	"fmt"
	"math"
	"sort"

	"mucongest/internal/stream"
)

type gkTuple struct {
	v     int64 // value
	g     int64 // rank gap to previous tuple
	delta int64 // rank uncertainty
}

// GK is a Greenwald–Khanna ε-approximate quantile summary. After
// inserting a stream of n elements, Query(φ) returns a value whose rank
// is within ε·n of φ·n. It is one-way mergeable (Definition 3.1):
// incoming summaries are absorbed as weighted tuples, and the error of
// the main summary stays within ε of the combined stream length for
// the sequential one-way merging pattern of Theorem 1.6.
type GK struct {
	eps float64
	cap int
	n   int64
	t   []gkTuple
}

// GKKind configures GK summaries: target additive rank error ε and the
// fixed serialized capacity derived from ε and an upper bound on the
// total stream length.
type GKKind struct {
	Eps  float64
	MaxN int64
	cap  int
}

// NewGKKind returns a Kind producing ε-error quantile summaries sized
// for streams of up to maxN elements. Internally the summary runs at
// ε/2 so that one-way merge compounding (Theorem 1.6's sequential
// merging) stays within the advertised ε.
func NewGKKind(eps float64, maxN int64) *GKKind {
	if eps <= 0 || eps >= 1 {
		panic("sketch: GK requires 0 < ε < 1")
	}
	work := eps / 2
	logTerm := math.Log2(math.Max(2, work*float64(maxN)))
	c := int(math.Ceil(3.0/work*(logTerm+2))) + 4
	return &GKKind{Eps: eps, MaxN: maxN, cap: c}
}

// New returns an empty GK summary.
func (k *GKKind) New() stream.Summary { return &GK{eps: k.Eps / 2, cap: k.cap} }

// M returns the serialized size in words: 2 header words plus 3 words
// per tuple slot.
func (k *GKKind) M() int { return 2 + 3*k.cap }

// FromWords reconstructs a GK summary.
func (k *GKKind) FromWords(words []int64) stream.Summary {
	g := &GK{eps: k.Eps / 2, cap: k.cap}
	g.decode(words)
	return g
}

// SizeWords returns the fixed serialized size.
func (s *GK) SizeWords() int { return 2 + 3*s.cap }

// Count returns the number of inserted elements (including merged
// streams).
func (s *GK) Count() int64 { return s.n }

// TupleCount returns the current number of stored tuples (for memory
// accounting in tests).
func (s *GK) TupleCount() int { return len(s.t) }

// Insert adds one element.
func (s *GK) Insert(x int64) {
	s.insertWeighted(x, 1, s.threshold()-1)
	s.n++
	if len(s.t) > s.cap {
		s.shrink()
	}
}

// shrink compresses, escalating the threshold if the standard pass does
// not reach the capacity (only possible for adversarial tiny-ε
// configurations; keeps the serialized size invariant).
func (s *GK) shrink() {
	s.compress()
	th := s.threshold()
	for len(s.t) > s.cap {
		th *= 2
		s.compressWith(th)
	}
}

func (s *GK) threshold() int64 {
	th := int64(2 * s.eps * float64(s.n))
	if th < 1 {
		th = 1
	}
	return th
}

func (s *GK) insertWeighted(x, g, delta int64) {
	i := sort.Search(len(s.t), func(i int) bool { return s.t[i].v >= x })
	if i == 0 || i == len(s.t) {
		delta = 0 // extremes are exact
	}
	if delta < 0 {
		delta = 0
	}
	s.t = append(s.t, gkTuple{})
	copy(s.t[i+1:], s.t[i:])
	s.t[i] = gkTuple{v: x, g: g, delta: delta}
}

// compress merges adjacent tuples while preserving g + Δ ≤ 2εn.
func (s *GK) compress() { s.compressWith(s.threshold()) }

func (s *GK) compressWith(th int64) {
	out := s.t[:0]
	for i := 0; i < len(s.t); i++ {
		cur := s.t[i]
		// Keep the first and last tuples intact so the extremes stay
		// exact; interior runs merge while g + Δ stays under 2εn.
		for i > 0 && i+1 < len(s.t)-1 && cur.g+s.t[i+1].g+s.t[i+1].delta <= th {
			cur = gkTuple{v: s.t[i+1].v, g: cur.g + s.t[i+1].g, delta: s.t[i+1].delta}
			i++
		}
		out = append(out, cur)
	}
	s.t = out
}

// Query returns a value whose rank is within ε·n of φ·n, for φ∈[0,1].
// Standard GK query: return the value preceding the first tuple whose
// maximum possible rank exceeds the target by more than εn.
func (s *GK) Query(phi float64) int64 {
	if len(s.t) == 0 {
		return 0
	}
	r := int64(math.Ceil(phi * float64(s.n)))
	if r < 1 {
		r = 1
	}
	if r > s.n {
		r = s.n
	}
	e := s.threshold() // 2·ε_work·n = ε·n
	var rmin int64
	prev := s.t[0].v
	for _, tp := range s.t {
		rmin += tp.g
		if rmin+tp.delta > r+e {
			return prev
		}
		prev = tp.v
	}
	return s.t[len(s.t)-1].v
}

// Words serializes the summary: [n, tupleCount, (v,g,Δ)*].
func (s *GK) Words() []int64 {
	w := make([]int64, s.SizeWords())
	w[0] = s.n
	w[1] = int64(len(s.t))
	for i, tp := range s.t {
		w[2+3*i] = tp.v
		w[3+3*i] = tp.g
		w[4+3*i] = tp.delta
	}
	return w
}

func (s *GK) decode(w []int64) {
	s.n = w[0]
	cnt := int(w[1])
	if cnt > s.cap {
		panic(fmt.Sprintf("sketch: GK decode overflow (%d > %d)", cnt, s.cap))
	}
	s.t = make([]gkTuple, cnt)
	for i := range s.t {
		s.t[i] = gkTuple{v: w[2+3*i], g: w[3+3*i], delta: w[4+3*i]}
	}
}

// MergeFrom absorbs an A2-produced summary (one-way merge, Definition
// 3.1): each incoming tuple is inserted as a weighted point carrying its
// own uncertainty plus the incoming summary's resolution.
func (s *GK) MergeFrom(words []int64) {
	other := &GK{eps: s.eps, cap: s.cap}
	other.decode(words)
	otherTh := other.threshold()
	for _, tp := range other.t {
		s.insertWeighted(tp.v, tp.g, tp.delta+otherTh-1)
	}
	s.n += other.n
	if len(s.t) > s.cap {
		s.shrink()
	}
}

var _ stream.OneWayMergeable = (*GK)(nil)
var _ stream.Kind = (*GKKind)(nil)
