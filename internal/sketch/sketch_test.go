package sketch

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"mucongest/internal/stream"
)

func zipfStream(n int, universe int64, s float64, rng *rand.Rand) []int64 {
	z := rand.NewZipf(rng, s, 1, uint64(universe-1))
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(z.Uint64()) + 1
	}
	return out
}

func uniformStream(n int, universe int64, rng *rand.Rand) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = rng.Int63n(universe) + 1
	}
	return out
}

func exactRank(sorted []int64, v int64) (lo, hi int) {
	lo = sort.Search(len(sorted), func(i int) bool { return sorted[i] >= v })
	hi = sort.Search(len(sorted), func(i int) bool { return sorted[i] > v })
	return lo, hi
}

func checkGKError(t *testing.T, name string, data []int64, eps float64) {
	t.Helper()
	kind := NewGKKind(eps, int64(len(data)))
	g := kind.New().(*GK)
	stream.InsertAll(g, data)
	sorted := append([]int64(nil), data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := float64(len(data))
	for _, phi := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := g.Query(phi)
		lo, hi := exactRank(sorted, v)
		target := phi * n
		// Rank of returned value must be within ε·n of target.
		errRank := 0.0
		if target < float64(lo) {
			errRank = float64(lo) - target
		} else if target > float64(hi) {
			errRank = target - float64(hi)
		}
		if errRank > eps*n+1 {
			t.Fatalf("%s: φ=%.2f returned %d with rank error %.0f > εn=%.0f",
				name, phi, v, errRank, eps*n)
		}
	}
}

func TestGKErrorSortedUniformZipf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20000
	eps := 0.02
	asc := make([]int64, n)
	desc := make([]int64, n)
	for i := range asc {
		asc[i] = int64(i)
		desc[i] = int64(n - i)
	}
	checkGKError(t, "ascending", asc, eps)
	checkGKError(t, "descending", desc, eps)
	checkGKError(t, "uniform", uniformStream(n, 1_000_000, rng), eps)
	checkGKError(t, "zipf", zipfStream(n, 1000, 1.3, rng), eps)
}

func TestGKSpaceSublinear(t *testing.T) {
	n := 50000
	eps := 0.02
	kind := NewGKKind(eps, int64(n))
	g := kind.New().(*GK)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		g.Insert(rng.Int63n(1 << 40))
	}
	if g.TupleCount() > kind.cap {
		t.Fatalf("GK stores %d tuples, cap %d", g.TupleCount(), kind.cap)
	}
	if kind.M() > n/4 {
		t.Fatalf("GK summary size %d not sublinear in n=%d", kind.M(), n)
	}
}

func TestGKSerializationRoundTrip(t *testing.T) {
	kind := NewGKKind(0.05, 10000)
	g := kind.New().(*GK)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		g.Insert(rng.Int63n(1000))
	}
	w := g.Words()
	if len(w) != kind.M() {
		t.Fatalf("serialized %d words want %d", len(w), kind.M())
	}
	g2 := kind.FromWords(w).(*GK)
	if g2.Count() != g.Count() {
		t.Fatal("count lost in round trip")
	}
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		if g.Query(phi) != g2.Query(phi) {
			t.Fatalf("query φ=%v differs after round trip", phi)
		}
	}
}

func TestGKOneWayMerge(t *testing.T) {
	// Theorem 1.6 usage: many cluster summaries merged one-way into a
	// main summary; final quantile error must stay near ε·m.
	rng := rand.New(rand.NewSource(4))
	eps := 0.05
	clusters := 20
	per := 2000
	total := clusters * per
	kind := NewGKKind(eps, int64(total))
	main := kind.New().(*GK)
	var all []int64
	for c := 0; c < clusters; c++ {
		data := uniformStream(per, 1_000_000, rng)
		all = append(all, data...)
		s := kind.New().(*GK)
		stream.InsertAll(s, data)
		main.MergeFrom(s.Words())
	}
	if main.Count() != int64(total) {
		t.Fatalf("count %d want %d", main.Count(), total)
	}
	sorted := append([]int64(nil), all...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	nf := float64(total)
	for _, phi := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		v := main.Query(phi)
		lo, hi := exactRank(sorted, v)
		target := phi * nf
		errRank := math.Max(float64(lo)-target, target-float64(hi))
		// One-way merging compounds per-merge error; allow 3ε·m.
		if errRank > 3*eps*nf {
			t.Fatalf("merged φ=%.2f rank error %.0f > 3εm=%.0f", phi, errRank, 3*eps*nf)
		}
	}
}

func TestMGGuarantee(t *testing.T) {
	// Property: for any stream, f(x) - m/(k+1) ≤ est(x) ≤ f(x).
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%20) + 1
		rng := rand.New(rand.NewSource(seed))
		data := zipfStream(3000, 50, 1.2, rng)
		mg := NewMGKind(k).New().(*MG)
		exact := map[int64]int64{}
		for _, x := range data {
			mg.Insert(x)
			exact[x]++
		}
		m := int64(len(data))
		for x := int64(1); x <= 50; x++ {
			est := mg.Estimate(x)
			if est > exact[x] || est < exact[x]-m/int64(k+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMGFullMergeGuarantee(t *testing.T) {
	// Merge in an arbitrary binary tree; guarantee must hold for the
	// combined stream (full mergeability).
	rng := rand.New(rand.NewSource(7))
	k := 9
	kind := NewMGKind(k)
	parts := make([]*MG, 8)
	exact := map[int64]int64{}
	var m int64
	for i := range parts {
		parts[i] = kind.New().(*MG)
		data := zipfStream(1000+i*137, 40, 1.1, rng)
		for _, x := range data {
			parts[i].Insert(x)
			exact[x]++
		}
		m += int64(len(data))
	}
	// Tree: ((0+1)+(2+3)) + ((4+5)+(6+7))
	for _, pair := range [][2]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {0, 2}, {4, 6}, {0, 4}} {
		parts[pair[0]].MergeFrom(parts[pair[1]].Words())
	}
	res := parts[0]
	if res.Count() != m {
		t.Fatalf("merged count %d want %d", res.Count(), m)
	}
	for x := int64(1); x <= 40; x++ {
		est := res.Estimate(x)
		if est > exact[x] {
			t.Fatalf("label %d overestimated: %d > %d", x, est, exact[x])
		}
		if est < exact[x]-m/int64(k+1) {
			t.Fatalf("label %d underestimated: %d < %d - %d", x, est, exact[x], m/int64(k+1))
		}
	}
}

func TestMGHeavyAndSerialization(t *testing.T) {
	kind := NewMGKind(5)
	mg := kind.New().(*MG)
	for i := 0; i < 60; i++ {
		mg.Insert(1)
	}
	for i := 0; i < 30; i++ {
		mg.Insert(2)
	}
	for i := int64(3); i < 13; i++ {
		mg.Insert(i)
	}
	heavy := mg.Heavy(20)
	if len(heavy) != 2 || heavy[0] != 1 || heavy[1] != 2 {
		t.Fatalf("heavy = %v", heavy)
	}
	w := mg.Words()
	if len(w) != kind.M() {
		t.Fatalf("size %d want %d", len(w), kind.M())
	}
	mg2 := kind.FromWords(w).(*MG)
	if mg2.Count() != mg.Count() || mg2.Estimate(1) != mg.Estimate(1) {
		t.Fatal("round trip lost state")
	}
}

func TestCRPrecisDeterministicBound(t *testing.T) {
	universe := int64(1000)
	kind := NewCRPrecisKind(20, 8)
	s := kind.New().(*CRPrecis)
	rng := rand.New(rand.NewSource(8))
	data := zipfStream(20000, universe, 1.4, rng)
	exact := map[int64]int64{}
	for _, x := range data {
		s.Insert(x)
		exact[x]++
	}
	bound := s.ErrorBound(universe)
	for x := int64(1); x <= universe; x++ {
		est := s.Estimate(x)
		if est < exact[x] {
			t.Fatalf("CR-Precis underestimated %d: %d < %d", x, est, exact[x])
		}
		if est > exact[x]+bound {
			t.Fatalf("CR-Precis overestimated %d: %d > %d + %d", x, est, exact[x], bound)
		}
	}
}

func TestCRPrecisComposable(t *testing.T) {
	kind := NewCRPrecisKind(11, 5)
	rng := rand.New(rand.NewSource(9))
	parts := make([]*CRPrecis, 6)
	whole := kind.New().(*CRPrecis)
	for i := range parts {
		parts[i] = kind.New().(*CRPrecis)
		for j := 0; j < 500; j++ {
			x := rng.Int63n(200)
			parts[i].Insert(x)
			whole.Insert(x)
		}
	}
	// Streaming composition word-by-word (Definition 3.3).
	composed := kind.New().(*CRPrecis)
	for i := 0; i < kind.M(); i++ {
		for _, p := range parts {
			composed.ComposeWord(i, p.Words()[i])
		}
	}
	if composed.Count() != whole.Count() {
		t.Fatalf("composed count %d want %d", composed.Count(), whole.Count())
	}
	for x := int64(0); x < 200; x++ {
		if composed.Estimate(x) != whole.Estimate(x) {
			t.Fatalf("composition not linear at %d", x)
		}
	}
}

func TestCRPrecisEntropyEstimate(t *testing.T) {
	universe := int64(64)
	kind := NewCRPrecisKind(67, 6) // primes > universe: zero collisions
	s := kind.New().(*CRPrecis)
	exact := NewExactKind(int(universe)).New().(*Exact)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 30000; i++ {
		x := rng.Int63n(universe) + 1
		s.Insert(x)
		exact.Insert(x)
	}
	uni := make([]int64, universe)
	for i := range uni {
		uni[i] = int64(i) + 1
	}
	got := s.EstimateEntropy(uni)
	want := exact.Entropy()
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("entropy %f want %f", got, want)
	}
}

func TestCountMinBoundAndLinearity(t *testing.T) {
	kind := NewCountMinKind(5, 272, 42) // e·m/w ≈ m/100
	rng := rand.New(rand.NewSource(11))
	s1 := kind.New().(*CountMin)
	s2 := kind.New().(*CountMin)
	exact := map[int64]int64{}
	for i := 0; i < 10000; i++ {
		x := zipfStream(1, 500, 1.3, rng)[0]
		if i%2 == 0 {
			s1.Insert(x)
		} else {
			s2.Insert(x)
		}
		exact[x]++
	}
	s1.MergeFrom(s2.Words())
	m := int64(20000)
	_ = m
	bad := 0
	for x := int64(1); x <= 500; x++ {
		est := s1.Estimate(x)
		if est < exact[x] {
			t.Fatalf("CountMin underestimated %d", x)
		}
		slack := int64(math.Ceil(20000 * math.E / 272))
		if est > exact[x]+slack+50 {
			bad++
		}
	}
	if bad > 25 { // 5% slack on the probabilistic bound
		t.Fatalf("CountMin exceeded error bound on %d labels", bad)
	}
}

func TestAMSF2(t *testing.T) {
	kind := NewAMSKind(7, 64, 5)
	rng := rand.New(rand.NewSource(12))
	s := kind.New().(*AMS)
	half1 := kind.New().(*AMS)
	half2 := kind.New().(*AMS)
	exact := NewExactKind(300).New().(*Exact)
	for i := 0; i < 20000; i++ {
		x := zipfStream(1, 200, 1.5, rng)[0]
		s.Insert(x)
		if i%2 == 0 {
			half1.Insert(x)
		} else {
			half2.Insert(x)
		}
		exact.Insert(x)
	}
	want := exact.F2()
	got := s.EstimateF2()
	if math.Abs(float64(got-want)) > 0.35*float64(want) {
		t.Fatalf("AMS F2 %d want %d ±35%%", got, want)
	}
	// Linearity: halves merged must equal the whole.
	half1.MergeFrom(half2.Words())
	if half1.EstimateF2() != got {
		t.Fatalf("AMS not linear: %d vs %d", half1.EstimateF2(), got)
	}
}

func TestExactCounter(t *testing.T) {
	kind := NewExactKind(10)
	s := kind.New().(*Exact)
	for _, x := range []int64{5, 5, 7, 9, 5, 7} {
		s.Insert(x)
	}
	if s.Estimate(5) != 3 || s.Estimate(7) != 2 || s.Estimate(1) != 0 {
		t.Fatal("exact counts wrong")
	}
	if s.Quantile(0.4) != 5 {
		t.Fatalf("0.4-quantile %d", s.Quantile(0.4))
	}
	if s.Quantile(0.99) != 9 {
		t.Fatalf("0.99-quantile %d", s.Quantile(0.99))
	}
	w := s.Words()
	s2 := kind.FromWords(w).(*Exact)
	s2.MergeFrom(w)
	if s2.Estimate(5) != 6 {
		t.Fatal("merge wrong")
	}
}

func TestPrimes(t *testing.T) {
	ps := primesFrom(10, 5)
	want := []int64{11, 13, 17, 19, 23}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("primes %v", ps)
		}
	}
}

func TestKindsHaveConsistentM(t *testing.T) {
	kinds := []stream.Kind{
		NewGKKind(0.1, 1000),
		NewMGKind(7),
		NewCRPrecisKind(13, 4),
		NewCountMinKind(3, 50, 1),
		NewAMSKind(3, 16, 1),
		NewExactKind(20),
	}
	for _, k := range kinds {
		s := k.New()
		if s.SizeWords() != k.M() {
			t.Fatalf("%T: SizeWords %d != M %d", k, s.SizeWords(), k.M())
		}
		if len(s.Words()) != k.M() {
			t.Fatalf("%T: Words length %d != M %d", k, len(s.Words()), k.M())
		}
		s.Insert(3)
		s2 := k.FromWords(s.Words())
		if len(s2.Words()) != k.M() {
			t.Fatalf("%T: round-trip size mismatch", k)
		}
	}
}
