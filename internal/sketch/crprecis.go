package sketch

import (
	"math"

	"mucongest/internal/stream"
)

// CRPrecis is the deterministic CR-Precis counter sketch [36]: t rows,
// row j holding q_j counters where q_1 < q_2 < ... are consecutive
// primes ≥ base; element x increments counter x mod q_j in every row.
// The point estimate min_j row_j[x mod q_j] never underestimates, and by
// the Chinese Remainder Theorem any other element collides with x in
// fewer than log_base(U) rows, so
//
//	f(x) ≤ Estimate(x) ≤ f(x) + m·⌈log_base U⌉ / t.
//
// The sketch is linear in the stream, hence fully mergeable AND
// composable (Definition 3.3): merging is word-wise addition. It backs
// the paper's Theorem 1.8 application (deterministic entropy
// estimation).
type CRPrecis struct {
	primes []int64
	offs   []int
	total  int
	n      int64
	rows   []int64 // flattened counters
}

// CRPrecisKind configures CR-Precis sketches: t rows of consecutive
// primes starting at or above base.
type CRPrecisKind struct {
	Base, T int
	primes  []int64
	offs    []int
	total   int
}

// NewCRPrecisKind returns a Kind for CR-Precis sketches with t prime
// rows starting at base.
func NewCRPrecisKind(base, t int) *CRPrecisKind {
	if base < 2 || t < 1 {
		panic("sketch: CRPrecis requires base ≥ 2, t ≥ 1")
	}
	k := &CRPrecisKind{Base: base, T: t, primes: primesFrom(base, t)}
	k.offs = make([]int, t)
	for j, q := range k.primes {
		k.offs[j] = k.total
		k.total += int(q)
	}
	return k
}

// New returns an empty sketch.
func (k *CRPrecisKind) New() stream.Summary {
	return &CRPrecis{primes: k.primes, offs: k.offs, total: k.total, rows: make([]int64, k.total)}
}

// M returns the serialized size: one count word plus all counters.
func (k *CRPrecisKind) M() int { return 1 + k.total }

// FromWords reconstructs a sketch.
func (k *CRPrecisKind) FromWords(words []int64) stream.Summary {
	s := k.New().(*CRPrecis)
	s.n = words[0]
	copy(s.rows, words[1:])
	return s
}

// SizeWords returns the fixed serialized size.
func (s *CRPrecis) SizeWords() int { return 1 + s.total }

// Count returns the processed stream length.
func (s *CRPrecis) Count() int64 { return s.n }

// Insert processes one element.
func (s *CRPrecis) Insert(x int64) {
	s.n++
	for j, q := range s.primes {
		idx := x % q
		if idx < 0 {
			idx += q
		}
		s.rows[s.offs[j]+int(idx)]++
	}
}

// Estimate returns the deterministic overestimate min_j row_j[x mod q_j].
func (s *CRPrecis) Estimate(x int64) int64 {
	est := int64(math.MaxInt64)
	for j, q := range s.primes {
		idx := x % q
		if idx < 0 {
			idx += q
		}
		if c := s.rows[s.offs[j]+int(idx)]; c < est {
			est = c
		}
	}
	return est
}

// ErrorBound returns the worst-case overestimation m·⌈log_base U⌉/t for
// a universe of size U.
func (s *CRPrecis) ErrorBound(universe int64) int64 {
	lg := int64(math.Ceil(math.Log(float64(universe)) / math.Log(float64(s.primes[0]))))
	if lg < 1 {
		lg = 1
	}
	return s.n * lg / int64(len(s.primes))
}

// EstimateEntropy estimates the empirical Shannon entropy (in bits) of
// the label distribution over the given universe, by querying the
// sketch for each label. Estimates are clipped so probabilities sum to
// at most 1+t·ε. This realizes the paper's Theorem 1.8 application; the
// original CR-Precis entropy estimator is algebraically more refined,
// but both consume the same sketch and the sandwich bounds are checked
// empirically in the experiment harness.
func (s *CRPrecis) EstimateEntropy(universe []int64) float64 {
	if s.n == 0 {
		return 0
	}
	h := 0.0
	for _, x := range universe {
		f := s.Estimate(x)
		if f <= 0 {
			continue
		}
		p := float64(f) / float64(s.n)
		if p > 1 {
			p = 1
		}
		h -= p * math.Log2(p)
	}
	return h
}

// Words serializes: [n, counters...].
func (s *CRPrecis) Words() []int64 {
	w := make([]int64, s.SizeWords())
	w[0] = s.n
	copy(w[1:], s.rows)
	return w
}

// MergeFrom adds another sketch word-wise (linearity).
func (s *CRPrecis) MergeFrom(words []int64) {
	for i, w := range words {
		s.ComposeWord(i, w)
	}
}

// ComposeWord folds one serialized word into the sketch (Definition
// 3.3's streaming merge): counters and the count header are additive.
func (s *CRPrecis) ComposeWord(i int, w int64) {
	if i == 0 {
		s.n += w
		return
	}
	s.rows[i-1] += w
}

var _ stream.Composable = (*CRPrecis)(nil)
var _ stream.Kind = (*CRPrecisKind)(nil)
