// Package congest implements the standard CONGEST building blocks the
// paper relies on, as synchronous subroutines over sim.Ctx: BFS-tree
// construction, pipelined convergecast aggregation (Lemma B.4),
// pipelined broadcast, global aggregate helpers, and the degree-class
// relabeling of Lemma B.5.
//
// Calling convention: these are SPMD subroutines — every node of the
// engine must call the same function at the same logical point of its
// program with consistent arguments, as all nodes advance in lockstep.
// Each subroutine runs for a fixed number of rounds derived from the
// caller-supplied depth bound, so all nodes leave the subroutine
// simultaneously.
package congest

import (
	"mucongest/internal/sim"
)

// Message kinds used by this package. Other packages should use kinds
// ≥ KindUser to avoid collision inside composite programs.
const (
	kindJoin int32 = iota + 1
	kindChildAck
	kindAgg
	kindDown
	// KindUser is the first message kind available to client packages.
	KindUser int32 = 64
)

// Tree is a rooted spanning tree from the local node's point of view.
type Tree struct {
	Root     int
	Parent   int // -1 at the root (or if the node never joined)
	Depth    int // -1 if the node never joined
	Children []int
}

// Joined reports whether this node is part of the tree.
func (t *Tree) Joined() bool { return t.Depth >= 0 }

// BuildBFSTree constructs a BFS tree rooted at root. maxDepth must be
// an upper bound on the eccentricity of root (n-1 is always safe; tight
// bounds keep the round count at O(D)). The subroutine takes exactly
// 2·(maxDepth+2) rounds: JOIN and CHILD-ACK messages alternate so that a
// node's broadcast and its ack never contend for the same edge in the
// same round. Ties are broken toward the smallest parent id, making the
// tree deterministic. Memory: O(deg) words for the children list.
func BuildBFSTree(c *sim.Ctx, root, maxDepth int) *Tree {
	t := &Tree{Root: root, Parent: -1, Depth: -1}
	if c.ID() == root {
		t.Depth = 0
	}
	justJoined := t.Depth == 0
	pendingAck := -1
	c.Charge(int64(c.Degree())) // children list worst case
	for r := 0; r < maxDepth+2; r++ {
		// Phase A: newly joined nodes announce their depth.
		if justJoined {
			c.Broadcast(sim.Msg{Kind: kindJoin, A: int64(t.Depth)})
			justJoined = false
		}
		inA := c.Tick()
		if !t.Joined() {
			best := -1
			bestDepth := 0
			for _, m := range inA {
				if m.Msg.Kind != kindJoin {
					continue
				}
				if best == -1 || m.From < best {
					best = m.From
					bestDepth = int(m.Msg.A)
				}
			}
			if best >= 0 {
				t.Parent = best
				t.Depth = bestDepth + 1
				justJoined = true
				pendingAck = best
			}
		}
		// Phase B: acknowledge the chosen parent.
		if pendingAck >= 0 {
			c.SendID(pendingAck, sim.Msg{Kind: kindChildAck})
			pendingAck = -1
		}
		inB := c.Tick()
		for _, m := range inB {
			if m.Msg.Kind == kindChildAck {
				t.Children = append(t.Children, m.From)
			}
		}
	}
	return t
}
