package congest

import (
	"math/rand"
	"sort"
	"testing"

	"mucongest/internal/graph"
	"mucongest/internal/sim"
)

// runAll executes program on g and fails the test on error.
func runAll(t *testing.T, g *graph.Graph, program func(*sim.Ctx), opts ...sim.Option) *sim.Result {
	t.Helper()
	e := sim.New(g, opts...)
	res, err := e.Run(program)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func testGraphs(t *testing.T) map[string]*graph.Graph {
	rng := rand.New(rand.NewSource(11))
	return map[string]*graph.Graph{
		"path":    graph.Path(9),
		"cycle":   graph.Cycle(10),
		"star":    graph.Star(12),
		"gnp":     graph.GnpConnected(25, 0.25, rng),
		"cliques": graph.CycleOfCliques(3, 4),
	}
}

func TestBuildBFSTreeValid(t *testing.T) {
	for name, g := range testGraphs(t) {
		root := 0
		maxDepth := g.N()
		res := runAll(t, g, func(c *sim.Ctx) {
			tr := BuildBFSTree(c, root, maxDepth)
			c.Emit(tr)
		})
		trees := make([]*Tree, g.N())
		for v := 0; v < g.N(); v++ {
			trees[v] = res.Outputs[v][0].(*Tree)
		}
		// Validate: root depth 0, parents joined at depth-1, children
		// lists consistent, depths are true BFS distances.
		if trees[root].Depth != 0 || trees[root].Parent != -1 {
			t.Fatalf("%s: bad root record %+v", name, trees[root])
		}
		dist := bfsDistances(g, root)
		for v := 0; v < g.N(); v++ {
			tr := trees[v]
			if !tr.Joined() {
				t.Fatalf("%s: node %d never joined", name, v)
			}
			if tr.Depth != dist[v] {
				t.Fatalf("%s: node %d depth %d want %d", name, v, tr.Depth, dist[v])
			}
			if v != root {
				p := trees[tr.Parent]
				if p.Depth != tr.Depth-1 {
					t.Fatalf("%s: node %d parent depth mismatch", name, v)
				}
				found := false
				for _, ch := range p.Children {
					if ch == v {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s: node %d missing from parent's children", name, v)
				}
			}
		}
		// Children lists partition V \ {root}.
		total := 0
		for v := 0; v < g.N(); v++ {
			total += len(trees[v].Children)
		}
		if total != g.N()-1 {
			t.Fatalf("%s: children total %d want %d", name, total, g.N()-1)
		}
	}
}

func bfsDistances(g *graph.Graph, root int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	q := []int{root}
	for len(q) > 0 {
		v := q[0]
		q = q[1:]
		for _, u := range g.Neighbors(v) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				q = append(q, u)
			}
		}
	}
	return dist
}

func TestConvergecastSubtreeSums(t *testing.T) {
	for name, g := range testGraphs(t) {
		maxDepth := g.N()
		res := runAll(t, g, func(c *sim.Ctx) {
			tr := BuildBFSTree(c, 0, maxDepth)
			vals := []int64{int64(c.ID()), 1, int64(c.Degree())}
			acc := Convergecast(c, tr, maxDepth, vals, OpSum)
			c.Emit(acc)
		})
		rootAcc := res.Outputs[0][0].([]int64)
		n := int64(g.N())
		wantID := n * (n - 1) / 2
		if rootAcc[0] != wantID || rootAcc[1] != n || rootAcc[2] != 2*int64(g.M()) {
			t.Fatalf("%s: root aggregates %v want [%d %d %d]", name, rootAcc, wantID, n, 2*g.M())
		}
	}
}

func TestConvergecastMaxMin(t *testing.T) {
	g := graph.Path(7)
	res := runAll(t, g, func(c *sim.Ctx) {
		tr := BuildBFSTree(c, 3, g.N())
		mx := Convergecast(c, tr, g.N(), []int64{int64(c.ID() * c.ID())}, OpMax)
		mn := Convergecast(c, tr, g.N(), []int64{int64(c.ID() - 3)}, OpMin)
		c.Emit([2]int64{mx[0], mn[0]})
	})
	got := res.Outputs[3][0].([2]int64)
	if got[0] != 36 || got[1] != -3 {
		t.Fatalf("max/min = %v", got)
	}
}

func TestBroadcastDown(t *testing.T) {
	for name, g := range testGraphs(t) {
		maxDepth := g.N()
		want := []int64{17, -4, 99, 123456}
		res := runAll(t, g, func(c *sim.Ctx) {
			tr := BuildBFSTree(c, 0, maxDepth)
			var vals []int64
			if c.ID() == 0 {
				vals = want
			} else {
				vals = make([]int64, len(want)) // ignored at non-roots
			}
			got := BroadcastDown(c, tr, maxDepth, len(want), vals)
			c.Emit(got)
		})
		for v := 0; v < g.N(); v++ {
			got := res.Outputs[v][0].([]int64)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: node %d got %v", name, v, got)
				}
			}
		}
	}
}

func TestAggregateAllHelpers(t *testing.T) {
	g := graph.Cycle(9)
	res := runAll(t, g, func(c *sim.Ctx) {
		tr := BuildBFSTree(c, 4, g.N())
		s := SumAll(c, tr, g.N(), 2)
		mx := MaxAll(c, tr, g.N(), int64(c.ID()))
		mn := MinAll(c, tr, g.N(), int64(10+c.ID()))
		c.Emit([3]int64{s, mx, mn})
	})
	for v := 0; v < g.N(); v++ {
		got := res.Outputs[v][0].([3]int64)
		if got != [3]int64{18, 8, 10} {
			t.Fatalf("node %d got %v", v, got)
		}
	}
}

func TestConvergecastPipelinedRounds(t *testing.T) {
	// Lemma B.4 promises O(x + D) rounds: verify the x=64 aggregation on
	// a path of length 16 takes far fewer rounds than x·D.
	g := graph.Path(17)
	maxDepth := 16
	x := 64
	res := runAll(t, g, func(c *sim.Ctx) {
		tr := BuildBFSTree(c, 0, maxDepth)
		vals := make([]int64, x)
		for i := range vals {
			vals[i] = int64(c.ID() + i)
		}
		Convergecast(c, tr, maxDepth, vals, OpSum)
	})
	treeRounds := 2 * (maxDepth + 2)
	aggRounds := res.Rounds - treeRounds
	if aggRounds > maxDepth+x+2 {
		t.Fatalf("convergecast used %d rounds, want ≤ %d (pipelining broken)", aggRounds, maxDepth+x+2)
	}
}

func TestDegreeClass(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1023: 9, 1024: 10}
	for deg, want := range cases {
		if got := DegreeClass(deg); got != want {
			t.Fatalf("DegreeClass(%d) = %d want %d", deg, got, want)
		}
	}
}

func TestDegreeClassRelabel(t *testing.T) {
	for name, g := range testGraphs(t) {
		maxDepth := g.N()
		res := runAll(t, g, func(c *sim.Ctx) {
			tr := BuildBFSTree(c, 0, maxDepth)
			rl := DegreeClassRelabel(c, tr, maxDepth, c.Degree())
			c.Emit(rl)
		})
		n := g.N()
		ids := make([]int, 0, n)
		for v := 0; v < n; v++ {
			rl := res.Outputs[v][0].(*Relabeling)
			ids = append(ids, int(rl.NewID))
			// The new id's class (computed from the histogram) must match
			// the node's actual degree class.
			if got, want := rl.ClassOfNewID(rl.NewID), DegreeClass(g.Degree(v)); got != want {
				t.Fatalf("%s: node %d new id %d classed %d want %d", name, v, rl.NewID, got, want)
			}
		}
		sort.Ints(ids)
		for i, id := range ids {
			if id != i {
				t.Fatalf("%s: new ids not a permutation: %v", name, ids)
			}
		}
		// Histogram must match reality.
		rl := res.Outputs[0][0].(*Relabeling)
		wantHist := make([]int64, rl.NumClasses)
		for v := 0; v < n; v++ {
			wantHist[DegreeClass(g.Degree(v))]++
		}
		for j := range wantHist {
			if rl.Hist[j] != wantHist[j] {
				t.Fatalf("%s: hist[%d] = %d want %d", name, j, rl.Hist[j], wantHist[j])
			}
		}
	}
}

func TestRelabelRoundsLinearInDepthPlusLog(t *testing.T) {
	g := graph.Path(33)
	maxDepth := 32
	res := runAll(t, g, func(c *sim.Ctx) {
		tr := BuildBFSTree(c, 0, maxDepth)
		DegreeClassRelabel(c, tr, maxDepth, c.Degree())
	})
	// Tree 2(D+2), convergecast D+C, broadcast D+C, assignment 2D+C+3.
	// With D=32 and C≈7 this is well under 220; a per-class sequential
	// implementation would need ≥ C·D ≈ 224 for the assignment alone.
	if res.Rounds > 220 {
		t.Fatalf("relabel used %d rounds; pipelining regressed", res.Rounds)
	}
}

// TestBFSTreeSingleNode pins the degenerate tree: a one-node graph with
// maxDepth 0 must produce a root-only tree without panicking — the
// join/ack alternation has no edges to use, but the subroutine must
// still run its fixed round schedule and terminate.
func TestBFSTreeSingleNode(t *testing.T) {
	g := graph.New(1)
	res := runAll(t, g, func(c *sim.Ctx) {
		tr := BuildBFSTree(c, 0, 0)
		c.Emit(tr)
	})
	tr := res.Outputs[0][0].(*Tree)
	if !tr.Joined() || tr.Root != 0 || tr.Parent != -1 || tr.Depth != 0 || len(tr.Children) != 0 {
		t.Fatalf("single-node tree malformed: %+v", tr)
	}
	if res.Messages != 0 {
		t.Fatalf("single-node tree sent %d messages", res.Messages)
	}
}

// TestRelabelSingleNodeIdentity pins the degenerate relabeling: on a
// one-node graph the pipeline (convergecast, broadcast, doubly
// pipelined assignment) collapses to the root acting alone, and the
// result must be the identity: new id 0 in class 0 with a one-entry
// histogram.
func TestRelabelSingleNodeIdentity(t *testing.T) {
	g := graph.New(1)
	res := runAll(t, g, func(c *sim.Ctx) {
		tr := BuildBFSTree(c, 0, 0)
		c.Emit(DegreeClassRelabel(c, tr, 0, c.Degree()))
	})
	rl := res.Outputs[0][0].(*Relabeling)
	if rl.NewID != 0 {
		t.Fatalf("single node relabeled to %d, want identity 0", rl.NewID)
	}
	if got, want := rl.ClassOfNewID(0), DegreeClass(0); got != want {
		t.Fatalf("class of new id 0 = %d, want %d", got, want)
	}
	var total int64
	for _, h := range rl.Hist {
		total += h
	}
	if total != 1 {
		t.Fatalf("histogram sums to %d over %v, want 1", total, rl.Hist)
	}
}

// TestRelabelUniformDegreePermutation pins the uniform-degree case: on
// a cycle every node shares degree class 1 (⌊log₂ 2⌋), so the
// relabeling must be a plain permutation of 0..n-1 inside one class —
// the closest a multi-node relabel comes to an identity.
func TestRelabelUniformDegreePermutation(t *testing.T) {
	const n = 10
	g := graph.Cycle(n)
	maxDepth := n
	res := runAll(t, g, func(c *sim.Ctx) {
		tr := BuildBFSTree(c, 0, maxDepth)
		c.Emit(DegreeClassRelabel(c, tr, maxDepth, c.Degree()))
	})
	ids := make([]int, 0, n)
	for v := 0; v < n; v++ {
		rl := res.Outputs[v][0].(*Relabeling)
		if got := rl.ClassOfNewID(rl.NewID); got != 1 {
			t.Fatalf("node %d (degree 2) classed %d, want 1", v, got)
		}
		if rl.Hist[1] != n {
			t.Fatalf("node %d histogram %v, want all %d nodes in class 1", v, rl.Hist, n)
		}
		ids = append(ids, int(rl.NewID))
	}
	sort.Ints(ids)
	for i, id := range ids {
		if id != i {
			t.Fatalf("new ids not a permutation of 0..%d: %v", n-1, ids)
		}
	}
}
