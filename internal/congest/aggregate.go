package congest

import "mucongest/internal/sim"

// AggOp is a commutative, associative combiner for Convergecast.
type AggOp func(a, b int64) int64

// Standard combiners.
func OpSum(a, b int64) int64 { return a + b }
func OpMax(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
func OpMin(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Convergecast implements Lemma B.4: every node starts with x = len(vals)
// values; after maxDepth + x rounds each node knows, for every index i,
// the combination (under op) of value i over its own subtree — the root
// therefore knows the global aggregates. The pipeline is fully
// scheduled: a node at depth d sends index i exactly at local round
// (maxDepth - d) + i, so per-child buffering is unnecessary and the
// node's working memory stays at O(x) words (the accumulator), matching
// the lemma's "at most x ≤ μ additional" bound.
//
// All nodes must pass the same x, op and maxDepth (an upper bound on
// the tree depth used when it was built).
func Convergecast(c *sim.Ctx, t *Tree, maxDepth int, vals []int64, op AggOp) []int64 {
	x := len(vals)
	acc := make([]int64, x)
	copy(acc, vals)
	c.Charge(int64(x))
	defer c.Release(int64(x))
	horizon := maxDepth + x
	for r := 0; r < horizon; r++ {
		if t.Joined() && t.Parent >= 0 {
			if i := r - (maxDepth - t.Depth); i >= 0 && i < x {
				c.SendID(t.Parent, sim.Msg{Kind: kindAgg, A: int64(i), B: acc[i]})
			}
		}
		in := c.Tick()
		for _, m := range in {
			if m.Msg.Kind == kindAgg {
				i := int(m.Msg.A)
				acc[i] = op(acc[i], m.Msg.B)
			}
		}
	}
	return acc
}

// BroadcastDown pipelines x values from the root to every node in
// maxDepth + x rounds (Lemma B.4's downward counterpart). Only the
// root's vals argument is consulted; every node returns the x values.
// Memory: O(x) words.
func BroadcastDown(c *sim.Ctx, t *Tree, maxDepth, x int, vals []int64) []int64 {
	out := make([]int64, x)
	if c.ID() == t.Root {
		copy(out, vals)
	}
	c.Charge(int64(x))
	defer c.Release(int64(x))
	horizon := maxDepth + x
	for r := 0; r < horizon; r++ {
		if t.Joined() {
			if i := r - t.Depth; i >= 0 && i < x {
				for _, ch := range t.Children {
					c.SendID(ch, sim.Msg{Kind: kindDown, A: int64(i), B: out[i]})
				}
			}
		}
		in := c.Tick()
		for _, m := range in {
			if m.Msg.Kind == kindDown && m.From == t.Parent {
				out[m.Msg.A] = m.Msg.B
			}
		}
	}
	return out
}

// AggregateAll combines one value per node under op and makes the
// global result known to every node: a convergecast followed by a
// broadcast, 2·(maxDepth+1) rounds.
func AggregateAll(c *sim.Ctx, t *Tree, maxDepth int, val int64, op AggOp) int64 {
	up := Convergecast(c, t, maxDepth, []int64{val}, op)
	down := BroadcastDown(c, t, maxDepth, 1, up)
	return down[0]
}

// SumAll returns the network-wide sum of val at every node.
func SumAll(c *sim.Ctx, t *Tree, maxDepth int, val int64) int64 {
	return AggregateAll(c, t, maxDepth, val, OpSum)
}

// MaxAll returns the network-wide maximum of val at every node.
func MaxAll(c *sim.Ctx, t *Tree, maxDepth int, val int64) int64 {
	return AggregateAll(c, t, maxDepth, val, OpMax)
}

// MinAll returns the network-wide minimum of val at every node.
func MinAll(c *sim.Ctx, t *Tree, maxDepth int, val int64) int64 {
	return AggregateAll(c, t, maxDepth, val, OpMin)
}
