package congest

import (
	"math/bits"

	"mucongest/internal/sim"
)

// Message kinds private to the relabeling protocol.
const (
	kindClassUp int32 = iota + 16
	kindClassDown
)

// Relabeling is the result of DegreeClassRelabel at one node: the node's
// new identifier plus the global degree-class histogram, from which any
// node can locally compute ⌊log₂ deg(v)⌋ for any node v given v's new
// id — exactly the guarantee of Lemma B.5.
type Relabeling struct {
	NewID      int64
	NumClasses int
	Hist       []int64 // Hist[j] = number of nodes with degree class j
	ClassStart []int64 // ClassStart[j] = first new id of class j
}

// ClassOfNewID returns the degree class of the node holding new id,
// computable locally from the histogram.
func (r *Relabeling) ClassOfNewID(id int64) int {
	for j := r.NumClasses - 1; j >= 0; j-- {
		if id >= r.ClassStart[j] && r.Hist[j] > 0 {
			return j
		}
	}
	return 0
}

// DegreeClass returns ⌊log₂ deg⌋ (0 for degree ≤ 1).
func DegreeClass(deg int) int {
	if deg <= 1 {
		return 0
	}
	return bits.Len(uint(deg)) - 1
}

// DegreeClassRelabel implements Lemma B.5: assigns every node a new id
// in [0, n) such that ids are grouped by degree class (class j occupies
// [ClassStart[j], ClassStart[j]+Hist[j])), and broadcasts the histogram
// so that every node can compute every other node's class from its new
// id.
//
// Round complexity O(maxDepth + log n): one pipelined convergecast of
// the class histogram, one pipelined broadcast of the global histogram,
// then a doubly-pipelined offset-assignment wave in which class-j
// offsets travel down the tree while class-j subtree counts travel up
// exactly one round ahead of their use, so a node holds child counts for
// at most two classes at a time. Memory O(Δ + log n) words.
//
// All nodes must call with the same tree, maxDepth, and their own
// degree (in the graph of interest, which may differ from the
// communication degree).
func DegreeClassRelabel(c *sim.Ctx, t *Tree, maxDepth int, myDegree int) *Relabeling {
	n := c.N()
	numClasses := bits.Len(uint(n)) + 1
	myClass := DegreeClass(myDegree)

	// Step 1: subtree histograms via pipelined convergecast.
	ind := make([]int64, numClasses)
	ind[myClass] = 1
	hsub := Convergecast(c, t, maxDepth, ind, OpSum)

	// Step 2: the root broadcasts the global histogram.
	hist := BroadcastDown(c, t, maxDepth, numClasses, hsub)
	classStart := make([]int64, numClasses)
	var run int64
	for j := 0; j < numClasses; j++ {
		classStart[j] = run
		run += hist[j]
	}

	// Step 3: doubly-pipelined id assignment. A node at depth d ≥ 1
	// sends its subtree count for class j upward at round j+2d-2, and a
	// node at depth d forwards class-j offsets to its children at round
	// j+2d+1. A node at depth d therefore holds, when it forwards class
	// j at round j+2d+1: its children's counts (sent at j+2(d+1)-2 =
	// j+2d, received at the end of that round) and its own offset (sent
	// by its parent at j+2(d-1)+1 = j+2d-1, received at the end of that
	// round). Counts for at most three classes are in flight at once,
	// keeping memory at O(Δ + log n).
	d := t.Depth
	var newID int64 = -1
	pendingOff := make(map[int]int64)         // class -> my subtree's start offset
	pendingCnt := make(map[int]map[int]int64) // class -> child -> subtree count
	c.Charge(int64(2*c.Degree() + 2*numClasses + 8))
	defer c.Release(int64(2*c.Degree() + 2*numClasses + 8))
	if c.ID() == t.Root {
		for j := 0; j < numClasses; j++ {
			pendingOff[j] = classStart[j]
		}
	}
	horizon := numClasses + 2*maxDepth + 3
	for r := 0; r < horizon; r++ {
		if t.Joined() {
			if j := r - 2*d + 2; t.Parent >= 0 && j >= 0 && j < numClasses {
				c.SendID(t.Parent, sim.Msg{Kind: kindClassUp, A: int64(j), B: hsub[j]})
			}
			if j := r - 2*d - 1; j >= 0 && j < numClasses {
				off, ok := pendingOff[j]
				if !ok {
					panic("congest: relabel pipeline missed an offset")
				}
				delete(pendingOff, j)
				if myClass == j {
					newID = off
					off++
				}
				cnts := pendingCnt[j]
				delete(pendingCnt, j)
				for _, ch := range t.Children {
					c.SendID(ch, sim.Msg{Kind: kindClassDown, A: int64(j), B: off})
					off += cnts[ch]
				}
			}
		}
		in := c.Tick()
		for _, m := range in {
			switch m.Msg.Kind {
			case kindClassUp:
				j := int(m.Msg.A)
				if pendingCnt[j] == nil {
					pendingCnt[j] = make(map[int]int64, len(t.Children))
				}
				pendingCnt[j][m.From] = m.Msg.B
			case kindClassDown:
				if m.From == t.Parent {
					pendingOff[int(m.Msg.A)] = m.Msg.B
				}
			}
		}
	}
	if newID < 0 {
		panic("congest: relabel failed to assign an id")
	}
	return &Relabeling{
		NewID:      newID,
		NumClasses: numClasses,
		Hist:       hist,
		ClassStart: classStart,
	}
}
