package harness

import (
	"math/rand"
	"strings"
	"testing"

	"mucongest/internal/sim"
	"mucongest/internal/topo"
)

// corpusSeed pins the randomized corpus. Changing it re-rolls every
// scenario; the coverage assertions below keep any reroll honest.
const corpusSeed = 20260730

// corpusSize is the number of seeded scenarios the differential test
// runs; each executes on the reference engine once and on the
// production engine at workers 1 and 4.
const corpusSize = 200

// TestDifferentialEngineRandomized is the oracle gate for engine
// rewrites: 200 seeded scenarios spanning the topology registry, strict
// and lenient μ, every inbox order and multi-shard node counts, each
// cross-checked between the reference engine and the production engine
// in both execution modes (goroutine and step) at workers 1 and 4 —
// digests, PeakWords, violation records and abort identity all
// byte-identical — plus the metamorphic invariants.
//
// The coverage assertions make the corpus self-describing: if a
// generator change (or a new corpusSeed) narrows what the scenarios
// exercise, the test fails even though every comparison passed. That
// includes step-mode coverage: every behavior must have run stepped at
// least once, and every behavior must have a step-form twin at all.
func TestDifferentialEngineRandomized(t *testing.T) {
	scs := Corpus(corpusSeed, corpusSize)
	families := map[string]int{}
	orders := map[sim.InboxOrder]int{}
	strict := map[bool]int{}
	behaviors := map[string]int{}
	stepped := map[string]int{}
	reprs := map[string]int{}
	multiShard, bounded, aborted, violated, compact, faulty := 0, 0, 0, 0, 0, 0
	var crashes, restarts, faultDrops int64

	for i, sc := range scs {
		out, err := CheckScenario(sc, 1, 4)
		if err != nil {
			t.Errorf("scenario %d %v: %v", i, sc, err)
			continue
		}
		fam, _, _ := strings.Cut(sc.TopoSpec, ":")
		families[fam]++
		orders[sc.Order]++
		strict[sc.Strict]++
		behaviors[sc.Behavior]++
		if out.Stepped {
			stepped[sc.Behavior]++
		}
		if sc.N > sim.ShardSpan {
			multiShard++
		}
		if sc.Mu > 0 {
			bounded++
		}
		if sc.Compact {
			compact++
		}
		reprs[out.Repr]++
		if out.Aborted {
			aborted++
		}
		if out.Violations > 0 {
			violated++
		}
		if out.Faulty {
			faulty++
		}
		crashes += out.Crashes
		restarts += out.Restarts
		faultDrops += out.FaultDrops
	}
	if t.Failed() {
		return
	}

	t.Logf("corpus: families=%v orders=%v strict=%v behaviors=%v multiShard=%d bounded=%d aborted=%d violated=%d compact=%d reprs=%v faulty=%d crashes=%d restarts=%d faultDrops=%d",
		families, orders, strict, behaviors, multiShard, bounded, aborted, violated, compact, reprs, faulty, crashes, restarts, faultDrops)
	// Every registered family must be drawn: a family added to the topo
	// registry without a drawTopo case fails here until the generator
	// (and so the oracle) covers it.
	for _, fam := range topo.FamilyNames() {
		if families[fam] == 0 {
			t.Errorf("corpus never drew registered topology family %q", fam)
		}
	}
	// Every representation class must run: the explicit baseline, the
	// compact CSR adjacency, and the implicit arithmetic topologies —
	// each compact scenario is also cross-certified against its explicit
	// twin inside CheckScenario, so nonzero counts here mean the
	// representation equivalence was actually exercised differentially.
	for _, r := range []string{"graph", "csr", "implicit"} {
		if reprs[r] == 0 {
			t.Errorf("corpus never ran a scenario on the %q representation", r)
		}
	}
	if compact == 0 {
		t.Error("corpus never drew a compact-representation scenario")
	}
	for o := sim.OrderBySender; o <= sim.OrderReversed; o++ {
		if orders[o] == 0 {
			t.Errorf("corpus never drew inbox order %d", o)
		}
	}
	if strict[true] == 0 || strict[false] == 0 {
		t.Errorf("corpus must cover both strict and lenient μ: %v", strict)
	}
	for _, b := range behaviorNames {
		if behaviors[b] == 0 {
			t.Errorf("corpus never drew behavior %q", b)
		}
		// A behavior without a step-form twin silently shrinks the step
		// runtime's differential coverage; adding one to Behaviors alone
		// must fail here until StepBehaviors gets the twin.
		if _, ok := StepBehaviors[b]; !ok {
			t.Errorf("behavior %q has no step-form twin in StepBehaviors", b)
		}
		if stepped[b] == 0 {
			t.Errorf("behavior %q never ran in step mode", b)
		}
	}
	if multiShard == 0 {
		t.Error("corpus never drew a multi-shard topology (n > sim.ShardSpan)")
	}
	if bounded == 0 || violated == 0 || aborted == 0 {
		t.Errorf("corpus must exercise bounded μ (%d), violations (%d) and aborts (%d)",
			bounded, violated, aborted)
	}
	// The fault axis must bite, not just parse: a meaningful share of
	// faulty scenarios, and real crashes, restarts and fault-induced
	// drops somewhere in the corpus — otherwise the parity claim "the
	// engines agree under failure" is vacuous.
	if faulty == 0 {
		t.Error("corpus never drew a faulty scenario")
	}
	if crashes == 0 || restarts == 0 || faultDrops == 0 {
		t.Errorf("fault plans never bit: crashes=%d restarts=%d faultDrops=%d", crashes, restarts, faultDrops)
	}
}

// FuzzEngineDifferential feeds arbitrary generator seeds through the
// scenario generator and requires the engines to stay byte-identical.
// The seed corpus keeps a handful of scenarios in the regular `go test`
// run; `go test -fuzz FuzzEngineDifferential ./internal/harness`
// explores further.
func FuzzEngineDifferential(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1536, 99991} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		sc := Generate(rand.New(rand.NewSource(seed)))
		if _, err := CheckScenario(sc, 1, 4); err != nil {
			t.Fatalf("seed %d scenario %v: %v", seed, sc, err)
		}
	})
}
