package harness

import (
	"fmt"
	"math/rand"

	"mucongest/internal/graph"
	"mucongest/internal/sim"
	"mucongest/internal/sim/refsim"
	"mucongest/internal/topo"
)

// BuildTopology materializes the scenario's communication graph through
// the topo registry: the explicit *graph.Graph by default, or — for
// compact scenarios — the registry's compact representation
// (topo.Spec.BuildTopology: CSR adjacency or engine-native implicit
// arithmetic), which answers through the DegreeTopology /
// IndexedTopology / PortedTopology fast paths the explicit graph does
// not implement.
func BuildTopology(sc Scenario) (sim.Topology, error) {
	spec, err := topo.Parse(sc.TopoSpec)
	if err != nil {
		return nil, err
	}
	var t sim.Topology
	if sc.Compact {
		t, err = spec.BuildTopology(rand.New(rand.NewSource(sc.TopoSeed)))
	} else {
		t, err = buildExplicit(spec, sc.TopoSeed)
	}
	if err != nil {
		return nil, err
	}
	if t.N() != sc.N {
		return nil, fmt.Errorf("harness: %q built %d nodes, scenario recorded %d", sc.TopoSpec, t.N(), sc.N)
	}
	return t, nil
}

func buildExplicit(spec topo.Spec, seed int64) (*graph.Graph, error) {
	return spec.Build(rand.New(rand.NewSource(seed)))
}

// repr names the representation class of a built topology.
func repr(t sim.Topology) string {
	switch t.(type) {
	case *graph.Graph:
		return "graph"
	case *graph.CSR:
		return "csr"
	default:
		return "implicit"
	}
}

// Outcome summarizes what a checked scenario's (agreed-upon) execution
// did, for corpus coverage accounting.
type Outcome struct {
	Aborted    bool
	Violations int
	// Stepped reports that the scenario's behavior has a step-form twin
	// and the cross-check also ran it: natively stepped on the
	// production engine at every worker count, and through
	// refsim.DriveSteps on the reference engine.
	Stepped bool
	// Faulty reports a non-empty fault plan; the counters echo the
	// agreed-upon fault ledger so the corpus test can assert the plans
	// actually bit (real crashes, real restarts, real fault drops) and
	// not just parsed.
	Faulty     bool
	Crashes    int64
	Restarts   int64
	FaultDrops int64
	// Repr is the representation class the scenario actually ran on
	// ("graph", "csr" or "implicit"), for corpus coverage accounting.
	Repr string
}

// simStep adapts an engine-agnostic refsim.StepNode machine to the
// production engine's concrete StepProgram contract.
type simStep struct{ m refsim.StepNode }

func (s simStep) Step(c *sim.Ctx, in []sim.Incoming) bool { return s.m.Step(c, in) }

// CheckScenario runs sc on the reference engine and on the production
// engine — in both execution modes — at every given worker count, and
// returns a descriptive error on the first divergence: run error
// identity (down to the string), round/message/drop totals, per-node
// outputs (the behaviors emit one order-sensitive inbox fold per round,
// so this is a round-by-round digest), per-node PeakWords, and the full
// violation list. The step-form twin of the behavior is checked two
// ways against the blocking reference run: through refsim.DriveSteps on
// the reference engine (certifying the hand-written machine itself) and
// natively stepped on the production engine (certifying the
// goroutine-free step runtime). It then checks the metamorphic
// invariants the reference run's ledger implies.
func CheckScenario(sc Scenario, workers ...int) (Outcome, error) {
	g, err := BuildTopology(sc)
	if err != nil {
		return Outcome{}, err
	}
	mk, ok := Behaviors[sc.Behavior]
	if !ok {
		return Outcome{}, fmt.Errorf("harness: unknown behavior %q", sc.Behavior)
	}
	program := mk(sc)
	plan, err := sim.ParseFaults(sc.Faults)
	if err != nil {
		return Outcome{}, fmt.Errorf("harness: fault spec %q: %w", sc.Faults, err)
	}
	cfg := refsim.Config{
		Mu:      sc.Mu,
		Seed:    sc.Seed,
		EdgeCap: sc.EdgeCap,
		Order:   sc.Order,
		Strict:  sc.Strict,
		Faults:  plan,
	}

	ref := refsim.New(g, cfg)
	refRes, refErr := ref.Run(program)
	out := Outcome{
		Aborted:    refErr != nil,
		Violations: len(refRes.Violations),
		Faulty:     !plan.Empty(),
		Crashes:    refRes.Crashes,
		Restarts:   refRes.Restarts,
		FaultDrops: refRes.FaultDrops,
		Repr:       repr(g),
	}

	// Compact scenarios additionally certify the representation itself:
	// the reference engine rerun on the explicit graph (same generator
	// seed, shared draw sequence) must agree byte-for-byte with the run
	// on the compact topology — any adjacency, ordering or port skew
	// between the representations diverges here before it can masquerade
	// as an engine bug.
	if sc.Compact {
		spec, err := topo.Parse(sc.TopoSpec)
		if err != nil {
			return out, err
		}
		eg, err := buildExplicit(spec, sc.TopoSeed)
		if err != nil {
			return out, fmt.Errorf("harness: explicit twin of %q: %w", sc.TopoSpec, err)
		}
		twinRes, twinErr := refsim.New(eg, cfg).Run(program)
		if err := compareErrors(refErr, twinErr); err != nil {
			return out, fmt.Errorf("explicit-representation twin: %w", err)
		}
		if err := compareResults(refRes, twinRes); err != nil {
			return out, fmt.Errorf("explicit-representation twin: %w", err)
		}
	}

	engineOpts := func(w int) []sim.Option {
		opts := []sim.Option{
			sim.WithMu(sc.Mu), sim.WithSeed(sc.Seed), sim.WithEdgeCap(sc.EdgeCap),
			sim.WithInboxOrder(sc.Order), sim.WithSimWorkers(w), sim.WithFaults(plan),
		}
		if sc.Strict {
			opts = append(opts, sim.WithStrictMemory())
		}
		return opts
	}
	for _, w := range workers {
		res, runErr := sim.New(g, engineOpts(w)...).Run(func(c *sim.Ctx) { program(c) })
		if err := compareErrors(refErr, runErr); err != nil {
			return out, fmt.Errorf("workers=%d: %w", w, err)
		}
		if err := compareResults(refRes, res); err != nil {
			return out, fmt.Errorf("workers=%d: %w", w, err)
		}
	}

	if stepMk, ok := StepBehaviors[sc.Behavior]; ok {
		mkNode := stepMk(sc)
		// The step machine driven as a blocking program on the reference
		// engine must match the blocking original: this isolates bugs in
		// the hand-written step form from bugs in the step runtime.
		stepRefRes, stepRefErr := refsim.New(g, cfg).Run(refsim.DriveSteps(mkNode))
		if err := compareErrors(refErr, stepRefErr); err != nil {
			return out, fmt.Errorf("reference-driven step form: %w", err)
		}
		if err := compareResults(refRes, stepRefRes); err != nil {
			return out, fmt.Errorf("reference-driven step form: %w", err)
		}
		// Natively stepped on the production engine: goroutine-free.
		prog := sim.Steps(func(c *sim.Ctx) sim.StepProgram { return simStep{mkNode(c)} })
		for _, w := range workers {
			res, runErr := sim.New(g, engineOpts(w)...).RunProgram(prog)
			if err := compareErrors(refErr, runErr); err != nil {
				return out, fmt.Errorf("workers=%d step mode: %w", w, err)
			}
			if err := compareResults(refRes, res); err != nil {
				return out, fmt.Errorf("workers=%d step mode: %w", w, err)
			}
		}
		out.Stepped = true
	}
	return out, checkInvariants(sc, plan, refRes, refErr, ref.Stats())
}

func compareErrors(ref, got error) error {
	switch {
	case ref == nil && got == nil:
		return nil
	case ref == nil:
		return fmt.Errorf("engine aborted (%v) but reference completed", got)
	case got == nil:
		return fmt.Errorf("reference aborted (%v) but engine completed", ref)
	case ref.Error() != got.Error():
		return fmt.Errorf("abort identity differs:\n  reference: %v\n  engine:    %v", ref, got)
	}
	return nil
}

func compareResults(ref, got *sim.Result) error {
	if ref.Rounds != got.Rounds {
		return fmt.Errorf("rounds: reference %d, engine %d", ref.Rounds, got.Rounds)
	}
	if ref.Messages != got.Messages {
		return fmt.Errorf("messages: reference %d, engine %d", ref.Messages, got.Messages)
	}
	if ref.Dropped != got.Dropped {
		return fmt.Errorf("dropped: reference %d, engine %d", ref.Dropped, got.Dropped)
	}
	if ref.FaultDrops != got.FaultDrops {
		return fmt.Errorf("fault drops: reference %d, engine %d", ref.FaultDrops, got.FaultDrops)
	}
	if ref.Crashes != got.Crashes {
		return fmt.Errorf("crashes: reference %d, engine %d", ref.Crashes, got.Crashes)
	}
	if ref.Restarts != got.Restarts {
		return fmt.Errorf("restarts: reference %d, engine %d", ref.Restarts, got.Restarts)
	}
	if len(ref.Outputs) != len(got.Outputs) {
		return fmt.Errorf("node count: reference %d, engine %d", len(ref.Outputs), len(got.Outputs))
	}
	for v := range ref.Outputs {
		if a, b := fmt.Sprint(ref.Outputs[v]), fmt.Sprint(got.Outputs[v]); a != b {
			return fmt.Errorf("node %d outputs (round-by-round digests):\n  reference: %s\n  engine:    %s", v, a, b)
		}
		if ref.PeakWords[v] != got.PeakWords[v] {
			return fmt.Errorf("node %d peak words: reference %d, engine %d", v, ref.PeakWords[v], got.PeakWords[v])
		}
	}
	if len(ref.Violations) != len(got.Violations) {
		return fmt.Errorf("violation count: reference %d (%v), engine %d (%v)",
			len(ref.Violations), ref.Violations, len(got.Violations), got.Violations)
	}
	for i := range ref.Violations {
		if ref.Violations[i] != got.Violations[i] {
			return fmt.Errorf("violation %d: reference %+v, engine %+v", i, ref.Violations[i], got.Violations[i])
		}
	}
	return nil
}

// checkInvariants verifies the metamorphic properties the reference
// run's ledger implies — true for any correct engine regardless of the
// scenario drawn.
func checkInvariants(sc Scenario, plan sim.FaultPlan, res *sim.Result, runErr error, st *refsim.Stats) error {
	var delivered, dropped, faultDropped int64
	for r, rs := range st.PerRound {
		if rs.Sent != rs.Delivered+rs.Dropped {
			return fmt.Errorf("round %d conservation: sent %d != delivered %d + dropped %d",
				r, rs.Sent, rs.Delivered, rs.Dropped)
		}
		// Fault drops are a subset of the conserved drop ledger, never a
		// separate pool: a fault-dropped message was still sent and still
		// counts against Dropped.
		if rs.DroppedFault < 0 || rs.DroppedFault > rs.Dropped {
			return fmt.Errorf("round %d: fault drops %d outside total drops %d", r, rs.DroppedFault, rs.Dropped)
		}
		delivered += rs.Delivered
		dropped += rs.Dropped
		faultDropped += rs.DroppedFault
	}
	if delivered != res.Messages || dropped != res.Dropped {
		return fmt.Errorf("ledger totals (%d delivered, %d dropped) != result (%d, %d)",
			delivered, dropped, res.Messages, res.Dropped)
	}
	if faultDropped != res.FaultDrops {
		return fmt.Errorf("per-round fault drops sum to %d, result records %d", faultDropped, res.FaultDrops)
	}
	if plan.Empty() && (res.FaultDrops != 0 || res.Crashes != 0 || res.Restarts != 0) {
		return fmt.Errorf("fault-free run has non-zero fault ledger: drops=%d crashes=%d restarts=%d",
			res.FaultDrops, res.Crashes, res.Restarts)
	}
	if !plan.Crash && (res.Crashes != 0 || res.Restarts != 0) {
		return fmt.Errorf("plan without crashes recorded crashes=%d restarts=%d", res.Crashes, res.Restarts)
	}
	if !plan.Loss && !plan.EdgeDown && !plan.Crash && res.FaultDrops != 0 {
		return fmt.Errorf("plan drops nothing but FaultDrops=%d", res.FaultDrops)
	}
	if res.Restarts > res.Crashes {
		return fmt.Errorf("more restarts (%d) than crashes (%d)", res.Restarts, res.Crashes)
	}
	// A completed run has no parked nodes left: every crash was restarted
	// and the node finished. Only an abort may strand crashed-not-yet-
	// restarted nodes.
	if runErr == nil && res.Restarts != res.Crashes {
		return fmt.Errorf("completed run stranded %d crashed nodes (crashes=%d restarts=%d)",
			res.Crashes-res.Restarts, res.Crashes, res.Restarts)
	}
	for v, w := range st.MaxInboxWords {
		if res.PeakWords[v] < w {
			return fmt.Errorf("node %d: peak %d below largest delivered inbox %d words", v, res.PeakWords[v], w)
		}
	}
	if sc.Mu <= 0 && len(res.Violations) != 0 {
		return fmt.Errorf("unbounded run recorded violations: %v", res.Violations)
	}
	for _, vio := range res.Violations {
		if vio.Words <= sc.Mu {
			return fmt.Errorf("violation %+v does not exceed μ=%d", vio, sc.Mu)
		}
		if res.PeakWords[vio.Node] < vio.Words {
			return fmt.Errorf("violation %+v exceeds node peak %d", vio, res.PeakWords[vio.Node])
		}
		// Bound by the wall-round ledger, not res.Rounds: Rounds is the
		// max per-node tick count, and a crash/restart cycle resets a
		// node's ticks, so a faulty run's violations can legitimately be
		// stamped past it.
		wall := len(st.PerRound)
		if wall < res.Rounds {
			wall = res.Rounds
		}
		if vio.OverRounds < 1 || vio.Round < 0 || vio.Round >= wall+1 {
			return fmt.Errorf("violation %+v out of range (rounds=%d, wall=%d)", vio, res.Rounds, wall)
		}
	}
	return nil
}
