package harness

import (
	"fmt"

	"mucongest/internal/sim"
	"mucongest/internal/sim/refsim"
)

// behaviorNames lists the node-program library in generator draw order.
// Every entry keys Behaviors.
var behaviorNames = []string{
	"gossip", "broadcast", "chargeonly", "earlyfinish", "nodeerror", "strictpressure", "restartaware",
}

// Behaviors maps a behavior name to its program constructor. Programs
// are written against the shared refsim.NodeCtx contract so one closure
// runs unchanged on either engine, and each emits an order-sensitive
// fold of its inbox every round — the per-round digest the differential
// comparison keys on. Programs are deterministic given the scenario and
// the node's private RNG, and never exceed the scenario's edge cap.
var Behaviors = map[string]func(sc Scenario) func(refsim.NodeCtx){
	// gossip: per-node-RNG-driven sends with occasional double sends
	// when the edge budget allows, plus a mid-run early finish for a
	// subset of nodes (so drops occur).
	"gossip": func(sc Scenario) func(refsim.NodeCtx) {
		return func(c refsim.NodeCtx) {
			c.Charge(int64(c.ID()%3 + 1))
			for r := 0; r < sc.Rounds; r++ {
				for _, u := range c.Neighbors() {
					if c.Rand().Intn(2) == 0 {
						c.SendID(u, sim.Msg{Kind: 1, A: int64(c.ID()), B: int64(r), C: c.Rand().Int63n(1 << 20)})
						if sc.EdgeCap >= 2 && c.Rand().Intn(4) == 0 {
							c.SendID(u, sim.Msg{Kind: 2, A: int64(c.ID()), B: int64(r), C: c.Rand().Int63n(1 << 20)})
						}
					}
				}
				emitFold(c, c.Tick())
				if c.ID()%7 == 3 && r == sc.Rounds/2 {
					return
				}
			}
		}
	},

	// broadcast: every node floods every neighbor every round — the
	// heaviest inbox pressure the cap allows — while oscillating the
	// memory meter.
	"broadcast": func(sc Scenario) func(refsim.NodeCtx) {
		return func(c refsim.NodeCtx) {
			for r := 0; r < sc.Rounds; r++ {
				c.Broadcast(sim.Msg{Kind: 3, A: int64(c.ID()), B: int64(r)})
				c.Charge(int64(r%3 + 1))
				emitFold(c, c.Tick())
				c.Release(int64(r%3 + 1))
			}
		}
	},

	// chargeonly: no messages at all — μ overruns must still be
	// detected on charge-only and quiet rounds, and strict mode must
	// abort from Charge between barriers.
	"chargeonly": func(sc Scenario) func(refsim.NodeCtx) {
		return func(c refsim.NodeCtx) {
			var held int64
			for r := 0; r < sc.Rounds; r++ {
				amt := int64((c.ID()+r)%5 + 1)
				c.Charge(amt)
				held += amt
				if held > 6 {
					c.Release(held - 2)
					held = 2
				}
				c.Tick()
				c.Emit(c.Live())
			}
		}
	},

	// earlyfinish: staggered termination — node v quits after
	// v mod Rounds+1 rounds — with RNG-directed single sends, so late
	// messages chase already-finished destinations and are dropped.
	"earlyfinish": func(sc Scenario) func(refsim.NodeCtx) {
		return func(c refsim.NodeCtx) {
			quit := c.ID()%(sc.Rounds+1) + 1
			for r := 0; ; r++ {
				if deg := c.Degree(); deg > 0 {
					c.Send(c.Rand().Intn(deg), sim.Msg{Kind: 4, A: int64(c.ID()), B: int64(r)})
				}
				emitFold(c, c.Tick())
				if r+1 >= quit {
					return
				}
			}
		}
	},

	// nodeerror: the broadcast workload with one designated node
	// panicking mid-run; both engines must abort with the identical
	// wrapped error and identical partial results.
	"nodeerror": func(sc Scenario) func(refsim.NodeCtx) {
		return func(c refsim.NodeCtx) {
			for r := 0; r < sc.Rounds; r++ {
				c.Broadcast(sim.Msg{Kind: 5, A: int64(c.ID()), B: int64(r)})
				emitFold(c, c.Tick())
				if c.ID() == sc.FailNode && r == sc.FailRound {
					panic(fmt.Sprintf("harness: node %d injected failure at round %d", c.ID(), r))
				}
			}
		}
	},

	// restartaware: every execution leads with its Restarts() count and
	// stamps it into each broadcast, so a crash/restart cycle changes
	// both the output record and the message contents — any drift in
	// restart accounting or in the state-reset semantics between the
	// engines (or between execution modes) lands in the digests.
	"restartaware": func(sc Scenario) func(refsim.NodeCtx) {
		return func(c refsim.NodeCtx) {
			c.Emit(int64(c.Restarts()))
			for r := 0; r < sc.Rounds; r++ {
				c.Broadcast(sim.Msg{Kind: 7, A: int64(c.ID()), B: int64(r), C: int64(c.Restarts())})
				emitFold(c, c.Tick())
			}
		}
	},

	// strictpressure: a monotone charge ramp under broadcast load,
	// driving every bounded run over μ sooner or later — in strict mode
	// through either the Charge fast path or barrier accounting,
	// whichever the scenario's μ hits first.
	"strictpressure": func(sc Scenario) func(refsim.NodeCtx) {
		return func(c refsim.NodeCtx) {
			for r := 0; r < sc.Rounds; r++ {
				c.Charge(int64(c.ID()%2 + 1))
				c.Broadcast(sim.Msg{Kind: 6, A: int64(c.ID()), B: int64(r)})
				emitFold(c, c.Tick())
			}
		}
	},
}

// emitFold emits the order-sensitive fold of one round's inbox: any
// difference in delivery content or presentation order — across
// engines, worker counts or reruns — lands in Outputs and fails the
// digest comparison for exactly the round it happened in.
func emitFold(c refsim.NodeCtx, in []sim.Incoming) {
	var h int64
	for i, m := range in {
		h = h*1_000_003 + int64(m.From+1)*31 + int64(m.Msg.Kind) + m.Msg.A + m.Msg.B + m.Msg.C + int64(i+1)
	}
	c.Emit(h)
}
