// Package harness is the randomized differential-verification layer on
// top of internal/sim/refsim: it generates seeded, reproducible
// scenarios across every axis the μ-CONGEST engine exposes — topology
// family (drawn from the internal/topo registry), node count (including
// multi-shard sizes), memory bound μ, strict vs lenient enforcement,
// inbox order, edge capacity, seeded fault plans (message loss, node
// crash/restart, edge churn — see sim.FaultPlan), and a library of node
// behaviors (broadcast-heavy, charge-only, early-finish, mid-run node
// error, RNG-driven gossip, strict-μ pressure, restart-aware) — and
// runs each scenario on the
// reference engine and on the production engine at several worker
// counts, requiring byte-identical results: digests over outputs (the
// behaviors emit an order-sensitive fold per round, so the comparison is
// effectively round-by-round), PeakWords, violation records, message
// and drop totals, and abort identity down to the error string.
//
// On top of the exact comparison the harness checks metamorphic
// invariants that hold for any correct engine: per-round message
// conservation (sent = delivered + dropped), digest invariance across
// worker counts, and peak monotonicity in delivered words
// (PeakWords[v] ≥ the largest inbox ever handed to v).
//
// TestDifferentialEngineRandomized runs a fixed seed corpus (~200
// scenarios); FuzzEngineDifferential explores further seeds under `go
// test -fuzz`. Any future engine rewrite must keep both green.
package harness

import (
	"fmt"
	"math/rand"

	"mucongest/internal/sim"
)

// Scenario is one reproducible differential test case. All fields are
// derived deterministically from generator randomness, so a scenario
// is fully described by the seed that produced it.
type Scenario struct {
	// Seed is the engine seed used by both engines (never 0, so the
	// refsim Config default does not kick in).
	Seed int64
	// TopoSpec is the canonical topo-registry spec of the communication
	// graph; TopoSeed seeds its generator randomness.
	TopoSpec string
	TopoSeed int64
	// N is the node count of the built topology (recorded so behaviors
	// can pick valid node ids without building the graph).
	N int
	// Mu is the memory bound in words (0 = unbounded); Strict selects
	// abort-on-violation.
	Mu     int64
	Strict bool
	Order  sim.InboxOrder
	// EdgeCap is the per-edge per-round message budget (≥ 1).
	EdgeCap int
	// Compact selects the registry's compact representation
	// (topo.Spec.BuildTopology: CSR adjacency for generated families,
	// engine-native implicit arithmetic for grid/torus/hypercube/
	// complete) instead of the explicit *graph.Graph. Compact and
	// explicit builds share generator draw sequences, so the two
	// representations are edge-for-edge identical — CheckScenario
	// certifies that differentially by running the reference engine on
	// both and requiring byte-identical results, while the production
	// engine runs exercise the DegreeTopology / IndexedTopology /
	// PortedTopology fast paths the explicit graph does not implement.
	Compact bool
	// Behavior names the node program (see behaviors.go); Rounds is its
	// horizon. FailNode/FailRound parameterize the node-error behavior
	// (FailNode < 0 for the others).
	Behavior  string
	Rounds    int
	FailNode  int
	FailRound int
	// Faults is the sim.FaultPlan spec both engines run under ("" for a
	// fault-free scenario). Kept as the canonical spec string so the
	// scenario stays printable and the spec parser sits on the oracle
	// path too.
	Faults string
}

func (s Scenario) String() string {
	return fmt.Sprintf("{%s on %q n=%d compact=%v seed=%d toposeed=%d mu=%d strict=%v order=%d cap=%d rounds=%d fail=%d@%d faults=%q}",
		s.Behavior, s.TopoSpec, s.N, s.Compact, s.Seed, s.TopoSeed, s.Mu, s.Strict, s.Order, s.EdgeCap,
		s.Rounds, s.FailNode, s.FailRound, s.Faults)
}

// Generate draws one scenario from rng. Every draw is valid by
// construction: topology parameters are clamped to their families'
// constraints and behavior parameters to the topology size, so the
// fuzz target can feed arbitrary seeds straight through.
func Generate(rng *rand.Rand) Scenario {
	spec, n, compact := drawTopo(rng)
	// Beyond the complete-family draw, a third of scenarios run the
	// production engine on the compact representation of whatever family
	// was drawn (CSR or implicit), certified against the explicit graph
	// by an extra reference run inside CheckScenario.
	if !compact {
		compact = rng.Intn(3) == 0
	}
	sc := Scenario{
		Seed:      1 + rng.Int63n(1<<62),
		TopoSpec:  spec,
		TopoSeed:  1 + rng.Int63n(1<<62),
		N:         n,
		Compact:   compact,
		Order:     sim.InboxOrder(rng.Intn(3)),
		EdgeCap:   1 + rng.Intn(2),
		Rounds:    3 + rng.Intn(8),
		FailNode:  -1,
		FailRound: 0,
	}
	// μ: unbounded a quarter of the time, otherwise tight (1..12 words)
	// so violations actually occur; strict is drawn independently —
	// strict with μ=0 pins that strict mode without a bound is a no-op.
	if rng.Intn(4) != 0 {
		sc.Mu = 1 + rng.Int63n(12)
	}
	sc.Strict = rng.Intn(2) == 0
	sc.Behavior = behaviorNames[rng.Intn(len(behaviorNames))]
	if sc.Behavior == "nodeerror" {
		sc.FailNode = rng.Intn(n)
		sc.FailRound = rng.Intn(sc.Rounds)
	}
	// Faults: ~40% of scenarios run under a fault plan, so the oracle
	// certifies engine/refsim parity under failure as a matter of course
	// rather than in a dedicated suite.
	if rng.Intn(5) < 2 {
		sc.Faults = drawFaults(rng, n)
	}
	return sc
}

// drawFaults composes a non-empty fault plan: each non-empty subset of
// {loss, crash, edgedown} is drawn uniformly, with rates high enough to
// bite within the short scenario horizons. The crash rate is scaled down
// an order of magnitude on multi-shard topologies — the run only ends
// once every node has finished an uninterrupted execution, and at large
// n an aggressive crash rate makes that horizon excessively long.
func drawFaults(rng *rand.Rand, n int) string {
	var p sim.FaultPlan
	mask := 1 + rng.Intn(7)
	if mask&1 != 0 {
		p.Loss, p.LossP = true, 0.05+0.45*rng.Float64()
	}
	if mask&2 != 0 {
		p.Crash = true
		p.CrashP = 0.02 + 0.28*rng.Float64()
		if n > sim.ShardSpan {
			p.CrashP /= 10
		}
		p.Restart = 1 + rng.Intn(4)
	}
	if mask&4 != 0 {
		p.EdgeDown, p.EdgeDownP, p.Up = true, 0.05+0.35*rng.Float64(), 1+rng.Intn(3)
	}
	return p.String()
}

// Corpus derives k scenarios from one master seed.
func Corpus(masterSeed int64, k int) []Scenario {
	rng := rand.New(rand.NewSource(masterSeed))
	out := make([]Scenario, k)
	for i := range out {
		out[i] = Generate(rng)
	}
	return out
}

// drawTopo picks a topology family and size, covering every family the
// topo registry declares (the corpus test asserts this against
// topo.FamilyNames(), so a newly registered family fails the corpus
// until it is drawn here). Most scenarios stay small (the differential
// comparison is O(n · rounds) three times over); one in eight spans
// multiple delivery shards (n > sim.ShardSpan) on a cheap family,
// exercising the per-shard RNG stream derivation; complete forces the
// compact draw half the time so the implicit all-to-all fast paths
// stay covered regardless of the general compact rate in Generate.
func drawTopo(rng *rand.Rand) (spec string, n int, compact bool) {
	if rng.Intn(8) == 0 {
		n = sim.ShardSpan + 1 + rng.Intn(700)
		switch rng.Intn(4) {
		case 0:
			return fmt.Sprintf("cycle:n=%d", n), n, false
		case 1:
			return fmt.Sprintf("path:n=%d", n), n, false
		case 2:
			return fmt.Sprintf("star:n=%d", n), n, false
		default:
			return fmt.Sprintf("powerlaw:n=%d,attach=%d", n, 1+rng.Intn(4)), n, false
		}
	}
	switch rng.Intn(13) {
	case 0:
		n = 3 + rng.Intn(60)
		return fmt.Sprintf("cycle:n=%d", n), n, false
	case 1:
		n = 2 + rng.Intn(60)
		return fmt.Sprintf("path:n=%d", n), n, false
	case 2:
		n = 2 + rng.Intn(60)
		return fmt.Sprintf("star:n=%d", n), n, false
	case 3:
		r, c := 2+rng.Intn(7), 2+rng.Intn(7)
		return fmt.Sprintf("grid:rows=%d,cols=%d", r, c), r * c, false
	case 4:
		r, c := 3+rng.Intn(5), 3+rng.Intn(5)
		return fmt.Sprintf("torus:rows=%d,cols=%d", r, c), r * c, false
	case 5:
		d := 2 + rng.Intn(5)
		return fmt.Sprintf("hypercube:dim=%d", d), 1 << d, false
	case 6:
		n = 4 + rng.Intn(44)
		p := 0.2 + 0.5*rng.Float64()
		return fmt.Sprintf("gnp:n=%d,p=%.3f,conn=1", n, p), n, false
	case 7:
		n = 6 + rng.Intn(50)
		attach := 1 + rng.Intn(4)
		return fmt.Sprintf("powerlaw:n=%d,attach=%d", n, attach), n, false
	case 8:
		k, size := 3+rng.Intn(4), 2+rng.Intn(5)
		return fmt.Sprintf("cycliques:k=%d,size=%d", k, size), k * size, false
	case 9:
		size := 2 + rng.Intn(22)
		p := 0.3 + 0.5*rng.Float64()
		return fmt.Sprintf("barbell:size=%d,p=%.3f", size, p), 2 * size, false
	case 10:
		n = 4 + rng.Intn(44)
		p := 0.2 + 0.5*rng.Float64()
		return fmt.Sprintf("hub:n=%d,p=%.3f", n, p), n, false
	case 11:
		n = 2 + rng.Intn(60)
		return fmt.Sprintf("complete:n=%d", n), n, rng.Intn(2) == 0
	default:
		n = 6 + rng.Intn(40)
		d := 2 + rng.Intn(3)
		if n*d%2 != 0 {
			n++
		}
		return fmt.Sprintf("regular:n=%d,d=%d", n, d), n, false
	}
}
