package harness

import (
	"fmt"

	"mucongest/internal/sim"
	"mucongest/internal/sim/refsim"
)

// StepBehaviors maps every behavior of Behaviors to its step-form twin:
// a per-node refsim.StepNode factory whose call k executes exactly the
// code the blocking closure runs between its (k-1)-th and k-th Tick —
// same RNG draw order, same sends and charges, same emits, same panic
// sites, same tick counts. The differential harness runs each twin
// three ways (natively stepped on the production engine, through
// refsim.DriveSteps on the reference engine, and against the blocking
// original) and requires byte-identical ledgers, so a drift between a
// behavior and its step form cannot land silently.
//
// Each machine follows one shape: step k > 0 first runs the blocking
// loop's post-Tick code for iteration k-1 (inbox fold, early-exit
// checks, releases), then — unless the program ended — the pre-Tick
// code for iteration k (charges, sends). The r field counts completed
// rounds, so it equals the node's tick count at every step boundary.
var StepBehaviors = map[string]func(sc Scenario) func(refsim.NodeCtx) refsim.StepNode{
	"gossip": func(sc Scenario) func(refsim.NodeCtx) refsim.StepNode {
		return func(refsim.NodeCtx) refsim.StepNode { return &gossipStep{sc: sc} }
	},
	"broadcast": func(sc Scenario) func(refsim.NodeCtx) refsim.StepNode {
		return func(refsim.NodeCtx) refsim.StepNode { return &broadcastStep{sc: sc} }
	},
	"chargeonly": func(sc Scenario) func(refsim.NodeCtx) refsim.StepNode {
		return func(refsim.NodeCtx) refsim.StepNode { return &chargeOnlyStep{sc: sc} }
	},
	"earlyfinish": func(sc Scenario) func(refsim.NodeCtx) refsim.StepNode {
		return func(refsim.NodeCtx) refsim.StepNode { return &earlyFinishStep{sc: sc} }
	},
	"nodeerror": func(sc Scenario) func(refsim.NodeCtx) refsim.StepNode {
		return func(refsim.NodeCtx) refsim.StepNode { return &nodeErrorStep{sc: sc} }
	},
	"strictpressure": func(sc Scenario) func(refsim.NodeCtx) refsim.StepNode {
		return func(refsim.NodeCtx) refsim.StepNode { return &strictPressureStep{sc: sc} }
	},
	"restartaware": func(sc Scenario) func(refsim.NodeCtx) refsim.StepNode {
		return func(refsim.NodeCtx) refsim.StepNode { return &restartAwareStep{sc: sc} }
	},
}

type gossipStep struct {
	sc Scenario
	r  int
}

func (s *gossipStep) Step(c refsim.NodeCtx, in []sim.Incoming) bool {
	if s.r > 0 {
		emitFold(c, in)
		if c.ID()%7 == 3 && s.r-1 == s.sc.Rounds/2 {
			return false
		}
	} else {
		c.Charge(int64(c.ID()%3 + 1))
	}
	if s.r >= s.sc.Rounds {
		return false
	}
	for _, u := range c.Neighbors() {
		if c.Rand().Intn(2) == 0 {
			c.SendID(u, sim.Msg{Kind: 1, A: int64(c.ID()), B: int64(s.r), C: c.Rand().Int63n(1 << 20)})
			if s.sc.EdgeCap >= 2 && c.Rand().Intn(4) == 0 {
				c.SendID(u, sim.Msg{Kind: 2, A: int64(c.ID()), B: int64(s.r), C: c.Rand().Int63n(1 << 20)})
			}
		}
	}
	s.r++
	return true
}

type broadcastStep struct {
	sc Scenario
	r  int
}

func (s *broadcastStep) Step(c refsim.NodeCtx, in []sim.Incoming) bool {
	if s.r > 0 {
		emitFold(c, in)
		c.Release(int64((s.r-1)%3 + 1))
	}
	if s.r >= s.sc.Rounds {
		return false
	}
	c.Broadcast(sim.Msg{Kind: 3, A: int64(c.ID()), B: int64(s.r)})
	c.Charge(int64(s.r%3 + 1))
	s.r++
	return true
}

type chargeOnlyStep struct {
	sc   Scenario
	r    int
	held int64
}

func (s *chargeOnlyStep) Step(c refsim.NodeCtx, in []sim.Incoming) bool {
	if s.r > 0 {
		c.Emit(c.Live())
	}
	if s.r >= s.sc.Rounds {
		return false
	}
	amt := int64((c.ID()+s.r)%5 + 1)
	c.Charge(amt)
	s.held += amt
	if s.held > 6 {
		c.Release(s.held - 2)
		s.held = 2
	}
	s.r++
	return true
}

type earlyFinishStep struct {
	sc Scenario
	r  int
}

func (s *earlyFinishStep) Step(c refsim.NodeCtx, in []sim.Incoming) bool {
	if s.r > 0 {
		emitFold(c, in)
		if s.r >= c.ID()%(s.sc.Rounds+1)+1 {
			return false
		}
	}
	if deg := c.Degree(); deg > 0 {
		c.Send(c.Rand().Intn(deg), sim.Msg{Kind: 4, A: int64(c.ID()), B: int64(s.r)})
	}
	s.r++
	return true
}

type nodeErrorStep struct {
	sc Scenario
	r  int
}

func (s *nodeErrorStep) Step(c refsim.NodeCtx, in []sim.Incoming) bool {
	if s.r > 0 {
		emitFold(c, in)
		if c.ID() == s.sc.FailNode && s.r-1 == s.sc.FailRound {
			panic(fmt.Sprintf("harness: node %d injected failure at round %d", c.ID(), s.r-1))
		}
	}
	if s.r >= s.sc.Rounds {
		return false
	}
	c.Broadcast(sim.Msg{Kind: 5, A: int64(c.ID()), B: int64(s.r)})
	s.r++
	return true
}

// restartAwareStep relies on the restart semantics of the step runtime
// for its reset: a restarted node gets a fresh machine from the factory,
// so the execution-start emit fires again with the bumped Restarts().
type restartAwareStep struct {
	sc      Scenario
	r       int
	started bool
}

func (s *restartAwareStep) Step(c refsim.NodeCtx, in []sim.Incoming) bool {
	if !s.started {
		c.Emit(int64(c.Restarts()))
		s.started = true
	}
	if s.r > 0 {
		emitFold(c, in)
	}
	if s.r >= s.sc.Rounds {
		return false
	}
	c.Broadcast(sim.Msg{Kind: 7, A: int64(c.ID()), B: int64(s.r), C: int64(c.Restarts())})
	s.r++
	return true
}

type strictPressureStep struct {
	sc Scenario
	r  int
}

func (s *strictPressureStep) Step(c refsim.NodeCtx, in []sim.Incoming) bool {
	if s.r > 0 {
		emitFold(c, in)
	}
	if s.r >= s.sc.Rounds {
		return false
	}
	c.Charge(int64(c.ID()%2 + 1))
	c.Broadcast(sim.Msg{Kind: 6, A: int64(c.ID()), B: int64(s.r)})
	s.r++
	return true
}
