package expander

import (
	"math/rand"
	"testing"

	"mucongest/internal/graph"
	"mucongest/internal/sim"
)

func TestMPXClustersValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.GnpConnected(60, 0.15, rng)
	clusters, res, err := RunMPX(g, func(int) bool { return true }, 0.4, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every node clustered; every cluster center is in its own cluster.
	for v, cl := range clusters {
		if cl < 0 {
			t.Fatalf("node %d unclustered", v)
		}
		if clusters[cl] != cl {
			t.Fatalf("center %d of node %d not in own cluster", cl, v)
		}
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds")
	}
	// Cut fraction should be bounded away from 1 (β-ish in expectation).
	cut := 0
	for _, e := range g.Edges() {
		if clusters[e.U] != clusters[e.V] {
			cut++
		}
	}
	if float64(cut) > 0.85*float64(g.M()) {
		t.Fatalf("MPX cut %d of %d edges", cut, g.M())
	}
}

func TestMPXInactiveNodes(t *testing.T) {
	g := graph.Cycle(12)
	clusters, _, err := RunMPX(g, func(v int) bool { return v%2 == 0 }, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v, cl := range clusters {
		if v%2 == 1 && cl != -1 {
			t.Fatalf("inactive node %d got cluster %d", v, cl)
		}
		// Even nodes on a cycle with odd nodes inactive are isolated in
		// the active subgraph: singleton clusters.
		if v%2 == 0 && cl != v {
			t.Fatalf("isolated active node %d joined %d", v, cl)
		}
	}
}

func TestMixingTimeOrdersGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	exp := graph.RandomRegular(40, 8, rng)
	barbell := graph.BarbellExpanders(20, 0.6, rng)
	te := MixingTime(exp, 100000)
	tb := MixingTime(barbell, 100000)
	if te >= tb {
		t.Fatalf("expander τmix %d should beat barbell %d", te, tb)
	}
}

func TestConductance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	barbell := graph.BarbellExpanders(15, 0.6, rng)
	phi := Conductance(barbell, func(v int) bool { return v < 15 })
	if phi > 0.05 {
		t.Fatalf("barbell half-cut conductance %f too high", phi)
	}
	clique := graph.Gnp(20, 1.0, rng)
	phiK := Conductance(clique, func(v int) bool { return v < 10 })
	if phiK < 0.4 {
		t.Fatalf("clique half-cut conductance %f too low", phiK)
	}
}

func TestRouterDeliversAndCharges(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.GnpConnected(20, 0.4, rng)
	for _, alpha := range []int{1, 3} {
		r := NewRouter(g, alpha)
		e := sim.New(g)
		res, err := e.Run(func(c *sim.Ctx) {
			out := []Packet{{Dst: (c.ID() + 1) % g.N(), A: int64(c.ID())}}
			in := r.Route(c, out)
			if len(in) != 1 || int(in[0].A) != (c.ID()+g.N()-1)%g.N() {
				c.Emit("bad")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			if len(res.Outputs[v]) != 0 {
				t.Fatalf("α=%d: delivery failed at %d", alpha, v)
			}
		}
		if res.Rounds < 3 {
			t.Fatalf("α=%d: no routing charge", alpha)
		}
	}
}

func TestRouterAlphaTradeoffCharges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.GnpConnected(24, 0.4, rng)
	rounds := map[int]int{}
	words := map[int]int64{}
	for _, alpha := range []int{1, 4} {
		r := NewRouter(g, alpha)
		e := sim.New(g)
		res, err := e.Run(func(c *sim.Ctx) {
			var out []Packet
			for i := 0; i < 3*c.Degree(); i++ {
				out = append(out, Packet{Dst: (c.ID() + i) % g.N(), A: int64(i)})
			}
			r.Route(c, out)
		})
		if err != nil {
			t.Fatal(err)
		}
		rounds[alpha] = res.Rounds
		words[alpha] = res.MaxPeakWords()
	}
	// Lemma A.2: α trades rounds (×α²) for space (÷α).
	if rounds[4] <= rounds[1] {
		t.Fatalf("α=4 rounds %d should exceed α=1 rounds %d", rounds[4], rounds[1])
	}
	if words[4] >= words[1] {
		t.Fatalf("α=4 peak %d should undercut α=1 peak %d", words[4], words[1])
	}
}

func TestEmbeddingWordsFormula(t *testing.T) {
	g := graph.Star(17)
	r := NewRouter(g, 4)
	hub := r.EmbeddingWords(0)
	leaf := r.EmbeddingWords(1)
	if hub <= leaf {
		t.Fatal("hub embedding must exceed leaf's")
	}
	r1 := NewRouter(g, 1)
	if r1.EmbeddingWords(0) <= hub {
		t.Fatal("α must shrink the embedding")
	}
}

// TestMixingTimeDegenerateGraphs pins the walk on the smallest inputs:
// a single node mixes instantly, and the 2-node path — the smallest
// graph with an actual walk — must converge in a handful of lazy steps
// without dividing by zero or overrunning maxT.
func TestMixingTimeDegenerateGraphs(t *testing.T) {
	if got := MixingTime(graph.New(1), 100); got != 0 {
		t.Fatalf("single node τmix = %d, want 0", got)
	}
	two := graph.Path(2)
	got := MixingTime(two, 100)
	if got < 1 || got > 16 {
		t.Fatalf("2-node path τmix = %d, want a small positive count", got)
	}
	// The lazy walk is aperiodic even on bipartite graphs: the bound
	// must hold with room to spare on a 2-cycle-like instance.
	if capped := MixingTime(two, got); capped != got {
		t.Fatalf("τmix changed under exact cap: %d vs %d", capped, got)
	}
}

// TestConductanceTwoNodes pins the 2-node cut: the single bridge edge
// against volume 1 on each side gives Φ = 1, and the empty/full splits
// give 0.
func TestConductanceTwoNodes(t *testing.T) {
	two := graph.Path(2)
	if phi := Conductance(two, func(v int) bool { return v == 0 }); phi != 1 {
		t.Fatalf("2-node half-cut Φ = %v, want 1", phi)
	}
	if phi := Conductance(two, func(v int) bool { return false }); phi != 0 {
		t.Fatalf("empty-set Φ = %v, want 0", phi)
	}
	if phi := Conductance(two, func(v int) bool { return true }); phi != 0 {
		t.Fatalf("full-set Φ = %v, want 0", phi)
	}
}

// TestMPXTwoNodes runs the clustering protocol on the smallest
// connected graph: both nodes must land in one cluster centered at one
// of them (singleton clusters would leave the bridge cut, which MPX
// only does with probability β per endpoint).
func TestMPXTwoNodes(t *testing.T) {
	g := graph.Path(2)
	clusters, res, err := RunMPX(g, func(int) bool { return true }, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds")
	}
	for v, cl := range clusters {
		if cl < 0 {
			t.Fatalf("node %d unclustered", v)
		}
		if clusters[cl] != cl {
			t.Fatalf("center %d of node %d not in own cluster", cl, v)
		}
	}
}
