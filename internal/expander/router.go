package expander

import (
	"math"
	"sort"
	"sync"

	"mucongest/internal/graph"
	"mucongest/internal/sim"
)

// Packet is one routed message within a cluster.
type Packet struct {
	Dst     int
	A, B, C int64
}

// Router realizes expander routing with the Lemma A.2 round–space
// tradeoff. The real algorithm decides who sends what to whom (the
// loads); the router converts the realized loads into the round charge
// the lemma guarantees,
//
//	T = ⌈L⌉ · α² · c·log²n,   L = max_v (sent_v + received_v)/deg(v),
//
// and delivers the messages. Per Lemma A.2 the corresponding space is
// ⌈deg(v)/α⌉·2^O(√log n); the router charges ⌈deg(v)/α⌉·⌈log₂ n⌉ words
// for the embedding plus the caller-visible message buffers. As with
// clique.OracleRouter, computing the schedule centrally (rather than
// re-implementing the Ghaffari–Kuhn–Su hierarchy) is a documented
// substitution: the lemma proves a schedule of this length exists, and
// the loads that drive the charge come from the genuine algorithm.
type Router struct {
	g     *graph.Graph
	alpha int
	clog  int

	mu       sync.Mutex
	deposits [][]Packet
	received [][]Packet
	rounds   int
}

// NewRouter builds a router over g with tradeoff parameter α ≥ 1.
func NewRouter(g *graph.Graph, alpha int) *Router {
	if alpha < 1 {
		alpha = 1
	}
	n := g.N()
	clog := int(math.Ceil(math.Log2(float64(n + 2))))
	return &Router{
		g:        g,
		alpha:    alpha,
		clog:     clog,
		deposits: make([][]Packet, n),
		received: make([][]Packet, n),
	}
}

// EmbeddingWords returns the per-node space charge of the α-sampled
// embedding, ⌈deg(v)/α⌉·⌈log₂ n⌉ (Lemma A.2).
func (r *Router) EmbeddingWords(v int) int64 {
	d := r.g.Degree(v)
	return int64((d+r.alpha-1)/r.alpha) * int64(r.clog)
}

// Route delivers every node's packets, charging the Lemma A.2 rounds
// for the realized load plus the embedding space. SPMD: all nodes must
// call it together.
func (r *Router) Route(c *sim.Ctx, out []Packet) []Packet {
	r.mu.Lock()
	r.deposits[c.ID()] = out
	r.mu.Unlock()
	c.Tick()
	if c.ID() == 0 {
		r.schedule()
	}
	c.Tick()
	emb := r.EmbeddingWords(c.ID())
	c.Charge(emb)
	c.Idle(r.rounds)
	c.Release(emb)
	return r.received[c.ID()]
}

func (r *Router) schedule() {
	n := r.g.N()
	sent := make([]int, n)
	recv := make([]int, n)
	for v := range r.received {
		r.received[v] = nil
	}
	type tagged struct {
		src int
		p   Packet
	}
	byDst := make([][]tagged, n)
	for src, d := range r.deposits {
		sent[src] = len(d)
		for _, p := range d {
			recv[p.Dst]++
			byDst[p.Dst] = append(byDst[p.Dst], tagged{src, p})
		}
		r.deposits[src] = nil
	}
	load := 0.0
	for v := 0; v < n; v++ {
		deg := r.g.Degree(v)
		if deg == 0 {
			continue
		}
		l := float64(sent[v]+recv[v]) / float64(deg)
		if l > load {
			load = l
		}
	}
	for v := range byDst {
		sort.Slice(byDst[v], func(i, j int) bool {
			a, b := byDst[v][i], byDst[v][j]
			if a.src != b.src {
				return a.src < b.src
			}
			if a.p.A != b.p.A {
				return a.p.A < b.p.A
			}
			return a.p.B < b.p.B
		})
		for _, tg := range byDst[v] {
			r.received[v] = append(r.received[v], tg.p)
		}
	}
	if load == 0 {
		r.rounds = 0
		return
	}
	r.rounds = int(math.Ceil(load)) * r.alpha * r.alpha * r.clog * r.clog
}
