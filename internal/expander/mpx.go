// Package expander provides the decomposition-and-routing substrate of
// Appendix A: a distributed Miller–Peng–Xu low-diameter decomposition
// (the clustering primitive the paper's expander-decomposition
// algorithms build on, §A.3.1 — noted there to run in O(1)–O(log n)
// memory per node), lazy-random-walk utilities with mixing-time
// estimation, and an expander router that realizes the Lemma A.2
// round–space tradeoff: loads are produced by the real algorithm and
// converted to a round charge of L·α²·polylog(n), with per-node space
// ⌈deg(v)/α⌉·polylog(n).
package expander

import (
	"math"

	"mucongest/internal/congest"
	"mucongest/internal/sim"
)

const kindClaim int32 = congest.KindUser + 64

// MPXProgram runs the Miller–Peng–Xu random-shift clustering on the
// subgraph induced by active nodes: every active node draws an
// Exponential(β) shift; a node joins the cluster of the center
// maximizing shift − dist, realized as a BFS race with delayed starts.
// Inactive nodes emit nothing and relay nothing. Each node emits its
// cluster center id (int). Inter-cluster edges are an O(β) fraction in
// expectation and cluster diameters are O(log n / β) w.h.p. Memory:
// O(1) words per node, as the paper observes for MPX.
func MPXProgram(active func(v int) bool, beta float64, horizon int) func(*sim.Ctx) {
	return func(c *sim.Ctx) {
		if !active(c.ID()) {
			c.Idle(horizon)
			c.Emit(-1)
			return
		}
		c.Charge(4)
		defer c.Release(4)
		shift := int(c.Rand().ExpFloat64() / beta)
		if shift > horizon-1 {
			shift = horizon - 1
		}
		start := horizon - 1 - shift // larger shift starts earlier
		cluster := -1
		joinedAt := -1
		for r := 0; r < horizon; r++ {
			if cluster < 0 && r == start {
				cluster = c.ID() // found own cluster
				joinedAt = r
			}
			if cluster >= 0 && r == joinedAt {
				c.Broadcast(sim.Msg{Kind: kindClaim, A: int64(cluster)})
			}
			for _, m := range c.Tick() {
				if m.Msg.Kind == kindClaim && cluster < 0 {
					cl := int(m.Msg.A)
					if cluster < 0 || cl < cluster {
						cluster = cl
					}
					joinedAt = r + 1
				}
			}
		}
		if cluster < 0 {
			cluster = c.ID()
		}
		c.Emit(cluster)
	}
}

// RunMPX executes the decomposition and returns the cluster center of
// every node (-1 for inactive nodes).
func RunMPX(topo sim.Topology, active func(v int) bool, beta float64, seed int64) ([]int, *sim.Result, error) {
	n := topo.N()
	horizon := int(8*math.Log(float64(n)+2)/beta) + 4
	e := sim.New(topo, sim.WithSeed(seed))
	res, err := e.Run(MPXProgram(active, beta, horizon))
	if err != nil {
		return nil, res, err
	}
	out := make([]int, n)
	for v := 0; v < n; v++ {
		out[v] = res.Outputs[v][0].(int)
	}
	return out, res, nil
}
