package expander

import (
	"math"

	"mucongest/internal/graph"
)

// MixingTime estimates τ_mix of g under the lazy random walk (stay with
// probability 1/2): the first step count t at which the walk
// distribution from the worst-case start is within 1/n of stationarity
// in the relative metric of Appendix A. Power iteration; intended for
// workload validation and tests (O(t·m) per start, sampled starts).
func MixingTime(g *graph.Graph, maxT int) int {
	n := g.N()
	if n <= 1 {
		return 0
	}
	var vol float64
	for v := 0; v < n; v++ {
		vol += float64(g.Degree(v))
	}
	starts := []int{0, n / 2, n - 1}
	worst := 0
	for _, s := range starts {
		p := make([]float64, n)
		q := make([]float64, n)
		p[s] = 1
		t := 0
		for ; t < maxT; t++ {
			ok := true
			for u := 0; u < n; u++ {
				pi := float64(g.Degree(u)) / vol
				if math.Abs(p[u]-pi) > pi/float64(n) {
					ok = false
					break
				}
			}
			if ok {
				break
			}
			for u := range q {
				q[u] = p[u] / 2
			}
			for v := 0; v < n; v++ {
				if p[v] == 0 {
					continue
				}
				share := p[v] / 2 / float64(g.Degree(v))
				for _, u := range g.Neighbors(v) {
					q[u] += share
				}
			}
			p, q = q, p
			for u := range q {
				q[u] = 0
			}
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

// Conductance returns Φ(S) for a node set S of g: cut(S, V∖S) divided
// by min(vol(S), vol(V∖S)).
func Conductance(g *graph.Graph, inS func(v int) bool) float64 {
	cut, volS, volT := 0, 0, 0
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		if inS(v) {
			volS += d
		} else {
			volT += d
		}
		for _, u := range g.Neighbors(v) {
			if v < u && inS(v) != inS(u) {
				cut++
			}
		}
	}
	m := volS
	if volT < m {
		m = volT
	}
	if m == 0 {
		return 0
	}
	return float64(cut) / float64(m)
}
