package cover

import (
	"testing"
	"testing/quick"
)

// covers reports whether some set in cov contains every element of want.
func covers(cov [][]int, want []int) bool {
	for _, s := range cov {
		in := make(map[int]bool, len(s))
		for _, e := range s {
			in[e] = true
		}
		ok := true
		for _, e := range want {
			if !in[e] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestCoverAllTriples(t *testing.T) {
	a, b, c := 12, 6, 3
	cov := New(a, b, c)
	for x := 0; x < a; x++ {
		for y := x; y < a; y++ {
			for z := y; z < a; z++ {
				if !covers(cov, []int{x, y, z}) {
					t.Fatalf("triple {%d,%d,%d} uncovered", x, y, z)
				}
			}
		}
	}
}

func TestCoverSetSizes(t *testing.T) {
	a, b, c := 30, 9, 3
	cov := New(a, b, c)
	for i, s := range cov {
		if len(s) > b+c {
			t.Fatalf("set %d has %d elements > b+c=%d", i, len(s), b+c)
		}
	}
	if len(cov) != Size(a, b, c) {
		t.Fatalf("got %d sets, Size predicts %d", len(cov), Size(a, b, c))
	}
}

func TestCoverPairsProperty(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a := int(aRaw%20) + 2
		b := int(bRaw%10) + 2
		cov := New(a, b, 2)
		for x := 0; x < a; x++ {
			for y := x; y < a; y++ {
				if !covers(cov, []int{x, y}) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverK4(t *testing.T) {
	a, b, c := 8, 4, 4
	cov := New(a, b, c)
	// Check a sample of 4-subsets.
	for x := 0; x < a; x++ {
		for y := x + 1; y < a; y++ {
			if !covers(cov, []int{x, y, (y + 1) % a, (y + 2) % a}) {
				t.Fatalf("4-subset with {%d,%d} uncovered", x, y)
			}
		}
	}
}

func TestCoverDegenerate(t *testing.T) {
	cov := New(3, 3, 3)
	if !covers(cov, []int{0, 1, 2}) {
		t.Fatal("whole set uncovered")
	}
}
