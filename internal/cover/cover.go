// Package cover implements (a,b,c) subset covers (Definition 2.11 of
// the paper): sequences of b-sized subsets of {0..a-1} such that every
// c-element subset is contained in some member. The construction
// follows the paper: partition the a elements into groups of size
// ⌊b/c⌋ and take the union of every c-multiset of groups, giving
// z = O((a·c/b)^c) sets.
package cover

// New constructs an (a,b,c) subset cover. Requires b ≥ c ≥ 1 and
// a ≥ 1. Each returned set has at most c·⌈b/c⌉ ≤ b+c elements, and
// every c-element subset of {0..a-1} is contained in at least one set.
func New(a, b, c int) [][]int {
	if c < 1 || b < c || a < 1 {
		panic("cover: requires a ≥ 1 and b ≥ c ≥ 1")
	}
	sz := b / c
	if sz < 1 {
		sz = 1
	}
	g := (a + sz - 1) / sz // number of groups
	groups := make([][]int, g)
	for j := 0; j < g; j++ {
		lo := j * sz
		hi := lo + sz
		if hi > a {
			hi = a
		}
		for e := lo; e < hi; e++ {
			groups[j] = append(groups[j], e)
		}
	}
	var out [][]int
	idx := make([]int, c)
	var rec func(pos, start int)
	rec = func(pos, start int) {
		if pos == c {
			set := make([]int, 0, c*sz)
			prev := -1
			for _, j := range idx {
				if j == prev {
					continue // same group picked twice adds nothing
				}
				set = append(set, groups[j]...)
				prev = j
			}
			out = append(out, set)
			return
		}
		for j := start; j < g; j++ {
			idx[pos] = j
			rec(pos+1, j)
		}
	}
	rec(0, 0)
	return out
}

// Size returns the number of sets z = C(g+c-1, c) that New(a,b,c)
// produces, where g = ⌈a/⌊b/c⌋⌉.
func Size(a, b, c int) int {
	sz := b / c
	if sz < 1 {
		sz = 1
	}
	g := (a + sz - 1) / sz
	// multichoose(g, c)
	num := 1
	for i := 0; i < c; i++ {
		num = num * (g + i) / (i + 1)
	}
	return num
}
