package topo

import (
	"math/rand"
	"strings"
	"testing"
)

// TestCanonicalRoundTrip pins the spec syntax contract: for every
// family, the bare name parses, its canonical String re-parses to the
// same canonical form, and explicit arguments survive the round trip.
func TestCanonicalRoundTrip(t *testing.T) {
	for _, f := range Families() {
		sp, err := Parse(f.Name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", f.Name, err)
		}
		canon := sp.String()
		// Canonical form names every declared parameter.
		for _, p := range f.Params {
			if !strings.Contains(canon, p.Name+"=") {
				t.Fatalf("%s: canonical %q omits parameter %s", f.Name, canon, p.Name)
			}
		}
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(canonical %q): %v", canon, err)
		}
		if again.String() != canon {
			t.Fatalf("%s: canonical form unstable: %q -> %q", f.Name, canon, again.String())
		}
	}
}

func TestParseExplicitArgs(t *testing.T) {
	sp, err := Parse("torus: rows=4 , cols=5")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Args["rows"] != "4" || sp.Args["cols"] != "5" {
		t.Fatalf("args %v", sp.Args)
	}
	if got, want := sp.String(), "torus:rows=4,cols=5"; got != want {
		t.Fatalf("String %q want %q", got, want)
	}
	// Partial args keep defaults for the rest.
	sp = MustParse("gnp:p=0.3")
	if got, want := sp.String(), "gnp:n=48,p=0.3,conn=0"; got != want {
		t.Fatalf("String %q want %q", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ spec, wantSub string }{
		{"", "unknown family"},
		{"mobius", "unknown family"},
		{"mobius:n=4", "unknown family"},
		{"torus:rows", "malformed argument"},
		{"torus:rows=", "malformed argument"},
		{"torus:=4", "malformed argument"},
		{"torus:sides=4", "no parameter"},
		{"torus:rows=4,rows=5", "duplicate argument"},
	}
	for _, c := range cases {
		if _, err := Parse(c.spec); err == nil {
			t.Fatalf("Parse(%q) accepted", c.spec)
		} else if !strings.Contains(err.Error(), c.wantSub) {
			t.Fatalf("Parse(%q) error %q, want substring %q", c.spec, err, c.wantSub)
		}
	}
}

func TestBuildValueErrors(t *testing.T) {
	cases := []string{
		"gnp:n=many",     // non-integer
		"gnp:p=half",     // non-number
		"gnp:conn=maybe", // non-boolean
		"gnp:p=1.5",      // out of range
		"gnp:n=0",        // out of range
		"gnp:n=4,p=0,conn=1",
		"cycliques:k=2",
		"regular:n=5,d=3", // n·d odd
		"regular:n=4,d=4", // d ≥ n
		"torus:rows=2",
		"hypercube:dim=0",
		"hypercube:dim=21",
		"powerlaw:n=3,attach=3",
		"cycle:n=2",
		"complete:n=0",    // out of range
		"complete:n=4096", // beyond the explicit-adjacency cap
	}
	for _, c := range cases {
		sp, err := Parse(c)
		if err != nil {
			t.Fatalf("Parse(%q): %v (expected a Build-time error)", c, err)
		}
		if _, err := sp.Build(rand.New(rand.NewSource(1))); err == nil {
			t.Fatalf("Build(%q) accepted", c)
		}
	}
}

// TestBuildEveryFamilyDefault builds every family at its defaults: no
// errors, correct node counts, deterministic for a fixed seed.
func TestBuildEveryFamilyDefault(t *testing.T) {
	for _, f := range Families() {
		sp := MustParse(f.Name)
		g, err := sp.Build(rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if g.N() < 1 {
			t.Fatalf("%s: empty graph", f.Name)
		}
		h, err := sp.Build(rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		ge, he := g.Edges(), h.Edges()
		if len(ge) != len(he) {
			t.Fatalf("%s: nondeterministic edge count %d vs %d", f.Name, len(ge), len(he))
		}
		for i := range ge {
			if ge[i] != he[i] {
				t.Fatalf("%s: nondeterministic edge %d: %v vs %v", f.Name, i, ge[i], he[i])
			}
		}
	}
}

func TestBuildShapes(t *testing.T) {
	rng := func() *rand.Rand { return rand.New(rand.NewSource(5)) }
	g, err := MustParse("grid:rows=3,cols=4").Build(rng())
	if err != nil || g.N() != 12 || g.M() != 3*3+4*2 {
		t.Fatalf("grid: n=%d m=%d err=%v", g.N(), g.M(), err)
	}
	g, err = MustParse("torus:rows=3,cols=3").Build(rng())
	if err != nil || g.N() != 9 || g.M() != 18 || g.MaxDegree() != 4 {
		t.Fatalf("torus: n=%d m=%d Δ=%d err=%v", g.N(), g.M(), g.MaxDegree(), err)
	}
	g, err = MustParse("hypercube:dim=4").Build(rng())
	if err != nil || g.N() != 16 || g.M() != 32 || g.Diameter() != 4 {
		t.Fatalf("hypercube: n=%d m=%d D=%d err=%v", g.N(), g.M(), g.Diameter(), err)
	}
	g, err = MustParse("powerlaw:n=40,attach=2").Build(rng())
	if err != nil || g.N() != 40 || !g.Connected() {
		t.Fatalf("powerlaw: n=%d connected=%v err=%v", g.N(), g.Connected(), err)
	}
	g, err = MustParse("gnp:n=30,p=0.2,conn=1").Build(rng())
	if err != nil || !g.Connected() {
		t.Fatalf("gnp conn: connected=%v err=%v", g.Connected(), err)
	}
	g, err = MustParse("complete:n=9").Build(rng())
	if err != nil || g.N() != 9 || g.M() != 9*8/2 || g.MaxDegree() != 8 || g.Diameter() != 1 {
		t.Fatalf("complete: n=%d m=%d Δ=%d err=%v", g.N(), g.M(), g.MaxDegree(), err)
	}
}

func TestWithOverride(t *testing.T) {
	base := MustParse("gnp:n=30")
	over := base.With("p", "0.1")
	if base.Args["p"] != "" || over.Args["p"] != "0.1" || over.Args["n"] != "30" {
		t.Fatalf("With mutated base or dropped args: base=%v over=%v", base.Args, over.Args)
	}
}

func TestFamilyNamesSortedAndComplete(t *testing.T) {
	names := FamilyNames()
	want := []string{"barbell", "complete", "cycle", "cycliques", "gnp", "grid",
		"hub", "hypercube", "path", "powerlaw", "regular", "star", "torus"}
	if len(names) != len(want) {
		t.Fatalf("families %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("families %v, want %v", names, want)
		}
	}
}
