// Package topo is the topology registry: every workload-graph family
// the repository knows (G(n,p), cycle-of-cliques, hub, random regular,
// star, barbell, path, cycle, grid, torus, hypercube, power-law) under
// one string name, parameterized and built from a single textual spec
// syntax:
//
//	family:key=value,key=value,...
//
// e.g. "gnp:n=64,p=0.5", "torus:rows=8,cols=8", or a bare "hypercube"
// (every omitted parameter takes its registered default). Parse
// validates a spec against the registry, Spec.Build generates the graph
// deterministically from an *rand.Rand, and Spec.String renders the
// canonical fully-explicit form that experiment records embed, so a
// recorded run names its topology reproducibly.
//
// cmd/mugraph, the bench experiment grid (including the muexp -topo
// override), and the examples all construct their graphs through this
// registry.
package topo

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"mucongest/internal/graph"
)

// Param declares one parameter of a family: its name, default value
// (string form) and one-line doc.
type Param struct {
	Name    string
	Default string
	Doc     string
}

// Family is one registered graph family. Build receives the resolved
// parameter values (defaults merged with the spec's explicit arguments)
// and the RNG; generation must be deterministic in (values, rng).
type Family struct {
	Name   string
	Doc    string
	Params []Param
	Build  func(v *Values, rng *rand.Rand) (*graph.Graph, error)
}

func (f *Family) param(name string) *Param {
	for i := range f.Params {
		if f.Params[i].Name == name {
			return &f.Params[i]
		}
	}
	return nil
}

// Values holds the resolved string parameter values of a spec. The
// typed accessors record the first conversion failure, checked once by
// Build — family builders can read all parameters without per-field
// error plumbing.
type Values struct {
	family string
	m      map[string]string
	err    error
}

func (v *Values) fail(name, kind string) {
	if v.err == nil {
		v.err = fmt.Errorf("topo: %s: parameter %s=%q is not %s",
			v.family, name, v.m[name], kind)
	}
}

// Int returns the named parameter as an int (0 after a recorded error).
func (v *Values) Int(name string) int {
	i, err := strconv.Atoi(v.m[name])
	if err != nil {
		v.fail(name, "an integer")
		return 0
	}
	return i
}

// Float returns the named parameter as a float64.
func (v *Values) Float(name string) float64 {
	f, err := strconv.ParseFloat(v.m[name], 64)
	if err != nil {
		v.fail(name, "a number")
		return 0
	}
	return f
}

// Bool returns the named parameter as a bool ("1"/"true"/"0"/"false").
func (v *Values) Bool(name string) bool {
	b, err := strconv.ParseBool(v.m[name])
	if err != nil {
		v.fail(name, "a boolean")
		return false
	}
	return b
}

// Err returns the first conversion failure, if any.
func (v *Values) Err() error { return v.err }

// Spec is a parsed topology spec: a family name plus the explicitly
// given arguments. The zero Spec is invalid.
type Spec struct {
	Family string
	Args   map[string]string
}

// Parse parses and validates "family" or "family:k=v,k=v,...". The
// family must be registered and every argument key declared by it;
// argument values are validated at Build time (they may need the RNG to
// matter). An empty spec or malformed pair is an error.
func Parse(s string) (Spec, error) {
	name, rest, hasArgs := strings.Cut(s, ":")
	name = strings.TrimSpace(name)
	f := lookup(name)
	if f == nil {
		return Spec{}, fmt.Errorf("topo: unknown family %q (valid: %s)",
			name, strings.Join(FamilyNames(), ", "))
	}
	sp := Spec{Family: f.Name, Args: map[string]string{}}
	if !hasArgs {
		return sp, nil
	}
	for _, pair := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(pair, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" || v == "" {
			return Spec{}, fmt.Errorf("topo: %s: malformed argument %q (want key=value)",
				f.Name, pair)
		}
		if f.param(k) == nil {
			valid := make([]string, len(f.Params))
			for i, p := range f.Params {
				valid[i] = p.Name
			}
			return Spec{}, fmt.Errorf("topo: %s has no parameter %q (valid: %s)",
				f.Name, k, strings.Join(valid, ", "))
		}
		if _, dup := sp.Args[k]; dup {
			return Spec{}, fmt.Errorf("topo: %s: duplicate argument %q", f.Name, k)
		}
		sp.Args[k] = v
	}
	return sp, nil
}

// MustParse is Parse for registry-known-good specs; it panics on error.
func MustParse(s string) Spec {
	sp, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return sp
}

// String renders the canonical fully-explicit spec: every parameter of
// the family in declaration order with its effective (explicit or
// default) value. The canonical form re-parses to an equal spec, and
// equal canonical forms build identical graphs for equal seeds. The
// converse does not hold: values keep their original spelling
// ("p=.5" and "p=0.5" stay distinct strings), so don't group runs by
// comparing canonical forms of hand-written specs.
func (s Spec) String() string {
	f := lookup(s.Family)
	if f == nil {
		return s.Family
	}
	parts := make([]string, len(f.Params))
	for i, p := range f.Params {
		parts[i] = p.Name + "=" + s.arg(f, p.Name)
	}
	if len(parts) == 0 {
		return f.Name
	}
	return f.Name + ":" + strings.Join(parts, ",")
}

func (s Spec) arg(f *Family, name string) string {
	if v, ok := s.Args[name]; ok {
		return v
	}
	return f.param(name).Default
}

// Values resolves the spec's effective parameter values.
func (s Spec) Values() (*Values, error) {
	f := lookup(s.Family)
	if f == nil {
		return nil, fmt.Errorf("topo: unknown family %q", s.Family)
	}
	m := make(map[string]string, len(f.Params))
	for _, p := range f.Params {
		m[p.Name] = s.arg(f, p.Name)
	}
	return &Values{family: f.Name, m: m}, nil
}

// Build generates the graph described by the spec, drawing any
// randomness from rng. Deterministic: equal canonical specs and equal
// rng states yield identical graphs.
func (s Spec) Build(rng *rand.Rand) (*graph.Graph, error) {
	f := lookup(s.Family)
	if f == nil {
		return nil, fmt.Errorf("topo: unknown family %q", s.Family)
	}
	v, err := s.Values()
	if err != nil {
		return nil, err
	}
	g, err := f.Build(v, rng)
	if err != nil {
		return nil, err
	}
	if err := v.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// With returns a copy of the spec with one argument overridden.
func (s Spec) With(key, value string) Spec {
	args := make(map[string]string, len(s.Args)+1)
	for k, v := range s.Args {
		args[k] = v
	}
	args[key] = value
	return Spec{Family: s.Family, Args: args}
}

func lookup(name string) *Family {
	for i := range registry {
		if registry[i].Name == name {
			return &registry[i]
		}
	}
	return nil
}

// Families returns the registered families sorted by name.
func Families() []Family {
	out := make([]Family, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FamilyNames returns the sorted registered family names.
func FamilyNames() []string {
	fs := Families()
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name
	}
	return names
}
