// Package topo is the topology registry: every workload-graph family
// the repository knows (G(n,p), cycle-of-cliques, hub, random regular,
// star, barbell, path, cycle, grid, torus, hypercube, power-law) under
// one string name, parameterized and built from a single textual spec
// syntax:
//
//	family:key=value,key=value,...
//
// e.g. "gnp:n=64,p=0.5", "torus:rows=8,cols=8", or a bare "hypercube"
// (every omitted parameter takes its registered default). Parse
// validates a spec against the registry, Spec.Build generates the graph
// deterministically from an *rand.Rand, and Spec.String renders the
// canonical fully-explicit form that experiment records embed, so a
// recorded run names its topology reproducibly.
//
// Spec.BuildTopology builds the most compact representation the family
// supports — CSR adjacency for generated graphs, O(1) implicit
// arithmetic topologies for grid/torus/hypercube/complete — and
// enforces a memory budget so multi-million-node specs either build
// cheaply or fail with a clear estimate instead of exhausting memory.
// Spec.Estimate reports the representation and projected footprint
// without building anything.
//
// cmd/mugraph, the bench experiment grid (including the muexp -topo
// override), and the examples all construct their graphs through this
// registry.
package topo

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"mucongest/internal/graph"
	"mucongest/internal/sim"
)

// ParamKind is the declared type of a parameter value; it drives the
// canonical normalization Spec.String and Spec.Values apply, so
// equivalent spellings ("p=.5" and "p=0.5") render identically.
type ParamKind int

const (
	// KindInt is a base-10 integer parameter (the registry default).
	KindInt ParamKind = iota
	// KindFloat is a float64 parameter.
	KindFloat
	// KindBool is a boolean parameter, canonically "1"/"0".
	KindBool
)

// normalize rewrites raw into the canonical spelling of its kind. Values
// that fail to parse keep their original spelling — the typed accessors
// report them with the user's own text at Build time.
func normalize(k ParamKind, raw string) string {
	switch k {
	case KindInt:
		if i, err := strconv.Atoi(raw); err == nil {
			return strconv.Itoa(i)
		}
	case KindFloat:
		if f, err := strconv.ParseFloat(raw, 64); err == nil {
			return strconv.FormatFloat(f, 'g', -1, 64)
		}
	case KindBool:
		if b, err := strconv.ParseBool(raw); err == nil {
			if b {
				return "1"
			}
			return "0"
		}
	}
	return raw
}

// Param declares one parameter of a family: its name, default value
// (string form), one-line doc, and value kind.
type Param struct {
	Name    string
	Default string
	Doc     string
	Kind    ParamKind
}

// Family is one registered graph family. Build receives the resolved
// parameter values (defaults merged with the spec's explicit arguments)
// and the RNG; generation must be deterministic in (values, rng).
// Topo builds the family's compact engine topology (CSR or implicit) and
// Estimate projects its footprint; both validate parameters exactly like
// Build.
type Family struct {
	Name     string
	Doc      string
	Params   []Param
	Build    func(v *Values, rng *rand.Rand) (*graph.Graph, error)
	Topo     func(v *Values, rng *rand.Rand) (sim.Topology, error)
	Estimate func(v *Values) (Estimate, error)
}

func (f *Family) param(name string) *Param {
	for i := range f.Params {
		if f.Params[i].Name == name {
			return &f.Params[i]
		}
	}
	return nil
}

// Values holds the resolved string parameter values of a spec. The
// typed accessors record the first conversion failure, checked once by
// Build — family builders can read all parameters without per-field
// error plumbing.
type Values struct {
	family string
	m      map[string]string
	err    error
}

func (v *Values) fail(name, kind string) {
	if v.err == nil {
		v.err = fmt.Errorf("topo: %s: parameter %s=%q is not %s",
			v.family, name, v.m[name], kind)
	}
}

// Int returns the named parameter as an int (0 after a recorded error).
func (v *Values) Int(name string) int {
	i, err := strconv.Atoi(v.m[name])
	if err != nil {
		v.fail(name, "an integer")
		return 0
	}
	return i
}

// Float returns the named parameter as a float64.
func (v *Values) Float(name string) float64 {
	f, err := strconv.ParseFloat(v.m[name], 64)
	if err != nil {
		v.fail(name, "a number")
		return 0
	}
	return f
}

// Bool returns the named parameter as a bool ("1"/"true"/"0"/"false").
func (v *Values) Bool(name string) bool {
	b, err := strconv.ParseBool(v.m[name])
	if err != nil {
		v.fail(name, "a boolean")
		return false
	}
	return b
}

// Err returns the first conversion failure, if any.
func (v *Values) Err() error { return v.err }

// Spec is a parsed topology spec: a family name plus the explicitly
// given arguments. The zero Spec is invalid.
type Spec struct {
	Family string
	Args   map[string]string
}

// Parse parses and validates "family" or "family:k=v,k=v,...". The
// family must be registered and every argument key declared by it;
// argument values are validated at Build time (they may need the RNG to
// matter). An empty spec or malformed pair is an error.
func Parse(s string) (Spec, error) {
	name, rest, hasArgs := strings.Cut(s, ":")
	name = strings.TrimSpace(name)
	f := lookup(name)
	if f == nil {
		return Spec{}, fmt.Errorf("topo: unknown family %q (valid: %s)",
			name, strings.Join(FamilyNames(), ", "))
	}
	sp := Spec{Family: f.Name, Args: map[string]string{}}
	if !hasArgs {
		return sp, nil
	}
	for _, pair := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(pair, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" || v == "" {
			return Spec{}, fmt.Errorf("topo: %s: malformed argument %q (want key=value)",
				f.Name, pair)
		}
		if f.param(k) == nil {
			valid := make([]string, len(f.Params))
			for i, p := range f.Params {
				valid[i] = p.Name
			}
			return Spec{}, fmt.Errorf("topo: %s has no parameter %q (valid: %s)",
				f.Name, k, strings.Join(valid, ", "))
		}
		if _, dup := sp.Args[k]; dup {
			return Spec{}, fmt.Errorf("topo: %s: duplicate argument %q", f.Name, k)
		}
		sp.Args[k] = v
	}
	return sp, nil
}

// MustParse is Parse for registry-known-good specs; it panics on error.
func MustParse(s string) Spec {
	sp, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return sp
}

// String renders the canonical fully-explicit spec: every parameter of
// the family in declaration order with its effective (explicit or
// default) value, normalized to the canonical spelling of its declared
// kind ("p=.5", "p=0.50" and "p=0.5" all render as "p=0.5"; booleans
// render "1"/"0"). Equal canonical forms build identical graphs for
// equal seeds, and specs that parse to the same values share one
// canonical form — it is safe to group runs by comparing canonical
// strings. Values that fail to parse keep their original spelling (and
// fail at Build with the same message as before).
func (s Spec) String() string {
	f := lookup(s.Family)
	if f == nil {
		return s.Family
	}
	parts := make([]string, len(f.Params))
	for i, p := range f.Params {
		parts[i] = p.Name + "=" + s.arg(f, p.Name)
	}
	if len(parts) == 0 {
		return f.Name
	}
	return f.Name + ":" + strings.Join(parts, ",")
}

func (s Spec) arg(f *Family, name string) string {
	p := f.param(name)
	if v, ok := s.Args[name]; ok {
		return normalize(p.Kind, v)
	}
	return p.Default
}

// Values resolves the spec's effective parameter values.
func (s Spec) Values() (*Values, error) {
	f := lookup(s.Family)
	if f == nil {
		return nil, fmt.Errorf("topo: unknown family %q", s.Family)
	}
	m := make(map[string]string, len(f.Params))
	for _, p := range f.Params {
		m[p.Name] = s.arg(f, p.Name)
	}
	return &Values{family: f.Name, m: m}, nil
}

// Build generates the graph described by the spec, drawing any
// randomness from rng. Deterministic: equal canonical specs and equal
// rng states yield identical graphs.
func (s Spec) Build(rng *rand.Rand) (*graph.Graph, error) {
	f := lookup(s.Family)
	if f == nil {
		return nil, fmt.Errorf("topo: unknown family %q", s.Family)
	}
	v, err := s.Values()
	if err != nil {
		return nil, err
	}
	g, err := f.Build(v, rng)
	if err != nil {
		return nil, err
	}
	if err := v.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// Estimate projects what Spec.BuildTopology would construct: the
// representation, node and edge counts, and the approximate resident
// bytes of the topology itself (excluding lazily materialized neighbor
// caches, which scale with the nodes a program actually iterates).
type Estimate struct {
	// Repr is "csr" or "implicit".
	Repr string
	// N and M are node and undirected-edge counts; for random families M
	// is the expectation.
	N int
	M int64
	// Bytes is the projected topology footprint: graph.CSRBytes(N, M)
	// for CSR families, a small constant for implicit ones.
	Bytes int64
}

// DefaultTopoBudget is the byte budget Spec.BuildTopology enforces: a
// spec whose estimated footprint exceeds it fails with a clear error
// instead of attempting the build. 4 GiB admits every registry family
// at n = 10M (CSR powerlaw:n=10M,attach=3 is ~560 MB) while rejecting
// accidental quadratic explosions like gnp:n=1000000,p=0.5.
const DefaultTopoBudget int64 = 4 << 30

// fmtBytes renders a byte count for budget errors.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<40:
		return fmt.Sprintf("%.1f TiB", float64(b)/(1<<40))
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// Estimate resolves the spec's parameters and projects the compact
// representation BuildTopology would use, without building anything.
func (s Spec) Estimate() (Estimate, error) {
	f := lookup(s.Family)
	if f == nil {
		return Estimate{}, fmt.Errorf("topo: unknown family %q", s.Family)
	}
	v, err := s.Values()
	if err != nil {
		return Estimate{}, err
	}
	est, err := f.Estimate(v)
	if err != nil {
		return Estimate{}, err
	}
	if err := v.Err(); err != nil {
		return Estimate{}, err
	}
	return est, nil
}

// BuildTopology builds the most compact engine topology the family
// supports — CSR adjacency for generated graphs, O(1) implicit
// arithmetic for grid/torus/hypercube/complete — under
// DefaultTopoBudget. Deterministic in (canonical spec, rng state), and
// edge-for-edge, port-for-port identical to the explicit Build graph
// for equal rng states (the repr tests pin this).
func (s Spec) BuildTopology(rng *rand.Rand) (sim.Topology, error) {
	return s.BuildTopologyBudget(rng, DefaultTopoBudget)
}

// BuildTopologyBudget is BuildTopology with an explicit byte budget
// (≤ 0 means DefaultTopoBudget).
func (s Spec) BuildTopologyBudget(rng *rand.Rand, budget int64) (sim.Topology, error) {
	f := lookup(s.Family)
	if f == nil {
		return nil, fmt.Errorf("topo: unknown family %q", s.Family)
	}
	if budget <= 0 {
		budget = DefaultTopoBudget
	}
	est, err := s.Estimate()
	if err != nil {
		return nil, err
	}
	if est.Bytes > budget {
		return nil, fmt.Errorf("topo: %s needs ~%s as %s (n=%d, m≈%d), over the %s build budget",
			s, fmtBytes(est.Bytes), est.Repr, est.N, est.M, fmtBytes(budget))
	}
	v, err := s.Values()
	if err != nil {
		return nil, err
	}
	t, err := f.Topo(v, rng)
	if err != nil {
		return nil, err
	}
	if err := v.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// csrEstimate is the Estimate of a CSR-represented family.
func csrEstimate(n int, m int64) Estimate {
	return Estimate{Repr: "csr", N: n, M: m, Bytes: graph.CSRBytes(n, m)}
}

// implicitEstimate is the Estimate of an implicit arithmetic family:
// the topology itself is a couple of words regardless of n.
func implicitEstimate(n int, m int64) Estimate {
	return Estimate{Repr: "implicit", N: n, M: m, Bytes: 64}
}

// With returns a copy of the spec with one argument overridden.
func (s Spec) With(key, value string) Spec {
	args := make(map[string]string, len(s.Args)+1)
	for k, v := range s.Args {
		args[k] = v
	}
	args[key] = value
	return Spec{Family: s.Family, Args: args}
}

func lookup(name string) *Family {
	for i := range registry {
		if registry[i].Name == name {
			return &registry[i]
		}
	}
	return nil
}

// Families returns the registered families sorted by name.
func Families() []Family {
	out := make([]Family, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FamilyNames returns the sorted registered family names.
func FamilyNames() []string {
	fs := Families()
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = f.Name
	}
	return names
}
