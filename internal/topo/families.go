package topo

import (
	"fmt"
	"math/rand"

	"mucongest/internal/graph"
	"mucongest/internal/sim"
)

// estEdges converts a float edge-count projection to int64, clamped so
// downstream byte arithmetic cannot overflow on absurd parameters (the
// budget check rejects those specs long before the clamp matters).
func estEdges(x float64) int64 {
	const lim = int64(1) << 55
	if x > float64(lim) {
		return lim
	}
	return int64(x)
}

// registry lists every family in declaration order. Spec.String renders
// parameters in the order declared here, so keep parameter order
// meaningful (size first, then shape knobs).
//
// Each family has three construction views: Build (explicit
// *graph.Graph, the historical representation), Topo (the compact
// engine topology — CSR for generated graphs, O(1) implicit arithmetic
// for grid/torus/hypercube/complete) and Estimate (projected footprint
// of Topo's representation). Build and Topo share generator draw
// sequences, so for equal rng states the two representations are
// edge-for-edge and port-for-port identical. Families whose explicit
// form is inherently quadratic (complete) or exponential (hypercube)
// keep documented caps on Build only; Topo lifts them.
var registry = []Family{
	{
		Name: "gnp",
		Doc:  "Erdős–Rényi G(n,p); conn=1 resamples until connected",
		Params: []Param{
			{"n", "48", "node count", KindInt},
			{"p", "0.5", "edge probability", KindFloat},
			{"conn", "0", "resample until connected (0/1)", KindBool},
		},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			n, p, conn := v.Int("n"), v.Float("p"), v.Bool("conn")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, fmt.Errorf("topo: gnp needs n ≥ 1")
			}
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("topo: gnp needs 0 ≤ p ≤ 1")
			}
			if conn {
				if n > 1 && p == 0 {
					return nil, fmt.Errorf("topo: gnp with conn=1 needs p > 0")
				}
				return graph.GnpConnected(n, p, rng), nil
			}
			return graph.Gnp(n, p, rng), nil
		},
		Topo: func(v *Values, rng *rand.Rand) (sim.Topology, error) {
			n, p, conn := v.Int("n"), v.Float("p"), v.Bool("conn")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, fmt.Errorf("topo: gnp needs n ≥ 1")
			}
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("topo: gnp needs 0 ≤ p ≤ 1")
			}
			if conn {
				if n > 1 && p == 0 {
					return nil, fmt.Errorf("topo: gnp with conn=1 needs p > 0")
				}
				return graph.GnpConnectedCSR(n, p, rng), nil
			}
			return graph.GnpCSR(n, p, rng), nil
		},
		Estimate: func(v *Values) (Estimate, error) {
			n, p := v.Int("n"), v.Float("p")
			if err := v.Err(); err != nil {
				return Estimate{}, err
			}
			if n < 1 {
				return Estimate{}, fmt.Errorf("topo: gnp needs n ≥ 1")
			}
			if p < 0 || p > 1 {
				return Estimate{}, fmt.Errorf("topo: gnp needs 0 ≤ p ≤ 1")
			}
			return csrEstimate(n, estEdges(p*float64(n)*float64(n-1)/2)), nil
		},
	},
	{
		Name: "cycliques",
		Doc:  "k cliques of size `size` joined in a cycle (Thm 1.4 instance)",
		Params: []Param{
			{"k", "4", "number of cliques (≥ 3)", KindInt},
			{"size", "8", "clique size (≥ 2)", KindInt},
		},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			k, size := v.Int("k"), v.Int("size")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if k < 3 || size < 2 {
				return nil, fmt.Errorf("topo: cycliques needs k ≥ 3, size ≥ 2")
			}
			return graph.CycleOfCliques(k, size), nil
		},
		Topo: func(v *Values, rng *rand.Rand) (sim.Topology, error) {
			k, size := v.Int("k"), v.Int("size")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if k < 3 || size < 2 {
				return nil, fmt.Errorf("topo: cycliques needs k ≥ 3, size ≥ 2")
			}
			return graph.CycleOfCliquesCSR(k, size), nil
		},
		Estimate: func(v *Values) (Estimate, error) {
			k, size := v.Int("k"), v.Int("size")
			if err := v.Err(); err != nil {
				return Estimate{}, err
			}
			if k < 3 || size < 2 {
				return Estimate{}, fmt.Errorf("topo: cycliques needs k ≥ 3, size ≥ 2")
			}
			m := int64(k) * (int64(size)*int64(size-1)/2 + 1)
			return csrEstimate(k*size, m), nil
		},
	},
	{
		Name: "hub",
		Doc:  "designated max-degree hub over a G(n-1,p) blob",
		Params: []Param{
			{"n", "48", "node count", KindInt},
			{"p", "0.3", "blob edge probability", KindFloat},
		},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			n, p := v.Int("n"), v.Float("p")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if n < 2 {
				return nil, fmt.Errorf("topo: hub needs n ≥ 2")
			}
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("topo: hub needs 0 ≤ p ≤ 1")
			}
			return graph.HubAndBlob(n, p, rng), nil
		},
		Topo: func(v *Values, rng *rand.Rand) (sim.Topology, error) {
			n, p := v.Int("n"), v.Float("p")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if n < 2 {
				return nil, fmt.Errorf("topo: hub needs n ≥ 2")
			}
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("topo: hub needs 0 ≤ p ≤ 1")
			}
			return graph.HubAndBlobCSR(n, p, rng), nil
		},
		Estimate: func(v *Values) (Estimate, error) {
			n, p := v.Int("n"), v.Float("p")
			if err := v.Err(); err != nil {
				return Estimate{}, err
			}
			if n < 2 {
				return Estimate{}, fmt.Errorf("topo: hub needs n ≥ 2")
			}
			if p < 0 || p > 1 {
				return Estimate{}, fmt.Errorf("topo: hub needs 0 ≤ p ≤ 1")
			}
			m := float64(n-1) + p*float64(n-1)*float64(n-2)/2
			return csrEstimate(n, estEdges(m)), nil
		},
	},
	{
		Name: "regular",
		Doc:  "random d-regular graph (pairing model with switch repair)",
		Params: []Param{
			{"n", "48", "node count", KindInt},
			{"d", "8", "degree (n·d even, d < n)", KindInt},
		},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			n, d := v.Int("n"), v.Int("d")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if d < 1 || d >= n || n*d%2 != 0 {
				return nil, fmt.Errorf("topo: regular needs 1 ≤ d < n with n·d even")
			}
			return graph.RandomRegular(n, d, rng), nil
		},
		Topo: func(v *Values, rng *rand.Rand) (sim.Topology, error) {
			n, d := v.Int("n"), v.Int("d")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if d < 1 || d >= n || n*d%2 != 0 {
				return nil, fmt.Errorf("topo: regular needs 1 ≤ d < n with n·d even")
			}
			return graph.RandomRegularCSR(n, d, rng), nil
		},
		Estimate: func(v *Values) (Estimate, error) {
			n, d := v.Int("n"), v.Int("d")
			if err := v.Err(); err != nil {
				return Estimate{}, err
			}
			if d < 1 || d >= n || n*d%2 != 0 {
				return Estimate{}, fmt.Errorf("topo: regular needs 1 ≤ d < n with n·d even")
			}
			return csrEstimate(n, int64(n)*int64(d)/2), nil
		},
	},
	{
		Name:   "star",
		Doc:    "star with center 0 (extreme max degree)",
		Params: []Param{{"n", "48", "node count", KindInt}},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			n := v.Int("n")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if n < 2 {
				return nil, fmt.Errorf("topo: star needs n ≥ 2")
			}
			return graph.Star(n), nil
		},
		Topo: func(v *Values, rng *rand.Rand) (sim.Topology, error) {
			n := v.Int("n")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if n < 2 {
				return nil, fmt.Errorf("topo: star needs n ≥ 2")
			}
			return graph.StarCSR(n), nil
		},
		Estimate: func(v *Values) (Estimate, error) {
			n := v.Int("n")
			if err := v.Err(); err != nil {
				return Estimate{}, err
			}
			if n < 2 {
				return Estimate{}, fmt.Errorf("topo: star needs n ≥ 2")
			}
			return csrEstimate(n, int64(n-1)), nil
		},
	},
	{
		Name: "barbell",
		Doc:  "two G(size,p) blobs joined by one bridge edge (low conductance)",
		Params: []Param{
			{"size", "24", "nodes per blob", KindInt},
			{"p", "0.5", "blob edge probability", KindFloat},
		},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			size, p := v.Int("size"), v.Float("p")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if size < 1 {
				return nil, fmt.Errorf("topo: barbell needs size ≥ 1")
			}
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("topo: barbell needs 0 ≤ p ≤ 1")
			}
			return graph.BarbellExpanders(size, p, rng), nil
		},
		Topo: func(v *Values, rng *rand.Rand) (sim.Topology, error) {
			size, p := v.Int("size"), v.Float("p")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if size < 1 {
				return nil, fmt.Errorf("topo: barbell needs size ≥ 1")
			}
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("topo: barbell needs 0 ≤ p ≤ 1")
			}
			return graph.BarbellExpandersCSR(size, p, rng), nil
		},
		Estimate: func(v *Values) (Estimate, error) {
			size, p := v.Int("size"), v.Float("p")
			if err := v.Err(); err != nil {
				return Estimate{}, err
			}
			if size < 1 {
				return Estimate{}, fmt.Errorf("topo: barbell needs size ≥ 1")
			}
			if p < 0 || p > 1 {
				return Estimate{}, fmt.Errorf("topo: barbell needs 0 ≤ p ≤ 1")
			}
			m := p*float64(size)*float64(size-1) + 1
			return csrEstimate(2*size, estEdges(m)), nil
		},
	},
	{
		Name:   "path",
		Doc:    "path 0-1-...-(n-1) (extreme diameter)",
		Params: []Param{{"n", "48", "node count", KindInt}},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			n := v.Int("n")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, fmt.Errorf("topo: path needs n ≥ 1")
			}
			return graph.Path(n), nil
		},
		Topo: func(v *Values, rng *rand.Rand) (sim.Topology, error) {
			n := v.Int("n")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, fmt.Errorf("topo: path needs n ≥ 1")
			}
			return graph.PathCSR(n), nil
		},
		Estimate: func(v *Values) (Estimate, error) {
			n := v.Int("n")
			if err := v.Err(); err != nil {
				return Estimate{}, err
			}
			if n < 1 {
				return Estimate{}, fmt.Errorf("topo: path needs n ≥ 1")
			}
			return csrEstimate(n, int64(n-1)), nil
		},
	},
	{
		Name:   "cycle",
		Doc:    "n-node cycle",
		Params: []Param{{"n", "48", "node count (≥ 3)", KindInt}},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			n := v.Int("n")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if n < 3 {
				return nil, fmt.Errorf("topo: cycle needs n ≥ 3")
			}
			return graph.Cycle(n), nil
		},
		Topo: func(v *Values, rng *rand.Rand) (sim.Topology, error) {
			n := v.Int("n")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if n < 3 {
				return nil, fmt.Errorf("topo: cycle needs n ≥ 3")
			}
			return graph.CycleCSR(n), nil
		},
		Estimate: func(v *Values) (Estimate, error) {
			n := v.Int("n")
			if err := v.Err(); err != nil {
				return Estimate{}, err
			}
			if n < 3 {
				return Estimate{}, fmt.Errorf("topo: cycle needs n ≥ 3")
			}
			return csrEstimate(n, int64(n)), nil
		},
	},
	{
		Name: "grid",
		Doc:  "rows×cols grid (implicit O(1) topology via sim.NewGrid)",
		Params: []Param{
			{"rows", "8", "grid rows", KindInt},
			{"cols", "8", "grid columns", KindInt},
		},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			rows, cols := v.Int("rows"), v.Int("cols")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if rows < 1 || cols < 1 {
				return nil, fmt.Errorf("topo: grid needs rows, cols ≥ 1")
			}
			return graph.Grid(rows, cols), nil
		},
		Topo: func(v *Values, rng *rand.Rand) (sim.Topology, error) {
			rows, cols := v.Int("rows"), v.Int("cols")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if rows < 1 || cols < 1 {
				return nil, fmt.Errorf("topo: grid needs rows, cols ≥ 1")
			}
			return sim.NewGrid(rows, cols), nil
		},
		Estimate: func(v *Values) (Estimate, error) {
			rows, cols := v.Int("rows"), v.Int("cols")
			if err := v.Err(); err != nil {
				return Estimate{}, err
			}
			if rows < 1 || cols < 1 {
				return Estimate{}, fmt.Errorf("topo: grid needs rows, cols ≥ 1")
			}
			m := int64(rows)*int64(cols-1) + int64(cols)*int64(rows-1)
			return implicitEstimate(rows*cols, m), nil
		},
	},
	{
		Name: "torus",
		Doc:  "rows×cols grid with wraparound (4-regular; implicit O(1) topology via sim.NewTorus)",
		Params: []Param{
			{"rows", "8", "torus rows (≥ 3)", KindInt},
			{"cols", "8", "torus columns (≥ 3)", KindInt},
		},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			rows, cols := v.Int("rows"), v.Int("cols")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if rows < 3 || cols < 3 {
				return nil, fmt.Errorf("topo: torus needs rows, cols ≥ 3")
			}
			return graph.Torus(rows, cols), nil
		},
		Topo: func(v *Values, rng *rand.Rand) (sim.Topology, error) {
			rows, cols := v.Int("rows"), v.Int("cols")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if rows < 3 || cols < 3 {
				return nil, fmt.Errorf("topo: torus needs rows, cols ≥ 3")
			}
			return sim.NewTorus(rows, cols), nil
		},
		Estimate: func(v *Values) (Estimate, error) {
			rows, cols := v.Int("rows"), v.Int("cols")
			if err := v.Err(); err != nil {
				return Estimate{}, err
			}
			if rows < 3 || cols < 3 {
				return Estimate{}, fmt.Errorf("topo: torus needs rows, cols ≥ 3")
			}
			return implicitEstimate(rows*cols, 2*int64(rows)*int64(cols)), nil
		},
	},
	{
		Name:   "hypercube",
		Doc:    "dim-dimensional hypercube on 2^dim nodes (implicit topology up to dim=30; explicit Build caps at 20)",
		Params: []Param{{"dim", "6", "dimension (1..30; explicit Build 1..20)", KindInt}},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			dim := v.Int("dim")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if dim < 1 || dim > 20 {
				return nil, fmt.Errorf("topo: hypercube needs 1 ≤ dim ≤ 20 (explicit adjacency; the implicit topology goes to 30)")
			}
			return graph.Hypercube(dim), nil
		},
		Topo: func(v *Values, rng *rand.Rand) (sim.Topology, error) {
			dim := v.Int("dim")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if dim < 1 || dim > 30 {
				return nil, fmt.Errorf("topo: hypercube needs 1 ≤ dim ≤ 30")
			}
			return sim.NewHypercube(dim), nil
		},
		Estimate: func(v *Values) (Estimate, error) {
			dim := v.Int("dim")
			if err := v.Err(); err != nil {
				return Estimate{}, err
			}
			if dim < 1 || dim > 30 {
				return Estimate{}, fmt.Errorf("topo: hypercube needs 1 ≤ dim ≤ 30")
			}
			return implicitEstimate(1<<dim, int64(dim)<<(dim-1)), nil
		},
	},
	{
		Name: "complete",
		Doc:  "complete graph K_n (implicit O(1) topology via sim.NewComplete; explicit Build caps at 2048)",
		Params: []Param{
			{"n", "48", "node count (explicit Build 1..2048; implicit topology any n)", KindInt},
		},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			n := v.Int("n")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if n < 1 || n > 2048 {
				return nil, fmt.Errorf("topo: complete needs 1 ≤ n ≤ 2048 (K_n materializes n² adjacency; BuildTopology/sim.NewComplete is O(1) at any n)")
			}
			return graph.Complete(n), nil
		},
		Topo: func(v *Values, rng *rand.Rand) (sim.Topology, error) {
			n := v.Int("n")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, fmt.Errorf("topo: complete needs n ≥ 1")
			}
			return sim.NewComplete(n), nil
		},
		Estimate: func(v *Values) (Estimate, error) {
			n := v.Int("n")
			if err := v.Err(); err != nil {
				return Estimate{}, err
			}
			if n < 1 {
				return Estimate{}, fmt.Errorf("topo: complete needs n ≥ 1")
			}
			return implicitEstimate(n, estEdges(float64(n)*float64(n-1)/2)), nil
		},
	},
	{
		Name: "powerlaw",
		Doc:  "Barabási–Albert preferential attachment (power-law degrees)",
		Params: []Param{
			{"n", "48", "node count", KindInt},
			{"attach", "3", "edges per new node (1 ≤ attach < n)", KindInt},
		},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			n, attach := v.Int("n"), v.Int("attach")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if attach < 1 || n <= attach {
				return nil, fmt.Errorf("topo: powerlaw needs n > attach ≥ 1")
			}
			return graph.BarabasiAlbert(n, attach, rng), nil
		},
		Topo: func(v *Values, rng *rand.Rand) (sim.Topology, error) {
			n, attach := v.Int("n"), v.Int("attach")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if attach < 1 || n <= attach {
				return nil, fmt.Errorf("topo: powerlaw needs n > attach ≥ 1")
			}
			return graph.BarabasiAlbertCSR(n, attach, rng), nil
		},
		Estimate: func(v *Values) (Estimate, error) {
			n, attach := v.Int("n"), v.Int("attach")
			if err := v.Err(); err != nil {
				return Estimate{}, err
			}
			if attach < 1 || n <= attach {
				return Estimate{}, fmt.Errorf("topo: powerlaw needs n > attach ≥ 1")
			}
			a := int64(attach)
			m := a*(a+1)/2 + int64(n-1-attach)*a
			return csrEstimate(n, m), nil
		},
	},
}
