package topo

import (
	"fmt"
	"math/rand"

	"mucongest/internal/graph"
)

// registry lists every family in declaration order. Spec.String renders
// parameters in the order declared here, so keep parameter order
// meaningful (size first, then shape knobs).
var registry = []Family{
	{
		Name: "gnp",
		Doc:  "Erdős–Rényi G(n,p); conn=1 resamples until connected",
		Params: []Param{
			{"n", "48", "node count"},
			{"p", "0.5", "edge probability"},
			{"conn", "0", "resample until connected (0/1)"},
		},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			n, p, conn := v.Int("n"), v.Float("p"), v.Bool("conn")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, fmt.Errorf("topo: gnp needs n ≥ 1")
			}
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("topo: gnp needs 0 ≤ p ≤ 1")
			}
			if conn {
				if n > 1 && p == 0 {
					return nil, fmt.Errorf("topo: gnp with conn=1 needs p > 0")
				}
				return graph.GnpConnected(n, p, rng), nil
			}
			return graph.Gnp(n, p, rng), nil
		},
	},
	{
		Name: "cycliques",
		Doc:  "k cliques of size `size` joined in a cycle (Thm 1.4 instance)",
		Params: []Param{
			{"k", "4", "number of cliques (≥ 3)"},
			{"size", "8", "clique size (≥ 2)"},
		},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			k, size := v.Int("k"), v.Int("size")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if k < 3 || size < 2 {
				return nil, fmt.Errorf("topo: cycliques needs k ≥ 3, size ≥ 2")
			}
			return graph.CycleOfCliques(k, size), nil
		},
	},
	{
		Name: "hub",
		Doc:  "designated max-degree hub over a G(n-1,p) blob",
		Params: []Param{
			{"n", "48", "node count"},
			{"p", "0.3", "blob edge probability"},
		},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			n, p := v.Int("n"), v.Float("p")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if n < 2 {
				return nil, fmt.Errorf("topo: hub needs n ≥ 2")
			}
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("topo: hub needs 0 ≤ p ≤ 1")
			}
			return graph.HubAndBlob(n, p, rng), nil
		},
	},
	{
		Name: "regular",
		Doc:  "random d-regular graph (pairing model with switch repair)",
		Params: []Param{
			{"n", "48", "node count"},
			{"d", "8", "degree (n·d even, d < n)"},
		},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			n, d := v.Int("n"), v.Int("d")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if d < 1 || d >= n || n*d%2 != 0 {
				return nil, fmt.Errorf("topo: regular needs 1 ≤ d < n with n·d even")
			}
			return graph.RandomRegular(n, d, rng), nil
		},
	},
	{
		Name:   "star",
		Doc:    "star with center 0 (extreme max degree)",
		Params: []Param{{"n", "48", "node count"}},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			n := v.Int("n")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if n < 2 {
				return nil, fmt.Errorf("topo: star needs n ≥ 2")
			}
			return graph.Star(n), nil
		},
	},
	{
		Name: "barbell",
		Doc:  "two G(size,p) blobs joined by one bridge edge (low conductance)",
		Params: []Param{
			{"size", "24", "nodes per blob"},
			{"p", "0.5", "blob edge probability"},
		},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			size, p := v.Int("size"), v.Float("p")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if size < 1 {
				return nil, fmt.Errorf("topo: barbell needs size ≥ 1")
			}
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("topo: barbell needs 0 ≤ p ≤ 1")
			}
			return graph.BarbellExpanders(size, p, rng), nil
		},
	},
	{
		Name:   "path",
		Doc:    "path 0-1-...-(n-1) (extreme diameter)",
		Params: []Param{{"n", "48", "node count"}},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			n := v.Int("n")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if n < 1 {
				return nil, fmt.Errorf("topo: path needs n ≥ 1")
			}
			return graph.Path(n), nil
		},
	},
	{
		Name:   "cycle",
		Doc:    "n-node cycle",
		Params: []Param{{"n", "48", "node count (≥ 3)"}},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			n := v.Int("n")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if n < 3 {
				return nil, fmt.Errorf("topo: cycle needs n ≥ 3")
			}
			return graph.Cycle(n), nil
		},
	},
	{
		Name: "grid",
		Doc:  "rows×cols grid",
		Params: []Param{
			{"rows", "8", "grid rows"},
			{"cols", "8", "grid columns"},
		},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			rows, cols := v.Int("rows"), v.Int("cols")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if rows < 1 || cols < 1 {
				return nil, fmt.Errorf("topo: grid needs rows, cols ≥ 1")
			}
			return graph.Grid(rows, cols), nil
		},
	},
	{
		Name: "torus",
		Doc:  "rows×cols grid with wraparound (4-regular)",
		Params: []Param{
			{"rows", "8", "torus rows (≥ 3)"},
			{"cols", "8", "torus columns (≥ 3)"},
		},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			rows, cols := v.Int("rows"), v.Int("cols")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if rows < 3 || cols < 3 {
				return nil, fmt.Errorf("topo: torus needs rows, cols ≥ 3")
			}
			return graph.Torus(rows, cols), nil
		},
	},
	{
		Name:   "hypercube",
		Doc:    "dim-dimensional hypercube on 2^dim nodes",
		Params: []Param{{"dim", "6", "dimension (1..20)"}},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			dim := v.Int("dim")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if dim < 1 || dim > 20 {
				return nil, fmt.Errorf("topo: hypercube needs 1 ≤ dim ≤ 20")
			}
			return graph.Hypercube(dim), nil
		},
	},
	{
		Name: "complete",
		Doc:  "complete graph K_n (explicit adjacency; engine-scale all-to-all runs should use sim.NewComplete)",
		Params: []Param{
			{"n", "48", "node count (1..2048: the adjacency is materialized)"},
		},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			n := v.Int("n")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if n < 1 || n > 2048 {
				return nil, fmt.Errorf("topo: complete needs 1 ≤ n ≤ 2048 (K_n materializes n² adjacency; use sim.NewComplete beyond that)")
			}
			return graph.Complete(n), nil
		},
	},
	{
		Name: "powerlaw",
		Doc:  "Barabási–Albert preferential attachment (power-law degrees)",
		Params: []Param{
			{"n", "48", "node count"},
			{"attach", "3", "edges per new node (1 ≤ attach < n)"},
		},
		Build: func(v *Values, rng *rand.Rand) (*graph.Graph, error) {
			n, attach := v.Int("n"), v.Int("attach")
			if err := v.Err(); err != nil {
				return nil, err
			}
			if attach < 1 || n <= attach {
				return nil, fmt.Errorf("topo: powerlaw needs n > attach ≥ 1")
			}
			return graph.BarabasiAlbert(n, attach, rng), nil
		},
	},
}
