package topo

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// FuzzTopoParse pins the registry's parsing contract: Parse never
// panics (malformed specs must return errors), and any spec that
// parses round-trips through its canonical String() form — the
// property experiment records rely on when they embed a spec and later
// rebuild the graph from it. Equivalent spellings of the same value
// ("p=.5", "p=0.50", "conn=true") must canonicalize to the same string,
// so grouping runs by canonical spec is sound.
//
// The seed corpus covers every registered family three ways: the bare
// name, the canonical fully-explicit form, and a single-argument form —
// plus a spread of malformed inputs that must error cleanly.
func FuzzTopoParse(f *testing.F) {
	for _, fam := range FamilyNames() {
		f.Add(fam)
		f.Add(MustParse(fam).String())
		ps := lookup(fam).Params
		if len(ps) > 0 {
			f.Add(fam + ":" + ps[0].Name + "=" + ps[0].Default)
		}
	}
	for _, bad := range []string{
		"", ":", "nope", "nope:n=4", "gnp:", "gnp:n", "gnp:n=", "gnp:=4",
		"gnp:n=4,n=4", "gnp:q=4", "torus:rows=,", "cycle:n=four",
		"grid:rows=3,cols", "  ", "gnp:n==5", "cycle:n=-1", "powerlaw:n=1,attach=9",
	} {
		f.Add(bad)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := Parse(s)
		if err != nil {
			if !strings.Contains(err.Error(), "topo:") {
				t.Errorf("Parse(%q) error lacks package prefix: %v", s, err)
			}
			return
		}
		canon := sp.String()
		sp2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q failed to re-parse: %v", canon, s, err)
		}
		if got := sp2.String(); got != canon {
			t.Fatalf("canonical form is not a fixed point: %q -> %q (from %q)", canon, got, s)
		}
		if sp2.Family != sp.Family {
			t.Fatalf("family changed across round-trip: %q -> %q", sp.Family, sp2.Family)
		}
		// Equivalent spellings of every explicitly-given parameter must
		// canonicalize to the same string as the original spec.
		fam := lookup(sp.Family)
		for _, p := range fam.Params {
			raw, ok := sp.Args[p.Name]
			if !ok {
				continue
			}
			var alts []string
			switch p.Kind {
			case KindInt:
				if i, err := strconv.Atoi(raw); err == nil {
					if i >= 0 {
						alts = append(alts, "+"+strconv.Itoa(i), "0"+strconv.Itoa(i), "00"+strconv.Itoa(i))
					} else {
						alts = append(alts, "-0"+strconv.Itoa(-i))
					}
				}
			case KindFloat:
				if x, err := strconv.ParseFloat(raw, 64); err == nil && !math.IsNaN(x) && !math.IsInf(x, 0) {
					c := strconv.FormatFloat(x, 'g', -1, 64)
					if strings.Contains(c, ".") && !strings.ContainsAny(c, "eE") {
						alts = append(alts, c+"0") // trailing zero
						if strings.HasPrefix(c, "0.") {
							alts = append(alts, c[1:]) // ".5" for "0.5"
						}
						if strings.HasPrefix(c, "-0.") {
							alts = append(alts, "-"+c[2:])
						}
					}
					if !strings.HasPrefix(c, "-") {
						alts = append(alts, "+"+c)
					}
				}
			case KindBool:
				if b, err := strconv.ParseBool(raw); err == nil {
					if b {
						alts = append(alts, "true", "t", "T", "TRUE")
					} else {
						alts = append(alts, "false", "f", "F", "FALSE")
					}
				}
			}
			for _, alt := range alts {
				if got := sp.With(p.Name, alt).String(); got != canon {
					t.Errorf("equivalent spelling %s=%q of %q canonicalizes to %q, want %q",
						p.Name, alt, s, got, canon)
				}
			}
		}
	})
}
