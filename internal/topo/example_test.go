package topo_test

import (
	"fmt"
	"math/rand"

	"mucongest/internal/topo"
)

// Parse a topology spec, inspect its canonical form, and build the
// graph. Omitted parameters take their registered defaults, so the
// canonical form is the full reproducible descriptor that experiment
// records embed.
func ExampleParse() {
	spec, err := topo.Parse("torus:rows=4,cols=6")
	if err != nil {
		panic(err)
	}
	fmt.Println("canonical:", spec)

	g, err := spec.Build(rand.New(rand.NewSource(1)))
	if err != nil {
		panic(err)
	}
	fmt.Printf("n=%d m=%d Δ=%d diameter=%d\n", g.N(), g.M(), g.MaxDegree(), g.Diameter())

	// Defaults fill in everything a spec leaves out.
	fmt.Println("defaults: ", topo.MustParse("gnp"))
	// Output:
	// canonical: torus:rows=4,cols=6
	// n=24 m=48 Δ=4 diameter=5
	// defaults:  gnp:n=48,p=0.5,conn=0
}
