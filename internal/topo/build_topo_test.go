package topo

import (
	"math/rand"
	"strings"
	"testing"

	"mucongest/internal/graph"
	"mucongest/internal/sim"
)

// TestNormalizeSpellings pins the canonical-spelling contract that
// experiment records group by: every way of writing a value renders one
// canonical string, and unparsable values keep their own spelling (and
// still fail at Build with the historical message).
func TestNormalizeSpellings(t *testing.T) {
	cases := []struct{ spec, canon string }{
		{"gnp:p=.5", "gnp:n=48,p=0.5,conn=0"},
		{"gnp:p=0.5", "gnp:n=48,p=0.5,conn=0"},
		{"gnp:p=0.50", "gnp:n=48,p=0.5,conn=0"},
		{"gnp:p=5e-1", "gnp:n=48,p=0.5,conn=0"},
		{"gnp:n=048", "gnp:n=48,p=0.5,conn=0"},
		{"gnp:n=+48", "gnp:n=48,p=0.5,conn=0"},
		{"gnp:conn=true", "gnp:n=48,p=0.5,conn=1"},
		{"gnp:conn=T", "gnp:n=48,p=0.5,conn=1"},
		{"gnp:conn=false", "gnp:n=48,p=0.5,conn=0"},
		{"torus:rows=04,cols=+8", "torus:rows=4,cols=8"},
		{"powerlaw:attach=007", "powerlaw:n=48,attach=7"},
	}
	for _, c := range cases {
		sp, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if got := sp.String(); got != c.canon {
			t.Errorf("Parse(%q).String() = %q, want %q", c.spec, got, c.canon)
		}
	}
	// Unparsable values pass through verbatim and fail at Build.
	sp := MustParse("gnp:n=many")
	if got := sp.String(); !strings.Contains(got, "n=many") {
		t.Fatalf("unparsable value rewritten: %q", got)
	}
	if _, err := sp.Build(rand.New(rand.NewSource(1))); err == nil ||
		!strings.Contains(err.Error(), `n="many"`) {
		t.Fatalf("Build error = %v, want the n=\"many\" conversion failure", err)
	}
}

// TestEstimateShapes pins exact estimates for the deterministic
// families and the representation choice for every family.
func TestEstimateShapes(t *testing.T) {
	cases := []struct {
		spec string
		repr string
		n    int
		m    int64
	}{
		{"cycle:n=10", "csr", 10, 10},
		{"path:n=10", "csr", 10, 9},
		{"star:n=10", "csr", 10, 9},
		{"cycliques:k=4,size=8", "csr", 32, 4 * (28 + 1)},
		{"regular:n=48,d=8", "csr", 48, 48 * 8 / 2},
		{"powerlaw:n=48,attach=3", "csr", 48, 6 + 44*3},
		{"grid:rows=8,cols=8", "implicit", 64, 8*7 + 8*7},
		{"torus:rows=8,cols=8", "implicit", 64, 128},
		{"hypercube:dim=4", "implicit", 16, 32},
		{"complete:n=9", "implicit", 9, 36},
	}
	for _, c := range cases {
		est, err := MustParse(c.spec).Estimate()
		if err != nil {
			t.Fatalf("Estimate(%q): %v", c.spec, err)
		}
		if est.Repr != c.repr || est.N != c.n || est.M != c.m {
			t.Errorf("Estimate(%q) = %+v, want repr=%s n=%d m=%d", c.spec, est, c.repr, c.n, c.m)
		}
		if c.repr == "csr" {
			if want := graph.CSRBytes(c.n, c.m); est.Bytes != want {
				t.Errorf("Estimate(%q).Bytes = %d, want %d", c.spec, est.Bytes, want)
			}
		} else if est.Bytes > 1024 {
			t.Errorf("Estimate(%q).Bytes = %d for an implicit topology", c.spec, est.Bytes)
		}
	}
	// Exact estimates must match the built graphs.
	for _, spec := range []string{"cycliques:k=4,size=8", "powerlaw:n=48,attach=3", "hypercube:dim=4"} {
		sp := MustParse(spec)
		est, err := sp.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		g, err := sp.Build(rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != est.N || int64(g.M()) != est.M {
			t.Errorf("%s: built n=%d m=%d, estimated n=%d m=%d", spec, g.N(), g.M(), est.N, est.M)
		}
	}
}

// TestBuildTopologyMatchesBuild builds every family at its defaults
// through both construction views with equal rng states and requires
// the compact topology to be edge-for-edge identical to the explicit
// graph.
func TestBuildTopologyMatchesBuild(t *testing.T) {
	for _, f := range Families() {
		sp := MustParse(f.Name)
		g, err := sp.Build(rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatalf("%s: Build: %v", f.Name, err)
		}
		tp, err := sp.BuildTopology(rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatalf("%s: BuildTopology: %v", f.Name, err)
		}
		if tp.N() != g.N() {
			t.Fatalf("%s: topology n=%d, graph n=%d", f.Name, tp.N(), g.N())
		}
		for v := 0; v < g.N(); v++ {
			want := g.Neighbors(v)
			got := tp.Neighbors(v)
			if len(got) != len(want) {
				t.Fatalf("%s: node %d row length %d, graph %d", f.Name, v, len(got), len(want))
			}
			for p := range want {
				if got[p] != want[p] {
					t.Fatalf("%s: node %d port %d: topology %d, graph %d", f.Name, v, p, got[p], want[p])
				}
			}
		}
		est, err := sp.Estimate()
		if err != nil {
			t.Fatalf("%s: Estimate: %v", f.Name, err)
		}
		_, isCSR := tp.(*graph.CSR)
		if (est.Repr == "csr") != isCSR {
			t.Errorf("%s: estimate says %s but BuildTopology returned %T", f.Name, est.Repr, tp)
		}
	}
}

// TestBuildTopologyMillion is the n=1M capability gate from the design
// doc: every registry family (the explicit-only Build caps are exactly
// what BuildTopology lifts) constructs a million-node topology within
// DefaultTopoBudget.
func TestBuildTopologyMillion(t *testing.T) {
	const n = 1 << 20
	specs := []string{
		"gnp:n=1048576,p=0.000004",
		"cycliques:k=65536,size=16",
		"hub:n=1048576,p=0.000004",
		"regular:n=1048576,d=4",
		"star:n=1048576",
		"barbell:size=524288,p=0.00001",
		"path:n=1048576",
		"cycle:n=1048576",
		"grid:rows=1024,cols=1024",
		"torus:rows=1024,cols=1024",
		"hypercube:dim=20",
		"complete:n=1048576",
		"powerlaw:n=1048576,attach=3",
	}
	if len(specs) != len(Families()) {
		t.Fatalf("capability list covers %d families, registry has %d", len(specs), len(Families()))
	}
	for _, spec := range specs {
		sp := MustParse(spec)
		est, err := sp.Estimate()
		if err != nil {
			t.Fatalf("%s: Estimate: %v", spec, err)
		}
		if est.Bytes > DefaultTopoBudget {
			t.Fatalf("%s: estimated %d bytes, over budget", spec, est.Bytes)
		}
		tp, err := sp.BuildTopology(rand.New(rand.NewSource(9)))
		if err != nil {
			t.Fatalf("%s: BuildTopology: %v", spec, err)
		}
		if tp.N() < n {
			t.Fatalf("%s: n=%d, want ≥ %d", spec, tp.N(), n)
		}
		if c, ok := tp.(*graph.CSR); ok {
			if c.Bytes() > DefaultTopoBudget {
				t.Fatalf("%s: built CSR is %d bytes, over budget", spec, c.Bytes())
			}
		}
		// Spot-check the port contract on a few nodes without touching
		// the whole topology.
		deg := tp.(sim.DegreeTopology)
		at := tp.(sim.IndexedTopology)
		pt := tp.(sim.PortedTopology)
		for _, v := range []int{0, 1, tp.N() / 2, tp.N() - 1} {
			row := tp.Neighbors(v)
			if len(row) != deg.Degree(v) {
				t.Fatalf("%s: node %d degree %d, row length %d", spec, v, deg.Degree(v), len(row))
			}
			for p, u := range row {
				if at.NeighborAt(v, p) != u || pt.PortOf(v, u) != p {
					t.Fatalf("%s: node %d port %d inconsistent", spec, v, p)
				}
			}
		}
	}
}

// TestBuildTopologyBudget pins the over-budget failure mode: a clear
// error naming the estimate and budget, never an attempted build.
func TestBuildTopologyBudget(t *testing.T) {
	_, err := MustParse("gnp:n=1000000,p=0.5").BuildTopology(rand.New(rand.NewSource(1)))
	if err == nil || !strings.Contains(err.Error(), "build budget") {
		t.Fatalf("quadratic gnp error = %v, want a budget error", err)
	}
	_, err = MustParse("cycle:n=100000").BuildTopologyBudget(rand.New(rand.NewSource(1)), 1024)
	if err == nil || !strings.Contains(err.Error(), "build budget") {
		t.Fatalf("tiny-budget cycle error = %v, want a budget error", err)
	}
	// Implicit families cost O(1) regardless of n: a tiny budget still
	// admits a ten-million-node complete topology.
	tp, err := MustParse("complete:n=10000000").BuildTopologyBudget(rand.New(rand.NewSource(1)), 128)
	if err != nil || tp.N() != 10000000 {
		t.Fatalf("complete n=10M under 128-byte budget: tp=%v err=%v", tp, err)
	}
	// Parameter validation still beats the budget check.
	if _, err := MustParse("gnp:p=1.5").BuildTopology(rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("gnp p=1.5 accepted")
	}
	if _, err := MustParse("hypercube:dim=31").BuildTopology(rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("hypercube dim=31 accepted")
	}
}
