package bench

import "mucongest/internal/sim"

// The canonical engine round-loop workload, in both execution forms:
// every node broadcasts one message to every neighbor every round for a
// fixed number of rounds. It carries no algorithm logic, so a run's
// cost is pure engine overhead — staging, routing, inbox ordering,
// memory accounting, and the per-round hand-off to node programs (the
// part the two forms differ in). The root BenchmarkEngineRound* cells
// and cmd/muexp's -engine mode share these constructors so the
// benchmarked workload and the CLI-reproducible one are the same code.

// BroadcastProgram returns the blocking (goroutine-per-node) form of
// the broadcast workload.
func BroadcastProgram(rounds int) func(*sim.Ctx) {
	return func(c *sim.Ctx) {
		for r := 0; r < rounds; r++ {
			c.Broadcast(sim.Msg{Kind: 1, A: int64(c.ID()), B: int64(r)})
			c.Tick()
		}
	}
}

// broadcastStep is the step-form twin of BroadcastProgram's loop body.
type broadcastStep struct{ rounds, r int }

func (s *broadcastStep) Step(c *sim.Ctx, in []sim.Incoming) bool {
	if s.r >= s.rounds {
		// Self-reset on the terminating step so one BroadcastSteps value
		// can drive repeated runs (benchmark iterations) without
		// re-allocating n machines. The engine never steps a terminated
		// node again within a run, so this fires exactly once per run.
		s.r = 0
		return false
	}
	c.Broadcast(sim.Msg{Kind: 1, A: int64(c.ID()), B: int64(s.r)})
	s.r++
	return true
}

// BroadcastSteps returns the goroutine-free step form of the broadcast
// workload for an n-node topology: one pre-allocated machine per node,
// driven inline by the engine's delivery workers. The returned Program
// is reusable across runs (machines self-reset as they terminate).
func BroadcastSteps(n, rounds int) sim.Program {
	progs := make([]broadcastStep, n)
	for i := range progs {
		progs[i].rounds = rounds
	}
	return sim.Steps(func(c *sim.Ctx) sim.StepProgram { return &progs[c.ID()] })
}
