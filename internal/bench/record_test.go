package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func fixtureRecords() []Record {
	return []Record{
		{
			Exp: "E3", Cell: "E3", Row: 0, Topo: "gnp:n=96,p=0.5,conn=0", Seed: 42,
			Params: P("mu", 96), Mu: 96, Rounds: 120, Messages: 4500,
			PeakWords: 310, MuViolations: 2, OverMuRounds: 7,
			WallTime: 5 * time.Millisecond,
		},
		{
			Exp: "E4/E5", Cell: "E4/E5", Row: 1, Topo: "cycliques:k=4,size=8", Seed: -3,
			Params: P("p", 2, "mode", "naive"), Mu: 0, Rounds: 64, Messages: 1024,
			PeakWords: 99, MuViolations: 0, OverMuRounds: 0,
			WallTime: time.Second,
		},
	}
}

// TestWriteRecordsCSVGolden pins the CSV schema byte-for-byte: column
// order, params encoding (sorted k=v;k=v), and the absence of the
// nondeterministic wall time.
func TestWriteRecordsCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecordsCSV(&buf, fixtureRecords()); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"exp,cell,row,topo,seed,params,mu,rounds,messages,peakWords,muViolations,overMuRounds",
		"E3,E3,0,\"gnp:n=96,p=0.5,conn=0\",42,mu=96,96,120,4500,310,2,7",
		"E4/E5,E4/E5,1,\"cycliques:k=4,size=8\",-3,mode=naive;p=2,0,64,1024,99,0,0",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("CSV golden mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWriteRecordsJSONGolden pins the JSON document shape: schema
// stamp, count, sorted object keys, and no wall-time field.
func TestWriteRecordsJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecordsJSON(&buf, fixtureRecords()[:1]); err != nil {
		t.Fatal(err)
	}
	want := `{
  "schema": "mucongest.records/v1",
  "count": 1,
  "records": [
    {
      "exp": "E3",
      "cell": "E3",
      "row": 0,
      "topo": "gnp:n=96,p=0.5,conn=0",
      "seed": "42",
      "params": {
        "mu": "96"
      },
      "mu": 96,
      "rounds": 120,
      "messages": 4500,
      "peakWords": 310,
      "muViolations": 2,
      "overMuRounds": 7
    }
  ]
}
`
	if got := buf.String(); got != want {
		t.Fatalf("JSON golden mismatch\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteRecordsJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecordsJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string   `json:"schema"`
		Count   int      `json:"count"`
		Records []Record `json:"records"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != RecordSchema || doc.Count != 0 || doc.Records == nil {
		t.Fatalf("empty doc %+v: records must be [] not null", doc)
	}
}

// TestRunnersEmitRecords checks every grid cell emits at least one
// record per table row equivalent, with the cell identity stamped.
func TestRunnersEmitRecords(t *testing.T) {
	for _, tbl := range RunSerial(tinySpecs(), 5) {
		if len(tbl.Records) == 0 {
			t.Fatalf("%s emitted no records", tbl.ID)
		}
		if len(tbl.Records) < len(tbl.Rows) {
			t.Fatalf("%s: %d records for %d rows", tbl.ID, len(tbl.Records), len(tbl.Rows))
		}
		for i, r := range tbl.Records {
			if r.Cell == "" || r.Topo == "" || r.Exp == "" {
				t.Fatalf("%s record %d missing identity: %+v", tbl.ID, i, r)
			}
			if r.Row != i {
				t.Fatalf("%s record %d has Row=%d", tbl.ID, i, r.Row)
			}
			// Messages may be 0 (the E1/E2 oracle router charges rounds
			// without engine-delivered messages), but a run always ticks
			// and holds memory.
			if r.Rounds <= 0 || r.PeakWords <= 0 {
				t.Fatalf("%s record %d has empty metrics: %+v", tbl.ID, i, r)
			}
			if r.WallTime <= 0 {
				t.Fatalf("%s record %d has no wall time", tbl.ID, i)
			}
		}
	}
}

func TestParamsStringSorted(t *testing.T) {
	got := paramsString(map[string]string{"z": "1", "a": "2", "m": "3"})
	if got != "a=2;m=3;z=1" {
		t.Fatalf("paramsString %q", got)
	}
	if paramsString(nil) != "" {
		t.Fatal("nil params must render empty")
	}
}
