package bench

import (
	"hash/fnv"
	"sync"

	"mucongest/internal/topo"
)

// Spec describes one independently runnable experiment cell: the grid of
// README.md’s experiment map decomposed into units a worker pool can schedule. ID
// names the cell (and feeds per-cell seed derivation); Exps lists the
// experiment ids (E1..E13) the cell reproduces, so cmd/muexp can select
// cells by experiment; Topo is the topology spec of the cell's workload
// graph (OverrideTopo substitutes another, re-running the experiment on
// any registered family).
type Spec struct {
	ID   string
	Exps []string
	Topo string
	Run  func(tp topo.Spec, seed int64) *Table
}

// Specs returns the full experiment grid at cmd/muexp's default scales,
// one Spec per table.
func Specs() []Spec {
	return []Spec{
		{"E1/E2-k3", []string{"E1", "E2"}, "gnp:n=48,p=0.5",
			func(tp topo.Spec, s int64) *Table { return E1E2(tp, 3, s) }},
		{"E1/E2-k4", []string{"E1", "E2"}, "gnp:n=36,p=0.5",
			func(tp topo.Spec, s int64) *Table { return E1E2(tp, 4, s) }},
		{"E3", []string{"E3"}, "gnp:n=96,p=0.5", E3},
		{"E4/E5", []string{"E4", "E5"}, "cycliques:k=4,size=8", E4E5},
		{"E6", []string{"E6"}, "hub:n=20,p=0.4", E6},
		{"E7", []string{"E7"}, "gnp:n=24,p=0.15,conn=1", E7},
		{"E8", []string{"E8"}, "gnp:n=24,p=0.15,conn=1", E8},
		{"E9", []string{"E9"}, "gnp:n=24,p=0.15,conn=1", E9},
		{"E10", []string{"E10"}, "gnp:n=32,p=0.5", E10},
		{"E11/E12", []string{"E11", "E12"}, "gnp:n=40,p=0.5", E11E12},
		{"E13", []string{"E13"}, "gnp:n=24,p=0.15,conn=1", E13},
	}
}

// OverrideTopo returns a copy of specs with every cell's workload
// topology replaced by tp — the substance of muexp's -topo flag. Cell
// ids (and therefore cell seeds) are unchanged, so records stay
// comparable across topologies.
func OverrideTopo(specs []Spec, tp topo.Spec) []Spec {
	out := make([]Spec, len(specs))
	copy(out, specs)
	for i := range out {
		out[i].Topo = tp.String()
	}
	return out
}

// SelectSpecs returns the cells of specs that reproduce experiment exp,
// or all of them for "all". The boolean reports whether exp was known.
func SelectSpecs(specs []Spec, exp string) ([]Spec, bool) {
	if exp == "all" {
		return specs, true
	}
	var out []Spec
	for _, sp := range specs {
		for _, e := range sp.Exps {
			if e == exp {
				out = append(out, sp)
				break
			}
		}
	}
	return out, len(out) > 0
}

// ExperimentIDs returns the sorted-by-grid-order list of experiment ids
// covered by specs, without duplicates.
func ExperimentIDs(specs []Spec) []string {
	seen := map[string]bool{}
	var out []string
	for _, sp := range specs {
		for _, e := range sp.Exps {
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	return out
}

// CellSeed derives the deterministic seed of cell id from the root seed:
// an FNV-1a hash of the id mixed into the root through a splitmix64
// finalizer. The derivation depends only on (root, id) — never on worker
// count or execution order — so every cell sees the same seed whether
// the grid runs serially or on a pool.
func CellSeed(root int64, id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	x := uint64(root) ^ h.Sum64()
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// runCell executes one cell with its derived seed and resolved topology
// spec, then stamps the cell identity onto every emitted record.
func runCell(sp Spec, rootSeed int64) *Table {
	seed := CellSeed(rootSeed, sp.ID)
	t := sp.Run(topo.MustParse(sp.Topo), seed)
	for i := range t.Records {
		t.Records[i].Cell = sp.ID
		t.Records[i].Seed = seed
		t.Records[i].Row = i
	}
	return t
}

// RunSerial executes the cells one after another in grid order — the
// reference implementation the pool must be indistinguishable from.
func RunSerial(specs []Spec, rootSeed int64) []*Table {
	tables := make([]*Table, len(specs))
	for i, sp := range specs {
		tables[i] = runCell(sp, rootSeed)
	}
	return tables
}

// RunParallel executes the cells on a pool of `workers` goroutines.
// Results land in grid order and every cell runs with its CellSeed, so
// the returned tables — rendered text and structured records alike —
// are identical to RunSerial's for any worker count; only the
// wall-clock changes.
func RunParallel(specs []Spec, rootSeed int64, workers int) []*Table {
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	tables := make([]*Table, len(specs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				tables[i] = runCell(specs[i], rootSeed)
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return tables
}
