package bench

import (
	"hash/fnv"
	"sync"
)

// Spec describes one independently runnable experiment cell: the grid of
// README.md’s experiment map decomposed into units a worker pool can schedule. ID
// names the cell (and feeds per-cell seed derivation); Exps lists the
// experiment ids (E1..E12) the cell reproduces, so cmd/muexp can select
// cells by experiment.
type Spec struct {
	ID   string
	Exps []string
	Run  func(seed int64) *Table
}

// Specs returns the full experiment grid at cmd/muexp's default scales,
// one Spec per table.
func Specs() []Spec {
	return []Spec{
		{"E1/E2-k3", []string{"E1", "E2"}, func(s int64) *Table { return E1E2(48, 3, s) }},
		{"E1/E2-k4", []string{"E1", "E2"}, func(s int64) *Table { return E1E2(36, 4, s) }},
		{"E3", []string{"E3"}, func(s int64) *Table { return E3(96, s) }},
		{"E4/E5", []string{"E4", "E5"}, func(s int64) *Table { return E4E5(4, 8, s) }},
		{"E6", []string{"E6"}, func(s int64) *Table { return E6(20, s) }},
		{"E7", []string{"E7"}, func(s int64) *Table { return E7(24, s) }},
		{"E8", []string{"E8"}, func(s int64) *Table { return E8(24, s) }},
		{"E9", []string{"E9"}, func(s int64) *Table { return E9(24, s) }},
		{"E10", []string{"E10"}, func(s int64) *Table { return E10(32, s) }},
		{"E11/E12", []string{"E11", "E12"}, func(s int64) *Table { return E11E12(40, s) }},
	}
}

// SelectSpecs returns the cells of specs that reproduce experiment exp,
// or all of them for "all". The boolean reports whether exp was known.
func SelectSpecs(specs []Spec, exp string) ([]Spec, bool) {
	if exp == "all" {
		return specs, true
	}
	var out []Spec
	for _, sp := range specs {
		for _, e := range sp.Exps {
			if e == exp {
				out = append(out, sp)
				break
			}
		}
	}
	return out, len(out) > 0
}

// ExperimentIDs returns the sorted-by-grid-order list of experiment ids
// covered by specs, without duplicates.
func ExperimentIDs(specs []Spec) []string {
	seen := map[string]bool{}
	var out []string
	for _, sp := range specs {
		for _, e := range sp.Exps {
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	return out
}

// CellSeed derives the deterministic seed of cell id from the root seed:
// an FNV-1a hash of the id mixed into the root through a splitmix64
// finalizer. The derivation depends only on (root, id) — never on worker
// count or execution order — so every cell sees the same seed whether
// the grid runs serially or on a pool.
func CellSeed(root int64, id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	x := uint64(root) ^ h.Sum64()
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// RunSerial executes the cells one after another in grid order — the
// reference implementation the pool must be indistinguishable from.
func RunSerial(specs []Spec, rootSeed int64) []*Table {
	tables := make([]*Table, len(specs))
	for i, sp := range specs {
		tables[i] = sp.Run(CellSeed(rootSeed, sp.ID))
	}
	return tables
}

// RunParallel executes the cells on a pool of `workers` goroutines.
// Results land in grid order and every cell runs with its CellSeed, so
// the returned tables are identical to RunSerial's for any worker count;
// only the wall-clock changes.
func RunParallel(specs []Spec, rootSeed int64, workers int) []*Table {
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	tables := make([]*Table, len(specs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				tables[i] = specs[i].Run(CellSeed(rootSeed, specs[i].ID))
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return tables
}
