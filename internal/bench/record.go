package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"mucongest/internal/sim"
	"mucongest/internal/topo"
)

// RecordSchema names the serialized record layout; bump on any
// backwards-incompatible field change. The JSON emitter stamps it on
// the document and downstream consumers (CI's recordcheck, plots,
// regression gates) key on it.
const RecordSchema = "mucongest.records/v1"

// Record is the structured result of one simulated execution inside an
// experiment cell: the machine-readable counterpart of one table row.
// Every E1–E12 runner emits Records alongside its rendered table;
// cmd/muexp serializes them with -format csv|json.
//
// All serialized fields are deterministic in (cell, seed): output is
// byte-identical for every -parallel value. Wall time is measured but
// deliberately excluded from serialization, since it would break that
// guarantee; programmatic consumers read it from the struct.
type Record struct {
	// Exp is the experiment id (e.g. "E3"; joint tables use "E1/E2").
	Exp string `json:"exp"`
	// Cell is the grid cell id the run belongs to (e.g. "E1/E2-k3").
	Cell string `json:"cell"`
	// Row is the run's index within its cell, in emission order.
	Row int `json:"row"`
	// Topo is the canonical topology spec of the workload graph.
	Topo string `json:"topo"`
	// Seed is the cell seed the run derived its randomness from. It is
	// serialized as a JSON string: CellSeed output spans the full int64
	// range, beyond float64 precision, and a numeric encoding would be
	// silently mangled by double-based JSON consumers.
	Seed int64 `json:"seed,string"`
	// Params holds the sweep point of this run (e.g. {"mu": "96"}).
	Params map[string]string `json:"params"`
	// Mu is the memory bound in words (≤ 0 when unbounded).
	Mu int64 `json:"mu"`
	// Rounds, Messages, PeakWords summarize the execution.
	Rounds    int   `json:"rounds"`
	Messages  int64 `json:"messages"`
	PeakWords int64 `json:"peakWords"`
	// MuViolations counts nodes that exceeded μ; OverMuRounds counts
	// (node, round) pairs over μ.
	MuViolations int `json:"muViolations"`
	OverMuRounds int `json:"overMuRounds"`
	// WallTime is the measured duration of the run. Excluded from CSV
	// and JSON output: it is the one nondeterministic field.
	WallTime time.Duration `json:"-"`
}

// recordOf builds a Record from a sim result; Cell, Row and Seed are
// stamped later by the grid runner, which knows them.
func recordOf(exp string, tp topo.Spec, mu int64, params map[string]string,
	res *sim.Result, wall time.Duration) Record {
	return Record{
		Exp:          exp,
		Topo:         tp.String(),
		Params:       params,
		Mu:           mu,
		Rounds:       res.Rounds,
		Messages:     res.Messages,
		PeakWords:    res.MaxPeakWords(),
		MuViolations: len(res.Violations),
		OverMuRounds: res.OverMuRounds(),
		WallTime:     wall,
	}
}

// P builds a Params map from alternating key, value pairs, formatting
// values with fmt.Sprint — sugar for the runners' sweep points.
func P(kv ...any) map[string]string {
	if len(kv)%2 != 0 {
		panic("bench: P needs alternating key, value pairs")
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		m[kv[i].(string)] = fmt.Sprint(kv[i+1])
	}
	return m
}

// paramsString renders a Params map as "k=v;k=v" with sorted keys —
// the CSV cell encoding of the open-ended sweep point.
func paramsString(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += ";"
		}
		s += k + "=" + m[k]
	}
	return s
}

// RecordCSVHeader is the fixed column order of the CSV emitter.
var RecordCSVHeader = []string{
	"exp", "cell", "row", "topo", "seed", "params",
	"mu", "rounds", "messages", "peakWords", "muViolations", "overMuRounds",
}

// WriteRecordsCSV emits the records as CSV with RecordCSVHeader. The
// open-ended params map is encoded as one "k=v;k=v" column with sorted
// keys, so the column set is fixed across experiments.
func WriteRecordsCSV(w io.Writer, recs []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(RecordCSVHeader); err != nil {
		return err
	}
	for _, r := range recs {
		row := []string{
			r.Exp, r.Cell, strconv.Itoa(r.Row), r.Topo,
			strconv.FormatInt(r.Seed, 10), paramsString(r.Params),
			strconv.FormatInt(r.Mu, 10), strconv.Itoa(r.Rounds),
			strconv.FormatInt(r.Messages, 10), strconv.FormatInt(r.PeakWords, 10),
			strconv.Itoa(r.MuViolations), strconv.Itoa(r.OverMuRounds),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// recordDoc is the JSON document the emitter produces.
type recordDoc struct {
	Schema  string   `json:"schema"`
	Count   int      `json:"count"`
	Records []Record `json:"records"`
}

// WriteRecordsJSON emits the records as one indented JSON document:
// {"schema": RecordSchema, "count": N, "records": [...]}. Map keys are
// sorted by encoding/json, so the bytes are deterministic.
func WriteRecordsJSON(w io.Writer, recs []Record) error {
	if recs == nil {
		recs = []Record{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recordDoc{Schema: RecordSchema, Count: len(recs), Records: recs})
}

// Records flattens the records of a slice of tables in table order —
// the emission order cmd/muexp serializes.
func Records(tables []*Table) []Record {
	var out []Record
	for _, t := range tables {
		out = append(out, t.Records...)
	}
	return out
}
