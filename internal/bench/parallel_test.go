package bench

import (
	"bytes"
	"fmt"
	"testing"
)

// tinySpecs is a scaled-down grid of real experiments, small enough to
// run repeatedly in tests while still exercising the simulator.
func tinySpecs() []Spec {
	return []Spec{
		{"E1/E2-k3", []string{"E1", "E2"}, func(s int64) *Table { return E1E2(16, 3, s) }},
		{"E4/E5", []string{"E4", "E5"}, func(s int64) *Table { return E4E5(3, 4, s) }},
		{"E6", []string{"E6"}, func(s int64) *Table { return E6(8, s) }},
		{"E7", []string{"E7"}, func(s int64) *Table { return E7(10, s) }},
	}
}

func render(tables []*Table) []byte {
	var buf bytes.Buffer
	for _, t := range tables {
		t.Fprint(&buf)
	}
	return buf.Bytes()
}

// TestParallelMatchesSerial pins the acceptance criterion of the worker
// pool: for the same root seed, the pool's rendered output is
// byte-identical to the serial runner's at every worker count.
func TestParallelMatchesSerial(t *testing.T) {
	specs := tinySpecs()
	want := render(RunSerial(specs, 7))
	for _, workers := range []int{1, 2, 4, 16} {
		got := render(RunParallel(specs, 7, workers))
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: output differs from serial runner\nserial:\n%s\nparallel:\n%s",
				workers, want, got)
		}
	}
}

func TestCellSeedDeterministicAndDistinct(t *testing.T) {
	if CellSeed(1, "E3") != CellSeed(1, "E3") {
		t.Fatal("CellSeed not deterministic")
	}
	seen := map[int64]string{}
	for _, sp := range Specs() {
		s := CellSeed(1, sp.ID)
		if prev, dup := seen[s]; dup {
			t.Fatalf("cells %q and %q derived the same seed %d", prev, sp.ID, s)
		}
		seen[s] = sp.ID
	}
	if CellSeed(1, "E3") == CellSeed(2, "E3") {
		t.Fatal("CellSeed ignores the root seed")
	}
}

func TestSelectSpecs(t *testing.T) {
	specs := Specs()
	for _, exp := range ExperimentIDs(specs) {
		sel, ok := SelectSpecs(specs, exp)
		if !ok || len(sel) == 0 {
			t.Fatalf("experiment %s not selectable", exp)
		}
		for _, sp := range sel {
			found := false
			for _, e := range sp.Exps {
				found = found || e == exp
			}
			if !found {
				t.Fatalf("SelectSpecs(%s) returned unrelated cell %s", exp, sp.ID)
			}
		}
	}
	// The grid must cover the full E1..E12 map.
	ids := ExperimentIDs(specs)
	if len(ids) != 12 {
		t.Fatalf("experiment ids = %v, want E1..E12", ids)
	}
	for i, id := range ids {
		if want := fmt.Sprintf("E%d", i+1); id != want {
			t.Fatalf("ids[%d] = %s, want %s", i, id, want)
		}
	}
	if all, ok := SelectSpecs(specs, "all"); !ok || len(all) != len(specs) {
		t.Fatal("SelectSpecs(all) must return the whole grid")
	}
	if _, ok := SelectSpecs(specs, "E13"); ok {
		t.Fatal("unknown experiment must not select")
	}
}
