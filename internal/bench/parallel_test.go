package bench

import (
	"bytes"
	"fmt"
	"testing"

	"mucongest/internal/topo"
)

// tinySpecs is a scaled-down grid of real experiments, small enough to
// run repeatedly in tests while still exercising the simulator.
func tinySpecs() []Spec {
	return []Spec{
		{"E1/E2-k3", []string{"E1", "E2"}, "gnp:n=16,p=0.5",
			func(tp topo.Spec, s int64) *Table { return E1E2(tp, 3, s) }},
		{"E4/E5", []string{"E4", "E5"}, "cycliques:k=3,size=4", E4E5},
		{"E6", []string{"E6"}, "hub:n=8,p=0.4", E6},
		{"E7", []string{"E7"}, "gnp:n=10,p=0.15,conn=1", E7},
	}
}

func render(tables []*Table) []byte {
	var buf bytes.Buffer
	for _, t := range tables {
		t.Fprint(&buf)
	}
	return buf.Bytes()
}

func renderCSV(t *testing.T, tables []*Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteRecordsCSV(&buf, Records(tables)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func renderJSON(t *testing.T, tables []*Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteRecordsJSON(&buf, Records(tables)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelMatchesSerial pins the acceptance criterion of the worker
// pool: for the same root seed, the pool's output — rendered text,
// serialized CSV and serialized JSON alike — is byte-identical to the
// serial runner's at every worker count.
func TestParallelMatchesSerial(t *testing.T) {
	specs := tinySpecs()
	serial := RunSerial(specs, 7)
	want := render(serial)
	wantCSV := renderCSV(t, serial)
	wantJSON := renderJSON(t, serial)
	for _, workers := range []int{-3, 0, 1, 2, 4, 16} {
		// workers < 1 must clamp to a serial pool, not hang or panic.
		par := RunParallel(specs, 7, workers)
		if got := render(par); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: output differs from serial runner\nserial:\n%s\nparallel:\n%s",
				workers, want, got)
		}
		if got := renderCSV(t, par); !bytes.Equal(got, wantCSV) {
			t.Fatalf("workers=%d: CSV differs from serial runner\nserial:\n%s\nparallel:\n%s",
				workers, wantCSV, got)
		}
		if got := renderJSON(t, par); !bytes.Equal(got, wantJSON) {
			t.Fatalf("workers=%d: JSON differs from serial runner\nserial:\n%s\nparallel:\n%s",
				workers, wantJSON, got)
		}
	}
}

// TestOverrideTopo pins the -topo substance: every cell re-runs on the
// substituted family and its records carry the canonical spec.
func TestOverrideTopo(t *testing.T) {
	orig := tinySpecs()[:1]
	specs := OverrideTopo(orig, topo.MustParse("torus:rows=3,cols=4"))
	tables := RunSerial(specs, 3)
	if len(tables) != 1 || len(tables[0].Records) == 0 {
		t.Fatalf("no records from overridden cell")
	}
	for _, r := range tables[0].Records {
		if r.Topo != "torus:rows=3,cols=4" {
			t.Fatalf("record topo %q, want canonical torus spec", r.Topo)
		}
	}
	// The input specs must be untouched.
	if orig[0].Topo != "gnp:n=16,p=0.5" {
		t.Fatal("OverrideTopo mutated its input")
	}
}

func TestCellSeedDeterministicAndDistinct(t *testing.T) {
	if CellSeed(1, "E3") != CellSeed(1, "E3") {
		t.Fatal("CellSeed not deterministic")
	}
	seen := map[int64]string{}
	for _, sp := range Specs() {
		s := CellSeed(1, sp.ID)
		if prev, dup := seen[s]; dup {
			t.Fatalf("cells %q and %q derived the same seed %d", prev, sp.ID, s)
		}
		seen[s] = sp.ID
	}
	if CellSeed(1, "E3") == CellSeed(2, "E3") {
		t.Fatal("CellSeed ignores the root seed")
	}
}

func TestSelectSpecs(t *testing.T) {
	specs := Specs()
	for _, exp := range ExperimentIDs(specs) {
		sel, ok := SelectSpecs(specs, exp)
		if !ok || len(sel) == 0 {
			t.Fatalf("experiment %s not selectable", exp)
		}
		for _, sp := range sel {
			found := false
			for _, e := range sp.Exps {
				found = found || e == exp
			}
			if !found {
				t.Fatalf("SelectSpecs(%s) returned unrelated cell %s", exp, sp.ID)
			}
		}
	}
	// The grid must cover the full E1..E13 map.
	ids := ExperimentIDs(specs)
	if len(ids) != 13 {
		t.Fatalf("experiment ids = %v, want E1..E13", ids)
	}
	for i, id := range ids {
		if want := fmt.Sprintf("E%d", i+1); id != want {
			t.Fatalf("ids[%d] = %s, want %s", i, id, want)
		}
	}
	if all, ok := SelectSpecs(specs, "all"); !ok || len(all) != len(specs) {
		t.Fatal("SelectSpecs(all) must return the whole grid")
	}
	if _, ok := SelectSpecs(specs, "E14"); ok {
		t.Fatal("unknown experiment must not select")
	}
}
