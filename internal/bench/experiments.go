package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"mucongest/internal/clique"
	"mucongest/internal/graph"
	"mucongest/internal/lowerbound"
	"mucongest/internal/mergesim"
	"mucongest/internal/sim"
	"mucongest/internal/sketch"
	"mucongest/internal/stream"
	"mucongest/internal/streamsim"
	"mucongest/internal/topo"
	"mucongest/internal/trianglestats"
)

// Every runner takes the workload-graph topology as a topo.Spec (its
// default lives in Specs; cmd/muexp's -topo flag substitutes any other
// family), builds the graph from it deterministically, and emits one
// structured Record per simulated execution alongside the rendered
// table row.

// buildGraph builds tp with the runner's rng, panicking on an invalid
// spec — specs reach runners validated (from Specs or a parsed -topo).
func buildGraph(exp string, tp topo.Spec, rng *rand.Rand) *graph.Graph {
	g, err := tp.Build(rng)
	if err != nil {
		panic(fmt.Sprintf("bench: %s: %v", exp, err))
	}
	return g
}

// mustConnected rejects topologies the experiment's aggregation
// protocols cannot run on.
func mustConnected(exp string, tp topo.Spec, g *graph.Graph) {
	if !g.Connected() {
		panic(fmt.Sprintf("bench: %s needs a connected topology, but %s produced a "+
			"disconnected graph (use conn=1 or a deterministic family)", exp, tp))
	}
}

// E1E2 runs k-clique listing in the μ-Congested-Clique over a μ sweep
// (Theorem 2.10 upper bound, Theorem 1.1 lower bound). One table for
// both experiments: measured rounds between the two theory columns.
// The input graph comes from tp; communication is all-to-all
// regardless (the Congested-Clique model).
func E1E2(tp topo.Spec, k int, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	g := buildGraph("E1/E2", tp, rng)
	n := g.N()
	t := &Table{
		ID:     "E1/E2",
		Title:  fmt.Sprintf("%d-clique listing in μ-Congested-Clique, n=%d, %s", k, n, tp),
		Claim:  "Θ(n^(k-2)/μ^(k/2-1)) rounds (Thm 1.1 LB, Thm 2.10 UB)",
		Header: []string{"mu", "rounds", "LB(Thm1.1)", "UB(Thm2.10)", "rounds/UB", "cliques", "peakWords"},
	}
	want := len(clique.ListAll(g, k))
	maxMu := int64(math.Pow(float64(n), 2-2/float64(k)))
	for mu := int64(n); mu <= maxMu; mu *= 2 {
		router := clique.NewOracleRouter(n)
		e := sim.New(sim.NewComplete(n), sim.WithSeed(seed))
		start := time.Now()
		res, err := e.Run(clique.CongestedCliqueKCliques(g, k, mu, router))
		if err != nil {
			panic(err)
		}
		got := len(clique.CollectTriangles(res))
		ub := clique.PredictedCCRounds(n, k, mu)
		lb := lowerbound.KCliqueListingRounds(float64(n), k, float64(mu), float64(n))
		t.AddRow(mu, res.Rounds, lb, ub, float64(res.Rounds)/ub,
			fmt.Sprintf("%d/%d", got, want), res.MaxPeakWords())
		t.AddRecord(recordOf("E1/E2", tp, mu, P("k", k, "mu", mu), res, time.Since(start)))
	}
	t.Notes = append(t.Notes,
		"rounds/UB should stay near-constant across the μ sweep (shape match)")
	return t
}

// E3 sweeps μ for the μ-CONGEST triangle listing (Theorem 1.2).
func E3(tp topo.Spec, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	g := buildGraph("E3", tp, rng)
	n := g.N()
	t := &Table{
		ID:     "E3",
		Title:  fmt.Sprintf("triangle listing in μ-CONGEST, n=%d, %s", n, tp),
		Claim:  "n^(1+o(1))/√μ rounds (Thm 1.2); Ω(n/√μ) (Thm 1.1)",
		Header: []string{"mu", "rounds", "rounds*sqrt(mu)/n", "triangles", "peakWords"},
	}
	want := len(clique.ListAll(g, 3))
	// Sweep from μ = Δ (the model's base assumption) to n^(4/3): below
	// ~2m̃/|U|^(2/3) the √(m̃/μ) bucket term governs; above it the
	// A-regime floor |U|^(1/3) takes over and rounds flatten.
	maxMu := int64(math.Pow(float64(n), 4.0/3))
	// An edgeless override graph has Δ=0, which would loop at μ=0 forever.
	startMu := int64(g.MaxDegree())
	if startMu < 1 {
		startMu = 1
	}
	for mu := startMu; mu <= maxMu; mu *= 2 {
		start := time.Now()
		tris, res, err := clique.RunMuCongestTriangles(
			clique.MuTriangleConfig{G: g, Mu: mu}, sim.WithSeed(seed))
		if err != nil {
			panic(err)
		}
		norm := float64(res.Rounds) * math.Sqrt(float64(mu)) / float64(n)
		t.AddRow(mu, res.Rounds, norm,
			fmt.Sprintf("%d/%d", len(tris), want), res.MaxPeakWords())
		t.AddRecord(recordOf("E3", tp, mu, P("mu", mu), res, time.Since(start)))
	}
	t.Notes = append(t.Notes,
		"rounds·√μ/n flat ⇒ the 1/√μ tradeoff of Thm 1.2 holds (polylog drift expected)")
	return t
}

// E4E5 compares naive vs cached p-pass simulation, by default on the
// cycle-of-cliques (Theorems 1.3 and 1.4).
func E4E5(tp topo.Spec, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	g := buildGraph("E4/E5", tp, rng)
	n, delta := g.N(), g.MaxDegree()
	t := &Table{
		ID:    "E4/E5",
		Title: fmt.Sprintf("p-pass simulation, %s n=%d Δ=%d", tp, n, delta),
		Claim: "naive Ω(n·Δ·p) when μ≤n/4 (Thm 1.4) vs cached O(n(Δ+p)) (Thm 1.3)",
		Header: []string{"p", "naive", "cached", "speedup",
			"theoryNaive", "theoryCached"},
	}
	labels := map[[2]int]int64{}
	for _, e := range g.Edges() {
		labels[[2]int{e.U, e.V}] = rng.Int63n(64)
	}
	for _, p := range []int{1, 2, 4, 8} {
		mk := func() streamsim.Client { return streamsim.NewMultipassSelect(1, 0, 63, 2, p) }
		start := time.Now()
		_, resN, err := streamsim.RunPPass(g, labels, mk, false, sim.WithSeed(seed))
		if err != nil {
			panic(err)
		}
		t.AddRecord(recordOf("E4/E5", tp, 0, P("p", p, "mode", "naive"), resN, time.Since(start)))
		start = time.Now()
		_, resC, err := streamsim.RunPPass(g, labels, mk, true, sim.WithSeed(seed))
		if err != nil {
			panic(err)
		}
		t.AddRecord(recordOf("E4/E5", tp, 0, P("p", p, "mode", "cached"), resC, time.Since(start)))
		t.AddRow(p, resN.Rounds, resC.Rounds,
			float64(resN.Rounds)/float64(resC.Rounds),
			lowerbound.StreamingSimulationRounds(float64(n), float64(delta), float64(p)),
			lowerbound.CachedSimulationRounds(float64(n), float64(delta), float64(p)))
	}
	t.Notes = append(t.Notes,
		"speedup must grow with p: caching wins exactly as Thm 1.3 predicts",
		"naive grows ∝p (the Thm 1.4 bottleneck through the two bridge edges)")
	return t
}

// E6 measures the random-order shuffle (Theorem 1.5): rounds vs the
// O(n(Δ+p)) budget plus a first-position uniformity χ².
func E6(tp topo.Spec, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	g := buildGraph("E6", tp, rng)
	n, delta := g.N(), g.MaxDegree()
	t := &Table{
		ID:     "E6",
		Title:  fmt.Sprintf("random-order stream (Thm 1.5), %s n=%d Δ=%d", tp, n, delta),
		Claim:  "O(n(Δ+p)) rounds, μ = M+n+Δ²; output order uniform",
		Header: []string{"p", "rounds", "theory n(Δ+p)", "ratio"},
	}
	labels := map[[2]int]int64{}
	for i, e := range g.Edges() {
		labels[[2]int{e.U, e.V}] = int64(i + 1)
	}
	for _, p := range []int{1, 2, 4} {
		mk := func() streamsim.Client { return streamsim.NewRecorder(p) }
		start := time.Now()
		_, res, err := streamsim.RunRandomOrder(g, labels, mk, sim.WithSeed(seed))
		if err != nil {
			panic(err)
		}
		theory := float64(n) * float64(delta+p)
		t.AddRow(p, res.Rounds, theory, float64(res.Rounds)/theory)
		t.AddRecord(recordOf("E6", tp, 0, P("p", p), res, time.Since(start)))
	}
	// Uniformity: χ² of the first stream position over a small star.
	star := graph.Star(5)
	slabels := map[[2]int]int64{}
	for i, e := range star.Edges() {
		slabels[[2]int{e.U, e.V}] = int64(i + 1)
	}
	trials := 200
	first := map[int64]int{}
	for s := 0; s < trials; s++ {
		out, _, err := streamsim.RunRandomOrder(star, slabels,
			func() streamsim.Client { return streamsim.NewRecorder(1) },
			sim.WithSeed(seed+int64(s)))
		if err != nil {
			panic(err)
		}
		first[out[0]]++
	}
	chi2 := 0.0
	expect := float64(trials) / 4
	for l := int64(1); l <= 4; l++ {
		d := float64(first[l]) - expect
		chi2 += d * d / expect
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("first-position χ²(df=3) = %.2f over %d trials (uniform if ≲ 11.3)", chi2, trials))
	return t
}

// E7 sweeps |I| for the one-way mergeable GK simulation (Theorem 1.6).
func E7(tp topo.Spec, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	g := buildGraph("E7", tp, rng)
	mustConnected("E7", tp, g)
	n, D := g.N(), g.Diameter()
	eps := 0.1
	t := &Table{
		ID:     "E7",
		Title:  fmt.Sprintf("one-way mergeable GK quantiles (Thm 1.6), %s n=%d D=%d ε=%.2f", tp, n, D, eps),
		Claim:  "O(min{nM, √(|I|M)} + D) rounds; quantile error ≤ ε·m",
		Header: []string{"|I|", "rounds", "theory", "ratio", "medianErr/m"},
	}
	for _, per := range []int{8, 32, 128} {
		items := make([][]int64, n)
		var all []int64
		for v := range items {
			for i := 0; i < per; i++ {
				x := rng.Int63n(100000)
				items[v] = append(items[v], x)
				all = append(all, x)
			}
		}
		total := int64(len(all))
		kind := sketch.NewGKKind(eps, total)
		start := time.Now()
		sum, res, err := mergesim.RunOneWay(g, items, kind, sim.WithSeed(seed))
		if err != nil {
			panic(err)
		}
		gk := sum.(*sketch.GK)
		med := gk.Query(0.5)
		var below int64
		for _, x := range all {
			if x < med {
				below++
			}
		}
		rankErr := math.Abs(float64(below)-0.5*float64(total)) / float64(total)
		theory := lowerbound.OneWayMergeRounds(float64(n), float64(kind.M()), float64(total), float64(D))
		t.AddRow(total, res.Rounds, theory, float64(res.Rounds)/theory, rankErr)
		t.AddRecord(recordOf("E7", tp, 0, P("items", total), res, time.Since(start)))
	}
	t.Notes = append(t.Notes, "ratio steady across the |I| sweep ⇒ √(|I|·M) scaling")
	return t
}

// E8 sweeps μ for the fully-mergeable MG simulation (Theorem 1.7) and
// checks the heavy-hitter pipeline with exact refinement.
func E8(tp topo.Spec, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	g := buildGraph("E8", tp, rng)
	mustConnected("E8", tp, g)
	n, D, delta := g.N(), g.Diameter(), g.MaxDegree()
	k := 9
	kind := sketch.NewMGKind(k)
	M := kind.M()
	t := &Table{
		ID:     "E8",
		Title:  fmt.Sprintf("fully-mergeable Misra–Gries (Thm 1.7), %s n=%d Δ=%d D=%d k=%d", tp, n, delta, D, k),
		Claim:  "O(log(min{nM,|I|})·(M·log(Δ/(μ/M))+D)) rounds; error ≤ m/(k+1)",
		Header: []string{"mu", "rounds", "theory", "maxErr", "bound m/(k+1)"},
	}
	items := make([][]int64, n)
	z := rand.NewZipf(rng, 1.25, 1, 29)
	var m int64
	exact := map[int64]int64{}
	for v := range items {
		for i := 0; i < 50; i++ {
			x := int64(z.Uint64()) + 1
			items[v] = append(items[v], x)
			exact[x]++
			m++
		}
	}
	for _, mu := range []int64{0, int64(4 * M), int64(16 * M)} {
		start := time.Now()
		sum, res, err := mergesim.RunFully(g, items, kind, mu, sim.WithSeed(seed))
		if err != nil {
			panic(err)
		}
		mg := sum.(*sketch.MG)
		var maxErr int64
		for x := int64(1); x <= 30; x++ {
			if d := exact[x] - mg.Estimate(x); d > maxErr {
				maxErr = d
			}
		}
		muEff := mu
		if muEff == 0 {
			muEff = int64(2 * M)
		}
		theory := lowerbound.FullyMergeRounds(float64(n), float64(M), float64(m),
			float64(D), float64(delta), float64(muEff))
		t.AddRow(mu, res.Rounds, theory, maxErr, m/int64(k+1))
		t.AddRecord(recordOf("E8", tp, mu, P("k", k, "mu", mu), res, time.Since(start)))
	}
	t.Notes = append(t.Notes, "rounds drop as μ grows (merge groups of μ/2M summaries)")
	return t
}

// E9 runs the composable CR-Precis entropy estimation (Theorem 1.8).
func E9(tp topo.Spec, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	g := buildGraph("E9", tp, rng)
	mustConnected("E9", tp, g)
	n, D := g.N(), g.Diameter()
	t := &Table{
		ID:     "E9",
		Title:  fmt.Sprintf("composable CR-Precis entropy (Thm 1.8), %s n=%d D=%d", tp, n, D),
		Claim:  "O(log(min{nM,|I|})·(M+D)) rounds; Ĥ sandwiched around H",
		Header: []string{"rows t", "M", "rounds", "theory", "H", "Ĥ", "Ĥ/H"},
	}
	universe := int64(64)
	items := make([][]int64, n)
	var m int64
	ex := sketch.NewExactKind(int(universe)).New().(*sketch.Exact)
	z := rand.NewZipf(rng, 1.2, 1, uint64(universe-1))
	for v := range items {
		for i := 0; i < 60; i++ {
			x := int64(z.Uint64()) + 1
			items[v] = append(items[v], x)
			ex.Insert(x)
			m++
		}
	}
	uni := make([]int64, universe)
	for i := range uni {
		uni[i] = int64(i) + 1
	}
	H := ex.Entropy()
	for _, rows := range []int{2, 4, 8} {
		kind := sketch.NewCRPrecisKind(67, rows)
		start := time.Now()
		sum, res, err := mergesim.RunComposable(g, items, kind, sim.WithSeed(seed))
		if err != nil {
			panic(err)
		}
		cr := sum.(*sketch.CRPrecis)
		Hhat := cr.EstimateEntropy(uni)
		theory := lowerbound.ComposableMergeRounds(float64(n), float64(kind.M()), float64(m), float64(D))
		t.AddRow(rows, kind.M(), res.Rounds, theory, H, Hhat, Hhat/H)
		t.AddRecord(recordOf("E9", tp, 0, P("rows", rows), res, time.Since(start)))
	}
	t.Notes = append(t.Notes, "Ĥ/H → 1 as the sketch widens (prime base > universe ⇒ exact)")
	return t
}

// E10 runs the end-to-end monochromatic-triangle census (§1.2.2) on tp
// with 6 edge colors (two planted heavy).
func E10(tp topo.Spec, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	g := buildGraph("E10", tp, rng)
	mustConnected("E10", tp, g)
	colors := graph.ColorEdges(g, 6, []float64{15, 3, 1, 1, 1, 1}, rng)
	n := g.N()
	t := &Table{
		ID:     "E10",
		Title:  fmt.Sprintf("frequent monochromatic triangles (§1.2.2), %s n=%d c=6", tp, n),
		Claim:  "n^(1+o(1))/√μ + log m·(ε⁻¹·log(Δε⁻¹/μ)+D) rounds",
		Header: []string{"mu", "listRounds", "sketchRounds", "refineRounds", "heavyColors", "monoTris"},
	}
	for _, mu := range []int64{int64(n), int64(4 * n)} {
		start := time.Now()
		res, err := trianglestats.Run(trianglestats.Config{
			G: g, Colors: colors, Mu: mu, Eps: 0.2, Seed: seed,
		})
		if err != nil {
			panic(err)
		}
		t.AddRow(mu, res.ListingRounds, res.SketchRounds, res.RefineRounds,
			fmt.Sprint(res.HeavyColors), res.MonoTriangles)
		t.AddRecord(Record{
			Exp:       "E10",
			Topo:      tp.String(),
			Params:    P("mu", mu, "eps", 0.2),
			Mu:        mu,
			Rounds:    res.ListingRounds + res.SketchRounds + res.RefineRounds,
			Messages:  res.Messages,
			PeakWords: res.PeakWords,
			WallTime:  time.Since(start),
		})
	}
	return t
}

// E11E12 sweeps the Lemma A.2/A.3 round–space tradeoff parameter α in
// the triangle listing: space ÷α at the cost of rounds ×α².
func E11E12(tp topo.Spec, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	g := buildGraph("E11/E12", tp, rng)
	n := g.N()
	t := &Table{
		ID:     "E11/E12",
		Title:  fmt.Sprintf("round–space tradeoff α (Lemmas A.2/A.3), triangle listing %s n=%d", tp, n),
		Claim:  "space ⌈deg/α⌉·polylog, rounds ×α²",
		Header: []string{"alpha", "rounds", "peakWords", "rounds/alpha^2"},
	}
	for _, alpha := range []int{1, 2, 4} {
		start := time.Now()
		_, res, err := clique.RunMuCongestTriangles(clique.MuTriangleConfig{
			G: g, Mu: int64(n), Alpha: alpha,
		}, sim.WithSeed(seed))
		if err != nil {
			panic(err)
		}
		t.AddRow(alpha, res.Rounds, res.MaxPeakWords(),
			float64(res.Rounds)/float64(alpha*alpha))
		t.AddRecord(recordOf("E11/E12", tp, int64(n), P("alpha", alpha), res, time.Since(start)))
	}
	t.Notes = append(t.Notes,
		"rounds/α² roughly flat ⇒ the Lemma A.2 round inflation",
		"at this scale peak memory is dominated by the input adjacency and μ-sized "+
			"chunks, not the routing embedding; the space side of the tradeoff is "+
			"isolated in expander.TestRouterAlphaTradeoffCharges")
	return t
}

// E13 is the sketch-resilience family: the four mergeable summary kinds
// (MG, GK, CountMin, AMS) aggregated up a BFS tree under seeded message
// loss (sim.WithFaults), sweeping the loss rate. The aggregation is the
// natural loss-tolerant variant of the Section 3 merge protocols: each
// node ships its merged summary to its parent as M one-word messages in
// one level-synchronous wave, and a parent merges a child's summary only
// if all M words arrived — a single lost word discards that child's
// whole subtree contribution. Coverage (fraction of the global stream
// the root summary absorbed) and the kind's accuracy metric then
// degrade gracefully and measurably with p, while peak memory tracks
// how many complete child buffers survived. Every record carries the
// fault-plan spec in its params, so downstream consumers can split
// fault-free from faulty provenance.
func E13(tp topo.Spec, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	g := buildGraph("E13", tp, rng)
	mustConnected("E13", tp, g)
	n := g.N()

	// Deterministic BFS tree from node 0 (children in id order).
	const root = 0
	depth := make([]int, n)
	parent := make([]int, n)
	children := make([][]int, n)
	for v := range depth {
		depth[v], parent[v] = -1, -1
	}
	depth[root] = 0
	queue := []int{root}
	maxDepth := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if depth[u] < 0 {
				depth[u] = depth[v] + 1
				parent[u] = v
				children[v] = append(children[v], u)
				if depth[u] > maxDepth {
					maxDepth = depth[u]
				}
				queue = append(queue, u)
			}
		}
	}

	// Shared workload: the E8-style Zipf stream, plus the exact answers
	// every kind's error metric compares against.
	items := make([][]int64, n)
	z := rand.NewZipf(rng, 1.25, 1, 29)
	var m int64
	exact := map[int64]int64{}
	var all []int64
	for v := range items {
		for i := 0; i < 50; i++ {
			x := int64(z.Uint64()) + 1
			items[v] = append(items[v], x)
			exact[x]++
			m++
			all = append(all, x)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var exactF2 float64
	for _, c := range exact {
		exactF2 += float64(c) * float64(c)
	}
	// rankErr is the normalized rank error of a quantile answer v for
	// target rank phi·m, against the sorted exact stream.
	rankErr := func(v int64, phi float64) float64 {
		lo := sort.Search(len(all), func(i int) bool { return all[i] >= v })
		hi := sort.Search(len(all), func(i int) bool { return all[i] > v })
		target := phi * float64(m)
		lod, hid := target-float64(hi), float64(lo)-target
		e := lod
		if hid > e {
			e = hid
		}
		if e < 0 {
			e = 0
		}
		return e / float64(m)
	}

	kinds := []struct {
		name string
		kind stream.Kind
		err  func(sum stream.Summary) float64
	}{
		{"MG", sketch.NewMGKind(9), func(sum stream.Summary) float64 {
			mg := sum.(*sketch.MG)
			var maxErr int64
			for x := int64(1); x <= 30; x++ {
				if d := exact[x] - mg.Estimate(x); d > maxErr {
					maxErr = d
				}
			}
			return float64(maxErr)
		}},
		{"GK", sketch.NewGKKind(0.1, m), func(sum stream.Summary) float64 {
			gk := sum.(*sketch.GK)
			var worst float64
			for _, phi := range []float64{0.25, 0.5, 0.75} {
				if e := rankErr(gk.Query(phi), phi); e > worst {
					worst = e
				}
			}
			return worst
		}},
		{"CountMin", sketch.NewCountMinKind(4, 32, seed), func(sum stream.Summary) float64 {
			cm := sum.(*sketch.CountMin)
			var maxErr int64
			for x := int64(1); x <= 30; x++ {
				d := cm.Estimate(x) - exact[x]
				if d < 0 {
					d = -d
				}
				if d > maxErr {
					maxErr = d
				}
			}
			return float64(maxErr)
		}},
		{"AMS", sketch.NewAMSKind(4, 16, seed), func(sum stream.Summary) float64 {
			d := float64(sum.(*sketch.AMS).EstimateF2()) - exactF2
			if d < 0 {
				d = -d
			}
			return d / exactF2
		}},
	}

	t := &Table{
		ID:     "E13",
		Title:  fmt.Sprintf("sketch resilience under message loss, %s n=%d depth=%d", tp, n, maxDepth),
		Claim:  "complete-subtree merge: coverage and accuracy degrade gracefully in the loss rate p",
		Header: []string{"kind", "loss", "rounds", "coverage", "err", "peakWords", "faultDrops"},
	}
	for _, k := range kinds {
		M := k.kind.M()
		for _, loss := range []float64{0, 0.01, 0.05, 0.1, 0.2} {
			var plan sim.FaultPlan
			if loss > 0 {
				plan = sim.FaultPlan{Loss: true, LossP: loss}
			}
			start := time.Now()
			sum, res := runE13Tree(g, k.kind, items, depth, parent, children, maxDepth, plan, seed)
			coverage := 0.0
			if m > 0 {
				coverage = float64(summaryCount(sum)) / float64(m)
			}
			errVal := k.err(sum)
			t.AddRow(k.name, loss, res.Rounds, coverage, errVal, res.MaxPeakWords(), res.FaultDrops)
			t.AddRecord(recordOf("E13", tp, 0,
				P("kind", k.name, "M", M, "loss", loss, "faults", plan.String()),
				res, time.Since(start)))
		}
	}
	t.Notes = append(t.Notes,
		"loss=0 ⇒ coverage 1 and the kind's fault-free error bound holds",
		"coverage falls with p (a lost word discards the child's whole subtree summary)",
		"a child survives with probability (1-p)^M, so resilience is exponentially "+
			"sensitive to M: large-M kinds (GK here) lose subtrees at far lower p than compact ones",
		"peakWords shrinks with p: incomplete child buffers hold fewer delivered words")
	return t
}

// runE13Tree executes one loss-swept aggregation: every node inserts its
// local items, waits for its children's wave, merges the complete child
// summaries in child order, and ships its own M words to its parent in
// its level's wave round (edge cap M: one wave round per level). All
// nodes tick in lockstep for exactly maxDepth rounds so every message
// finds a live destination; only the fault layer drops words.
func runE13Tree(g *graph.Graph, kind stream.Kind, items [][]int64,
	depth, parent []int, children [][]int, maxDepth int,
	plan sim.FaultPlan, seed int64) (stream.Summary, *sim.Result) {
	M := kind.M()
	n := g.N()
	sums := make([]stream.Summary, n)
	e := sim.New(g, sim.WithSeed(seed), sim.WithEdgeCap(M), sim.WithFaults(plan))
	res, err := e.Run(func(c *sim.Ctx) {
		id := c.ID()
		own := kind.New()
		stream.InsertAll(own, items[id])
		c.Charge(int64(M))
		kids := children[id]
		bufs := make([][]int64, len(kids))
		cnt := make([]int, len(kids))
		slot := make(map[int]int, len(kids))
		for i, u := range kids {
			slot[u] = i
		}
		merge := func() {
			for i := range kids {
				if cnt[i] == M {
					own.(stream.OneWayMergeable).MergeFrom(bufs[i])
				}
				c.Release(int64(cnt[i]))
			}
		}
		sendRound := maxDepth - depth[id]
		for r := 0; r < maxDepth; r++ {
			if r == sendRound && id != 0 {
				merge()
				p := c.PortOf(parent[id])
				for i, w := range own.Words() {
					c.Send(p, sim.Msg{Kind: 13, A: int64(i), B: w})
				}
			}
			for _, in := range c.Tick() {
				i := slot[in.From]
				if bufs[i] == nil {
					bufs[i] = make([]int64, M)
				}
				bufs[i][in.Msg.A] = in.Msg.B
				cnt[i]++
				c.Charge(1)
			}
		}
		if id == 0 {
			merge()
			sums[0] = kind.FromWords(append([]int64(nil), own.Words()...))
		}
	})
	if err != nil {
		panic(fmt.Sprintf("bench: E13: %v", err))
	}
	return sums[0], res
}

// summaryCount reads the absorbed-element count every E13 kind exposes.
func summaryCount(sum stream.Summary) int64 {
	switch s := sum.(type) {
	case *sketch.MG:
		return s.Count()
	case *sketch.GK:
		return s.Count()
	case *sketch.CountMin:
		return s.Count()
	case *sketch.AMS:
		return s.Count()
	}
	panic(fmt.Sprintf("bench: E13: summary %T has no count", sum))
}
