// Package bench is the experiment harness: one runner per experiment of
// README.md’s experiment map (E1–E12), each producing a table with the paper’s
// theory column next to the measured column plus structured Records
// that the CSV/JSON emitters serialize for downstream tools (plots,
// regression gates). Every runner builds its workload graph from a
// topo.Spec, so any experiment can be re-run on any registered
// topology family. cmd/muexp prints or serializes the results;
// bench_test.go wraps the runners in testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: the human-readable rendering
// (Header/Rows/Notes) plus the machine-readable Records that the CSV
// and JSON emitters serialize.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper claim being reproduced
	Header []string
	Rows   [][]string
	Notes  []string
	// Records holds one structured Record per simulated execution, in
	// emission order. The grid runner stamps Cell, Seed and Row.
	Records []Record
}

// AddRecord appends one structured run record.
func (t *Table) AddRecord(r Record) { t.Records = append(t.Records, r) }

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(w, "paper: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		// Rows may carry more cells than the header; grow widths so the
		// extra columns render instead of panicking in line().
		for len(widths) < len(r) {
			widths = append(widths, 0)
		}
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}
