package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestFprintAlignsColumns(t *testing.T) {
	tb := &Table{
		ID:     "T",
		Title:  "title",
		Claim:  "claim",
		Header: []string{"a", "long-header"},
	}
	tb.AddRow("wide-cell", 1)
	tb.AddRow("x", 2.5)
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "wide-cell  1") {
		t.Fatalf("misaligned render:\n%s", out)
	}
	if !strings.Contains(out, "2.50") {
		t.Fatalf("float cell not formatted:\n%s", out)
	}
}

func TestFprintRowWiderThanHeader(t *testing.T) {
	// Regression: a row with more cells than the header used to index
	// widths out of range and panic. The extra cells must render.
	tb := &Table{
		ID:     "T",
		Title:  "ragged",
		Claim:  "claim",
		Header: []string{"only-col"},
	}
	tb.AddRow("a", "extra-1", "extra-2")
	tb.AddRow("b")
	var buf bytes.Buffer
	tb.Fprint(&buf) // must not panic
	out := buf.String()
	for _, want := range []string{"only-col", "extra-1", "extra-2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in render:\n%s", want, out)
		}
	}
}

func TestFprintEmptyRows(t *testing.T) {
	tb := &Table{ID: "T", Title: "empty", Claim: "c", Header: []string{"h"}}
	var buf bytes.Buffer
	tb.Fprint(&buf)
	if !strings.Contains(buf.String(), "h") {
		t.Fatal("header missing")
	}
}
