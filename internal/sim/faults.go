package sim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Fault injection: seeded, deterministic failure processes layered on
// the engine's existing phase structure. A FaultPlan composes up to
// three independent processes:
//
//   - message loss   — every routed message is dropped i.i.d. with
//     probability p, after the usual finished-destination drop check;
//   - node crash     — every live node crashes i.i.d. per round with
//     probability p, parks for `restart` rounds, then restarts through
//     its Program/StepProgram from scratch (Ctx.Restarts counts);
//   - edge churn     — every undirected edge goes down i.i.d. per
//     round with probability p and stays down for `up` rounds;
//     messages routed over a down edge are dropped.
//
// All three draw from dedicated RNG streams keyed (seed, round, shard)
// via FaultStreamSeed — never from the engine's OrderRandom streams or
// the node RNGs — so enabling faults does not perturb any existing
// stream, fault-free runs reproduce every historical golden digest,
// and faulty runs are bit-for-bit identical across worker counts and
// across the goroutine/step execution modes. The refsim reference
// engine reproduces the draws from the exported derivation alone; the
// differential harness certifies the parity.

// FaultPlan selects which fault processes a run injects and with what
// parameters. The zero value injects nothing. Plans parse from and
// print to a spec string in the topo-spec idiom, with clauses joined
// by '+':
//
//	loss:p=0.01
//	crash:p=0.001,restart=5
//	edgedown:p=0.005,up=3
//	loss:p=0.1+crash:p=0.05,restart=2
type FaultPlan struct {
	// Loss enables i.i.d. message loss with probability LossP per
	// routed message.
	Loss  bool
	LossP float64

	// Crash enables i.i.d. node crashes with probability CrashP per
	// live node per round; a crashed node parks for Restart rounds
	// (≥ 1) and then restarts its program from scratch.
	Crash   bool
	CrashP  float64
	Restart int

	// EdgeDown enables i.i.d. edge failures with probability EdgeDownP
	// per undirected edge per round; a failed edge drops messages in
	// both directions for Up rounds (≥ 1).
	EdgeDown  bool
	EdgeDownP float64
	Up        int
}

// Empty reports whether the plan injects no faults at all. Engines
// treat an empty plan exactly like no WithFaults option: the fault
// branches are skipped and no fault stream is ever consumed.
func (p FaultPlan) Empty() bool { return !p.Loss && !p.Crash && !p.EdgeDown }

// RestartDelay returns the crash parking duration in rounds, clamping
// hand-built plans to the minimum of one round (a zero delay would
// schedule the restart at a fault point that has already passed).
func (p FaultPlan) RestartDelay() int {
	if p.Restart < 1 {
		return 1
	}
	return p.Restart
}

// upRounds is RestartDelay's twin for the edge-churn outage length.
func (p FaultPlan) upRounds() int {
	if p.Up < 1 {
		return 1
	}
	return p.Up
}

// String renders the plan in canonical spec form: clauses in the fixed
// order loss, crash, edgedown, every parameter explicit, probabilities
// in shortest round-tripping decimal form. ParseFaults(p.String())
// reproduces p exactly; the empty plan prints as "".
func (p FaultPlan) String() string {
	var parts []string
	if p.Loss {
		parts = append(parts, "loss:p="+formatProb(p.LossP))
	}
	if p.Crash {
		parts = append(parts, fmt.Sprintf("crash:p=%s,restart=%d", formatProb(p.CrashP), p.Restart))
	}
	if p.EdgeDown {
		parts = append(parts, fmt.Sprintf("edgedown:p=%s,up=%d", formatProb(p.EdgeDownP), p.Up))
	}
	return strings.Join(parts, "+")
}

func formatProb(p float64) string { return strconv.FormatFloat(p, 'g', -1, 64) }

// faultNames lists the valid clause names for error messages, sorted.
func faultNames() string {
	names := []string{"loss", "crash", "edgedown"}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// ParseFaults parses a fault-plan spec string. The grammar mirrors the
// topo-spec idiom: '+'-joined clauses of the form name:key=value,...
// with per-clause defaults (loss p=0.01; crash p=0.001, restart=5;
// edgedown p=0.005, up=3). The empty string parses to the empty plan.
func ParseFaults(spec string) (FaultPlan, error) {
	var p FaultPlan
	if spec == "" {
		return p, nil
	}
	for _, clause := range strings.Split(spec, "+") {
		name, rest, _ := strings.Cut(clause, ":")
		name = strings.TrimSpace(name)
		var err error
		switch name {
		case "loss":
			if p.Loss {
				return FaultPlan{}, fmt.Errorf("sim: faults: duplicate clause %q", name)
			}
			p.Loss, p.LossP = true, 0.01
			err = parseFaultArgs(name, rest, map[string]func(string) error{
				"p": func(v string) error { return parseProb(name, v, &p.LossP) },
			})
		case "crash":
			if p.Crash {
				return FaultPlan{}, fmt.Errorf("sim: faults: duplicate clause %q", name)
			}
			p.Crash, p.CrashP, p.Restart = true, 0.001, 5
			err = parseFaultArgs(name, rest, map[string]func(string) error{
				"p":       func(v string) error { return parseProb(name, v, &p.CrashP) },
				"restart": func(v string) error { return parsePosInt(name, "restart", v, &p.Restart) },
			})
		case "edgedown":
			if p.EdgeDown {
				return FaultPlan{}, fmt.Errorf("sim: faults: duplicate clause %q", name)
			}
			p.EdgeDown, p.EdgeDownP, p.Up = true, 0.005, 3
			err = parseFaultArgs(name, rest, map[string]func(string) error{
				"p":  func(v string) error { return parseProb(name, v, &p.EdgeDownP) },
				"up": func(v string) error { return parsePosInt(name, "up", v, &p.Up) },
			})
		default:
			return FaultPlan{}, fmt.Errorf("sim: faults: unknown fault %q (valid: %s)", name, faultNames())
		}
		if err != nil {
			return FaultPlan{}, err
		}
	}
	return p, nil
}

// MustParseFaults is ParseFaults that panics on error, for tests and
// compile-time-known specs.
func MustParseFaults(spec string) FaultPlan {
	p, err := ParseFaults(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// parseFaultArgs applies the clause's key=value arguments through the
// per-parameter setters, enforcing the shared malformed/duplicate/
// unknown-parameter error shapes of the topo-spec idiom.
func parseFaultArgs(clause, rest string, params map[string]func(string) error) error {
	if rest == "" {
		return nil
	}
	seen := map[string]bool{}
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" || v == "" {
			return fmt.Errorf("sim: faults: %s: malformed argument %q (want key=value)", clause, kv)
		}
		set, known := params[k]
		if !known {
			names := make([]string, 0, len(params))
			for name := range params {
				names = append(names, name)
			}
			sort.Strings(names)
			return fmt.Errorf("sim: faults: %s has no parameter %q (valid: %s)", clause, k, strings.Join(names, ", "))
		}
		if seen[k] {
			return fmt.Errorf("sim: faults: %s: duplicate argument %q", clause, k)
		}
		seen[k] = true
		if err := set(v); err != nil {
			return err
		}
	}
	return nil
}

func parseProb(clause, v string, dst *float64) error {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f < 0 || f > 1 || f != f {
		return fmt.Errorf("sim: faults: %s: parameter p=%q is not a probability in [0,1]", clause, v)
	}
	*dst = f
	return nil
}

func parsePosInt(clause, key, v string, dst *int) error {
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return fmt.Errorf("sim: faults: %s: parameter %s=%q is not a positive integer", clause, key, v)
	}
	*dst = n
	return nil
}

// WithFaults applies a fault plan to the run. An empty plan is a no-op:
// the engine keeps its allocation-free fault-free hot path and consumes
// no fault streams, so results are identical to a run without the
// option (the golden digests pin this).
func WithFaults(p FaultPlan) Option {
	return func(e *Engine) {
		e.faults = p
		e.hasFaults = !p.Empty()
	}
}

// Fault stream kinds: the domain-separation tags FaultStreamSeed mixes
// in so the loss, crash and edge-churn processes draw from disjoint
// streams even at equal (seed, round, shard).
const (
	// FaultKindLoss keys the per-shard message-loss streams: shard s's
	// stream for round r is rand.NewSource(FaultStreamSeed(seed, r, s,
	// FaultKindLoss)), consumed once per message that survived the
	// finished/parked/edge-down drops, walking the shard's senders in
	// ascending id and each sender's messages in send order.
	FaultKindLoss uint32 = 1
	// FaultKindCrash keys the per-shard crash streams: consumed once
	// per crash-eligible node (live, not parked, not restarted this
	// round) in ascending id within the shard, at the serial fault
	// point before the round's route phase.
	FaultKindCrash uint32 = 2
	// FaultKindEdge keys the stateless edge-churn draws — see
	// FaultPlan.EdgeIsDown. The "shard" operand of the derivation is
	// repurposed as an edge-endpoint mix, not a shard index.
	FaultKindEdge uint32 = 3
)

// FaultStreamSeed derives the fault-stream seed for one (engine seed,
// round, shard, kind) cell. It is splitmix64-style like ShardStreamSeed
// but mixes a distinct constant tuple plus the kind tag, so fault
// streams never collide with the OrderRandom shard streams or with each
// other. Exported as part of the determinism contract: refsim and the
// production engine must derive every fault decision from this exact
// function so parity is checkable by construction.
func FaultStreamSeed(seed int64, round, shard int, kind uint32) int64 {
	x := uint64(seed)
	x ^= uint64(round)*0xA24BAED4963EE407 + uint64(shard)*0x9FB21C651E98DF25 + uint64(kind)*0xD6E8FEB86659FD93
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// edgeFailsAt draws the stateless per-round edge-failure bit for the
// undirected edge {u, v} (u < v expected): a pure hash of (seed, round,
// edge) compared against p. No stream state is consumed, so engine and
// refsim evaluate it independently at any point with identical results.
//
//muvet:hotpath
func edgeFailsAt(seed int64, round, u, v int, p float64) bool {
	x := uint64(FaultStreamSeed(seed, round, u*0x1F123BB5+v, FaultKindEdge))
	// 53-bit mantissa → uniform in [0,1), the same construction
	// rand.Float64 uses.
	return float64(x>>11)/(1<<53) < p
}

// applyFaults is the engine's serial per-round fault point, run right
// after the barrier wake and before the route phase — the one moment
// every node is quiescent (goroutine nodes parked in Tick's resume
// receive, stepped nodes between phases). It performs the restarts due
// this round, then draws crash decisions from per-shard streams keyed
// (seed, round, shard) in ascending shard and node order. Returns the
// net change to the arrival-barrier population (restarted goroutine
// nodes minus crashed goroutine nodes).
//
// On an aborted run it instead terminates every parked node — their
// goroutines are long unwound, so the engine publishes the done bit
// itself and the route phase harvests them like any other finished
// node, letting the run end.
func (e *Engine) applyFaults() int {
	if e.aborted {
		for i := range e.nodes {
			if rt := &e.nodes[i]; rt.parked && !rt.done {
				rt.done = true
				e.parkedN--
			}
		}
		return 0
	}
	fp := e.faults
	if !fp.Crash && e.parkedN == 0 {
		return 0 // loss/churn-only plan with nothing parked: no per-node walk
	}
	round := e.round
	deltaG := 0
	for s := 0; s < e.nshards; s++ {
		lo := s * ShardSpan
		hi := lo + ShardSpan
		if hi > e.n {
			hi = e.n
		}
		st := e.shards[s]
		if fp.Crash {
			st.frng.Seed(FaultStreamSeed(e.seed, round, s, FaultKindCrash))
		}
		for id := lo; id < hi; id++ {
			rt := &e.nodes[id]
			if rt.parked {
				// A node restarted this round consumes no crash draw and
				// cannot crash again until the next fault point.
				if rt.restartRound == round {
					if e.restartNode(id, rt) {
						deltaG++
					}
				}
				continue
			}
			if rt.done || rt.finished || !fp.Crash {
				continue
			}
			if st.frng.Float64() < fp.CrashP {
				if e.crashNode(id, rt, round) {
					deltaG--
				}
			}
		}
	}
	// Spawn the goroutine-form restarts behind a mini-barrier so every
	// one reaches its first Tick — staging its round-r sends exactly
	// like bindNodes' initial spawn — before routing begins. No other
	// node can arrive concurrently: the whole population is parked.
	if n := len(e.restartG); n > 0 {
		e.arrivals.Store(int64(n))
		gor := e.restartG
		ctxs := e.ctxs
		var next atomic.Int64
		nodeMain := func() {
			g := gor[next.Add(1)-1]
			runNode(&ctxs[g.id], g.fn)
		}
		for range gor {
			go nodeMain()
		}
		<-e.wake
		for i := range e.restartG {
			e.restartG[i] = goSpawn{}
		}
		e.restartG = e.restartG[:0]
	}
	return deltaG
}

// crashNode parks one node: a stepped node's machine is discarded, a
// goroutine node is unwound through the errCrash panic handshake (it is
// parked in Tick; the nil resume plus the crashing flag panic it out,
// and crashAck confirms the goroutine is gone before the fault point
// moves on). The node's staged sends from the round boundary it already
// passed still route — fail-stop at the barrier, not retroactive — but
// from this round on it receives nothing and holds no memory. Reports
// whether a goroutine left the barrier population.
func (e *Engine) crashNode(id int, rt *nodeRT, round int) (wasGoroutine bool) {
	if rt.step != nil {
		rt.step = nil
	} else {
		rt.crashing = true
		rt.resume <- nil
		<-e.crashAck
		rt.crashing = false
		wasGoroutine = true
	}
	rt.parked = true
	rt.restartRound = round + e.faults.RestartDelay()
	rt.live = 0
	rt.inboxWords = 0
	rt.inbox = rt.inbox[:0]
	e.crashes++
	e.parkedN++
	return wasGoroutine
}

// restartNode revives a parked node through the bound Program, exactly
// like run-start binding: the Ctx slot is rebuilt from scratch (fresh
// topology views, a private RNG replaying its stream from the start, a
// reset bandwidth meter, Round() back at 0 — only Restarts() tells a
// restarted execution from a fresh one), Node is re-invoked, and a
// stepped node runs its first step inline while a goroutine node is
// staged for the mini-barrier spawn. Emitted outputs, the peak-memory
// high-water mark and any recorded μ violation survive the crash.
func (e *Engine) restartNode(id int, rt *nodeRT) (isGoroutine bool) {
	rt.parked = false
	rt.restartRound = 0
	rt.restarts++
	rt.ticks = 0
	e.restarts++
	e.parkedN--
	c := &e.ctxs[id]
	c.nbr, c.prt, c.rng = nil, nil, nil
	c.outbox = c.outbox[:0]
	clear(c.sent)
	c.sentRound = 0
	c = newCtx(e, e.ctxs, id)
	step, fn := e.prog.Node(c)
	if step != nil {
		rt.step = step
		e.stepNode(c, rt)
		return false
	}
	if fn == nil {
		panic(fmt.Sprintf("sim: Program.Node returned neither form (nil StepProgram and nil func) for node %d", id))
	}
	rt.step = nil
	if rt.resume == nil {
		rt.resume = make(chan []Incoming, 1)
	}
	e.restartG = append(e.restartG, goSpawn{id: id, fn: fn})
	return true
}

// EdgeIsDown reports whether the undirected edge {u, v} is down at
// round r: some round in the window [r-up+1, r] drew a failure. The
// check is a pure function of (seed, round, edge) — O(up) hash
// evaluations, no state — so routing workers evaluate it on the fly
// without any per-edge bookkeeping, in any order, on any engine.
//
//muvet:hotpath
func (p FaultPlan) EdgeIsDown(seed int64, round, u, v int) bool {
	if !p.EdgeDown {
		return false
	}
	if u > v {
		u, v = v, u
	}
	lo := round - p.upRounds() + 1
	if lo < 0 {
		lo = 0
	}
	for r := lo; r <= round; r++ {
		if edgeFailsAt(seed, r, u, v, p.EdgeDownP) {
			return true
		}
	}
	return false
}
