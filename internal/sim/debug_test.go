//go:build simdebug

package sim

import "testing"

// TestPoisonStaleInbox deliberately violates the Tick aliasing contract
// (retaining the returned slice past the next Tick) and asserts that
// simdebug poisoning turns the stale read into sentinel values instead
// of silently stale or clobbered messages.
func TestPoisonStaleInbox(t *testing.T) {
	var stale []Incoming
	e := New(newPath(2), WithSeed(1))
	if _, err := e.Run(func(c *Ctx) {
		c.SendID(1-c.ID(), Msg{Kind: 7, A: int64(c.ID())})
		in := c.Tick()
		if c.ID() == 0 {
			//muvet:allow inboxalias(this test violates the contract on purpose to assert simdebug poisoning catches it)
			stale = in
		}
		c.Tick()
	}); err != nil {
		t.Fatal(err)
	}
	if len(stale) != 1 {
		t.Fatalf("retained inbox has %d messages, want 1", len(stale))
	}
	if stale[0].From != -1 || stale[0].Msg.Kind != -1 {
		t.Fatalf("retained message = %+v, want poisoned sentinels (From/Kind = -1)", stale[0])
	}
}
