package sim

import (
	"runtime/debug"
	"testing"

	"mucongest/internal/graph"
)

// TestSteadyStateRoundAllocFree pins the engine's steady-state round
// path to zero allocations per round: every buffer the round loop
// touches — staged outboxes, transfer buckets, inboxes, the bandwidth
// meter, the barrier — must be reused once warmed up. It measures the
// allocation *delta* between a short run and a long run of the same
// broadcast workload on a mid-size multi-shard cycle, so setup and
// warm-up allocations (goroutines, channels on a cold scratch pool,
// first-round buffer growth) cancel out and only the per-round cost
// remains.
func TestSteadyStateRoundAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc accounting is meaningless under -race")
	}
	// A GC cycle mid-measurement evicts the engine's scratch pool, and
	// the following run's full re-setup (~hundreds of allocs) would land
	// in the delta as a false positive. Alloc accounting, not memory
	// behavior, is under test — so pause GC for its duration.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	topo := graph.Cycle(2048) // 4 shards: the sharded delivery path, not the n ≤ 512 degenerate case
	const n = 2048
	const base, long = 8, 40
	var runErr error
	run := func(rounds int, workers int) {
		e := New(topo, WithSeed(1), WithSimWorkers(workers))
		program := func(c *Ctx) {
			for r := 0; r < rounds; r++ {
				c.Broadcast(Msg{Kind: 1, A: int64(c.ID()), B: int64(r)})
				c.Tick()
			}
		}
		if _, err := e.Run(program); err != nil && runErr == nil {
			runErr = err
		}
	}
	// The empty-plan twin pins that merely passing WithFaults with a
	// zero FaultPlan keeps the allocation-free hot path: hasFaults stays
	// false, so no fault branch, stream or scratch is ever touched.
	runEmptyFaults := func(rounds int, workers int) {
		e := New(topo, WithSeed(1), WithSimWorkers(workers), WithFaults(FaultPlan{}))
		program := func(c *Ctx) {
			for r := 0; r < rounds; r++ {
				c.Broadcast(Msg{Kind: 1, A: int64(c.ID()), B: int64(r)})
				c.Tick()
			}
		}
		if _, err := e.Run(program); err != nil && runErr == nil {
			runErr = err
		}
	}
	// The step-mode twin drives the same broadcast workload through the
	// goroutine-free runtime: its per-round path (step dispatch, inline
	// Step calls, outbox staging) must be exactly as allocation-free as
	// the goroutine path. The machines are pre-allocated outside the
	// measured runs, mirroring how the goroutine closure is shared.
	stepProgs := make([]allocBroadcastStep, n)
	runStep := func(rounds int, workers int) {
		for i := range stepProgs {
			stepProgs[i] = allocBroadcastStep{rounds: rounds}
		}
		e := New(topo, WithSeed(1), WithSimWorkers(workers))
		prog := Steps(func(c *Ctx) StepProgram { return &stepProgs[c.ID()] })
		if _, err := e.RunProgram(prog); err != nil && runErr == nil {
			runErr = err
		}
	}
	for _, mode := range []struct {
		name string
		run  func(rounds, workers int)
	}{{"goroutine", run}, {"step", runStep}, {"emptyfaults", runEmptyFaults}} {
		for _, workers := range []int{1, 4} {
			short := testing.AllocsPerRun(5, func() { mode.run(base, workers) })
			full := testing.AllocsPerRun(5, func() { mode.run(long, workers) })
			if runErr != nil {
				t.Fatal(runErr)
			}
			perRound := (full - short) / float64(long-base)
			// Zero, with only float headroom: a real regression (per-node or
			// per-message allocation) costs thousands per round at n=2048.
			if perRound > 0.01 {
				t.Errorf("mode=%s workers=%d: steady-state round allocates: %.2f allocs/round (short=%.0f, long=%.0f)",
					mode.name, workers, perRound, short, full)
			}
		}
	}
}

// allocBroadcastStep is the step-form twin of the broadcast program in
// TestSteadyStateRoundAllocFree.
type allocBroadcastStep struct{ rounds, r int }

func (s *allocBroadcastStep) Step(c *Ctx, in []Incoming) bool {
	if s.r >= s.rounds {
		return false
	}
	c.Broadcast(Msg{Kind: 1, A: int64(c.ID()), B: int64(s.r)})
	s.r++
	return true
}
