package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"mucongest/internal/graph"
)

// detProgram is a mixed workload for the determinism regression tests:
// per-node-RNG-driven sends, inbox-order-sensitive folds, early node
// termination (so some messages are dropped) and memory traffic.
func detProgram(c *Ctx) {
	c.Charge(int64(c.ID()%3 + 1))
	for r := 0; r < 8; r++ {
		for _, u := range c.Neighbors() {
			if c.Rand().Intn(2) == 0 {
				c.SendID(u, Msg{Kind: 1, A: int64(c.ID()), B: int64(r), C: c.Rand().Int63n(1 << 20)})
			}
		}
		in := c.Tick()
		var h int64
		for i, m := range in {
			// Order-sensitive fold: any change in inbox ordering changes h.
			h = h*1_000_003 + int64(m.From+1)*31 + m.Msg.C + int64(i+1)
		}
		c.Emit(h)
		if c.ID()%5 == 2 && r == 3 {
			return // early finish: later messages to this node are dropped
		}
	}
}

// Golden digests of detProgram's externally visible execution record,
// recorded on the pre-bucketed-routing engine. Shared between the
// goroutine-mode regressions below and the step-mode parity suite
// (step_test.go): both execution modes must reproduce the same
// constants bit for bit, for every InboxOrder and worker count.
var (
	// NewComplete(12), seed 42 — single shard.
	goldenComplete12 = map[InboxOrder]uint64{
		OrderBySender: 0x1869edabe99e8f71,
		OrderRandom:   0x4a46a3b848ff6d9e,
		OrderReversed: 0xb1ba131f94737889,
	}
	// graph.Cycle(1536), seed 7 — 3 shards, uniform degree.
	goldenCycle1536 = map[InboxOrder]uint64{
		OrderBySender: 0x5063c57af0676ab3,
		OrderRandom:   0xc666c7d3c587cf4b,
		OrderReversed: 0xc92d294f547ec64b,
	}
	// graph.BarabasiAlbert(1536, 3, rng seed 13), seed 7 — 3 shards,
	// heavy-tailed degree.
	goldenPowerlaw1536 = map[InboxOrder]uint64{
		OrderBySender: 0xc407122fa3770141,
		OrderRandom:   0x8466b52c996b7f7b,
		OrderReversed: 0x34a9fe10e8b1bd5e,
	}
)

// digestResult folds the externally visible execution record into one
// hash: Rounds, Messages, Dropped, Outputs and PeakWords.
func digestResult(res *Result) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "r=%d m=%d d=%d|", res.Rounds, res.Messages, res.Dropped)
	for i, out := range res.Outputs {
		fmt.Fprintf(h, "o%d:%v|", i, out)
	}
	for i, p := range res.PeakWords {
		fmt.Fprintf(h, "p%d:%d|", i, p)
	}
	return h.Sum64()
}

func runDet(t *testing.T, order InboxOrder, seed int64, opts ...Option) *Result {
	t.Helper()
	e := New(NewComplete(12), append([]Option{WithSeed(seed), WithInboxOrder(order)}, opts...)...)
	res, err := e.Run(detProgram)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDeterminismRegression runs the same program twice with equal seeds
// under every InboxOrder and requires identical Rounds, Messages,
// Outputs and PeakWords. It also pins each digest to a golden value
// recorded on the pre-bucketed-routing engine, so the O(m) routing
// rewrite is provably bit-for-bit compatible (including the engine-RNG
// consumption order of OrderRandom).
func TestDeterminismRegression(t *testing.T) {
	for order, want := range goldenComplete12 {
		a := runDet(t, order, 42)
		b := runDet(t, order, 42)
		if a.Rounds != b.Rounds || a.Messages != b.Messages || a.Dropped != b.Dropped {
			t.Fatalf("order %v: totals differ across equal-seed runs: %+v vs %+v", order, a, b)
		}
		for i := range a.Outputs {
			if fmt.Sprint(a.Outputs[i]) != fmt.Sprint(b.Outputs[i]) {
				t.Fatalf("order %v: node %d outputs differ: %v vs %v", order, i, a.Outputs[i], b.Outputs[i])
			}
			if a.PeakWords[i] != b.PeakWords[i] {
				t.Fatalf("order %v: node %d peak differs: %d vs %d", order, i, a.PeakWords[i], b.PeakWords[i])
			}
		}
		if got := digestResult(a); got != want {
			t.Errorf("order %v: digest = %#x, want golden %#x", order, got, want)
		}
		// The sharded delivery path must hit the same goldens for every
		// worker count (here a single shard: the pool is capped at the
		// shard count, pinning the serial-inline degradation).
		for _, w := range []int{2, 4, 0} {
			if got := digestResult(runDet(t, order, 42, WithSimWorkers(w))); got != want {
				t.Errorf("order %v, workers %d: digest = %#x, want golden %#x", order, w, got, want)
			}
		}
	}
}

// TestShardedDeterminismAcrossWorkers pins the tentpole invariant of the
// sharded delivery path on a topology spanning multiple shards
// (n = 1536 > ShardSpan, i.e. 3 shards): for every InboxOrder the digest
// is a golden constant, bit-for-bit identical for every worker count —
// including OrderRandom, whose permutations draw from per-shard RNG
// streams derived only from the engine seed and the shard layout.
//
// The strict sweep runs the same workload in strict-memory mode with a
// μ no node ever reaches: strict runs split the fused account+resume
// phase into separate barriers, so the digests prove the split path and
// the fused fast path are observably identical under the zero-channel
// barrier.
func TestShardedDeterminismAcrossWorkers(t *testing.T) {
	if n := 3 * ShardSpan; n != 1536 {
		t.Fatalf("ShardSpan changed (%d); re-deriving the golden digests below is required", ShardSpan)
	}
	topo := graph.Cycle(1536)
	for order, want := range goldenCycle1536 {
		for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
			for _, strict := range []bool{false, true} {
				opts := []Option{WithSeed(7), WithInboxOrder(order), WithSimWorkers(w)}
				if strict {
					opts = append(opts, WithMu(1<<40), WithStrictMemory())
				}
				e := New(topo, opts...)
				res, err := e.Run(detProgram)
				if err != nil {
					t.Fatal(err)
				}
				if got := digestResult(res); got != want {
					t.Errorf("order %v, workers %d, strict %v: digest = %#x, want golden %#x",
						order, w, strict, got, want)
				}
			}
		}
	}
}

// TestNodeErrorAbortDeterministicAcrossWorkers pins the abort path of
// the zero-channel barrier on a multi-shard topology: two nodes in
// different shards fail at the same barrier, and for every worker count
// the run must (a) report the lowest-id failure — error harvesting
// walks shards and node ids in ascending order, where the old serial
// collect loop reported whichever signal happened to arrive first —
// and (b) produce an identical Result for the rounds that completed.
func TestNodeErrorAbortDeterministicAcrossWorkers(t *testing.T) {
	topo := graph.Cycle(1536)
	program := func(c *Ctx) {
		for r := 0; ; r++ {
			for _, u := range c.Neighbors() {
				c.SendID(u, Msg{Kind: 1, A: int64(c.ID()), B: int64(r)})
			}
			in := c.Tick()
			var h int64
			for i, m := range in {
				h = h*1_000_003 + int64(m.From+1)*31 + int64(i+1)
			}
			c.Emit(h)
			if r == 2 && (c.ID() == 300 || c.ID() == 900) {
				panic(fmt.Sprintf("node %d exploded", c.ID()))
			}
		}
	}
	var wantDigest uint64
	var wantErr string
	for i, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		e := New(topo, WithSeed(7), WithSimWorkers(w))
		res, err := e.Run(program)
		if err == nil {
			t.Fatalf("workers %d: expected node panic to surface as run error", w)
		}
		// Node 300 lives in shard 0, node 900 in shard 1; the harvest
		// must deterministically pick node 300.
		if want := "node 300 exploded"; !strings.Contains(err.Error(), want) {
			t.Fatalf("workers %d: err = %v, want the lowest failing node's error (%q)", w, err, want)
		}
		got := digestResult(res)
		if i == 0 {
			wantDigest, wantErr = got, err.Error()
			continue
		}
		if got != wantDigest {
			t.Errorf("workers %d: abort-run digest = %#x, want %#x", w, got, wantDigest)
		}
		if err.Error() != wantErr {
			t.Errorf("workers %d: err = %q, want %q", w, err.Error(), wantErr)
		}
	}
}

// TestShardedDeterminismPowerlaw extends the golden digest pinning to a
// skewed-degree topology: a 3-shard Barabási–Albert graph, whose hubs
// concentrate routing into a few destinations (the opposite load shape
// of the uniform cycle above). For every InboxOrder the digest is a
// golden constant, bit-for-bit identical for every worker count.
func TestShardedDeterminismPowerlaw(t *testing.T) {
	if ShardSpan != 512 {
		t.Fatalf("ShardSpan changed (%d); re-deriving the golden digests below is required", ShardSpan)
	}
	topo := graph.BarabasiAlbert(1536, 3, rand.New(rand.NewSource(13)))
	for order, want := range goldenPowerlaw1536 {
		for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
			e := New(topo, WithSeed(7), WithInboxOrder(order), WithSimWorkers(w))
			res, err := e.Run(detProgram)
			if err != nil {
				t.Fatal(err)
			}
			if got := digestResult(res); got != want {
				t.Errorf("order %v, workers %d: digest = %#x, want golden %#x", order, w, got, want)
			}
		}
	}
}
