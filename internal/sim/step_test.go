package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"mucongest/internal/graph"
)

// detStep is the step-form twin of detProgram: call k executes exactly
// the code detProgram runs between its (k-1)-th and k-th Tick. The
// parity suite below requires it to reproduce detProgram's golden
// digests bit for bit — same RNG draw order, same sends, same emits,
// same early termination, same tick counts.
type detStep struct {
	r int // completed rounds (== ticks performed so far)
}

func (s *detStep) Step(c *Ctx, in []Incoming) bool {
	if s.r > 0 {
		var h int64
		for i, m := range in {
			h = h*1_000_003 + int64(m.From+1)*31 + m.Msg.C + int64(i+1)
		}
		c.Emit(h)
		if c.ID()%5 == 2 && s.r-1 == 3 {
			return false // early finish: later messages to this node are dropped
		}
		if s.r >= 8 {
			return false
		}
	} else {
		c.Charge(int64(c.ID()%3 + 1))
	}
	for _, u := range c.Neighbors() {
		if c.Rand().Intn(2) == 0 {
			c.SendID(u, Msg{Kind: 1, A: int64(c.ID()), B: int64(s.r), C: c.Rand().Int63n(1 << 20)})
		}
	}
	s.r++
	return true
}

// detSteps is the Steps program running detStep on every node.
var detSteps = Steps(func(c *Ctx) StepProgram { return new(detStep) })

// TestStepGoroutineModeParity is the step-mode twin of the golden
// determinism suite: the three historical corpora (single-shard
// complete, 3-shard cycle, 3-shard powerlaw), every InboxOrder, workers
// {1,2,4,max} and both strictness settings must reproduce the exact
// digests recorded on the goroutine engine — the step runtime is not
// allowed to perturb a single byte of the execution record.
func TestStepGoroutineModeParity(t *testing.T) {
	corpora := []struct {
		name   string
		topo   Topology
		seed   int64
		golden map[InboxOrder]uint64
	}{
		{"complete12", NewComplete(12), 42, goldenComplete12},
		{"cycle1536", graph.Cycle(1536), 7, goldenCycle1536},
		{"powerlaw1536", graph.BarabasiAlbert(1536, 3, rand.New(rand.NewSource(13))), 7, goldenPowerlaw1536},
	}
	for _, cp := range corpora {
		for order, want := range cp.golden {
			for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
				for _, strict := range []bool{false, true} {
					opts := []Option{WithSeed(cp.seed), WithInboxOrder(order), WithSimWorkers(w)}
					if strict {
						opts = append(opts, WithMu(1<<40), WithStrictMemory())
					}
					res, err := New(cp.topo, opts...).RunProgram(detSteps)
					if err != nil {
						t.Fatalf("%s order %v workers %d strict %v: %v", cp.name, order, w, strict, err)
					}
					if got := digestResult(res); got != want {
						t.Errorf("%s order %v workers %d strict %v: step digest = %#x, want goroutine golden %#x",
							cp.name, order, w, strict, got, want)
					}
				}
			}
		}
	}
}

// mixedDet runs detStep on even nodes and the blocking detProgram on
// odd nodes in the same run: the generic bind path, the split barrier
// population and the per-node dispatch must still reproduce the
// all-goroutine goldens.
type mixedDet struct{}

func (mixedDet) Node(c *Ctx) (StepProgram, func(*Ctx)) {
	if c.ID()%2 == 0 {
		return new(detStep), nil
	}
	return nil, detProgram
}

func TestMixedModeParity(t *testing.T) {
	topo := graph.Cycle(1536)
	for order, want := range goldenCycle1536 {
		for _, w := range []int{1, 4} {
			res, err := New(topo, WithSeed(7), WithInboxOrder(order), WithSimWorkers(w)).RunProgram(mixedDet{})
			if err != nil {
				t.Fatal(err)
			}
			if got := digestResult(res); got != want {
				t.Errorf("order %v workers %d: mixed-mode digest = %#x, want golden %#x", order, w, got, want)
			}
		}
	}
}

// explodeStep is the step twin of TestNodeErrorAbortDeterministicAcrossWorkers'
// program: nodes 300 (shard 0) and 900 (shard 1) panic at the same
// barrier.
type explodeStep struct{ r int }

func (s *explodeStep) Step(c *Ctx, in []Incoming) bool {
	if s.r > 0 {
		var h int64
		for i, m := range in {
			h = h*1_000_003 + int64(m.From+1)*31 + int64(i+1)
		}
		c.Emit(h)
		if s.r-1 == 2 && (c.ID() == 300 || c.ID() == 900) {
			panic(fmt.Sprintf("node %d exploded", c.ID()))
		}
	}
	for _, u := range c.Neighbors() {
		c.SendID(u, Msg{Kind: 1, A: int64(c.ID()), B: int64(s.r)})
	}
	s.r++
	return true
}

// TestStepNodeErrorAbortParity pins the step-mode abort path against
// the goroutine mode: a step program panic must surface as the
// byte-identical run error (lowest failing node, same wrapped string)
// with the byte-identical partial Result, at every worker count.
func TestStepNodeErrorAbortParity(t *testing.T) {
	topo := graph.Cycle(1536)
	blocking := func(c *Ctx) {
		for r := 0; ; r++ {
			for _, u := range c.Neighbors() {
				c.SendID(u, Msg{Kind: 1, A: int64(c.ID()), B: int64(r)})
			}
			in := c.Tick()
			var h int64
			for i, m := range in {
				h = h*1_000_003 + int64(m.From+1)*31 + int64(i+1)
			}
			c.Emit(h)
			if r == 2 && (c.ID() == 300 || c.ID() == 900) {
				panic(fmt.Sprintf("node %d exploded", c.ID()))
			}
		}
	}
	gRes, gErr := New(topo, WithSeed(7)).Run(blocking)
	if gErr == nil {
		t.Fatal("goroutine run: expected node panic to surface as run error")
	}
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		res, err := New(topo, WithSeed(7), WithSimWorkers(w)).
			RunProgram(Steps(func(c *Ctx) StepProgram { return new(explodeStep) }))
		if err == nil {
			t.Fatalf("workers %d: expected step panic to surface as run error", w)
		}
		if want := "node 300 exploded"; !strings.Contains(err.Error(), want) {
			t.Fatalf("workers %d: err = %v, want the lowest failing node's error (%q)", w, err, want)
		}
		if err.Error() != gErr.Error() {
			t.Errorf("workers %d: step err = %q, goroutine err = %q", w, err.Error(), gErr.Error())
		}
		if got, want := digestResult(res), digestResult(gRes); got != want {
			t.Errorf("workers %d: step abort digest = %#x, goroutine %#x", w, got, want)
		}
	}
}

// heldInboxStep is the step twin of TestStrictChargeCountsHeldInbox:
// node 1 still holds a 2-word inbox when it Charges 3 under μ=4 strict,
// so the Charge must abort between barriers — from inside a Step call
// driven inline by a delivery worker.
type heldInboxStep struct{ r int }

func (s *heldInboxStep) Step(c *Ctx, in []Incoming) bool {
	if c.ID() == 1 {
		switch s.r {
		case 0: // receive next round
		case 1:
			c.Charge(3) // 3 live + 2 held inbox words > μ=4: panics ErrMemory here
		default:
			return false
		}
	} else {
		switch s.r {
		case 0:
			c.SendID(1, Msg{})
		case 2:
			return false
		}
	}
	s.r++
	return true
}

func TestStepStrictChargeCountsHeldInbox(t *testing.T) {
	for _, w := range []int{1, 4} {
		e := New(newPath(3), WithMu(4), WithStrictMemory(), WithSimWorkers(w))
		res, err := e.RunProgram(Steps(func(c *Ctx) StepProgram { return new(heldInboxStep) }))
		if !errors.Is(err, ErrMemory) {
			t.Fatalf("workers %d: err = %v, want ErrMemory (live words + held inbox exceed μ)", w, err)
		}
		if res.PeakWords[1] != 5 {
			t.Fatalf("workers %d: PeakWords[1] = %d, want 5 (3 live + 2 held inbox)", w, res.PeakWords[1])
		}
	}
}

// TestStepStrictMemoryAbortsAcrossShards exercises strict-mode barrier
// accounting against a stepped node in a non-zero shard: the split
// account/resume phases must abort before the node is stepped again.
func TestStepStrictMemoryAbortsAcrossShards(t *testing.T) {
	n := ShardSpan + 88
	hot := ShardSpan + 42
	mk := func(c *Ctx) StepProgram { return &shardAbortStep{hot: hot} }
	for _, w := range []int{1, 4} {
		e := New(newPath(n), WithMu(1), WithStrictMemory(), WithSimWorkers(w))
		_, err := e.RunProgram(Steps(mk))
		if !errors.Is(err, ErrMemory) {
			t.Fatalf("workers %d: err = %v, want ErrMemory", w, err)
		}
	}
}

type shardAbortStep struct {
	hot int
	r   int
}

func (s *shardAbortStep) Step(c *Ctx, in []Incoming) bool {
	if s.r >= 2 {
		return false
	}
	if s.r == 0 && c.ID() != s.hot {
		for _, u := range c.Neighbors() {
			if u == s.hot {
				c.SendID(u, Msg{})
			}
		}
	}
	s.r++
	return true
}

// chargeIdleStep is the step twin of TestChargeOnlyViolationCounted's
// program: node 1 holds 5 words over μ=2 across 4 quiet rounds without
// ever receiving a message.
type chargeIdleStep struct{ r int }

func (s *chargeIdleStep) Step(c *Ctx, in []Incoming) bool {
	if s.r == 0 {
		if c.ID() == 1 {
			c.Charge(5)
		}
	} else if s.r >= 4 {
		if c.ID() == 1 {
			c.Release(5)
		}
		return false
	}
	s.r++
	return true
}

// TestStepChargeOnlyOverRounds pins non-strict μ accounting for stepped
// nodes on charge-only rounds: the overrun must be metered at every
// barrier the node stays over μ, even though it never receives anything
// and the worker only touches it to step it.
func TestStepChargeOnlyOverRounds(t *testing.T) {
	for _, w := range []int{1, 4} {
		e := New(newPath(3), WithMu(2), WithSimWorkers(w))
		res, err := e.RunProgram(Steps(func(c *Ctx) StepProgram { return new(chargeIdleStep) }))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 1 {
			t.Fatalf("workers %d: violations = %v, want exactly one", w, res.Violations)
		}
		v := res.Violations[0]
		if v.Node != 1 || v.Round != 0 || v.Words != 5 {
			t.Fatalf("workers %d: first overrun = %+v, want node 1, round 0, 5 words", w, v)
		}
		if v.OverRounds != 4 {
			t.Fatalf("workers %d: OverRounds = %d, want 4 (one per quiet round over μ)", w, v.OverRounds)
		}
	}
}

// foreverStep never terminates; the max-rounds guard must abort the run
// exactly like it aborts blocking programs.
type foreverStep struct{}

func (foreverStep) Step(c *Ctx, in []Incoming) bool { return true }

func TestStepMaxRoundsGuard(t *testing.T) {
	gRes, gErr := New(newPath(2), WithMaxRounds(10)).Run(func(c *Ctx) {
		for {
			c.Tick()
		}
	})
	if !errors.Is(gErr, ErrMaxRounds) {
		t.Fatalf("goroutine err = %v, want ErrMaxRounds", gErr)
	}
	res, err := New(newPath(2), WithMaxRounds(10)).
		RunProgram(Steps(func(c *Ctx) StepProgram { return foreverStep{} }))
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("step err = %v, want ErrMaxRounds", err)
	}
	if err.Error() != gErr.Error() {
		t.Errorf("step err = %q, goroutine err = %q", err.Error(), gErr.Error())
	}
	if got, want := digestResult(res), digestResult(gRes); got != want {
		t.Errorf("step digest = %#x, goroutine %#x", got, want)
	}
}

// tickingStep violates the step contract by calling Tick; the engine
// must fail it as a node error instead of deadlocking the delivery
// worker that drives it.
type tickingStep struct{}

func (tickingStep) Step(c *Ctx, in []Incoming) bool {
	//muvet:allow stepblock(fixture proving the runtime Tick-in-Step guard stepblock enforces statically)
	c.Tick()
	return true
}

func TestStepProgramTickPanics(t *testing.T) {
	_, err := New(newPath(2)).RunProgram(Steps(func(c *Ctx) StepProgram { return tickingStep{} }))
	if err == nil || !strings.Contains(err.Error(), "runs a step program") {
		t.Fatalf("err = %v, want the step-program Tick guard to surface as a node error", err)
	}
	if !strings.Contains(err.Error(), "sim: node 0 panicked") {
		t.Fatalf("err = %v, want the standard node-panic wrapping", err)
	}
}

// TestStepEarlyTerminationDrops mirrors the goroutine-path drop
// semantics: messages addressed to a stepped node that already returned
// false must be counted as dropped, not delivered.
func TestStepEarlyTerminationDrops(t *testing.T) {
	res, err := New(newPath(2)).RunProgram(Steps(func(c *Ctx) StepProgram {
		return &dropProbeStep{}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatalf("dropped = 0, want sends to the terminated stepped node to be dropped (res=%+v)", res)
	}
}

// dropProbeStep: node 0 quits immediately; node 1 keeps sending to it.
type dropProbeStep struct{ r int }

func (s *dropProbeStep) Step(c *Ctx, in []Incoming) bool {
	if c.ID() == 0 {
		return false
	}
	if s.r >= 3 {
		return false
	}
	c.SendID(0, Msg{Kind: 9})
	s.r++
	return true
}
