// Package sim implements a synchronous round-based simulator for the
// μ-CONGEST model of Ben Basat et al. (SPAA 2025): the classic CONGEST
// model (one O(log n)-bit message per directed edge per round) extended
// with a per-node memory budget of μ words.
//
// Each node runs its algorithm as an ordinary Go function on its own
// goroutine; rounds are synchronized with a barrier hidden behind
// Ctx.Tick. The barrier is zero-channel on the node side: each node
// publishes its outbox and termination state into per-node slots and
// decrements one atomic arrival counter — only the last arrival wakes
// the engine, so barrier cost does not funnel n signals through a
// shared channel. Between barriers all nodes compute in parallel, which
// both matches the model (local computation is free) and exploits
// multicore hardware. The engine's own per-round work — barrier
// bookkeeping, routing, inbox ordering, memory accounting, resume — is
// sharded by destination ranges across a worker pool (WithSimWorkers);
// results are bit-for-bit identical for every worker count, so
// parallelism is purely a wall-clock knob.
//
// Model mapping conventions (README.md, "Layout"):
//   - A word is one int64. One Msg is one CONGEST message of O(log n)
//     bits and is accounted as one word of memory while stored.
//   - Bandwidth: at most EdgeCap (default 1) messages per directed edge
//     per round, enforced at send time.
//   - Memory: nodes charge and release words through Ctx; the engine
//     additionally charges the live inbox. Peak usage per node is
//     recorded and compared against μ.
//   - Outputs leave the node via Ctx.Emit and cost no memory, exactly as
//     the μ-CONGEST model prescribes for emitted output words.
package sim

// Msg is a single CONGEST message: an O(log n)-bit payload modeled as a
// small tag plus up to three word-sized fields. A Msg is accounted as
// MsgWords words of node memory while it is stored.
type Msg struct {
	Kind int32
	A    int64
	B    int64
	C    int64
}

// MsgWords is the memory cost, in words, of storing one message.
const MsgWords = 1

// Incoming is a received message together with its provenance.
type Incoming struct {
	From int // sender node id
	Msg  Msg
}

// InboxOrder controls the order in which a round's incoming messages are
// presented to a node. The paper (§4, Discussion) notes that with very
// small memory the arrival order matters; the engine can present inboxes
// sorted, randomly permuted, or adversarially reversed.
type InboxOrder int

const (
	// OrderBySender sorts incoming messages by sender id (deterministic).
	OrderBySender InboxOrder = iota
	// OrderRandom presents messages in a random order drawn from the
	// engine RNG (an oblivious adversary).
	OrderRandom
	// OrderReversed presents messages in decreasing sender id (a simple
	// adversarial order).
	OrderReversed
)
