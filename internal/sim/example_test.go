package sim_test

import (
	"fmt"

	"mucongest/internal/graph"
	"mucongest/internal/sim"
)

// The engine quickstart: every node runs an ordinary Go function on its
// own goroutine, rounds are synchronized by Ctx.Tick, and the memory
// bound μ is enforced by the engine's word accounting. Here each node
// of a 4-cycle broadcasts its id and node 0 reports the sum of its
// neighbors' ids.
func ExampleEngine_Run() {
	g := graph.Cycle(4)
	engine := sim.New(g, sim.WithMu(16), sim.WithSeed(1))
	res, err := engine.Run(func(c *sim.Ctx) {
		c.Broadcast(sim.Msg{Kind: 1, A: int64(c.ID())})
		var sum int64
		for _, in := range c.Tick() {
			sum += in.Msg.A
		}
		if c.ID() == 0 {
			c.Emit(sum)
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("rounds:", res.Rounds)
	fmt.Println("messages:", res.Messages)
	fmt.Println("node 0 neighbor-id sum:", res.Outputs[0][0])
	fmt.Println("μ violations:", len(res.Violations))
	// Output:
	// rounds: 1
	// messages: 8
	// node 0 neighbor-id sum: 4
	// μ violations: 0
}
