package sim

import (
	"errors"
	"math/rand"
)

// Sharded delivery: the engine's per-round work — routing staged
// outboxes into inboxes, applying the inbox order, memory accounting and
// the resume fan-out — is partitioned into shards of ShardSpan
// consecutive node ids. Per-destination routing and inbox ordering are
// independent across destinations, so shards never contend; a persistent
// worker pool (see Engine.startPool) executes the shards of each phase
// in parallel.
//
// Determinism for every worker count rests on two invariants:
//
//  1. The shard layout is a pure function of n (fixed ShardSpan), never
//     of the worker count. Workers pull whole shards, so any schedule
//     computes the same per-shard results.
//  2. OrderRandom draws from a per-shard RNG stream derived only from
//     the engine seed and the shard index, consumed in ascending node
//     id within the shard. Shard 0's stream is seeded exactly like the
//     pre-sharding engine RNG, so single-shard runs (n ≤ ShardSpan,
//     i.e. every run the old golden digests were recorded on) reproduce
//     the historical draw sequence bit for bit.
//
// Routing preserves the documented inbox order (ascending sender id,
// send order within a sender) with O(m) total work via a two-phase
// exchange: the route phase walks each shard's own sender range in
// ascending id and buckets messages by destination shard; the account
// phase drains the buckets addressed to its shard in ascending
// sender-shard order, which concatenates back to the global ascending
// sender order per destination.

// ShardSpan is the number of consecutive node ids per delivery shard.
// It must stay fixed: shard boundaries feed the per-shard RNG streams,
// so changing it re-keys every OrderRandom run with n > ShardSpan.
//
// ShardSpan and ShardStreamSeed are exported as part of the engine's
// determinism contract: OrderRandom shuffles node v's inbox with the
// stream of shard v/ShardSpan, consumed once per non-empty inbox in
// ascending node id. The refsim reference engine reproduces the
// engine's draws from these two values alone.
const ShardSpan = 512

// phaseKind selects the work a delivery phase performs on each shard.
type phaseKind uint8

const (
	// phaseRoute buckets the shard's staged sender outboxes by
	// destination shard, counting drops to finished nodes. It also
	// performs the shard's slice of the barrier bookkeeping the engine
	// used to do serially: poisoning retired inboxes (simdebug),
	// counting newly finished nodes and harvesting their errors.
	phaseRoute phaseKind = iota
	// phaseAccount drains the buckets addressed to the shard into its
	// destination inboxes, applies the inbox order and charges memory.
	phaseAccount
	// phaseAccountResume is phaseAccount fused with the resume fan-out:
	// each node is resumed as soon as its own inbox is ready (non-strict
	// runs only — strict aborts need all shards accounted first).
	phaseAccountResume
	// phaseResume hands every live node its inbox (strict runs, after
	// the abort decision).
	phaseResume
	// phaseBind materializes the shard's node contexts and binds each
	// node's program form at run start (generic Program path only —
	// see bindShard in step.go).
	phaseBind
)

// shardState is one shard's scratch, reused across rounds so the hot
// loop is allocation-free in steady state. It is written only by the
// worker currently holding the shard (phase barriers order the
// cross-shard xfer reads).
type shardState struct {
	rng *rand.Rand
	// xfer[t] holds the messages this shard's senders staged for
	// destination shard t this round: ascending sender id, send order
	// within a sender. Filled in phaseRoute, drained (and truncated) by
	// shard t's account phase.
	xfer     [][]routed
	messages int64 // delivered to this shard's destinations, whole run
	dropped  int64 // dropped by this shard's senders, whole run
	// faultDropped is the fault-induced subset of dropped (loss draws,
	// down edges, parked destinations). Only counted when a fault plan
	// is active.
	faultDropped int64
	over         []overrun

	// frng is the shard's fault-stream RNG, created only when a fault
	// plan is active. It is re-seeded at every use point from
	// FaultStreamSeed — with the crash tag at the serial fault point,
	// with the loss tag at the top of the shard's route phase — so one
	// source serves both streams without interference.
	frng *rand.Rand

	// Barrier bookkeeping staged by phaseRoute and drained (and reset)
	// by the engine between phases: how many of the shard's nodes
	// terminated at this barrier (newlyFinishedG counts the
	// goroutine-form subset, which the engine subtracts from the
	// arrival-barrier population), and the error of the lowest-id node
	// that failed (excluding the engine's own abort sentinel).
	newlyFinished  int
	newlyFinishedG int
	err            error

	// gor stages the shard's goroutine-form nodes during phaseBind,
	// consumed (and scrubbed) by bindNodes once every shard is bound.
	gor []goSpawn
}

// overrun is one node's μ overrun at the current barrier, staged
// per-shard and merged into the run's Violation list by mergeRound.
type overrun struct {
	node  int
	words int64
}

// ShardStreamSeed derives shard s's RNG seed. Shard 0 keeps the raw
// engine seed — the pre-sharding engine drew OrderRandom permutations
// from rand.NewSource(seed), and single-shard runs must keep
// reproducing the golden digests recorded then. Higher shards get
// splitmix64-finalized streams. Exported as part of the determinism
// contract (see ShardSpan).
func ShardStreamSeed(seed int64, s int) int64 {
	if s == 0 {
		return seed
	}
	x := uint64(seed) ^ (uint64(s) * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// initShards sizes the shard scratch for this run, reusing pooled shard
// states where available: buckets keep their capacity, RNGs keep their
// source (re-seeded below, so the draw stream is exactly that of a
// fresh run), and counters reset.
func (e *Engine) initShards(sc *runScratch) {
	e.nshards = (e.n + ShardSpan - 1) / ShardSpan
	if e.nshards < 1 {
		e.nshards = 1
	}
	for len(sc.shards) < e.nshards {
		sc.shards = append(sc.shards, &shardState{})
	}
	e.shards = sc.shards[:e.nshards]
	for s, st := range e.shards {
		if st.rng == nil {
			st.rng = rand.New(rand.NewSource(ShardStreamSeed(e.seed, s)))
		} else {
			st.rng.Seed(ShardStreamSeed(e.seed, s))
		}
		if cap(st.xfer) < e.nshards {
			st.xfer = make([][]routed, e.nshards)
		} else {
			st.xfer = st.xfer[:e.nshards]
			for t := range st.xfer {
				st.xfer[t] = st.xfer[t][:0]
			}
		}
		st.over = st.over[:0]
		st.messages = 0
		st.dropped = 0
		st.faultDropped = 0
		if e.hasFaults && st.frng == nil {
			st.frng = rand.New(rand.NewSource(FaultStreamSeed(e.seed, 0, s, FaultKindCrash)))
		}
		st.newlyFinished = 0
		st.newlyFinishedG = 0
		st.err = nil
		for i := range st.gor {
			st.gor[i] = goSpawn{}
		}
		st.gor = st.gor[:0]
	}
}

// shardPhase runs one phase on one shard.
func (e *Engine) shardPhase(k phaseKind, s int) {
	lo := s * ShardSpan
	hi := lo + ShardSpan
	if hi > e.n {
		hi = e.n
	}
	switch k {
	case phaseRoute:
		e.routeShard(e.shards[s], lo, hi)
	case phaseAccount:
		e.accountShard(e.shards[s], s, lo, hi, false)
	case phaseAccountResume:
		e.accountShard(e.shards[s], s, lo, hi, true)
	case phaseResume:
		for id := lo; id < hi; id++ {
			if rt := &e.nodes[id]; !rt.finished && !rt.parked {
				e.resumeNode(id, rt)
			}
		}
	case phaseBind:
		e.bindShard(e.shards[s], lo, hi)
	}
}

// routeShard walks the shard's own sender range in ascending id (the
// non-nil senderOut entries form a dense "staged this round" bitmap —
// no sorted sender list needed) and buckets every message by its
// destination shard. Messages to finished nodes are dropped here, before
// they cost any downstream work.
//
// The walk doubles as the shard's slice of barrier collection: every
// node that arrived at this barrier (ticked or just terminated) gets
// its retired inbox poisoned under simdebug, and nodes whose done bit
// is newly set are counted and their errors harvested into the shard
// scratch — the engine folds those into active/runErr between phases.
// The drop check reads the done bit, not finished: done is written only
// by the node itself before its barrier arrival, so it is immutable
// during the phase and safe to read across shards; finished is the
// owning shard's acknowledgment, written in its account phase.
//
//muvet:hotpath
func (e *Engine) routeShard(st *shardState, lo, hi int) {
	nodes := e.nodes
	senderOut := e.senderOut
	// Fault state for the round, resolved once per shard: the loss
	// stream is re-keyed (seed, round, shard) here, consumed below once
	// per message that survived the earlier drop checks, in ascending
	// sender id and send order — the exact walk refsim replays.
	faults := e.hasFaults
	var (
		fp   FaultPlan
		lrng *rand.Rand
	)
	round := e.round
	if faults {
		fp = e.faults
		if fp.Loss {
			lrng = st.frng
			lrng.Seed(FaultStreamSeed(e.seed, round, lo/ShardSpan, FaultKindLoss))
		}
	}
	for id := lo; id < hi; id++ {
		rt := &nodes[id]
		if rt.finished {
			continue // terminated at an earlier barrier; nothing staged
		}
		if debugPoison {
			// The node just passed its Tick barrier (or finished), so by
			// the Tick aliasing contract it may no longer read the inbox
			// slice it was handed last round. Poison the retired buffer
			// so contract violations read sentinels, not silently stale
			// or clobbered messages.
			poisonStale(rt)
		}
		if rt.done {
			st.newlyFinished++
			// A node the abort path terminated while parked has no
			// goroutine behind its done bit (it left the barrier
			// population when it crashed), so it must not be subtracted
			// from the arrival population again.
			if rt.step == nil && !rt.parked {
				st.newlyFinishedG++
			}
			if rt.nodeErr != nil {
				if st.err == nil && !errors.Is(rt.nodeErr, errAbort) {
					st.err = rt.nodeErr
				}
				rt.nodeErr = nil
			}
		}
		out := senderOut[id]
		if out == nil {
			continue
		}
		senderOut[id] = nil
		for _, m := range out {
			if nodes[m.to].done {
				st.dropped++
				continue
			}
			if faults {
				// Drop order is part of the determinism contract: parked
				// destination, then down edge, then the loss draw — the
				// draw is consumed only for messages surviving the first
				// two, so the stream position is a pure function of the
				// (deterministic) message sequence.
				if nodes[m.to].parked {
					st.dropped++
					st.faultDropped++
					continue
				}
				if fp.EdgeDown && fp.EdgeIsDown(e.seed, round, m.from, m.to) {
					st.dropped++
					st.faultDropped++
					continue
				}
				if lrng != nil && lrng.Float64() < fp.LossP {
					st.dropped++
					st.faultDropped++
					continue
				}
			}
			t := m.to / ShardSpan
			st.xfer[t] = append(st.xfer[t], m)
		}
	}
}

// accountShard delivers, orders and accounts the inboxes of the shard's
// destination range [lo, hi), then (when resume is set) hands each node
// its inbox. OrderRandom must consume the shard RNG once per non-empty
// inbox in ascending node id: the determinism golden tests pin this draw
// sequence. Memory is evaluated for every live node — including nodes
// that received nothing — so OverRounds counts charge-only and quiet
// rounds too.
//
//muvet:hotpath
func (e *Engine) accountShard(st *shardState, s, lo, hi int, resume bool) {
	nodes := e.nodes
	for _, src := range e.shards {
		b := src.xfer[s]
		if len(b) == 0 {
			continue
		}
		for _, m := range b {
			rt := &nodes[m.to]
			rt.inbox = append(rt.inbox, Incoming{From: m.from, Msg: m.msg})
		}
		st.messages += int64(len(b))
		src.xfer[s] = b[:0]
	}
	order, mu := e.order, e.mu
	for id := lo; id < hi; id++ {
		rt := &nodes[id]
		if rt.finished {
			continue
		}
		if rt.done {
			// Terminated at this barrier: acknowledge so later rounds skip
			// the node everywhere. No ordering, metering or resume — the
			// pre-barrier engine skipped nodes it had just collected as
			// finished the same way.
			rt.finished = true
			continue
		}
		if rt.parked {
			// Crashed and awaiting restart: nothing was delivered (the
			// route phase dropped it), the node holds no memory, and
			// there is no goroutine or step machine to resume.
			continue
		}
		if len(rt.inbox) > 0 && order != OrderBySender {
			switch order {
			case OrderRandom:
				//muvet:allow hotalloc(rand.Shuffle swap closure does not escape; the alloc-free pin in TestSteadyStateRoundAllocFree covers this path)
				st.rng.Shuffle(len(rt.inbox), func(i, j int) {
					rt.inbox[i], rt.inbox[j] = rt.inbox[j], rt.inbox[i]
				})
			case OrderReversed:
				for i, j := 0, len(rt.inbox)-1; i < j; i, j = i+1, j-1 {
					rt.inbox[i], rt.inbox[j] = rt.inbox[j], rt.inbox[i]
				}
			}
		}
		rt.inboxWords = int64(len(rt.inbox)) * MsgWords
		total := rt.live + rt.inboxWords
		if total > rt.peak {
			rt.peak = total
		}
		if mu > 0 && total > mu {
			st.over = append(st.over, overrun{node: id, words: total})
		}
		if resume {
			e.resumeNode(id, rt)
		}
	}
}

// resumeNode hands the filled buffer to the node but keeps the backing
// array: the next delivery for this node can only run after the node
// has ticked (or stepped) again, so truncating here is safe under the
// Tick aliasing contract. Stepped nodes are driven to their next round
// boundary inline on this worker instead of through the resume channel
// — this dispatch is the whole of the step-mode "fan-out".
//
//muvet:hotpath
func (e *Engine) resumeNode(id int, rt *nodeRT) {
	if rt.step != nil {
		e.stepNode(&e.ctxs[id], rt)
		return
	}
	in := rt.inbox
	if len(in) == 0 {
		in = nil
	}
	rt.inbox = rt.inbox[:0]
	rt.resume <- in
}
