package sim

import "math/rand"

// Sharded delivery: the engine's per-round work — routing staged
// outboxes into inboxes, applying the inbox order, memory accounting and
// the resume fan-out — is partitioned into shards of shardSpan
// consecutive node ids. Per-destination routing and inbox ordering are
// independent across destinations, so shards never contend; a persistent
// worker pool (see Engine.startPool) executes the shards of each phase
// in parallel.
//
// Determinism for every worker count rests on two invariants:
//
//  1. The shard layout is a pure function of n (fixed shardSpan), never
//     of the worker count. Workers pull whole shards, so any schedule
//     computes the same per-shard results.
//  2. OrderRandom draws from a per-shard RNG stream derived only from
//     the engine seed and the shard index, consumed in ascending node
//     id within the shard. Shard 0's stream is seeded exactly like the
//     pre-sharding engine RNG, so single-shard runs (n ≤ shardSpan,
//     i.e. every run the old golden digests were recorded on) reproduce
//     the historical draw sequence bit for bit.
//
// Routing preserves the documented inbox order (ascending sender id,
// send order within a sender) with O(m) total work via a two-phase
// exchange: the route phase walks each shard's own sender range in
// ascending id and buckets messages by destination shard; the account
// phase drains the buckets addressed to its shard in ascending
// sender-shard order, which concatenates back to the global ascending
// sender order per destination.

// shardSpan is the number of consecutive node ids per delivery shard.
// It must stay fixed: shard boundaries feed the per-shard RNG streams,
// so changing it re-keys every OrderRandom run with n > shardSpan.
const shardSpan = 512

// phaseKind selects the work a delivery phase performs on each shard.
type phaseKind uint8

const (
	// phaseRoute buckets the shard's staged sender outboxes by
	// destination shard, counting drops to finished nodes.
	phaseRoute phaseKind = iota
	// phaseAccount drains the buckets addressed to the shard into its
	// destination inboxes, applies the inbox order and charges memory.
	phaseAccount
	// phaseAccountResume is phaseAccount fused with the resume fan-out:
	// each node is resumed as soon as its own inbox is ready (non-strict
	// runs only — strict aborts need all shards accounted first).
	phaseAccountResume
	// phaseResume hands every live node its inbox (strict runs, after
	// the abort decision).
	phaseResume
)

// shardState is one shard's scratch, reused across rounds so the hot
// loop is allocation-free in steady state. It is written only by the
// worker currently holding the shard (phase barriers order the
// cross-shard xfer reads).
type shardState struct {
	rng *rand.Rand
	// xfer[t] holds the messages this shard's senders staged for
	// destination shard t this round: ascending sender id, send order
	// within a sender. Filled in phaseRoute, drained (and truncated) by
	// shard t's account phase.
	xfer     [][]routed
	messages int64 // delivered to this shard's destinations, whole run
	dropped  int64 // dropped by this shard's senders, whole run
	over     []overrun
}

// overrun is one node's μ overrun at the current barrier, staged
// per-shard and merged into the run's Violation list by mergeRound.
type overrun struct {
	node  int
	words int64
}

// shardSeed derives shard s's RNG seed. Shard 0 keeps the raw engine
// seed — the pre-sharding engine drew OrderRandom permutations from
// rand.NewSource(seed), and single-shard runs must keep reproducing the
// golden digests recorded then. Higher shards get splitmix64-finalized
// streams.
func shardSeed(seed int64, s int) int64 {
	if s == 0 {
		return seed
	}
	x := uint64(seed) ^ (uint64(s) * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

func (e *Engine) initShards() {
	e.nshards = (e.n + shardSpan - 1) / shardSpan
	if e.nshards < 1 {
		e.nshards = 1
	}
	e.shards = make([]*shardState, e.nshards)
	for s := range e.shards {
		e.shards[s] = &shardState{
			rng:  rand.New(rand.NewSource(shardSeed(e.seed, s))),
			xfer: make([][]routed, e.nshards),
		}
	}
}

// shardPhase runs one phase on one shard.
func (e *Engine) shardPhase(k phaseKind, s int) {
	lo := s * shardSpan
	hi := lo + shardSpan
	if hi > e.n {
		hi = e.n
	}
	switch k {
	case phaseRoute:
		e.routeShard(e.shards[s], lo, hi)
	case phaseAccount:
		e.accountShard(e.shards[s], s, lo, hi, false)
	case phaseAccountResume:
		e.accountShard(e.shards[s], s, lo, hi, true)
	case phaseResume:
		for id := lo; id < hi; id++ {
			if rt := e.nodes[id]; !rt.finished {
				e.resumeNode(rt)
			}
		}
	}
}

// routeShard walks the shard's own sender range in ascending id (the
// non-nil senderOut entries form a dense "staged this round" bitmap —
// no sorted sender list needed) and buckets every message by its
// destination shard. Messages to finished nodes are dropped here, before
// they cost any downstream work.
func (e *Engine) routeShard(st *shardState, lo, hi int) {
	for id := lo; id < hi; id++ {
		out := e.senderOut[id]
		if out == nil {
			continue
		}
		e.senderOut[id] = nil
		for _, m := range out {
			if e.nodes[m.to].finished {
				st.dropped++
				continue
			}
			t := m.to / shardSpan
			st.xfer[t] = append(st.xfer[t], m)
		}
	}
}

// accountShard delivers, orders and accounts the inboxes of the shard's
// destination range [lo, hi), then (when resume is set) hands each node
// its inbox. OrderRandom must consume the shard RNG once per non-empty
// inbox in ascending node id: the determinism golden tests pin this draw
// sequence. Memory is evaluated for every live node — including nodes
// that received nothing — so OverRounds counts charge-only and quiet
// rounds too.
func (e *Engine) accountShard(st *shardState, s, lo, hi int, resume bool) {
	for _, src := range e.shards {
		b := src.xfer[s]
		if len(b) == 0 {
			continue
		}
		for _, m := range b {
			rt := e.nodes[m.to]
			rt.inbox = append(rt.inbox, Incoming{From: m.from, Msg: m.msg})
		}
		st.messages += int64(len(b))
		src.xfer[s] = b[:0]
	}
	for id := lo; id < hi; id++ {
		rt := e.nodes[id]
		if rt.finished {
			continue
		}
		if len(rt.inbox) > 0 {
			switch e.order {
			case OrderRandom:
				st.rng.Shuffle(len(rt.inbox), func(i, j int) {
					rt.inbox[i], rt.inbox[j] = rt.inbox[j], rt.inbox[i]
				})
			case OrderReversed:
				for i, j := 0, len(rt.inbox)-1; i < j; i, j = i+1, j-1 {
					rt.inbox[i], rt.inbox[j] = rt.inbox[j], rt.inbox[i]
				}
			}
		}
		rt.inboxWords = int64(len(rt.inbox)) * MsgWords
		total := rt.live + rt.inboxWords
		if total > rt.peak {
			rt.peak = total
		}
		if e.mu > 0 && total > e.mu {
			st.over = append(st.over, overrun{node: id, words: total})
		}
		if resume {
			e.resumeNode(rt)
		}
	}
}

// resumeNode hands the filled buffer to the node but keeps the backing
// array: the next delivery for this node can only run after the node has
// ticked again, so truncating here is safe under the Tick aliasing
// contract.
func (e *Engine) resumeNode(rt *nodeRT) {
	in := rt.inbox
	if len(in) == 0 {
		in = nil
	}
	rt.inbox = rt.inbox[:0]
	rt.resume <- in
}
