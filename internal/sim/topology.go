package sim

// Topology describes the communication graph the engine runs on. It is
// satisfied by graph.Graph; the engine only needs the node count and
// adjacency lists. Adjacency lists must be symmetric: u lists v iff v
// lists u.
type Topology interface {
	// N returns the number of nodes, labeled 0..N-1.
	N() int
	// Neighbors returns the neighbor ids of v. The returned slice must
	// not be modified and must be stable across calls.
	Neighbors(v int) []int
}

// Complete is the all-to-all topology of the μ-Congested-Clique model
// (Section 2.2 of the paper): every pair of nodes shares a communication
// link regardless of the input graph.
type Complete struct {
	n   int
	adj [][]int
}

// NewComplete returns the complete topology on n nodes.
func NewComplete(n int) *Complete {
	c := &Complete{n: n, adj: make([][]int, n)}
	for v := 0; v < n; v++ {
		nb := make([]int, 0, n-1)
		for u := 0; u < n; u++ {
			if u != v {
				nb = append(nb, u)
			}
		}
		c.adj[v] = nb
	}
	return c
}

// N returns the number of nodes.
func (c *Complete) N() int { return c.n }

// Neighbors returns all nodes other than v.
func (c *Complete) Neighbors(v int) []int { return c.adj[v] }
