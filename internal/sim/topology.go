package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Topology describes the communication graph the engine runs on. It is
// satisfied by graph.Graph; the engine only needs the node count and
// adjacency lists. Adjacency lists must be symmetric: u lists v iff v
// lists u.
type Topology interface {
	// N returns the number of nodes, labeled 0..N-1.
	N() int
	// Neighbors returns the neighbor ids of v. The returned slice must
	// not be modified and must be stable across calls.
	Neighbors(v int) []int
}

// DegreeTopology is an optional Topology extension: the degree of a node
// without materializing its adjacency slice. Implementing it lets the
// engine set up each node in O(1) instead of O(deg).
type DegreeTopology interface {
	Degree(v int) int
}

// IndexedTopology is an optional Topology extension: the neighbor id on
// a given port without materializing the adjacency slice. Ports must be
// consistent with Neighbors: NeighborAt(v, p) == Neighbors(v)[p].
type IndexedTopology interface {
	NeighborAt(v, port int) int
}

// PortedTopology is an optional Topology extension: the port of a
// neighbor id (-1 when not adjacent) without materializing the
// adjacency slice or a per-node port map.
type PortedTopology interface {
	PortOf(v, id int) int
}

// Complete is the all-to-all topology of the μ-Congested-Clique model
// (Section 2.2 of the paper): every pair of nodes shares a communication
// link regardless of the input graph.
//
// The topology is implicit — O(1) memory regardless of n. Node v's
// neighbors are 0..n-1 except v in ascending order, so port p maps to
// neighbor p for p < v and p+1 otherwise; Degree, NeighborAt and PortOf
// answer from arithmetic alone, and the engine never materializes
// adjacency. Neighbors materializes (and caches) a node's slice only
// when a program actually asks for it.
type Complete struct {
	n int
	// nbrs lazily caches materialized neighbor slices; entries are built
	// per requested node so memory stays proportional to the nodes that
	// iterate their neighbor list, and the warm path is lock-free.
	nbrs lazyNbrs
}

// lazyNbrs caches per-node neighbor slices for implicit topologies.
// The cache table is published once (double-checked under mu), entries
// once via CompareAndSwap — so after the first call for a node, every
// reader takes two atomic loads and no lock. Racing first builders may
// duplicate the (identical) build; exactly one slice wins the CAS and
// becomes the canonical stable-across-calls result.
type lazyNbrs struct {
	mu  sync.Mutex
	tab atomic.Pointer[[]atomic.Pointer[[]int]]
}

func (l *lazyNbrs) get(n, v int, build func(int) []int) []int {
	t := l.tab.Load()
	if t == nil {
		l.mu.Lock()
		if t = l.tab.Load(); t == nil {
			nt := make([]atomic.Pointer[[]int], n)
			t = &nt
			l.tab.Store(t)
		}
		l.mu.Unlock()
	}
	e := &(*t)[v]
	if a := e.Load(); a != nil {
		return *a
	}
	a := build(v)
	if !e.CompareAndSwap(nil, &a) {
		return *e.Load()
	}
	return a
}

// NewComplete returns the complete topology on n nodes. Unlike explicit
// graph construction this is O(1) in time and memory.
func NewComplete(n int) *Complete { return &Complete{n: n} }

// N returns the number of nodes.
func (c *Complete) N() int { return c.n }

// Degree returns n-1 for every node.
func (c *Complete) Degree(v int) int { return c.n - 1 }

// NeighborAt returns the neighbor of v on the given port: ports count
// through 0..n-1 skipping v.
func (c *Complete) NeighborAt(v, port int) int {
	if port < 0 || port >= c.n-1 {
		panic(fmt.Sprintf("sim: complete topology has no port %d (degree %d)", port, c.n-1))
	}
	if port < v {
		return port
	}
	return port + 1
}

// PortOf returns the port of node id as seen from v, or -1 when id is v
// or out of range.
func (c *Complete) PortOf(v, id int) int {
	if id == v || id < 0 || id >= c.n {
		return -1
	}
	if id < v {
		return id
	}
	return id - 1
}

// Neighbors returns all nodes other than v in ascending order. The slice
// is materialized lazily and cached per node; callers must not modify
// it. Safe for concurrent use; warm calls are lock-free.
func (c *Complete) Neighbors(v int) []int {
	return c.nbrs.get(c.n, v, func(v int) []int {
		a := make([]int, c.n-1)
		for p := range a {
			if p < v {
				a[p] = p
			} else {
				a[p] = p + 1
			}
		}
		return a
	})
}
