//go:build !simdebug

package sim

// debugPoison enables poisoning of retired inbox buffers (see
// poisonStale). Off in normal builds; the guard compiles away.
const debugPoison = false
