package sim

import (
	"fmt"
	"strings"
	"testing"

	"mucongest/internal/graph"
)

// TestFaultPlanParse pins the spec grammar: per-clause defaults, the
// canonical String rendering, the exact error shapes of the topo-spec
// idiom, and the Parse∘String round trip for every valid case.
func TestFaultPlanParse(t *testing.T) {
	valid := []struct {
		spec      string
		want      FaultPlan
		canonical string
	}{
		{"", FaultPlan{}, ""},
		{"loss", FaultPlan{Loss: true, LossP: 0.01}, "loss:p=0.01"},
		{"loss:p=0.25", FaultPlan{Loss: true, LossP: 0.25}, "loss:p=0.25"},
		{"crash", FaultPlan{Crash: true, CrashP: 0.001, Restart: 5}, "crash:p=0.001,restart=5"},
		{"crash:restart=2", FaultPlan{Crash: true, CrashP: 0.001, Restart: 2}, "crash:p=0.001,restart=2"},
		{"crash:p=0.30,restart=1", FaultPlan{Crash: true, CrashP: 0.3, Restart: 1}, "crash:p=0.3,restart=1"},
		{"edgedown", FaultPlan{EdgeDown: true, EdgeDownP: 0.005, Up: 3}, "edgedown:p=0.005,up=3"},
		{"edgedown:up=1,p=0.5", FaultPlan{EdgeDown: true, EdgeDownP: 0.5, Up: 1}, "edgedown:p=0.5,up=1"},
		{
			"edgedown:p=0.005,up=3+loss:p=0.1+crash:p=0.05,restart=2",
			FaultPlan{Loss: true, LossP: 0.1, Crash: true, CrashP: 0.05, Restart: 2, EdgeDown: true, EdgeDownP: 0.005, Up: 3},
			"loss:p=0.1+crash:p=0.05,restart=2+edgedown:p=0.005,up=3",
		},
		{" loss : p = 0.1 ", FaultPlan{Loss: true, LossP: 0.1}, "loss:p=0.1"},
	}
	for _, tc := range valid {
		p, err := ParseFaults(tc.spec)
		if err != nil {
			t.Errorf("ParseFaults(%q): unexpected error: %v", tc.spec, err)
			continue
		}
		if p != tc.want {
			t.Errorf("ParseFaults(%q) = %+v, want %+v", tc.spec, p, tc.want)
		}
		if got := p.String(); got != tc.canonical {
			t.Errorf("ParseFaults(%q).String() = %q, want %q", tc.spec, got, tc.canonical)
		}
		rt, err := ParseFaults(p.String())
		if err != nil || rt != p {
			t.Errorf("round trip of %q: ParseFaults(%q) = %+v, %v; want %+v", tc.spec, p.String(), rt, err, p)
		}
	}

	invalid := []struct {
		spec    string
		errFrag string
	}{
		{"flood", `unknown fault "flood" (valid: crash, edgedown, loss)`},
		{"loss:q=0.1", `loss has no parameter "q" (valid: p)`},
		{"crash:p=0.1,up=2", `crash has no parameter "up" (valid: p, restart)`},
		{"loss:p=2", `parameter p="2" is not a probability in [0,1]`},
		{"loss:p=-0.1", `is not a probability in [0,1]`},
		{"loss:p=nope", `is not a probability in [0,1]`},
		{"loss:p=NaN", `is not a probability in [0,1]`},
		{"crash:restart=0", `parameter restart="0" is not a positive integer`},
		{"edgedown:up=-3", `parameter up="-3" is not a positive integer`},
		{"crash:restart=2,restart=3", `duplicate argument "restart"`},
		{"loss+loss", `duplicate clause "loss"`},
		{"loss:p", `malformed argument "p" (want key=value)`},
		{"loss:p=", `malformed argument`},
		{"loss:=0.1", `malformed argument`},
	}
	for _, tc := range invalid {
		p, err := ParseFaults(tc.spec)
		if err == nil {
			t.Errorf("ParseFaults(%q) = %+v, want error containing %q", tc.spec, p, tc.errFrag)
			continue
		}
		if !strings.Contains(err.Error(), tc.errFrag) {
			t.Errorf("ParseFaults(%q) error = %q, want it to contain %q", tc.spec, err, tc.errFrag)
		}
		if p != (FaultPlan{}) {
			t.Errorf("ParseFaults(%q) returned non-zero plan %+v alongside error", tc.spec, p)
		}
	}
}

// FuzzFaultPlanParse is the fault-spec twin of FuzzTopoParse: ParseFaults
// must never panic, and any spec it accepts must reach a canonical fixed
// point — String renders a spec that reparses to the identical plan and
// re-renders byte for byte.
func FuzzFaultPlanParse(f *testing.F) {
	for _, seed := range []string{
		"", "loss", "loss:p=0.01", "crash:p=0.001,restart=5", "edgedown:p=0.005,up=3",
		"loss:p=0.1+crash:p=0.05,restart=2+edgedown:p=0.5,up=1",
		"flood", "loss:q=1", "loss:p=2", "crash:restart=0", "loss+loss", "loss:p", "+", "a:b=c,,",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParseFaults(spec)
		if err != nil {
			return
		}
		s := p.String()
		p2, err := ParseFaults(s)
		if err != nil {
			t.Fatalf("ParseFaults(%q) ok but canonical form %q rejected: %v", spec, s, err)
		}
		if p2 != p {
			t.Fatalf("round trip of %q changed plan: %+v -> %+v", spec, p, p2)
		}
		if s2 := p2.String(); s2 != s {
			t.Fatalf("String not a fixed point for %q: %q -> %q", spec, s, s2)
		}
	})
}

// faultDetPlan exercises all three fault processes at once with rates
// high enough that every counter is non-zero on the corpus below.
const faultDetSpec = "loss:p=0.05+crash:p=0.02,restart=2+edgedown:p=0.05,up=2"

// TestFaultDrawDeterminismAcrossWorkersAndModes pins the tentpole
// invariant of the fault layer: with all three fault processes active on
// a multi-shard topology, the full execution record — including the
// fault ledger — is bit-for-bit identical across worker counts {1,2,4,
// max} and across the goroutine, step and mixed execution modes, because
// every fault decision is drawn from a stream keyed only by
// (seed, round, shard, kind).
func TestFaultDrawDeterminismAcrossWorkersAndModes(t *testing.T) {
	topo := graph.Cycle(1536) // 3 shards
	plan := MustParseFaults(faultDetSpec)
	modes := []struct {
		name string
		prog Program
	}{
		{"goroutine", Func(detProgram)},
		{"step", detSteps},
		{"mixed", mixedDet{}},
	}
	var ref *Result
	var refDigest uint64
	for _, mode := range modes {
		for _, w := range []int{1, 2, 4, 0} {
			e := New(topo, WithSeed(7), WithSimWorkers(w), WithFaults(plan))
			res, err := e.RunProgram(mode.prog)
			if err != nil {
				t.Fatalf("mode=%s workers=%d: %v", mode.name, w, err)
			}
			if ref == nil {
				ref, refDigest = res, digestResult(res)
				// The plan must actually bite, or the parity claim is vacuous.
				if res.Crashes == 0 || res.Restarts == 0 || res.FaultDrops == 0 {
					t.Fatalf("fault plan %q never fired: %+v", faultDetSpec, res)
				}
				continue
			}
			if got := digestResult(res); got != refDigest {
				t.Errorf("mode=%s workers=%d: digest = %#x, want %#x", mode.name, w, got, refDigest)
			}
			if res.FaultDrops != ref.FaultDrops || res.Crashes != ref.Crashes || res.Restarts != ref.Restarts {
				t.Errorf("mode=%s workers=%d: fault ledger (drops=%d crashes=%d restarts=%d) differs from reference (drops=%d crashes=%d restarts=%d)",
					mode.name, w, res.FaultDrops, res.Crashes, res.Restarts, ref.FaultDrops, ref.Crashes, ref.Restarts)
			}
		}
	}
}

// TestFaultFreeRunsUnchanged pins that the fault layer is invisible when
// unused: an explicit empty plan reproduces every historical golden
// digest (WithFaults(FaultPlan{}) is byte-identical to no option at
// all), a faulty run visibly diverges from the goldens, and the fault
// ledger of a fault-free run is all zeros.
func TestFaultFreeRunsUnchanged(t *testing.T) {
	for order, want := range goldenComplete12 {
		res := runDet(t, order, 42, WithFaults(FaultPlan{}))
		if got := digestResult(res); got != want {
			t.Errorf("order %v: empty-plan digest = %#x, want golden %#x", order, got, want)
		}
		if res.FaultDrops != 0 || res.Crashes != 0 || res.Restarts != 0 {
			t.Errorf("order %v: fault-free run has non-zero fault ledger: %+v", order, res)
		}
	}
	// Sanity: a biting plan must not silently reproduce the golden.
	res := runDet(t, OrderBySender, 42, WithFaults(MustParseFaults("loss:p=0.3")))
	if digestResult(res) == goldenComplete12[OrderBySender] {
		t.Error("loss plan reproduced the fault-free golden digest; faults are not being applied")
	}
	if res.FaultDrops == 0 {
		t.Error("loss:p=0.3 on a complete graph dropped nothing")
	}
}

// restartCounter emits its Restarts() count at the start of every
// execution, then runs a fixed broadcast workload. Crash/restart
// semantics fall out of the output record: node i's outputs must be
// exactly 0,1,...,k_i (one execution per restart, state reset each
// time, prior outputs surviving the crash).
func restartCounter(c *Ctx) {
	c.Emit(int64(c.Restarts()))
	for r := 0; r < 6; r++ {
		c.Broadcast(Msg{Kind: 1, A: int64(c.ID()), B: int64(r)})
		c.Tick()
	}
}

// restartCounterStep is restartCounter's step-form twin.
type restartCounterStep struct {
	r       int
	emitted bool
}

func (s *restartCounterStep) Step(c *Ctx, in []Incoming) bool {
	if !s.emitted {
		c.Emit(int64(c.Restarts()))
		s.emitted = true
	}
	if s.r >= 6 {
		return false
	}
	c.Broadcast(Msg{Kind: 1, A: int64(c.ID()), B: int64(s.r)})
	s.r++
	return true
}

// TestCrashRestartSemantics certifies fail-stop crash semantics through
// the output record, in both execution modes: every execution of a node
// emits its current Restarts() value first, so each node's outputs must
// read 0,1,...,k_i; the k_i must sum to Result.Restarts; and — because a
// parked node blocks run completion until it restarts and finishes —
// every crash is eventually restarted, so Restarts == Crashes.
func TestCrashRestartSemantics(t *testing.T) {
	plan := MustParseFaults("crash:p=0.05,restart=2")
	modes := []struct {
		name string
		prog Program
	}{
		{"goroutine", Func(restartCounter)},
		{"step", Steps(func(c *Ctx) StepProgram { return new(restartCounterStep) })},
	}
	var ref *Result
	for _, mode := range modes {
		res, err := New(graph.Cycle(64), WithSeed(3), WithFaults(plan)).RunProgram(mode.prog)
		if err != nil {
			t.Fatalf("mode=%s: %v", mode.name, err)
		}
		if res.Crashes == 0 {
			t.Fatalf("mode=%s: plan never crashed a node; raise p or change the seed", mode.name)
		}
		if res.Restarts != res.Crashes {
			t.Errorf("mode=%s: Restarts=%d != Crashes=%d (every parked node must restart before the run can end)",
				mode.name, res.Restarts, res.Crashes)
		}
		var totalRestarts int64
		for id, outs := range res.Outputs {
			for j, v := range outs {
				if got, ok := v.(int64); !ok || got != int64(j) {
					t.Fatalf("mode=%s: node %d output %d = %v, want %d (execution-start emits must read 0,1,2,...)",
						mode.name, id, j, v, j)
				}
			}
			totalRestarts += int64(len(outs) - 1)
		}
		if totalRestarts != res.Restarts {
			t.Errorf("mode=%s: per-node restart sum %d != Result.Restarts %d", mode.name, totalRestarts, res.Restarts)
		}
		if ref == nil {
			ref = res
		} else if digestResult(res) != digestResult(ref) ||
			res.Crashes != ref.Crashes || res.Restarts != ref.Restarts {
			t.Errorf("mode=%s: crash/restart record diverges from goroutine mode", mode.name)
		}
	}
}

// TestEdgeIsDownWindow pins the churn outage semantics: an edge is down
// at round r under up=k exactly when some round in [r-k+1, r] drew a
// failure — i.e. EdgeIsDown with up=3 equals the OR of the up=1 check
// over the three-round window, including the clamp at round 0.
func TestEdgeIsDownWindow(t *testing.T) {
	const seed = 99
	up3 := FaultPlan{EdgeDown: true, EdgeDownP: 0.2, Up: 3}
	up1 := FaultPlan{EdgeDown: true, EdgeDownP: 0.2, Up: 1}
	var downs int
	for u := 0; u < 8; u++ {
		for v := u + 1; v < 8; v++ {
			for r := 0; r < 24; r++ {
				want := false
				for w := r - 2; w <= r; w++ {
					if w >= 0 && up1.EdgeIsDown(seed, w, u, v) {
						want = true
					}
				}
				if got := up3.EdgeIsDown(seed, r, u, v); got != want {
					t.Fatalf("EdgeIsDown(seed=%d, r=%d, {%d,%d}) = %v, want OR over [%d,%d] = %v",
						seed, r, u, v, got, r-2, r, want)
				}
				// Orientation must not matter for an undirected edge.
				if up3.EdgeIsDown(seed, r, v, u) != up3.EdgeIsDown(seed, r, u, v) {
					t.Fatalf("EdgeIsDown not symmetric for edge {%d,%d} at round %d", u, v, r)
				}
				if up3.EdgeIsDown(seed, r, u, v) {
					downs++
				}
			}
		}
	}
	if downs == 0 {
		t.Fatal("p=0.2, up=3 never downed an edge over 28 edges × 24 rounds; the draw is broken")
	}
	if !(FaultPlan{}).EdgeIsDown(seed, 5, 1, 2) == false {
		t.Fatal("plan without EdgeDown reported a down edge")
	}
}

// TestFaultStreamSeedDomainSeparation spot-checks that the three fault
// kinds and the OrderRandom shard streams are pairwise distinct at equal
// (seed, round, shard): a collision would silently correlate supposedly
// independent processes.
func TestFaultStreamSeedDomainSeparation(t *testing.T) {
	seen := map[int64]string{}
	for round := 0; round < 8; round++ {
		for shard := 0; shard < 4; shard++ {
			for _, kind := range []uint32{FaultKindLoss, FaultKindCrash, FaultKindEdge} {
				s := FaultStreamSeed(42, round, shard, kind)
				key := fmt.Sprintf("r=%d s=%d k=%d", round, shard, kind)
				if prev, ok := seen[s]; ok {
					t.Fatalf("FaultStreamSeed collision: %s and %s both map to %#x", prev, key, uint64(s))
				}
				seen[s] = key
			}
			if s := ShardStreamSeed(42, shard); seen[s] != "" {
				t.Fatalf("FaultStreamSeed collides with ShardStreamSeed at r=%d s=%d", round, shard)
			}
		}
	}
}
