package sim

import (
	"fmt"
	"math/bits"
)

// This file holds the arithmetic (implicit) topologies beyond Complete:
// grid, torus and hypercube. Like Complete they store no adjacency at
// all — O(1) memory at any node count — and answer Degree, NeighborAt
// and PortOf from arithmetic, so the engine's fast paths never touch a
// materialized neighbor list. Port numbering follows the repository
// convention everywhere: ports index the ascending-sorted neighbor id
// list, exactly as the explicit graph.Grid / graph.Torus /
// graph.Hypercube counterparts sort their adjacency — the two
// representations of a family are port-for-port interchangeable (the
// repr tests pin this).

// Grid is the implicit rows×cols grid: node (r,c) has id r·cols+c and
// is adjacent to its horizontal and vertical neighbors.
type Grid struct {
	rows, cols int
	nbrs       lazyNbrs
}

// NewGrid returns the implicit grid topology; rows, cols ≥ 1.
func NewGrid(rows, cols int) *Grid {
	if rows < 1 || cols < 1 {
		panic("sim: NewGrid needs rows, cols ≥ 1")
	}
	return &Grid{rows: rows, cols: cols}
}

// N returns rows·cols.
func (g *Grid) N() int { return g.rows * g.cols }

// neigh appends v's neighbor ids in ascending order (up, left, right,
// down — the candidates are strictly increasing) to a caller-provided
// array and returns the count.
func (g *Grid) neigh(v int, out *[4]int) int {
	r, c := v/g.cols, v%g.cols
	d := 0
	if r > 0 {
		out[d] = v - g.cols
		d++
	}
	if c > 0 {
		out[d] = v - 1
		d++
	}
	if c+1 < g.cols {
		out[d] = v + 1
		d++
	}
	if r+1 < g.rows {
		out[d] = v + g.cols
		d++
	}
	return d
}

// Degree returns the number of grid neighbors (2, 3 or 4; less on
// degenerate 1-wide grids).
func (g *Grid) Degree(v int) int {
	var b [4]int
	return g.neigh(v, &b)
}

// NeighborAt returns v's neighbor on the given port.
func (g *Grid) NeighborAt(v, port int) int {
	var b [4]int
	d := g.neigh(v, &b)
	if port < 0 || port >= d {
		panic(fmt.Sprintf("sim: grid node %d has no port %d (degree %d)", v, port, d))
	}
	return b[port]
}

// PortOf returns the port of neighbor id as seen from v, or -1.
func (g *Grid) PortOf(v, id int) int {
	var b [4]int
	d := g.neigh(v, &b)
	for p := 0; p < d; p++ {
		if b[p] == id {
			return p
		}
	}
	return -1
}

// Neighbors materializes v's neighbor slice lazily (cached per node;
// warm calls are lock-free). Callers must not modify it.
func (g *Grid) Neighbors(v int) []int {
	return g.nbrs.get(g.N(), v, func(v int) []int {
		var b [4]int
		d := g.neigh(v, &b)
		a := make([]int, d)
		copy(a, b[:d])
		return a
	})
}

// Torus is the implicit rows×cols grid with wraparound in both
// dimensions: every node has degree exactly 4. Both dimensions must be
// at least 3 (the same constraint as graph.Torus, which guarantees the
// four neighbor ids are distinct).
type Torus struct {
	rows, cols int
	nbrs       lazyNbrs
}

// NewTorus returns the implicit torus topology; rows, cols ≥ 3.
func NewTorus(rows, cols int) *Torus {
	if rows < 3 || cols < 3 {
		panic("sim: NewTorus needs rows, cols ≥ 3")
	}
	return &Torus{rows: rows, cols: cols}
}

// N returns rows·cols.
func (t *Torus) N() int { return t.rows * t.cols }

// Degree returns 4 for every node.
func (t *Torus) Degree(v int) int { return 4 }

// neigh fills out with v's four neighbor ids in ascending order.
func (t *Torus) neigh(v int, out *[4]int) {
	r, c := v/t.cols, v%t.cols
	out[0] = ((r-1+t.rows)%t.rows)*t.cols + c
	out[1] = r*t.cols + (c-1+t.cols)%t.cols
	out[2] = r*t.cols + (c+1)%t.cols
	out[3] = ((r+1)%t.rows)*t.cols + c
	// Sorting network over the four (distinct) ids.
	if out[0] > out[1] {
		out[0], out[1] = out[1], out[0]
	}
	if out[2] > out[3] {
		out[2], out[3] = out[3], out[2]
	}
	if out[0] > out[2] {
		out[0], out[2] = out[2], out[0]
	}
	if out[1] > out[3] {
		out[1], out[3] = out[3], out[1]
	}
	if out[1] > out[2] {
		out[1], out[2] = out[2], out[1]
	}
}

// NeighborAt returns v's neighbor on the given port.
func (t *Torus) NeighborAt(v, port int) int {
	if port < 0 || port >= 4 {
		panic(fmt.Sprintf("sim: torus node %d has no port %d (degree 4)", v, port))
	}
	var b [4]int
	t.neigh(v, &b)
	return b[port]
}

// PortOf returns the port of neighbor id as seen from v, or -1.
func (t *Torus) PortOf(v, id int) int {
	var b [4]int
	t.neigh(v, &b)
	for p := 0; p < 4; p++ {
		if b[p] == id {
			return p
		}
	}
	return -1
}

// Neighbors materializes v's neighbor slice lazily (cached per node;
// warm calls are lock-free). Callers must not modify it.
func (t *Torus) Neighbors(v int) []int {
	return t.nbrs.get(t.N(), v, func(v int) []int {
		var b [4]int
		t.neigh(v, &b)
		a := make([]int, 4)
		copy(a, b[:])
		return a
	})
}

// Hypercube is the implicit dim-dimensional hypercube on 2^dim nodes:
// ids are adjacent iff they differ in exactly one bit.
//
// Ascending neighbor order means: first the neighbors below v (v with
// one set bit cleared — clearing a higher bit yields a smaller id, so
// set bits are visited from high to low), then the neighbors above v
// (one clear bit set, from low to high).
type Hypercube struct {
	dim  int
	nbrs lazyNbrs
}

// NewHypercube returns the implicit hypercube topology; 1 ≤ dim ≤ 30.
func NewHypercube(dim int) *Hypercube {
	if dim < 1 || dim > 30 {
		panic("sim: NewHypercube needs 1 ≤ dim ≤ 30")
	}
	return &Hypercube{dim: dim}
}

// N returns 2^dim.
func (h *Hypercube) N() int { return 1 << h.dim }

// Degree returns dim for every node.
func (h *Hypercube) Degree(v int) int { return h.dim }

// NeighborAt returns v's neighbor on the given port.
func (h *Hypercube) NeighborAt(v, port int) int {
	if port < 0 || port >= h.dim {
		panic(fmt.Sprintf("sim: hypercube node %d has no port %d (degree %d)", v, port, h.dim))
	}
	k := bits.OnesCount32(uint32(v))
	if port < k {
		// The port-th highest set bit, cleared.
		u := uint32(v)
		for i := 0; i < port; i++ {
			u &^= 1 << (31 - bits.LeadingZeros32(u))
		}
		return v &^ (1 << (31 - bits.LeadingZeros32(u)))
	}
	// The (port-k)-th lowest clear bit (within dim), set.
	u := ^uint32(v) & (1<<h.dim - 1)
	for i := k; i < port; i++ {
		u &= u - 1
	}
	return v | int(u&-u)
}

// PortOf returns the port of neighbor id as seen from v, or -1.
func (h *Hypercube) PortOf(v, id int) int {
	b := v ^ id
	if id < 0 || id >= h.N() || b == 0 || b&(b-1) != 0 {
		return -1
	}
	pos := bits.TrailingZeros32(uint32(b))
	if v&b != 0 {
		// id < v: ports count v's set bits from high to low.
		return bits.OnesCount32(uint32(v) >> (pos + 1))
	}
	// id > v: after the k down-ports, clear bits from low to high.
	k := bits.OnesCount32(uint32(v))
	return k + pos - bits.OnesCount32(uint32(v)&uint32(b-1))
}

// Neighbors materializes v's neighbor slice lazily (cached per node;
// warm calls are lock-free). Callers must not modify it.
func (h *Hypercube) Neighbors(v int) []int {
	return h.nbrs.get(h.N(), v, func(v int) []int {
		a := make([]int, h.dim)
		for p := range a {
			a[p] = h.NeighborAt(v, p)
		}
		return a
	})
}
