package sim

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Step-function execution: a node program written as an explicit state
// machine instead of a blocking func. The shard workers drive stepped
// nodes inline inside the account/resume phases — no per-node
// goroutine, no resume channel, no per-node stack, and no barrier
// arrival: the phase completing *is* the node's arrival. Only nodes
// running the classic blocking form participate in the zero-channel
// barrier, so a pure-step run performs zero channel operations per
// round.
//
// The two forms are observably identical. Step call k executes exactly
// the code a blocking program runs between its (k-1)-th and k-th Tick:
// the first Step receives a nil inbox (a blocking program has received
// nothing before its first Tick), returning true is Tick (the staged
// outbox is handed to the engine, the next Step receives the delivered
// inbox), and returning false is the program returning. Ctx.Round
// inside Step k reports k-1, the same value a blocking program sees
// between those Ticks. The inbox slice passed to Step aliases an
// engine-owned buffer under the same contract as Tick's return value:
// it is valid only until the node's next Step (simdebug poisons retired
// buffers here too).

// StepProgram is a node program in explicit state-machine form. The
// engine calls Step once per round with the messages delivered at the
// last barrier (nil on the first call, and whenever nothing arrived).
// Returning true ends the node's round — queued sends are staged for
// delivery — and returning false terminates the node, exactly like
// returning from a blocking program. A StepProgram must not call
// c.Tick or c.Idle: the engine owns the round boundary.
type StepProgram interface {
	Step(c *Ctx, in []Incoming) bool
}

// Program is the generalized node-program surface of Engine.RunProgram:
// Node picks each node's execution form. Returning a non-nil
// StepProgram makes the node goroutine-free (stepped inline by the
// delivery workers); returning a nil StepProgram and a non-nil func
// runs the node as a classic blocking goroutine. Mixed runs — some
// nodes stepped, some blocking — are valid and stay deterministic.
//
// Node is called once per node during engine setup — and once more per
// fault-layer restart of a node (see WithFaults), which re-binds the
// node exactly like setup did. It may be called concurrently for
// distinct nodes; it must not retain c beyond the node's own execution.
type Program interface {
	Node(c *Ctx) (StepProgram, func(*Ctx))
}

// Func adapts a classic blocking program to the Program surface; it is
// what Engine.Run wraps its argument in. Every node runs the same func
// on its own goroutine.
type Func func(*Ctx)

// Node implements Program: every node takes the goroutine form.
func (f Func) Node(*Ctx) (StepProgram, func(*Ctx)) { return nil, f }

// Steps adapts a per-node StepProgram factory to the Program surface:
// every node runs goroutine-free. The factory may be called
// concurrently for distinct nodes.
type Steps func(c *Ctx) StepProgram

// Node implements Program: every node takes the step form.
func (s Steps) Node(c *Ctx) (StepProgram, func(*Ctx)) { return s(c), nil }

// goSpawn is one goroutine-form node staged by bindShard for spawning
// after every shard is bound.
type goSpawn struct {
	id int
	fn func(*Ctx)
}

// bindShard materializes the shard's node contexts and binds each
// node's program form. Stepped nodes run their first step inline — the
// code a blocking program executes before its first Tick — so by the
// time the bind phase completes, every stepped node has staged its
// round-0 sends exactly like a freshly spawned goroutine node arriving
// at the first barrier. Goroutine nodes get their resume channel and
// are staged in the shard scratch for spawning once binding completes
// (spawning here would let them race the still-binding shards at the
// barrier).
func (e *Engine) bindShard(st *shardState, lo, hi int) {
	for id := lo; id < hi; id++ {
		c := newCtx(e, e.ctxs, id)
		step, fn := e.prog.Node(c)
		rt := &e.nodes[id]
		if step != nil {
			rt.step = step
			e.stepNode(c, rt)
			continue
		}
		if fn == nil {
			panic(fmt.Sprintf("sim: Program.Node returned neither form (nil StepProgram and nil func) for node %d", id))
		}
		if rt.resume == nil {
			rt.resume = make(chan []Incoming, 1)
		}
		st.gor = append(st.gor, goSpawn{id: id, fn: fn})
	}
}

// bindNodes binds every node's program form through the delivery pool
// (parallel at large n), then spawns the goroutine-form nodes the
// shards staged. Returns the goroutine-node count — the population of
// the arrival barrier.
func (e *Engine) bindNodes(sc *runScratch, p Program) int {
	// e.prog was set by RunProgram and stays set for the whole run: the
	// fault layer re-invokes Node on restart.
	e.runPhase(phaseBind)
	gor := sc.gor[:0]
	for _, st := range e.shards {
		gor = append(gor, st.gor...)
		for i := range st.gor {
			st.gor[i] = goSpawn{}
		}
		st.gor = st.gor[:0]
	}
	sc.gor = gor
	if len(gor) == 0 {
		return 0
	}
	// Arm the barrier before the first spawn can arrive at it. The spawn
	// loop reuses the Func fast path's trick: one shared closure and an
	// id-claim counter, so spawning allocates one closure per run — `go
	// runNode(...)` with arguments would heap-allocate per node.
	e.arrivals.Store(int64(len(gor)))
	var next atomic.Int64
	ctxs := e.ctxs
	nodeMain := func() {
		g := gor[next.Add(1)-1]
		runNode(&ctxs[g.id], g.fn)
	}
	for range gor {
		go nodeMain()
	}
	return len(gor)
}

// stepNode drives one round of a stepped node inline on the calling
// delivery worker: hand the inbox to Step, and either stage the
// resulting outbox (continue) or record termination (return/panic).
// This is the step-mode twin of resumeNode + the node's Tick, minus
// the channel hop, the goroutine park and the barrier arrival.
//
//muvet:hotpath
func (e *Engine) stepNode(c *Ctx, rt *nodeRT) {
	in := rt.inbox
	if len(in) == 0 {
		in = nil
	}
	rt.inbox = rt.inbox[:0]
	if e.aborted {
		// Aborted runs unwind goroutine nodes via the errAbort panic,
		// which the error harvest filters out; terminating with a nil
		// error is the observably identical step-mode ending.
		e.finishStep(c, rt, nil)
		return
	}
	cont, err := e.stepSafe(c, rt.step, in)
	if !cont {
		e.finishStep(c, rt, err)
		return
	}
	rt.ticks++
	if out := c.takeOutbox(); len(out) > 0 {
		e.senderOut[c.id] = out
	}
}

// stepSafe runs one Step call, translating a panic into the same node
// error runNode's recover produces for goroutine programs — the error
// strings are part of the determinism contract. (Not a hot path: the
// deferred recover is open-coded and allocation-free on the non-panic
// path, but hotalloc cannot see that.)
func (e *Engine) stepSafe(c *Ctx, p StepProgram, in []Incoming) (cont bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			cont = false
			if pe, ok := r.(error); ok && (errors.Is(pe, errAbort) || errors.Is(pe, ErrMemory)) {
				err = pe
			} else {
				err = fmt.Errorf("sim: node %d panicked: %v", c.id, r)
			}
		}
	}()
	return p.Step(c, in), nil
}

// finishStep is a stepped node's termination: the step-mode twin of
// runNode's deferred final arrival, publishing the termination bit, the
// error and any last staged sends. No arrival decrement — stepped nodes
// never enter the barrier population.
//
//muvet:hotpath
func (e *Engine) finishStep(c *Ctx, rt *nodeRT, err error) {
	rt.nodeErr = err
	rt.done = true
	if out := c.takeOutbox(); len(out) > 0 {
		e.senderOut[c.id] = out
	}
}
