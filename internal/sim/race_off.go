//go:build !race

package sim

// raceEnabled reports whether the race detector is compiled in. Tests
// that pin allocation counts skip under -race, where instrumentation
// allocates.
const raceEnabled = false
