package sim

import (
	"errors"
	"strings"
	"testing"
)

// pathTopo is a minimal topology for tests: a path 0-1-...-(n-1).
type pathTopo struct {
	n   int
	adj [][]int
}

func newPath(n int) *pathTopo {
	t := &pathTopo{n: n, adj: make([][]int, n)}
	for v := 0; v < n; v++ {
		if v > 0 {
			t.adj[v] = append(t.adj[v], v-1)
		}
		if v+1 < n {
			t.adj[v] = append(t.adj[v], v+1)
		}
	}
	return t
}

func (t *pathTopo) N() int                { return t.n }
func (t *pathTopo) Neighbors(v int) []int { return t.adj[v] }

func TestTokenPassingRounds(t *testing.T) {
	// Pass a token from node 0 to node n-1 along a path; takes n-1 rounds.
	n := 10
	e := New(newPath(n))
	res, err := e.Run(func(c *Ctx) {
		if c.ID() == 0 {
			c.SendID(1, Msg{Kind: 7, A: 42})
		}
		for {
			in := c.Tick()
			if len(in) == 0 {
				if c.Round() >= n {
					return
				}
				continue
			}
			for _, m := range in {
				if m.Msg.Kind == 7 {
					if c.ID() == n-1 {
						c.Emit(m.Msg.A)
						return
					}
					if m.From == c.ID()-1 {
						c.SendID(c.ID()+1, m.Msg)
					}
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs[n-1]; len(got) != 1 || got[0].(int64) != 42 {
		t.Fatalf("token not delivered: %v", got)
	}
	if res.Rounds < n-1 {
		t.Fatalf("token arrived in %d rounds, need ≥ %d", res.Rounds, n-1)
	}
}

func TestBroadcastAllReceive(t *testing.T) {
	topo := NewComplete(8)
	e := New(topo, WithSeed(3))
	res, err := e.Run(func(c *Ctx) {
		c.Broadcast(Msg{A: int64(c.ID())})
		in := c.Tick()
		if len(in) != c.N()-1 {
			c.Emit(-1)
			return
		}
		sum := int64(0)
		for _, m := range in {
			sum += m.Msg.A
		}
		c.Emit(sum)
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, out := range res.Outputs {
		want := int64(28 - id) // sum 0..7 minus self
		if out[0].(int64) != want {
			t.Fatalf("node %d got %v want %d", id, out[0], want)
		}
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
	if res.Messages != 8*7 {
		t.Fatalf("messages = %d, want 56", res.Messages)
	}
}

func TestEdgeCapEnforced(t *testing.T) {
	e := New(newPath(2))
	_, err := e.Run(func(c *Ctx) {
		if c.ID() == 0 {
			c.Send(0, Msg{})
			c.Send(0, Msg{}) // second message on same edge, same round
		}
		c.Tick()
	})
	if err == nil {
		t.Fatal("expected edge-cap violation error")
	}
}

func TestEdgeCapOption(t *testing.T) {
	e := New(newPath(2), WithEdgeCap(3))
	res, err := e.Run(func(c *Ctx) {
		if c.ID() == 0 {
			for i := 0; i < 3; i++ {
				c.Send(0, Msg{A: int64(i)})
			}
		}
		in := c.Tick()
		c.Emit(len(in))
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[1][0].(int) != 3 {
		t.Fatalf("node 1 received %v messages, want 3", res.Outputs[1][0])
	}
}

func TestNegativeEdgeCapFailsFast(t *testing.T) {
	// A nonsensical negative cap must make the very first Send panic
	// (as it did when the meter compared ints), not wrap into an
	// effectively unlimited unsigned cap.
	e := New(newPath(2), WithEdgeCap(-1))
	_, err := e.Run(func(c *Ctx) {
		if c.ID() == 0 {
			c.Send(0, Msg{})
		}
		c.Tick()
	})
	if err == nil || !strings.Contains(err.Error(), "edge capacity") {
		t.Fatalf("err = %v, want an edge-capacity panic on the first Send", err)
	}
}

func TestMemoryAccounting(t *testing.T) {
	e := New(newPath(3), WithMu(10))
	res, err := e.Run(func(c *Ctx) {
		c.Charge(4)
		c.Tick()
		c.Release(4)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", res.Violations)
	}
	for _, p := range res.PeakWords {
		if p != 4 {
			t.Fatalf("peak = %d, want 4", p)
		}
	}
}

func TestMemoryViolationRecorded(t *testing.T) {
	e := New(newPath(3), WithMu(2))
	res, err := e.Run(func(c *Ctx) {
		if c.ID() == 1 {
			// 2 neighbors send -> inbox of 2 words, plus 1 charged word = 3 > μ=2.
			c.Charge(1)
		} else {
			c.SendID(1, Msg{})
		}
		c.Tick()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 || res.Violations[0].Node != 1 {
		t.Fatalf("violations = %v, want one at node 1", res.Violations)
	}
}

func TestViolationDedupPerNode(t *testing.T) {
	// Node 1 receives 2 messages per round for 6 rounds while holding 1
	// charged word: over μ=2 every round. The run must record exactly ONE
	// Violation for node 1, carrying the first overrun's round and an
	// over-μ round count of 6 — not one entry per round.
	const rounds = 6
	e := New(newPath(3), WithMu(2))
	res, err := e.Run(func(c *Ctx) {
		if c.ID() == 1 {
			c.Charge(1)
			c.Idle(rounds)
			return
		}
		for r := 0; r < rounds; r++ {
			c.SendID(1, Msg{})
			c.Tick()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %v, want exactly one (deduped per node)", res.Violations)
	}
	v := res.Violations[0]
	if v.Node != 1 || v.Round != 0 || v.Words != 3 {
		t.Fatalf("first overrun = %+v, want node 1, round 0, 3 words", v)
	}
	if v.OverRounds != rounds {
		t.Fatalf("OverRounds = %d, want %d", v.OverRounds, rounds)
	}
	if res.OverMuRounds() != rounds {
		t.Fatalf("OverMuRounds() = %d, want %d", res.OverMuRounds(), rounds)
	}
}

func TestViolationOrderedByFirstOccurrence(t *testing.T) {
	// Node 2 goes over μ in round 0, node 0 in round 1; Violations must
	// list node 2 first (order of first occurrence, not node id).
	e := New(NewComplete(3), WithMu(1))
	res, err := e.Run(func(c *Ctx) {
		if c.ID() != 2 {
			c.SendID(2, Msg{}) // round 0: node 2's inbox = 2 > μ
		}
		c.Tick()
		if c.ID() != 0 {
			c.SendID(0, Msg{}) // round 1: node 0's inbox = 2 > μ
		}
		c.Tick()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 2 {
		t.Fatalf("violations = %v, want two", res.Violations)
	}
	if res.Violations[0].Node != 2 || res.Violations[0].Round != 0 {
		t.Fatalf("first violation = %+v, want node 2 at round 0", res.Violations[0])
	}
	if res.Violations[1].Node != 0 || res.Violations[1].Round != 1 {
		t.Fatalf("second violation = %+v, want node 0 at round 1", res.Violations[1])
	}
}

func TestStrictMemoryAborts(t *testing.T) {
	e := New(newPath(3), WithMu(1), WithStrictMemory())
	_, err := e.Run(func(c *Ctx) {
		if c.ID() != 1 {
			c.SendID(1, Msg{})
		}
		c.Tick()
		c.Tick()
	})
	if !errors.Is(err, ErrMemory) {
		t.Fatalf("err = %v, want ErrMemory", err)
	}
}

func TestStrictChargeCountsHeldInbox(t *testing.T) {
	// Regression for the strict-μ inbox accounting bug: node 1 ticks
	// while under μ=4, is handed an inbox of 2 words it still holds, and
	// then Charges 3 words. Deliver-style accounting says the node now
	// holds 3 live + 2 inbox = 5 > μ, so strict mode must abort — the old
	// check compared only the 3 live words against μ and let it pass.
	e := New(newPath(3), WithMu(4), WithStrictMemory())
	res, err := e.Run(func(c *Ctx) {
		if c.ID() == 1 {
			in := c.Tick() // receives one message from each neighbor
			c.Charge(3)
			_ = in
			c.Tick()
			return
		}
		c.SendID(1, Msg{})
		c.Tick()
		c.Tick()
	})
	if !errors.Is(err, ErrMemory) {
		t.Fatalf("err = %v, want ErrMemory (live words + held inbox exceed μ)", err)
	}
	// The Result must agree with the abort: the peak reflects the 3 live
	// + 2 held inbox words the node was aborted on.
	if res.PeakWords[1] != 5 {
		t.Fatalf("PeakWords[1] = %d, want 5 (3 live + 2 held inbox)", res.PeakWords[1])
	}
}

func TestStrictChargeAloneStillUnderMu(t *testing.T) {
	// Control for the inbox-accounting fix: the same Charge with an empty
	// inbox stays under μ and must not abort.
	e := New(newPath(3), WithMu(4), WithStrictMemory())
	res, err := e.Run(func(c *Ctx) {
		c.Tick() // nobody sends: inbox empty
		if c.ID() == 1 {
			c.Charge(3)
		}
		c.Tick()
	})
	if err != nil {
		t.Fatalf("err = %v, want clean run (3 live words ≤ μ=4)", err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", res.Violations)
	}
}

func TestStrictMemoryAbortsAcrossShards(t *testing.T) {
	// Strict abort driven by a node in a non-zero delivery shard
	// (id > ShardSpan) exercises the separate account/resume phases of
	// the sharded strict path.
	n := ShardSpan + 88
	e := New(newPath(n), WithMu(1), WithStrictMemory())
	_, err := e.Run(func(c *Ctx) {
		if c.ID() == ShardSpan+42 {
			c.Tick() // receives 2 messages > μ=1
			c.Tick()
			return
		}
		for _, u := range c.Neighbors() {
			if u == ShardSpan+42 {
				c.SendID(u, Msg{})
			}
		}
		c.Tick()
		c.Tick()
	})
	if !errors.Is(err, ErrMemory) {
		t.Fatalf("err = %v, want ErrMemory", err)
	}
}

func TestChargeOnlyViolationCounted(t *testing.T) {
	// A node over μ purely via Charge — receiving no messages at all —
	// must still be recorded, and OverRounds must count every quiet round
	// it stays over, per the documented "every round over μ" semantics.
	e := New(newPath(3), WithMu(2))
	res, err := e.Run(func(c *Ctx) {
		if c.ID() == 1 {
			c.Charge(5)
			c.Idle(4)
			c.Release(5)
			return
		}
		c.Idle(4)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %v, want exactly one", res.Violations)
	}
	v := res.Violations[0]
	if v.Node != 1 || v.Round != 0 || v.Words != 5 {
		t.Fatalf("first overrun = %+v, want node 1, round 0, 5 words", v)
	}
	if v.OverRounds != 4 {
		t.Fatalf("OverRounds = %d, want 4 (one per quiet round over μ)", v.OverRounds)
	}
}

func TestChargeRejectsNegativeWords(t *testing.T) {
	// Regression: Charge(-n) used to silently drive the live-word meter
	// negative, bypassing Release's underflow panic and corrupting peak
	// and strict-μ accounting. It must panic (surfacing as a node error)
	// before touching the meter.
	e := New(newPath(2))
	res, err := e.Run(func(c *Ctx) {
		if c.ID() == 0 {
			c.Charge(5)
			c.Charge(-3)
		}
		c.Tick()
	})
	if err == nil || !strings.Contains(err.Error(), "negative words") {
		t.Fatalf("err = %v, want a negative-words panic from Charge", err)
	}
	// The rejected charge must not have shrunk the meter: the node died
	// at 5 live words.
	if res.PeakWords[0] != 5 {
		t.Fatalf("PeakWords[0] = %d, want 5 (negative charge rejected before mutating)", res.PeakWords[0])
	}
}

func TestReleaseRejectsNegativeWords(t *testing.T) {
	// Symmetric guard: Release(-n) would grow live words without the
	// strict-μ check Charge performs.
	e := New(newPath(2))
	_, err := e.Run(func(c *Ctx) {
		if c.ID() == 0 {
			c.Charge(2)
			c.Release(-1)
		}
		c.Tick()
	})
	if err == nil || !strings.Contains(err.Error(), "negative words") {
		t.Fatalf("err = %v, want a negative-words panic from Release", err)
	}
}

func TestMaxRoundsGuard(t *testing.T) {
	e := New(newPath(2), WithMaxRounds(10))
	_, err := e.Run(func(c *Ctx) {
		for {
			c.Tick()
		}
	})
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ([]int64, int) {
		e := New(NewComplete(6), WithSeed(99))
		res, err := e.Run(func(c *Ctx) {
			x := c.Rand().Int63n(1000)
			c.Broadcast(Msg{A: x})
			in := c.Tick()
			s := int64(0)
			for _, m := range in {
				s += m.Msg.A
			}
			c.Emit(s)
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int64, 6)
		for i := range out {
			out[i] = res.Outputs[i][0].(int64)
		}
		return out, res.Rounds
	}
	a, ra := run()
	b, rb := run()
	if ra != rb {
		t.Fatalf("rounds differ: %d vs %d", ra, rb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestInboxOrders(t *testing.T) {
	for _, order := range []InboxOrder{OrderBySender, OrderRandom, OrderReversed} {
		e := New(NewComplete(5), WithInboxOrder(order), WithSeed(7))
		res, err := e.Run(func(c *Ctx) {
			c.Broadcast(Msg{A: int64(c.ID())})
			in := c.Tick()
			ids := make([]int64, len(in))
			for i, m := range in {
				ids[i] = m.Msg.A
			}
			c.Emit(ids)
		})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Outputs[0][0].([]int64)
		if len(got) != 4 {
			t.Fatalf("order %v: got %d messages", order, len(got))
		}
		switch order {
		case OrderBySender:
			for i := 1; i < len(got); i++ {
				if got[i] < got[i-1] {
					t.Fatalf("OrderBySender not sorted: %v", got)
				}
			}
		case OrderReversed:
			for i := 1; i < len(got); i++ {
				if got[i] > got[i-1] {
					t.Fatalf("OrderReversed not reversed: %v", got)
				}
			}
		}
	}
}

func TestDroppedMessagesToFinishedNodes(t *testing.T) {
	e := New(newPath(3))
	res, err := e.Run(func(c *Ctx) {
		if c.ID() == 0 {
			return // finishes immediately
		}
		if c.ID() == 1 {
			c.SendID(0, Msg{})
			c.SendID(2, Msg{})
		}
		c.Tick()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", res.Dropped)
	}
}

func TestNodePanicPropagates(t *testing.T) {
	e := New(newPath(3))
	_, err := e.Run(func(c *Ctx) {
		if c.ID() == 2 {
			panic("boom")
		}
		c.Tick()
	})
	if err == nil {
		t.Fatal("expected panic to surface as error")
	}
}

func TestEmitCostsNoMemory(t *testing.T) {
	e := New(newPath(2), WithMu(1))
	res, err := e.Run(func(c *Ctx) {
		for i := 0; i < 100; i++ {
			c.Emit(i)
		}
		c.Tick()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("emitting output must not consume memory: %v", res.Violations)
	}
	if res.TotalOutputs() != 200 {
		t.Fatalf("outputs = %d, want 200", res.TotalOutputs())
	}
}

func TestCompleteTopology(t *testing.T) {
	c := NewComplete(5)
	if c.N() != 5 {
		t.Fatal("N")
	}
	for v := 0; v < 5; v++ {
		nb := c.Neighbors(v)
		if len(nb) != 4 {
			t.Fatalf("degree %d", len(nb))
		}
		for _, u := range nb {
			if u == v {
				t.Fatal("self neighbor")
			}
		}
		// The arithmetic fast paths must agree with the materialized list.
		if c.Degree(v) != len(nb) {
			t.Fatalf("Degree(%d) = %d, want %d", v, c.Degree(v), len(nb))
		}
		for p, u := range nb {
			if got := c.NeighborAt(v, p); got != u {
				t.Fatalf("NeighborAt(%d,%d) = %d, want %d", v, p, got, u)
			}
			if got := c.PortOf(v, u); got != p {
				t.Fatalf("PortOf(%d,%d) = %d, want %d", v, u, got, p)
			}
		}
		if c.PortOf(v, v) != -1 || c.PortOf(v, -1) != -1 || c.PortOf(v, 5) != -1 {
			t.Fatal("PortOf must return -1 for self and out-of-range ids")
		}
	}
}

func TestCompleteTopologyImplicit(t *testing.T) {
	// The complete topology is implicit: constructing it at engine scale
	// must not allocate O(n²) adjacency, and all port arithmetic must
	// answer without materializing anything. (An explicit build at this n
	// would need ~8 TB.)
	const n = 1 << 20
	c := NewComplete(n)
	if c.Degree(12345) != n-1 {
		t.Fatalf("degree = %d, want %d", c.Degree(12345), n-1)
	}
	if got := c.NeighborAt(100, 99); got != 99 {
		t.Fatalf("NeighborAt(100,99) = %d, want 99", got)
	}
	if got := c.NeighborAt(100, 100); got != 101 {
		t.Fatalf("NeighborAt(100,100) = %d, want 101", got)
	}
	if got := c.PortOf(100, n-1); got != n-2 {
		t.Fatalf("PortOf(100,%d) = %d, want %d", n-1, got, n-2)
	}
	// Neighbors materializes lazily, one node at a time, and caches.
	nb := c.Neighbors(3)
	if len(nb) != n-1 || nb[0] != 0 || nb[3] != 4 || nb[n-2] != n-1 {
		t.Fatalf("Neighbors(3) malformed: len=%d", len(nb))
	}
	if again := c.Neighbors(3); &again[0] != &nb[0] {
		t.Fatal("Neighbors must cache and return a stable slice")
	}
}

func TestSendToNonNeighborPanics(t *testing.T) {
	e := New(newPath(3))
	_, err := e.Run(func(c *Ctx) {
		if c.ID() == 0 {
			c.SendID(2, Msg{}) // 2 is not adjacent to 0 on a path
		}
		c.Tick()
	})
	if err == nil {
		t.Fatal("expected error for non-neighbor send")
	}
}

func TestPortAddressing(t *testing.T) {
	e := New(newPath(3))
	res, err := e.Run(func(c *Ctx) {
		if c.ID() == 1 {
			if c.PortOf(0) < 0 || c.PortOf(2) < 0 || c.PortOf(1) != -1 {
				c.Emit("bad ports")
			}
			c.Send(c.PortOf(2), Msg{A: 5})
		}
		in := c.Tick()
		if c.ID() == 2 && len(in) == 1 && in[0].Msg.A == 5 {
			c.Emit("ok")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs[1]) != 0 {
		t.Fatalf("port sanity failed: %v", res.Outputs[1])
	}
	if len(res.Outputs[2]) != 1 {
		t.Fatal("port-addressed message lost")
	}
}
