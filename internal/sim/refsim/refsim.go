// Package refsim is the differential-verification oracle for the
// μ-CONGEST engine: a deliberately simple reference implementation of
// the exact observable contract of package sim — same Topology
// interface, same NodeCtx method set, same μ-accounting (including the
// strict-mode abort timing), same inbox orders and per-shard RNG
// stream derivation, same error strings — built for obviousness, not
// speed.
//
// Everything the production engine does cleverly, refsim does naively:
//
//   - No sharding, no worker pool, no buffer pooling, no stamp-packed
//     meters. Plain maps and freshly allocated slices everywhere.
//   - One logical thread of control. Node programs need goroutines to
//     block inside Tick, but the engine steps them strictly one at a
//     time (resume node, wait for it to yield), so at any instant at
//     most one goroutine runs. Execution is sequential and
//     deterministic by construction.
//
// Because refsim reproduces the engine's externally visible behavior
// bit for bit — round counts, message/drop totals, per-node outputs
// and memory peaks, violation records, abort identity including error
// strings, and every OrderRandom permutation — any randomized scenario
// can be executed on both engines and compared field by field. The
// internal/harness package does exactly that. A future engine rewrite
// is correct when it still matches refsim everywhere; refsim itself is
// pinned against the golden digests recorded on the original
// pre-sharding engine.
package refsim

import (
	"errors"
	"fmt"
	"math/rand"

	"mucongest/internal/sim"
)

// NodeCtx is the node-side contract shared by the production engine
// and the reference engine: the full method set node programs may use.
// *sim.Ctx and *refsim.Ctx both satisfy it, so one program (written as
// func(NodeCtx)) can run on either engine — the basis of differential
// testing.
type NodeCtx interface {
	// Identity and topology view.
	ID() int
	N() int
	Mu() int64
	Degree() int
	Neighbors() []int
	Neighbor(port int) int
	PortOf(id int) int
	// Private deterministic RNG (stream keyed by engine seed and id).
	Rand() *rand.Rand
	Round() int
	// Restarts counts the node's fault-layer crash/restart cycles.
	Restarts() int
	// Messaging.
	Send(port int, m sim.Msg)
	SendID(id int, m sim.Msg)
	Broadcast(m sim.Msg)
	Tick() []sim.Incoming
	Idle(k int)
	// Output and memory meter.
	Emit(v any)
	Charge(words int64)
	Release(words int64)
	Live() int64
}

// Both engines implement the contract. sim.Ctx's assertion lives here
// rather than in package sim so sim keeps zero knowledge of refsim.
var (
	_ NodeCtx = (*sim.Ctx)(nil)
	_ NodeCtx = (*Ctx)(nil)
)

// Config mirrors package sim's options as one plain struct. The zero
// value means the same thing as a sim.New call with no options: seed 1,
// edge capacity 1, unbounded memory, OrderBySender, lenient μ, round
// limit 2,000,000.
type Config struct {
	Mu        int64
	Seed      int64 // 0 selects the engine default seed 1
	EdgeCap   int   // 0 selects the default capacity 1
	Order     sim.InboxOrder
	Strict    bool
	MaxRounds int // 0 selects the default limit 2,000,000
	// Faults mirrors sim.WithFaults: the same plan must produce
	// bit-identical crashes, restarts and drops on both engines, since
	// every fault decision derives from sim.FaultStreamSeed.
	Faults sim.FaultPlan
}

// RoundStats is the reference engine's per-round message ledger,
// recorded at each barrier: how many words were staged by senders, how
// many reached an inbox and how many were dropped because the
// destination had terminated. Sent == Delivered + Dropped holds for
// every round by conservation.
type RoundStats struct {
	Sent      int64
	Delivered int64
	Dropped   int64
	// DroppedFault is the fault-induced subset of Dropped this round:
	// loss draws, down edges and parked destinations. The finished-node
	// drops the ledger always counted are Dropped - DroppedFault.
	DroppedFault int64
}

// Stats is the side-channel record a reference run produces on top of
// the sim.Result, feeding the harness's metamorphic invariants.
type Stats struct {
	PerRound []RoundStats
	// MaxInboxWords is, per node, the largest inbox (in words) the node
	// was ever handed. PeakWords can never be below it.
	MaxInboxWords []int64
}

// Engine is the reference engine. Create with New, run once with Run.
type Engine struct {
	topo    sim.Topology
	cfg     Config
	n       int
	nodes   []nodeState
	rngs    []*rand.Rand // one OrderRandom stream per ShardSpan id range
	step    chan struct{}
	aborted bool
	runErr  error

	messages   int64
	dropped    int64
	faultDrops int64
	crashes    int64
	restarts   int64
	stats      Stats
}

type nodeState struct {
	resume chan struct{}
	// staged is the outbox the node handed over at its last yield
	// (Tick or termination), in send order.
	staged []staged
	// inbox accumulates this barrier's deliveries; handed to the node at
	// resume as a fresh slice (no reuse, no aliasing contract needed).
	inbox      []sim.Incoming
	inboxWords int64
	live       int64
	peak       int64
	ticks      int
	done       bool
	err        error
	finished   bool
	outputs    []any
	violation  bool
	vioIdx     int
	// Fault-layer state, mirroring sim.nodeRT: parked nodes crashed and
	// await restart at restartRound; crashing flags the node currently
	// being unwound through the errCrash panic.
	parked       bool
	crashing     bool
	restartRound int
	restarts     int
}

type staged struct {
	to  int
	msg sim.Msg
}

// errAbort is the engine→node unwind sentinel, mirroring sim's.
var errAbort = errors.New("refsim: run aborted")

// errCrash unwinds a node the fault layer crashed, mirroring sim's:
// the crash is a parking, not a termination, so runNode publishes
// nothing when it recovers this sentinel.
var errCrash = errors.New("refsim: node crashed by fault injection")

// New creates a reference engine over topo.
func New(topo sim.Topology, cfg Config) *Engine {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.EdgeCap == 0 {
		cfg.EdgeCap = 1
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 2_000_000
	}
	return &Engine{topo: topo, cfg: cfg, n: topo.N()}
}

// Stats returns the ledger of the completed run. Valid after Run.
func (e *Engine) Stats() *Stats { return &e.stats }

// Run executes program on every node and returns the aggregated
// result, shaped exactly like the production engine's: same Result
// fields, same Violation records, same error values and strings.
func (e *Engine) Run(program func(NodeCtx)) (*sim.Result, error) {
	n := e.n
	e.nodes = make([]nodeState, n)
	e.step = make(chan struct{})
	// Like the production engine, an Engine is reusable: every piece of
	// run state is reset here, nothing carries over.
	e.aborted = false
	e.runErr = nil
	e.messages = 0
	e.dropped = 0
	e.faultDrops = 0
	e.crashes = 0
	e.restarts = 0
	e.stats = Stats{MaxInboxWords: make([]int64, n)}
	nshards := (n + sim.ShardSpan - 1) / sim.ShardSpan
	if nshards < 1 {
		nshards = 1
	}
	e.rngs = make([]*rand.Rand, nshards)
	for s := range e.rngs {
		e.rngs[s] = rand.New(rand.NewSource(sim.ShardStreamSeed(e.cfg.Seed, s)))
	}

	// Start the nodes one at a time: each runs until its first Tick (or
	// termination) before the next is spawned, keeping execution
	// sequential from the very first instruction.
	for id := 0; id < n; id++ {
		e.nodes[id].resume = make(chan struct{})
		go e.runNode(newCtx(e, id), program)
		<-e.step
	}

	active := n
	round := 0
	var violations []sim.Violation
	for active > 0 {
		// Barrier: every live node has yielded (staged its outbox, and —
		// if it terminated — published done and its error).

		// 0. Fault point, mirroring the production engine's: before this
		// barrier's terminations are even collected, perform the restarts
		// due this round and draw crash decisions from per-shard streams
		// keyed (seed, round, shard) in ascending shard and node order.
		// On an aborted run, terminate parked nodes instead so the run
		// can end.
		if !e.cfg.Faults.Empty() {
			e.applyFaults(round, program)
		}

		// 1. Collect newly terminated nodes; the reported error is
		// deterministically the lowest failing node's, skipping the
		// engine's own abort sentinel.
		var nodeErr error
		for id := range e.nodes {
			nd := &e.nodes[id]
			if nd.done && !nd.finished {
				active--
				if nd.err != nil {
					if nodeErr == nil && !errors.Is(nd.err, errAbort) {
						nodeErr = nd.err
					}
					nd.err = nil
				}
			}
		}
		if nodeErr != nil {
			e.aborted = true
			if e.runErr == nil {
				e.runErr = nodeErr
			}
		}
		// 2. Violations recorded at this barrier carry the pre-increment
		// round counter; the runaway guard fires after the increment.
		r := round
		round++
		if round > e.cfg.MaxRounds && active > 0 {
			e.aborted = true
			if e.runErr == nil {
				e.runErr = sim.ErrMaxRounds
			}
		}
		// 3. Route: ascending sender id, send order within a sender.
		// Messages to terminated nodes are dropped; with a fault plan
		// active, the production engine's drop chain follows — parked
		// destination, down edge, then the loss draw from the sender
		// shard's per-round stream, consumed only for messages that
		// survived the earlier checks. The fault keys use r, the
		// pre-increment round counter, exactly like the engine's route
		// phase (which runs before its round increment).
		var rs RoundStats
		fp := e.cfg.Faults
		haveFaults := !fp.Empty()
		var lrng *rand.Rand
		curShard := -1
		for id := range e.nodes {
			nd := &e.nodes[id]
			if haveFaults && fp.Loss {
				if s := id / sim.ShardSpan; s != curShard {
					curShard = s
					lrng = rand.New(rand.NewSource(sim.FaultStreamSeed(e.cfg.Seed, r, s, sim.FaultKindLoss)))
				}
			}
			out := nd.staged
			nd.staged = nil
			rs.Sent += int64(len(out))
			for _, m := range out {
				if e.nodes[m.to].done {
					rs.Dropped++
					continue
				}
				if haveFaults {
					if e.nodes[m.to].parked {
						rs.Dropped++
						rs.DroppedFault++
						continue
					}
					if fp.EdgeDown && fp.EdgeIsDown(e.cfg.Seed, r, id, m.to) {
						rs.Dropped++
						rs.DroppedFault++
						continue
					}
					if fp.Loss && lrng.Float64() < fp.LossP {
						rs.Dropped++
						rs.DroppedFault++
						continue
					}
				}
				dst := &e.nodes[m.to]
				dst.inbox = append(dst.inbox, sim.Incoming{From: id, Msg: m.msg})
				rs.Delivered++
			}
		}
		e.messages += rs.Delivered
		e.dropped += rs.Dropped
		e.faultDrops += rs.DroppedFault
		e.stats.PerRound = append(e.stats.PerRound, rs)
		// 4. Account every live node in ascending id: order the inbox
		// (OrderRandom consumes the node's shard stream once per
		// non-empty inbox), charge the delivered words, update the peak,
		// and record μ overruns — including charge-only and quiet rounds.
		for id := range e.nodes {
			nd := &e.nodes[id]
			if nd.finished {
				continue
			}
			if nd.done {
				// Terminated at this barrier: acknowledge and skip —
				// no ordering, metering or resume.
				nd.finished = true
				continue
			}
			if nd.parked {
				// Crashed and awaiting restart: nothing was delivered,
				// the node holds no memory, no stream is consumed.
				continue
			}
			if len(nd.inbox) > 0 {
				switch e.cfg.Order {
				case sim.OrderRandom:
					rng := e.rngs[id/sim.ShardSpan]
					rng.Shuffle(len(nd.inbox), func(i, j int) {
						nd.inbox[i], nd.inbox[j] = nd.inbox[j], nd.inbox[i]
					})
				case sim.OrderReversed:
					for i, j := 0, len(nd.inbox)-1; i < j; i, j = i+1, j-1 {
						nd.inbox[i], nd.inbox[j] = nd.inbox[j], nd.inbox[i]
					}
				}
			}
			nd.inboxWords = int64(len(nd.inbox)) * sim.MsgWords
			if nd.inboxWords > e.stats.MaxInboxWords[id] {
				e.stats.MaxInboxWords[id] = nd.inboxWords
			}
			total := nd.live + nd.inboxWords
			if total > nd.peak {
				nd.peak = total
			}
			if e.cfg.Mu > 0 && total > e.cfg.Mu {
				if nd.violation {
					violations[nd.vioIdx].OverRounds++
				} else {
					nd.violation = true
					nd.vioIdx = len(violations)
					violations = append(violations,
						sim.Violation{Node: id, Round: r, Words: total, OverRounds: 1})
				}
			}
		}
		// 5. Strict mode aborts on the first recorded violation, after
		// every node's accounting but before any node is resumed.
		if e.cfg.Strict && len(violations) > 0 {
			e.aborted = true
			if e.runErr == nil {
				e.runErr = fmt.Errorf("%w: %v", sim.ErrMemory, violations[0])
			}
		}
		// 6. Resume the live nodes one at a time, waiting for each to
		// yield again before touching the next.
		for id := range e.nodes {
			nd := &e.nodes[id]
			if nd.finished || nd.parked {
				continue
			}
			nd.resume <- struct{}{}
			<-e.step
		}
	}

	res := &sim.Result{
		Messages:   e.messages,
		Dropped:    e.dropped,
		FaultDrops: e.faultDrops,
		Crashes:    e.crashes,
		Restarts:   e.restarts,
		Outputs:    make([][]any, n),
		PeakWords:  make([]int64, n),
		Violations: violations,
	}
	for id := range e.nodes {
		nd := &e.nodes[id]
		res.Outputs[id] = nd.outputs
		res.PeakWords[id] = nd.peak
		if nd.ticks > res.Rounds {
			res.Rounds = nd.ticks
		}
	}
	return res, e.runErr
}

// applyFaults is the reference fault point, mirroring the production
// engine's: restarts due this round first (a restarted node consumes no
// crash draw), then crash draws from per-shard streams keyed (seed,
// round, shard) in ascending shard and node order. On an aborted run it
// terminates parked nodes so the run can end, exactly like the engine.
func (e *Engine) applyFaults(round int, program func(NodeCtx)) {
	if e.aborted {
		for id := range e.nodes {
			if nd := &e.nodes[id]; nd.parked && !nd.done {
				nd.done = true
			}
		}
		return
	}
	fp := e.cfg.Faults
	var crng *rand.Rand
	curShard := -1
	for id := range e.nodes {
		nd := &e.nodes[id]
		if nd.parked {
			if nd.restartRound == round {
				e.restartNode(id, program)
			}
			continue
		}
		if nd.done || nd.finished || !fp.Crash {
			continue
		}
		if s := id / sim.ShardSpan; s != curShard {
			curShard = s
			crng = rand.New(rand.NewSource(sim.FaultStreamSeed(e.cfg.Seed, round, s, sim.FaultKindCrash)))
		}
		if crng.Float64() < fp.CrashP {
			e.crashNode(id, round)
		}
	}
}

// crashNode parks one node: the goroutine parked in Tick is unwound
// through the errCrash panic (the crashing flag plus a resume wakes it;
// the step ack confirms the goroutine is gone), its staged sends from
// the barrier it already passed stay routable — fail-stop — and its
// memory is freed. Outputs, the peak high-water mark and any recorded
// violation survive for the eventual restart.
func (e *Engine) crashNode(id, round int) {
	nd := &e.nodes[id]
	nd.crashing = true
	nd.resume <- struct{}{}
	<-e.step
	nd.crashing = false
	nd.parked = true
	nd.restartRound = round + e.cfg.Faults.RestartDelay()
	nd.live = 0
	nd.inboxWords = 0
	nd.inbox = nil
	e.crashes++
}

// restartNode revives a parked node with a fresh Ctx — private RNG
// replaying its stream from the start, reset meter, Round() back at 0 —
// and re-runs program from its first instruction, sequentially like the
// initial spawn: the node runs until its first Tick (or termination)
// before the engine moves on.
func (e *Engine) restartNode(id int, program func(NodeCtx)) {
	nd := &e.nodes[id]
	nd.parked = false
	nd.restartRound = 0
	nd.restarts++
	nd.ticks = 0
	e.restarts++
	go e.runNode(newCtx(e, id), program)
	<-e.step
}

// runNode wraps one node's program, translating returns and panics into
// the termination record exactly as the production engine does: the
// abort sentinel and ErrMemory pass through, anything else becomes a
// "panicked" error; sends staged before termination are still routed.
// The crash sentinel is the exception — a crashed node is parked, not
// terminated, so nothing is published and only the step ack fires.
func (e *Engine) runNode(c *Ctx, program func(NodeCtx)) {
	defer func() {
		nd := &e.nodes[c.id]
		if r := recover(); r != nil {
			if err, ok := r.(error); ok && errors.Is(err, errCrash) {
				e.step <- struct{}{}
				return
			}
			if err, ok := r.(error); ok && (errors.Is(err, errAbort) || errors.Is(err, sim.ErrMemory)) {
				nd.err = err
			} else {
				nd.err = fmt.Errorf("sim: node %d panicked: %v", c.id, r)
			}
		}
		nd.done = true
		nd.staged = c.outbox
		c.outbox = nil
		e.step <- struct{}{}
	}()
	program(c)
}
