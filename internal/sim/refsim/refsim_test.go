package refsim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"mucongest/internal/graph"
	"mucongest/internal/sim"
)

// detProgram is the mixed workload of sim's determinism regression
// suite (per-node-RNG sends, order-sensitive folds, early termination,
// memory traffic), written against the shared NodeCtx contract so the
// same function body runs on either engine.
func detProgram(c NodeCtx) {
	c.Charge(int64(c.ID()%3 + 1))
	for r := 0; r < 8; r++ {
		for _, u := range c.Neighbors() {
			if c.Rand().Intn(2) == 0 {
				c.SendID(u, sim.Msg{Kind: 1, A: int64(c.ID()), B: int64(r), C: c.Rand().Int63n(1 << 20)})
			}
		}
		in := c.Tick()
		var h int64
		for i, m := range in {
			h = h*1_000_003 + int64(m.From+1)*31 + m.Msg.C + int64(i+1)
		}
		c.Emit(h)
		if c.ID()%5 == 2 && r == 3 {
			return
		}
	}
}

// digestResult folds the externally visible execution record into one
// hash, identically to sim's determinism tests.
func digestResult(res *sim.Result) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "r=%d m=%d d=%d|", res.Rounds, res.Messages, res.Dropped)
	for i, out := range res.Outputs {
		fmt.Fprintf(h, "o%d:%v|", i, out)
	}
	for i, p := range res.PeakWords {
		fmt.Fprintf(h, "p%d:%d|", i, p)
	}
	return h.Sum64()
}

// TestRefsimReproducesEngineGoldens pins the reference engine to the
// golden digests recorded on the original (pre-bucketed-routing,
// pre-sharding) production engine, for every inbox order:
//
//   - Complete(12), seed 42 — the single-shard corpus from
//     TestDeterminismRegression, exercising the raw-seed shard-0 RNG
//     stream.
//   - Cycle(1536), seed 7 — the 3-shard corpus from
//     TestShardedDeterminismAcrossWorkers, exercising the splitmix64
//     per-shard stream derivation.
//
// Matching these constants proves refsim implements the exact
// μ-CONGEST semantics every engine rewrite has been certified against.
func TestRefsimReproducesEngineGoldens(t *testing.T) {
	cases := []struct {
		name   string
		topo   sim.Topology
		seed   int64
		golden map[sim.InboxOrder]uint64
	}{
		{
			name: "complete12", topo: sim.NewComplete(12), seed: 42,
			golden: map[sim.InboxOrder]uint64{
				sim.OrderBySender: 0x1869edabe99e8f71,
				sim.OrderRandom:   0x4a46a3b848ff6d9e,
				sim.OrderReversed: 0xb1ba131f94737889,
			},
		},
		{
			name: "cycle1536", topo: graph.Cycle(1536), seed: 7,
			golden: map[sim.InboxOrder]uint64{
				sim.OrderBySender: 0x5063c57af0676ab3,
				sim.OrderRandom:   0xc666c7d3c587cf4b,
				sim.OrderReversed: 0xc92d294f547ec64b,
			},
		},
		// The skewed-degree corpus of TestShardedDeterminismPowerlaw:
		// the same constants pinned there for the production engine.
		{
			name: "powerlaw1536", topo: graph.BarabasiAlbert(1536, 3, rand.New(rand.NewSource(13))), seed: 7,
			golden: map[sim.InboxOrder]uint64{
				sim.OrderBySender: 0xc407122fa3770141,
				sim.OrderRandom:   0x8466b52c996b7f7b,
				sim.OrderReversed: 0x34a9fe10e8b1bd5e,
			},
		},
	}
	for _, tc := range cases {
		for order, want := range tc.golden {
			e := New(tc.topo, Config{Seed: tc.seed, Order: order})
			res, err := e.Run(detProgram)
			if err != nil {
				t.Fatalf("%s order %v: %v", tc.name, order, err)
			}
			if got := digestResult(res); got != want {
				t.Errorf("%s order %v: digest = %#x, want engine golden %#x", tc.name, order, got, want)
			}
		}
	}
}

// TestRefsimStats checks the per-round ledger: conservation holds every
// round, the totals agree with the Result, and PeakWords dominates the
// largest delivered inbox.
func TestRefsimStats(t *testing.T) {
	e := New(sim.NewComplete(12), Config{Seed: 42})
	res, err := e.Run(detProgram)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	var delivered, dropped int64
	for r, rs := range st.PerRound {
		if rs.Sent != rs.Delivered+rs.Dropped {
			t.Errorf("round %d: sent %d != delivered %d + dropped %d", r, rs.Sent, rs.Delivered, rs.Dropped)
		}
		delivered += rs.Delivered
		dropped += rs.Dropped
	}
	if delivered != res.Messages || dropped != res.Dropped {
		t.Errorf("ledger totals (%d, %d) != result (%d, %d)", delivered, dropped, res.Messages, res.Dropped)
	}
	if res.Dropped == 0 {
		t.Error("workload should drop messages to early-finished nodes")
	}
	for v, w := range st.MaxInboxWords {
		if res.PeakWords[v] < w {
			t.Errorf("node %d: peak %d below largest delivered inbox %d", v, res.PeakWords[v], w)
		}
	}
}

// TestRefsimAbortParity runs abort scenarios on both engines directly
// and requires identical error strings and identical results for the
// rounds that completed: a strict μ abort detected at the barrier, a
// strict abort raised by Charge between barriers, a mid-run node panic,
// and the round-limit guard.
func TestRefsimAbortParity(t *testing.T) {
	scenarios := []struct {
		name    string
		program func(NodeCtx)
		cfg     Config
		opts    []sim.Option
	}{
		{
			name: "strict-barrier-overrun",
			program: func(c NodeCtx) {
				for r := 0; r < 6; r++ {
					c.Broadcast(sim.Msg{Kind: 1, A: int64(r)})
					c.Tick()
				}
			},
			cfg: Config{Seed: 3, Mu: 1, Strict: true},
			opts: []sim.Option{
				sim.WithSeed(3), sim.WithMu(1), sim.WithStrictMemory(),
			},
		},
		{
			name: "strict-charge-abort",
			program: func(c NodeCtx) {
				for r := 0; r < 6; r++ {
					if c.ID() == 5 && r == 2 {
						c.Charge(100)
					}
					c.Tick()
				}
			},
			cfg: Config{Seed: 3, Mu: 8, Strict: true},
			opts: []sim.Option{
				sim.WithSeed(3), sim.WithMu(8), sim.WithStrictMemory(),
			},
		},
		{
			name: "node-panic",
			program: func(c NodeCtx) {
				for r := 0; ; r++ {
					c.Broadcast(sim.Msg{Kind: 1})
					c.Tick()
					if r == 2 && c.ID()%4 == 1 {
						panic(fmt.Sprintf("node %d exploded", c.ID()))
					}
				}
			},
			cfg:  Config{Seed: 9},
			opts: []sim.Option{sim.WithSeed(9)},
		},
		{
			name: "max-rounds",
			program: func(c NodeCtx) {
				for {
					c.Tick()
				}
			},
			cfg:  Config{Seed: 1, MaxRounds: 5},
			opts: []sim.Option{sim.WithSeed(1), sim.WithMaxRounds(5)},
		},
	}
	topo := graph.Cycle(16)
	for _, sc := range scenarios {
		ref := New(topo, sc.cfg)
		refRes, refErr := ref.Run(sc.program)
		eng := sim.New(topo, sc.opts...)
		engRes, engErr := eng.Run(func(c *sim.Ctx) { sc.program(c) })
		if refErr == nil || engErr == nil {
			t.Fatalf("%s: expected both engines to abort (ref %v, engine %v)", sc.name, refErr, engErr)
		}
		if refErr.Error() != engErr.Error() {
			t.Errorf("%s: error mismatch:\n  ref:    %v\n  engine: %v", sc.name, refErr, engErr)
		}
		if got, want := digestResult(refRes), digestResult(engRes); got != want {
			t.Errorf("%s: abort-run digest mismatch: ref %#x, engine %#x", sc.name, got, want)
		}
		if fmt.Sprint(refRes.Violations) != fmt.Sprint(engRes.Violations) {
			t.Errorf("%s: violations mismatch:\n  ref:    %v\n  engine: %v",
				sc.name, refRes.Violations, engRes.Violations)
		}
	}
}

// TestRefsimEngineReusable pins that a refsim Engine, like the
// production engine, can run repeatedly: a second Run after a strict
// abort must start from clean state (no leaked abort flag, error, or
// totals) and reproduce the first run exactly.
func TestRefsimEngineReusable(t *testing.T) {
	e := New(graph.Cycle(8), Config{Seed: 5, Mu: 1, Strict: true})
	program := func(c NodeCtx) {
		for r := 0; r < 4; r++ {
			c.Broadcast(sim.Msg{Kind: 1, A: int64(r)})
			c.Tick()
		}
	}
	res1, err1 := e.Run(program)
	if err1 == nil {
		t.Fatal("expected a strict μ abort")
	}
	res2, err2 := e.Run(program)
	if err2 == nil || err2.Error() != err1.Error() {
		t.Fatalf("second run error %v, want %v", err2, err1)
	}
	if d1, d2 := digestResult(res1), digestResult(res2); d1 != d2 {
		t.Fatalf("second run digest %#x differs from first %#x", d2, d1)
	}
	if res2.Messages != res1.Messages || res2.Dropped != res1.Dropped {
		t.Fatalf("second run totals (%d, %d) differ from first (%d, %d)",
			res2.Messages, res2.Dropped, res1.Messages, res1.Dropped)
	}
	if got, want := len(e.Stats().PerRound), res2.Rounds+1; got > want {
		t.Fatalf("ledger kept %d rounds across runs (> %d): stats not reset", got, want)
	}
}
