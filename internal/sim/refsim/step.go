package refsim

import "mucongest/internal/sim"

// StepNode is the engine-agnostic step form of a node program: one
// Step call per round against the shared NodeCtx contract, receiving
// the messages delivered at the last barrier (nil on the first call and
// whenever nothing arrived). Returning true ends the round; returning
// false terminates the node. It mirrors sim.StepProgram — which is
// bound to the production engine's concrete *sim.Ctx for hot-path
// dispatch — so one machine written against StepNode runs on the
// production engine through a one-line adapter and on this reference
// engine through DriveSteps. A StepNode must not call c.Tick or c.Idle.
type StepNode interface {
	Step(c NodeCtx, in []sim.Incoming) bool
}

// DriveSteps adapts a per-node StepNode factory to the blocking program
// form both engines' goroutine paths execute: the driver loops the
// machine's Step against Tick — first Step gets nil, returning true
// ticks, returning false returns — which is by construction the
// execution the production engine's step runtime performs inline.
// Running the same machine through this adapter on the reference engine
// and natively on the production engine (and comparing both against the
// blocking original) is how the differential harness certifies the step
// runtime: a divergence through DriveSteps localizes the bug to the
// hand-written step form, a divergence only in native stepping to the
// engine's step scheduler.
func DriveSteps(mk func(c NodeCtx) StepNode) func(NodeCtx) {
	return func(c NodeCtx) {
		m := mk(c)
		var in []sim.Incoming
		for m.Step(c, in) {
			in = c.Tick()
		}
	}
}
