package refsim

import (
	"fmt"
	"math/rand"

	"mucongest/internal/sim"
)

// Ctx is the reference engine's NodeCtx implementation. It mirrors
// sim.Ctx's observable behavior — same RNG stream derivation, same
// bandwidth metering, same memory accounting, and the same panic
// messages (node-side panics surface in run errors, which the
// differential harness compares byte for byte) — with none of its
// performance machinery: the bandwidth meter is a plain map cleared
// every round, the inbox is a fresh allocation every round, neighbor
// views are materialized eagerly.
type Ctx struct {
	e   *Engine
	id  int
	nbr []int
	prt map[int]int
	rng *rand.Rand

	outbox []staged
	sent   map[int]int // port -> messages sent this round
}

func newCtx(e *Engine, id int) *Ctx {
	nbr := e.topo.Neighbors(id)
	prt := make(map[int]int, len(nbr))
	for p, u := range nbr {
		prt[u] = p
	}
	return &Ctx{e: e, id: id, nbr: nbr, prt: prt, sent: map[int]int{}}
}

// ID returns this node's id in 0..N-1.
func (c *Ctx) ID() int { return c.id }

// N returns the number of nodes in the network.
func (c *Ctx) N() int { return c.e.n }

// Mu returns the memory bound μ in words (≤ 0 when unbounded).
func (c *Ctx) Mu() int64 { return c.e.cfg.Mu }

// Degree returns the number of neighbors.
func (c *Ctx) Degree() int { return len(c.nbr) }

// Neighbors returns this node's neighbor ids. The slice must not be
// modified.
func (c *Ctx) Neighbors() []int { return c.nbr }

// Neighbor returns the id of the neighbor on the given port.
func (c *Ctx) Neighbor(port int) int { return c.nbr[port] }

// PortOf returns the port of neighbor id, or -1 if id is not adjacent.
func (c *Ctx) PortOf(id int) int {
	if p, ok := c.prt[id]; ok {
		return p
	}
	return -1
}

// Rand returns this node's deterministic private RNG: the same stream
// sim.Ctx derives, keyed by the engine seed and the node id.
func (c *Ctx) Rand() *rand.Rand {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.e.cfg.Seed*1_000_003 + int64(c.id)))
	}
	return c.rng
}

// Round returns the number of Tick calls this node has performed.
// A fault-layer restart resets the count, like sim.Ctx.Round.
func (c *Ctx) Round() int { return c.e.nodes[c.id].ticks }

// Restarts returns how many times this node has been crashed and
// restarted by the fault layer, like sim.Ctx.Restarts.
func (c *Ctx) Restarts() int { return c.e.nodes[c.id].restarts }

func (c *Ctx) meter(port int) {
	// A negative configured cap stays fail-fast on the first Send,
	// matching sim's clamped meter.
	limit := c.e.cfg.EdgeCap
	if limit < 0 {
		limit = 0
	}
	if c.sent[port] >= limit {
		panic(fmt.Sprintf("sim: node %d exceeded edge capacity %d to port %d in one round",
			c.id, c.e.cfg.EdgeCap, port))
	}
	c.sent[port]++
}

// Send queues one message to the neighbor on port for delivery at the
// start of the next round.
func (c *Ctx) Send(port int, m sim.Msg) {
	c.meter(port)
	c.outbox = append(c.outbox, staged{to: c.nbr[port], msg: m})
}

// SendID queues one message to the adjacent node with the given id.
func (c *Ctx) SendID(id int, m sim.Msg) {
	p := c.PortOf(id)
	if p < 0 {
		panic(fmt.Sprintf("sim: node %d attempted to send to non-neighbor %d", c.id, id))
	}
	c.Send(p, m)
}

// Broadcast queues one copy of m to every neighbor, in port order.
func (c *Ctx) Broadcast(m sim.Msg) {
	for p := range c.nbr {
		c.Send(p, m)
	}
}

// Tick ends the node's round: the outbox is handed to the engine, the
// node blocks until every node reaches the barrier, and the round's
// deliveries are returned. Unlike the production engine the returned
// slice is freshly allocated — refsim has no buffer-reuse aliasing
// contract — but like it, an empty delivery is returned as nil.
func (c *Ctx) Tick() []sim.Incoming {
	nd := &c.e.nodes[c.id]
	nd.ticks++
	nd.staged = c.outbox
	c.outbox = nil
	clear(c.sent)
	c.e.step <- struct{}{}
	<-nd.resume
	// Crash precedes abort, mirroring sim.Ctx.Tick: the fault point
	// only crashes nodes on non-aborted rounds, and a crashing node
	// must unwind through the crash handshake, not the abort path.
	if nd.crashing {
		panic(errCrash)
	}
	if c.e.aborted {
		panic(errAbort)
	}
	in := nd.inbox
	nd.inbox = nil
	if len(in) == 0 {
		return nil
	}
	return in
}

// Idle performs k rounds with no sends, discarding any received
// messages.
func (c *Ctx) Idle(k int) {
	for i := 0; i < k; i++ {
		c.Tick()
	}
}

// Emit outputs v. Emitted outputs leave the node and consume no memory.
func (c *Ctx) Emit(v any) {
	nd := &c.e.nodes[c.id]
	nd.outputs = append(nd.outputs, v)
}

// Charge records `words` additional live words, updates the peak
// (including the held inbox) and, in strict mode, aborts the moment the
// node exceeds μ — the exact accounting of sim.Ctx.Charge.
func (c *Ctx) Charge(words int64) {
	if words < 0 {
		panic(fmt.Sprintf("sim: node %d Charge(%d): negative words (use Release to return memory)",
			c.id, words))
	}
	nd := &c.e.nodes[c.id]
	nd.live += words
	if total := nd.live + nd.inboxWords; total > nd.peak {
		nd.peak = total
	}
	if c.e.cfg.Strict && c.e.cfg.Mu > 0 && nd.live+nd.inboxWords > c.e.cfg.Mu {
		panic(fmt.Errorf("%w: node %d holds %d live + %d inbox words > μ=%d",
			sim.ErrMemory, c.id, nd.live, nd.inboxWords, c.e.cfg.Mu))
	}
}

// Release returns `words` words to the memory meter.
func (c *Ctx) Release(words int64) {
	if words < 0 {
		panic(fmt.Sprintf("sim: node %d Release(%d): negative words (use Charge to add memory)",
			c.id, words))
	}
	nd := &c.e.nodes[c.id]
	nd.live -= words
	if nd.live < 0 {
		panic(fmt.Sprintf("sim: node %d released more memory than charged", c.id))
	}
}

// Live returns the words currently charged by the algorithm (excluding
// the in-flight inbox).
func (c *Ctx) Live() int64 { return c.e.nodes[c.id].live }
