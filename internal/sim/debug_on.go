//go:build simdebug

package sim

// debugPoison is enabled by the simdebug build tag: retired inbox
// buffers are overwritten with sentinel values so a program that
// retains a Tick slice past its next Tick reads obviously-invalid
// messages instead of silently stale or clobbered data.
const debugPoison = true
