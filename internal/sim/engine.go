package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Violation records a node exceeding its memory bound μ. One Violation
// is recorded per offending node per run: Round and Words describe the
// node's first overrun, OverRounds counts every round the node spent
// over μ.
type Violation struct {
	Node       int
	Round      int   // round of the node's first overrun
	Words      int64 // live words at the first overrun
	OverRounds int   // total rounds this node exceeded μ during the run
}

func (v Violation) String() string {
	return fmt.Sprintf("node %d exceeded μ at round %d with %d words (%d rounds over μ)",
		v.Node, v.Round, v.Words, v.OverRounds)
}

// Result summarizes one simulated execution.
type Result struct {
	// Rounds is the number of communication rounds, i.e. the maximum
	// number of Tick calls performed by any node.
	Rounds int
	// Messages is the total number of messages delivered.
	Messages int64
	// Dropped counts messages addressed to nodes that had already
	// terminated.
	Dropped int64
	// Outputs holds, per node, the values emitted via Ctx.Emit.
	Outputs [][]any
	// PeakWords holds, per node, the peak live memory in words
	// (algorithm charges plus inbox).
	PeakWords []int64
	// Violations lists the μ overruns, one entry per offending node in
	// order of first occurrence (empty when μ ≤ 0, i.e. unbounded).
	Violations []Violation
}

// MaxPeakWords returns the largest per-node memory peak.
func (r *Result) MaxPeakWords() int64 {
	var m int64
	for _, w := range r.PeakWords {
		if w > m {
			m = w
		}
	}
	return m
}

// TotalOutputs returns the number of emitted values across all nodes.
func (r *Result) TotalOutputs() int {
	t := 0
	for _, o := range r.Outputs {
		t += len(o)
	}
	return t
}

// OverMuRounds returns the total number of (node, round) pairs that
// exceeded μ, i.e. the sum of OverRounds over all violations.
func (r *Result) OverMuRounds() int {
	t := 0
	for _, v := range r.Violations {
		t += v.OverRounds
	}
	return t
}

// Option configures an Engine.
type Option func(*Engine)

// WithMu sets the per-node memory bound μ in words. μ ≤ 0 means
// unbounded (classic CONGEST).
func WithMu(mu int64) Option { return func(e *Engine) { e.mu = mu } }

// WithSeed seeds the engine and per-node RNGs. Runs with equal seeds and
// inputs are deterministic.
func WithSeed(seed int64) Option { return func(e *Engine) { e.seed = seed } }

// WithEdgeCap sets the number of messages allowed per directed edge per
// round (default 1, the CONGEST bandwidth).
func WithEdgeCap(c int) Option { return func(e *Engine) { e.edgeCap = c } }

// WithInboxOrder selects how each round's inbox is ordered.
func WithInboxOrder(o InboxOrder) Option { return func(e *Engine) { e.order = o } }

// WithStrictMemory makes a μ violation abort the run with an error
// instead of merely being recorded.
func WithStrictMemory() Option { return func(e *Engine) { e.strict = true } }

// WithMaxRounds bounds the execution length as a runaway guard
// (default 2,000,000 rounds).
func WithMaxRounds(r int) Option { return func(e *Engine) { e.maxRounds = r } }

// ErrMaxRounds is returned when the round limit is exceeded.
var ErrMaxRounds = errors.New("sim: maximum round count exceeded")

// ErrMemory is returned in strict mode when a node exceeds μ.
var ErrMemory = errors.New("sim: node exceeded memory bound μ")

// Engine executes one program on a topology under μ-CONGEST rules.
type Engine struct {
	topo      Topology
	mu        int64
	seed      int64
	edgeCap   int
	order     InboxOrder
	strict    bool
	maxRounds int

	n       int
	round   int
	rng     *rand.Rand
	nodes   []*nodeRT
	done    chan signal
	aborted bool
	runErr  error

	messages int64
	dropped  int64

	// Per-round scratch, reused across rounds to keep the hot loop
	// allocation-free in steady state.
	senderOut [][]routed // outbox staged this round, indexed by sender id
	senders   []int      // ids with a non-empty staged outbox
	ticked    []int      // ids that ticked (not finished) this round
}

type signal struct {
	id       int
	finished bool
	err      error
	outbox   []routed
}

type routed struct {
	from, to int
	msg      Msg
}

type nodeRT struct {
	resume chan []Incoming
	// inbox is the node's delivery buffer. It is filled by deliver while
	// the node is blocked in Tick, handed to the node at resume, and
	// reused (overwritten) once the node reaches its next Tick — see the
	// Tick documentation for the resulting aliasing contract.
	inbox     []Incoming
	live      int64 // words charged by the algorithm
	peak      int64
	ticks     int
	finished  bool
	outputs   []any
	violation bool // a Violation was already recorded for this node (dedup)
	vioIdx    int  // index of this node's Violation in the run's slice
}

// New creates an engine over topo. The zero μ (unset WithMu) means
// unbounded memory.
func New(topo Topology, opts ...Option) *Engine {
	e := &Engine{
		topo:      topo,
		seed:      1,
		edgeCap:   1,
		maxRounds: 2_000_000,
		n:         topo.N(),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Mu returns the configured memory bound (≤ 0 when unbounded).
func (e *Engine) Mu() int64 { return e.mu }

// N returns the node count.
func (e *Engine) N() int { return e.n }

// Run executes program on every node and returns the aggregated result.
// program receives the node's Ctx; returning from program terminates the
// node. Run returns an error if the round limit was hit, a node
// panicked, or (in strict mode) μ was violated.
func (e *Engine) Run(program func(*Ctx)) (*Result, error) {
	e.rng = rand.New(rand.NewSource(e.seed))
	e.nodes = make([]*nodeRT, e.n)
	e.done = make(chan signal, e.n)
	e.round = 0
	e.aborted = false
	e.runErr = nil
	e.messages = 0
	e.dropped = 0
	var violations []Violation

	for i := 0; i < e.n; i++ {
		e.nodes[i] = &nodeRT{resume: make(chan []Incoming, 1)}
	}
	e.senderOut = make([][]routed, e.n)
	e.senders = make([]int, 0, e.n)
	e.ticked = make([]int, 0, e.n)
	for i := 0; i < e.n; i++ {
		ctx := newCtx(e, i)
		go runNode(ctx, program)
	}

	active := e.n
	for active > 0 {
		e.ticked = e.ticked[:0]
		e.senders = e.senders[:0]
		for j := 0; j < active; j++ {
			s := <-e.done
			if debugPoison {
				// The node just passed its Tick barrier (or finished), so
				// by the Tick aliasing contract it may no longer read the
				// inbox slice it was handed last round. Poison the retired
				// buffer so contract violations read sentinels, not
				// silently stale or clobbered messages.
				poisonStale(e.nodes[s.id])
			}
			if len(s.outbox) > 0 {
				e.senderOut[s.id] = s.outbox
				e.senders = append(e.senders, s.id)
			}
			if s.finished {
				e.nodes[s.id].finished = true
				if s.err != nil && e.runErr == nil && !errors.Is(s.err, errAbort) {
					e.runErr = s.err
					e.aborted = true
				}
			} else {
				e.ticked = append(e.ticked, s.id)
			}
		}
		active = len(e.ticked)
		e.deliver(&violations)
		e.round++
		if e.round > e.maxRounds && active > 0 {
			e.aborted = true
			if e.runErr == nil {
				e.runErr = ErrMaxRounds
			}
		}
		if e.strict && len(violations) > 0 {
			e.aborted = true
			if e.runErr == nil {
				e.runErr = fmt.Errorf("%w: %v", ErrMemory, violations[0])
			}
		}
		sort.Ints(e.ticked)
		for _, id := range e.ticked {
			rt := e.nodes[id]
			in := rt.inbox
			if len(in) == 0 {
				in = nil
			}
			// Hand the filled buffer to the node but keep the backing
			// array: the next deliver for this node can only run after
			// the node has ticked again, so truncating here is safe
			// under the Tick aliasing contract.
			rt.inbox = rt.inbox[:0]
			rt.resume <- in
		}
	}

	res := &Result{
		Messages:   e.messages,
		Dropped:    e.dropped,
		Outputs:    make([][]any, e.n),
		PeakWords:  make([]int64, e.n),
		Violations: violations,
	}
	for i, rt := range e.nodes {
		res.Outputs[i] = rt.outputs
		res.PeakWords[i] = rt.peak
		if rt.ticks > res.Rounds {
			res.Rounds = rt.ticks
		}
	}
	return res, e.runErr
}

// deliver routes the round's staged outboxes into inboxes, applies the
// inbox order, and performs memory accounting for inbox contents.
//
// Routing is O(m) bucketed rather than a global sort: senders are
// visited in ascending id (one small sort over sender ids, not over
// messages) and each sender's messages are appended to the destination
// inboxes in send order. Every inbox therefore comes out keyed by
// destination, ordered by sender and stable within a sender — the same
// order the previous global (to, from) sort produced, but stable and
// without the O(m log m) comparison sort. Ordering is deterministic
// regardless of goroutine scheduling.
func (e *Engine) deliver(violations *[]Violation) {
	if len(e.senders) > 0 {
		sort.Ints(e.senders)
		for _, id := range e.senders {
			out := e.senderOut[id]
			e.senderOut[id] = nil
			for _, m := range out {
				rt := e.nodes[m.to]
				if rt.finished {
					e.dropped++
					continue
				}
				rt.inbox = append(rt.inbox, Incoming{From: m.from, Msg: m.msg})
				e.messages++
			}
		}
	}
	// Inbox ordering and accounting, in node-id order. OrderRandom must
	// consume the engine RNG once per non-empty inbox in ascending id
	// order: the determinism golden test pins this draw sequence. Memory
	// is evaluated for every live node — including nodes that received
	// nothing — so OverRounds counts charge-only and quiet rounds too.
	for id, rt := range e.nodes {
		if rt.finished {
			continue
		}
		if len(rt.inbox) > 0 {
			switch e.order {
			case OrderRandom:
				e.rng.Shuffle(len(rt.inbox), func(i, j int) {
					rt.inbox[i], rt.inbox[j] = rt.inbox[j], rt.inbox[i]
				})
			case OrderReversed:
				for i, j := 0, len(rt.inbox)-1; i < j; i, j = i+1, j-1 {
					rt.inbox[i], rt.inbox[j] = rt.inbox[j], rt.inbox[i]
				}
			}
		}
		total := rt.live + int64(len(rt.inbox))*MsgWords
		if total > rt.peak {
			rt.peak = total
		}
		if e.mu > 0 && total > e.mu {
			if rt.violation {
				(*violations)[rt.vioIdx].OverRounds++
			} else {
				rt.violation = true
				rt.vioIdx = len(*violations)
				*violations = append(*violations,
					Violation{Node: id, Round: e.round, Words: total, OverRounds: 1})
			}
		}
	}
}

// poisonStale overwrites the retired contents of rt's inbox buffer
// (len 0, capacity holding last round's delivery) with sentinel values.
// Only called under the simdebug build tag — see debugPoison.
func poisonStale(rt *nodeRT) {
	stale := rt.inbox[:cap(rt.inbox)]
	for i := range stale {
		stale[i] = Incoming{From: -1, Msg: Msg{Kind: -1, A: -1, B: -1, C: -1}}
	}
}

var errAbort = errors.New("sim: run aborted")

func runNode(ctx *Ctx, program func(*Ctx)) {
	defer func() {
		var err error
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && errors.Is(e, errAbort) {
				err = errAbort
			} else {
				err = fmt.Errorf("sim: node %d panicked: %v", ctx.id, r)
			}
		}
		ctx.eng.done <- signal{id: ctx.id, finished: true, err: err, outbox: ctx.takeOutbox()}
	}()
	program(ctx)
}
