package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Violation records a node exceeding its memory bound μ. One Violation
// is recorded per offending node per run: Round and Words describe the
// node's first overrun, OverRounds counts every round the node spent
// over μ.
type Violation struct {
	Node       int
	Round      int   // round of the node's first overrun
	Words      int64 // live words at the first overrun
	OverRounds int   // total rounds this node exceeded μ during the run
}

func (v Violation) String() string {
	return fmt.Sprintf("node %d exceeded μ at round %d with %d words (%d rounds over μ)",
		v.Node, v.Round, v.Words, v.OverRounds)
}

// Result summarizes one simulated execution.
type Result struct {
	// Rounds is the number of communication rounds, i.e. the maximum
	// number of Tick calls performed by any node.
	Rounds int
	// Messages is the total number of messages delivered.
	Messages int64
	// Dropped counts undelivered messages: messages addressed to nodes
	// that had already terminated, plus — when a fault plan is active —
	// messages lost to injected faults. Sent = Messages + Dropped
	// always holds; FaultDrops is the fault-induced subset.
	Dropped int64
	// FaultDrops counts the messages dropped by the fault layer
	// (message loss, down edges, parked destinations). Always ≤ Dropped
	// and 0 without WithFaults.
	FaultDrops int64
	// Crashes counts fault-layer node crashes over the whole run;
	// Restarts counts the crashed nodes that were restarted (a node
	// still parked — or terminated by an abort while parked — when the
	// run ends has crashed without restarting).
	Crashes  int64
	Restarts int64
	// Outputs holds, per node, the values emitted via Ctx.Emit.
	Outputs [][]any
	// PeakWords holds, per node, the peak live memory in words
	// (algorithm charges plus inbox).
	PeakWords []int64
	// Violations lists the μ overruns, one entry per offending node in
	// order of first occurrence (empty when μ ≤ 0, i.e. unbounded).
	Violations []Violation
}

// MaxPeakWords returns the largest per-node memory peak.
func (r *Result) MaxPeakWords() int64 {
	var m int64
	for _, w := range r.PeakWords {
		if w > m {
			m = w
		}
	}
	return m
}

// TotalOutputs returns the number of emitted values across all nodes.
func (r *Result) TotalOutputs() int {
	t := 0
	for _, o := range r.Outputs {
		t += len(o)
	}
	return t
}

// OverMuRounds returns the total number of (node, round) pairs that
// exceeded μ, i.e. the sum of OverRounds over all violations.
func (r *Result) OverMuRounds() int {
	t := 0
	for _, v := range r.Violations {
		t += v.OverRounds
	}
	return t
}

// Option configures an Engine.
type Option func(*Engine)

// WithMu sets the per-node memory bound μ in words. μ ≤ 0 means
// unbounded (classic CONGEST).
func WithMu(mu int64) Option { return func(e *Engine) { e.mu = mu } }

// WithSeed seeds the engine and per-node RNGs. Runs with equal seeds and
// inputs are deterministic.
func WithSeed(seed int64) Option { return func(e *Engine) { e.seed = seed } }

// WithEdgeCap sets the number of messages allowed per directed edge per
// round (default 1, the CONGEST bandwidth).
func WithEdgeCap(c int) Option { return func(e *Engine) { e.edgeCap = c } }

// WithInboxOrder selects how each round's inbox is ordered.
func WithInboxOrder(o InboxOrder) Option { return func(e *Engine) { e.order = o } }

// WithStrictMemory makes a μ violation abort the run with an error
// instead of merely being recorded.
func WithStrictMemory() Option { return func(e *Engine) { e.strict = true } }

// WithMaxRounds bounds the execution length as a runaway guard
// (default 2,000,000 rounds).
func WithMaxRounds(r int) Option { return func(e *Engine) { e.maxRounds = r } }

// WithSimWorkers sets the number of delivery workers the engine's round
// loop shards routing, inbox ordering, memory accounting and the resume
// fan-out across. w ≥ 1 is an explicit count; w < 1 selects
// runtime.GOMAXPROCS(0). The effective pool is capped at the shard
// count, so small topologies always run the serial inline path.
// Results are bit-for-bit identical for every worker count.
func WithSimWorkers(w int) Option {
	return func(e *Engine) {
		if w < 1 {
			w = 0 // resolved to GOMAXPROCS at Run
		}
		e.workers = w
	}
}

// defaultWorkers is the process-wide worker count used by engines built
// without WithSimWorkers: 1 (serial) unless SetDefaultWorkers was called.
var defaultWorkers = func() *atomic.Int32 {
	v := new(atomic.Int32)
	v.Store(1)
	return v
}()

// SetDefaultWorkers sets the process-wide default delivery worker count
// for engines created without an explicit WithSimWorkers option — the
// hook cmd/muexp's -simworkers flag uses to reach the engines the
// experiment runners construct internally. w < 1 selects
// runtime.GOMAXPROCS(0). Safe for concurrent use; affects engines
// created after the call.
func SetDefaultWorkers(w int) {
	if w < 1 {
		w = 0
	}
	defaultWorkers.Store(int32(w))
}

// ErrMaxRounds is returned when the round limit is exceeded.
var ErrMaxRounds = errors.New("sim: maximum round count exceeded")

// ErrMemory is returned in strict mode when a node exceeds μ.
var ErrMemory = errors.New("sim: node exceeded memory bound μ")

// Engine executes one program on a topology under μ-CONGEST rules.
type Engine struct {
	topo      Topology
	mu        int64
	seed      int64
	edgeCap   int
	order     InboxOrder
	strict    bool
	maxRounds int
	workers   int // configured; 0 = GOMAXPROCS, resolved at Run

	// Optional topology fast paths (resolved once in New): degree, the
	// neighbor on a port, and the port of a neighbor id without
	// materializing adjacency slices. Implicit topologies like Complete
	// provide all three, keeping per-node setup O(1).
	topoDeg  DegreeTopology
	topoAt   IndexedTopology
	topoPort PortedTopology

	n     int
	round int
	nodes []nodeRT
	ctxs  []Ctx // flat per-node Ctx slots, from the run scratch
	// prog is the bound program, retained for the whole run (not just
	// phaseBind) so the fault layer can re-invoke Node on restart.
	prog    Program
	aborted bool
	runErr  error

	messages int64
	dropped  int64

	// Fault-injection state (see faults.go). hasFaults gates every
	// fault branch so an empty plan keeps the fault-free hot path
	// byte-identical and allocation-free.
	faults    FaultPlan
	hasFaults bool
	crashAck  chan struct{} // crash unwind handshake (see crashNode)
	crashes   int64
	restarts  int64
	parkedN   int       // currently parked nodes
	restartG  []goSpawn // goroutine-form restarts staged this fault point

	// Zero-channel barrier: every goroutine-form node that was resumed
	// into a round arrives back at the engine exactly once — by
	// publishing its outbox into senderOut and (when terminating) its
	// finished/err state into its nodeRT slot, then decrementing
	// arrivals. Only the node whose decrement reaches zero performs one
	// send on wake; the engine blocks on wake once per round instead of
	// draining n per-node signals from a shared channel. Stepped nodes
	// are not in the population: the delivery phases drive them inline,
	// so a pure-step run never touches arrivals or wake.
	arrivals atomic.Int64
	wake     chan struct{}

	// senderOut stages each sender's outbox for the round, written
	// directly by the node goroutine at Tick time; a non-nil entry
	// doubles as the "has staged messages" bit the route phase scans,
	// replacing the old sorted sender-id list.
	senderOut [][]routed

	// Sharded delivery state — see deliver.go.
	nshards  int
	shards   []*shardState
	poolSize int
	workCh   chan phaseKind
	workDone chan struct{}
	cursor   atomic.Int64
}

type routed struct {
	from, to int
	msg      Msg
}

type nodeRT struct {
	// step is non-nil for a node running the goroutine-free step form:
	// the delivery workers drive it inline (see step.go) instead of
	// resuming a goroutine through the resume channel, and the node
	// never joins the arrival barrier.
	step   StepProgram
	resume chan []Incoming
	// inbox is the node's delivery buffer. It is filled by deliver while
	// the node is blocked in Tick, handed to the node at resume, and
	// reused (overwritten) once the node reaches its next Tick — see the
	// Tick documentation for the resulting aliasing contract.
	inbox []Incoming
	// inboxWords is the memory charge of the inbox delivered at the last
	// barrier. It stays charged until the next barrier overwrites it:
	// the engine cannot observe the node dropping the slice earlier, so
	// strict-mode Charge accounting conservatively includes it.
	inboxWords int64
	live       int64 // words charged by the algorithm
	peak       int64
	ticks      int
	// done is the node's barrier-published termination bit: set by the
	// node goroutine (with nodeErr) before its final arrival decrement,
	// never cleared. Stable while the engine owns the round, so the
	// route phase's drop check may read any node's done flag.
	done    bool
	nodeErr error
	// finished is the engine-side acknowledgment of done, set by the
	// owning shard's account phase. Only same-shard phase code reads it
	// concurrently, keeping cross-shard reads on the immutable done bit.
	finished bool
	// Fault-layer state, all written at the serial fault point (or, for
	// crashing, read once by the unwinding node under the resume
	// channel's happens-before edge). parked means the node crashed and
	// awaits restart at restartRound; it stays set on a node the abort
	// path terminates while parked, marking that no goroutine backs the
	// done bit (the barrier population must not be decremented for it).
	parked       bool
	crashing     bool // node is being unwound by crashNode right now
	restartRound int
	restarts     int
	outputs      []any
	violation    bool // a Violation was already recorded for this node (dedup)
	vioIdx       int  // index of this node's Violation in the run's slice
}

// runScratch is the per-run state whose allocation and zeroing dominate
// engine setup at large n: the node runtime slots (with their resume
// channels and inbox buffers), the Ctx slots (with their outbox and
// bandwidth-meter buffers), the staged-outbox table and the shard
// scratch. It is recycled across runs — of any engine, experiment
// sweeps run thousands back to back — through scratchPool. Everything
// semantic is reset in grab/initShards; only buffer capacities, resume
// channels and shard RNG sources survive, none of which is observable.
// release scrubs every reference to run-owned data before the state is
// pooled, so a pooled runScratch keeps nothing alive.
type runScratch struct {
	nodes     []nodeRT
	ctxs      []Ctx
	senderOut [][]routed
	shards    []*shardState
	gor       []goSpawn // spawn list for a generic Program's goroutine nodes
}

var scratchPool = sync.Pool{New: func() any { return new(runScratch) }}

// grab checks a runScratch out of the pool and sizes it for n nodes,
// resetting every reused slot to its run-start state.
func grab(n int) *runScratch {
	sc := scratchPool.Get().(*runScratch)
	if cap(sc.nodes) < n {
		sc.nodes = make([]nodeRT, n)
		sc.ctxs = make([]Ctx, n)
		sc.senderOut = make([][]routed, n)
		return sc
	}
	sc.nodes = sc.nodes[:n]
	sc.ctxs = sc.ctxs[:n]
	sc.senderOut = sc.senderOut[:n]
	for i := range sc.nodes {
		rt := &sc.nodes[i]
		rt.step = nil
		rt.inbox = rt.inbox[:0]
		rt.inboxWords = 0
		rt.live = 0
		rt.peak = 0
		rt.ticks = 0
		rt.done = false
		rt.finished = false
		rt.violation = false
		rt.vioIdx = 0
		rt.parked = false
		rt.crashing = false
		rt.restartRound = 0
		rt.restarts = 0
	}
	return sc
}

// release scrubs the references the finished run left behind (outputs
// now belong to the Result, topology views and errors to nobody) and
// returns the scratch to the pool. Buffer capacities, resume channels
// and shard state stay for the next run to reuse.
func (sc *runScratch) release() {
	for i := range sc.nodes {
		rt := &sc.nodes[i]
		rt.step = nil
		rt.outputs = nil
		rt.nodeErr = nil
		c := &sc.ctxs[i]
		c.eng, c.rt, c.at = nil, nil, nil
		c.nbr, c.prt, c.rng = nil, nil, nil
		// Reset the bandwidth meter with the slot: stale stamps must not
		// alias a future run's stamp space once sentRound restarts (its
		// wraparound bound is per run, not per pooled-slot lifetime).
		clear(c.sent)
		c.sentRound = 0
	}
	for _, st := range sc.shards {
		st.err = nil
	}
	// The spawn list holds func values referencing the finished run's
	// program; scrub them so the pooled scratch keeps nothing alive.
	for i := range sc.gor {
		sc.gor[i] = goSpawn{}
	}
	sc.gor = sc.gor[:0]
	scratchPool.Put(sc)
}

// New creates an engine over topo. The zero μ (unset WithMu) means
// unbounded memory.
func New(topo Topology, opts ...Option) *Engine {
	e := &Engine{
		topo:      topo,
		seed:      1,
		edgeCap:   1,
		maxRounds: 2_000_000,
		n:         topo.N(),
		workers:   int(defaultWorkers.Load()),
	}
	e.topoDeg, _ = topo.(DegreeTopology)
	e.topoAt, _ = topo.(IndexedTopology)
	e.topoPort, _ = topo.(PortedTopology)
	for _, o := range opts {
		o(e)
	}
	return e
}

// Mu returns the configured memory bound (≤ 0 when unbounded).
func (e *Engine) Mu() int64 { return e.mu }

// N returns the node count.
func (e *Engine) N() int { return e.n }

// Run executes program on every node and returns the aggregated result.
// program receives the node's Ctx; returning from program terminates the
// node. Run returns an error if the round limit was hit, a node
// panicked, or (in strict mode) μ was violated. Every node runs the
// classic blocking form on its own goroutine; use RunProgram with a
// Steps program for goroutine-free execution.
func (e *Engine) Run(program func(*Ctx)) (*Result, error) {
	return e.RunProgram(Func(program))
}

// RunProgram executes p on every node and returns the aggregated
// result. p picks each node's execution form (see Program): stepped
// nodes are driven inline by the delivery workers, goroutine nodes run
// the classic blocking path, and the two interleave freely in one run.
// Both forms, at every worker count, produce bit-for-bit identical
// results — the golden-digest and differential-oracle suites pin this.
func (e *Engine) RunProgram(p Program) (*Result, error) {
	sc := grab(e.n)
	e.nodes = sc.nodes
	e.ctxs = sc.ctxs
	e.wake = make(chan struct{}, 1)
	e.round = 0
	e.aborted = false
	e.runErr = nil
	e.messages = 0
	e.dropped = 0
	e.crashes = 0
	e.restarts = 0
	e.parkedN = 0
	e.prog = p
	if e.hasFaults && e.crashAck == nil {
		e.crashAck = make(chan struct{})
	}
	var violations []Violation

	e.initShards(sc)
	e.senderOut = sc.senderOut
	e.startPool()
	defer e.stopPool()

	// activeG counts the live goroutine-form nodes — the population of
	// the arrival barrier. Stepped nodes never arrive: the delivery
	// phases drive them inline, so phase completion is their barrier.
	var activeG int
	if f, ok := p.(Func); ok {
		// Fast path for the homogeneous goroutine form: no bind phase —
		// each node builds its Ctx on its own goroutine, parallelizing
		// setup across nodes regardless of the worker count.
		program := (func(*Ctx))(f)
		for i := range e.nodes {
			if e.nodes[i].resume == nil {
				e.nodes[i].resume = make(chan []Incoming, 1)
			}
		}
		// The barrier must be armed before any node can arrive at it.
		e.arrivals.Store(int64(e.n))
		// All node goroutines run one shared closure and claim their id from
		// a counter: `go nodeMain()` on a pre-built func value allocates
		// nothing per spawn, where `go runNode(ctx, program)` would heap-
		// allocate a closure per node. Ids are claimed exactly once, so
		// which OS-level goroutine serves which node is irrelevant.
		var nextID atomic.Int64
		ctxs := sc.ctxs
		nodeMain := func() {
			id := int(nextID.Add(1) - 1)
			runNode(newCtx(e, ctxs, id), program)
		}
		for i := 0; i < e.n; i++ {
			go nodeMain()
		}
		activeG = e.n
	} else {
		activeG = e.bindNodes(sc, p)
	}

	active := e.n
	for active > 0 {
		// Wait for the barrier: the last arriving goroutine node performs
		// the one wake. Every node's pre-arrival writes (its senderOut
		// entry, its done/nodeErr slots, ticks, outputs, memory counters)
		// happen before this receive via the arrival counter, so the
		// phases may read them freely. Stepped nodes published theirs
		// inside the previous phase (or the bind phase), which completed
		// before this iteration; a pure-step round skips the wait — and
		// every channel operation — entirely.
		if activeG > 0 {
			<-e.wake
		}
		// Serial fault point: with every node quiescent (goroutine nodes
		// parked in Tick, stepped nodes between phases), draw this
		// round's crash decisions and perform due restarts. Worker count
		// and execution mode are invisible here by construction.
		if e.hasFaults {
			activeG += e.applyFaults()
		}
		// The route phase also performs the barrier bookkeeping the old
		// serial collect loop did — poisoning retired inboxes, counting
		// newly finished nodes and harvesting their errors per shard — so
		// it parallelizes with routing.
		e.runPhase(phaseRoute)
		// Node errors are applied only after the whole barrier completed:
		// e.aborted may not change while stragglers are still reading it
		// on their way out of the previous Tick. Shards are drained in
		// ascending order and each harvests in ascending node id, so the
		// reported error is deterministically the lowest failing node's.
		var nodeErr error
		for _, st := range e.shards {
			active -= st.newlyFinished
			st.newlyFinished = 0
			activeG -= st.newlyFinishedG
			st.newlyFinishedG = 0
			if st.err != nil {
				if nodeErr == nil {
					nodeErr = st.err
				}
				st.err = nil
			}
		}
		if nodeErr != nil {
			e.aborted = true
			if e.runErr == nil {
				e.runErr = nodeErr
			}
		}
		// Violations recorded this barrier carry the pre-increment round
		// counter, matching the pre-sharding engine's stamps.
		r := e.round
		e.round++
		if e.round > e.maxRounds && active > 0 {
			e.aborted = true
			if e.runErr == nil {
				e.runErr = ErrMaxRounds
			}
		}
		if e.strict {
			// Strict mode needs every shard's accounting before the abort
			// decision, so delivery and resume are separate phases. The
			// barrier is re-armed — with the goroutine-node population
			// only — after the abort decision and before the first node
			// is resumed or stepped.
			e.runPhase(phaseAccount)
			e.mergeRound(r, &violations)
			if len(violations) > 0 {
				e.aborted = true
				if e.runErr == nil {
					e.runErr = fmt.Errorf("%w: %v", ErrMemory, violations[0])
				}
			}
			e.arrivals.Store(int64(activeG))
			e.runPhase(phaseResume)
		} else {
			// Fused fast path: each shard resumes (or steps) its own nodes
			// as soon as their inboxes are ordered and accounted — no
			// second barrier. Re-arm before the phase starts: resumed
			// goroutine nodes may reach their next Tick while other shards
			// are still accounting.
			e.arrivals.Store(int64(activeG))
			e.runPhase(phaseAccountResume)
			e.mergeRound(r, &violations)
		}
	}

	var faultDrops int64
	for _, st := range e.shards {
		e.messages += st.messages
		e.dropped += st.dropped
		faultDrops += st.faultDropped
	}
	res := &Result{
		Messages:   e.messages,
		Dropped:    e.dropped,
		FaultDrops: faultDrops,
		Crashes:    e.crashes,
		Restarts:   e.restarts,
		Outputs:    make([][]any, e.n),
		PeakWords:  make([]int64, e.n),
		Violations: violations,
	}
	for i := range e.nodes {
		rt := &e.nodes[i]
		res.Outputs[i] = rt.outputs
		res.PeakWords[i] = rt.peak
		if rt.ticks > res.Rounds {
			res.Rounds = rt.ticks
		}
	}
	// Every node has terminated (a goroutine node's final barrier
	// arrival is its last touch of run state; a stepped node's last
	// touch was inside a completed phase), so the scratch can go back
	// to the pool.
	sc.release()
	e.nodes, e.ctxs, e.senderOut, e.shards, e.prog = nil, nil, nil, nil, nil
	return res, e.runErr
}

// arrive is a node's barrier arrival: all of its round state is
// published (plain writes sequenced before the decrement), and the last
// arrival hands the round to the engine with a single channel send.
//
//muvet:hotpath
func (e *Engine) arrive() {
	if e.arrivals.Add(-1) == 0 {
		e.wake <- struct{}{}
	}
}

// mergeRound folds the per-shard μ overruns of one barrier into the
// run's Violation list. Shards are visited in ascending order and each
// shard's overruns are recorded in ascending node id, so the merged
// order is identical to the pre-sharding per-node sweep.
func (e *Engine) mergeRound(round int, violations *[]Violation) {
	for _, st := range e.shards {
		for _, o := range st.over {
			rt := &e.nodes[o.node]
			if rt.violation {
				(*violations)[rt.vioIdx].OverRounds++
			} else {
				rt.violation = true
				rt.vioIdx = len(*violations)
				*violations = append(*violations,
					Violation{Node: o.node, Round: round, Words: o.words, OverRounds: 1})
			}
		}
		st.over = st.over[:0]
	}
}

// startPool resolves the configured worker count against GOMAXPROCS and
// the shard count, and launches the persistent delivery workers when
// more than one is useful. The pool lives for the whole Run; phases are
// dispatched through workCh.
func (e *Engine) startPool() {
	w := e.workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > e.nshards {
		w = e.nshards
	}
	if w < 1 {
		w = 1
	}
	e.poolSize = w
	if w == 1 {
		return
	}
	e.workCh = make(chan phaseKind)
	e.workDone = make(chan struct{}, w)
	for i := 0; i < w; i++ {
		go e.deliveryWorker()
	}
}

func (e *Engine) stopPool() {
	if e.workCh != nil {
		close(e.workCh)
		e.workCh = nil
	}
}

// runPhase executes one delivery phase over every shard: inline when the
// pool is serial, otherwise fanned out to the workers, which pull shard
// indices from a shared cursor. Shard-to-worker assignment is arbitrary;
// every phase's per-shard computation is self-contained (own RNG, own
// buckets, own destination range), so results do not depend on it.
func (e *Engine) runPhase(k phaseKind) {
	if e.poolSize == 1 {
		for s := 0; s < e.nshards; s++ {
			e.shardPhase(k, s)
		}
		return
	}
	e.cursor.Store(0)
	for i := 0; i < e.poolSize; i++ {
		e.workCh <- k
	}
	for i := 0; i < e.poolSize; i++ {
		<-e.workDone
	}
}

func (e *Engine) deliveryWorker() {
	for k := range e.workCh {
		for {
			s := int(e.cursor.Add(1) - 1)
			if s >= e.nshards {
				break
			}
			e.shardPhase(k, s)
		}
		e.workDone <- struct{}{}
	}
}

// poisonStale overwrites the retired contents of rt's inbox buffer
// (len 0, capacity holding last round's delivery) with sentinel values.
// Only called under the simdebug build tag — see debugPoison.
func poisonStale(rt *nodeRT) {
	stale := rt.inbox[:cap(rt.inbox)]
	for i := range stale {
		stale[i] = Incoming{From: -1, Msg: Msg{Kind: -1, A: -1, B: -1, C: -1}}
	}
}

var errAbort = errors.New("sim: run aborted")

// errCrash unwinds a goroutine-form node the fault layer crashed: the
// node's Tick panics it after the crash resume, and runNode's recover
// turns it into the crashAck handshake instead of a termination.
var errCrash = errors.New("sim: node crashed by fault injection")

func runNode(ctx *Ctx, program func(*Ctx)) {
	defer func() {
		var err error
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && errors.Is(e, errCrash) {
				// Crashed by the fault layer: the node is parked, not
				// terminated. Publish nothing and do not arrive — the
				// fault point already removed this node from the barrier
				// population and owns the slot until restart.
				ctx.eng.crashAck <- struct{}{}
				return
			}
			if e, ok := r.(error); ok && (errors.Is(e, errAbort) || errors.Is(e, ErrMemory)) {
				err = e
			} else {
				err = fmt.Errorf("sim: node %d panicked: %v", ctx.id, r)
			}
		}
		// Final barrier arrival: publish the termination bit, the error
		// and any last staged sends, then decrement. A node arrives at
		// every barrier it was resumed into exactly once — here or in
		// Tick — so the engine's arrival count stays exact.
		rt := ctx.rt
		rt.nodeErr = err
		rt.done = true
		if out := ctx.takeOutbox(); len(out) > 0 {
			ctx.eng.senderOut[ctx.id] = out
		}
		ctx.eng.arrive()
	}()
	program(ctx)
}
