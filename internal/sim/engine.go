package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Violation records one instance of a node exceeding its memory bound μ.
type Violation struct {
	Node  int
	Round int
	Words int64 // live words at the moment of the violation
}

func (v Violation) String() string {
	return fmt.Sprintf("node %d exceeded μ at round %d with %d words", v.Node, v.Round, v.Words)
}

// Result summarizes one simulated execution.
type Result struct {
	// Rounds is the number of communication rounds, i.e. the maximum
	// number of Tick calls performed by any node.
	Rounds int
	// Messages is the total number of messages delivered.
	Messages int64
	// Dropped counts messages addressed to nodes that had already
	// terminated.
	Dropped int64
	// Outputs holds, per node, the values emitted via Ctx.Emit.
	Outputs [][]any
	// PeakWords holds, per node, the peak live memory in words
	// (algorithm charges plus inbox).
	PeakWords []int64
	// Violations lists every observed μ overrun (empty when μ ≤ 0,
	// i.e. unbounded).
	Violations []Violation
}

// MaxPeakWords returns the largest per-node memory peak.
func (r *Result) MaxPeakWords() int64 {
	var m int64
	for _, w := range r.PeakWords {
		if w > m {
			m = w
		}
	}
	return m
}

// TotalOutputs returns the number of emitted values across all nodes.
func (r *Result) TotalOutputs() int {
	t := 0
	for _, o := range r.Outputs {
		t += len(o)
	}
	return t
}

// Option configures an Engine.
type Option func(*Engine)

// WithMu sets the per-node memory bound μ in words. μ ≤ 0 means
// unbounded (classic CONGEST).
func WithMu(mu int64) Option { return func(e *Engine) { e.mu = mu } }

// WithSeed seeds the engine and per-node RNGs. Runs with equal seeds and
// inputs are deterministic.
func WithSeed(seed int64) Option { return func(e *Engine) { e.seed = seed } }

// WithEdgeCap sets the number of messages allowed per directed edge per
// round (default 1, the CONGEST bandwidth).
func WithEdgeCap(c int) Option { return func(e *Engine) { e.edgeCap = c } }

// WithInboxOrder selects how each round's inbox is ordered.
func WithInboxOrder(o InboxOrder) Option { return func(e *Engine) { e.order = o } }

// WithStrictMemory makes a μ violation abort the run with an error
// instead of merely being recorded.
func WithStrictMemory() Option { return func(e *Engine) { e.strict = true } }

// WithMaxRounds bounds the execution length as a runaway guard
// (default 2,000,000 rounds).
func WithMaxRounds(r int) Option { return func(e *Engine) { e.maxRounds = r } }

// ErrMaxRounds is returned when the round limit is exceeded.
var ErrMaxRounds = errors.New("sim: maximum round count exceeded")

// ErrMemory is returned in strict mode when a node exceeds μ.
var ErrMemory = errors.New("sim: node exceeded memory bound μ")

// Engine executes one program on a topology under μ-CONGEST rules.
type Engine struct {
	topo      Topology
	mu        int64
	seed      int64
	edgeCap   int
	order     InboxOrder
	strict    bool
	maxRounds int

	n       int
	round   int
	rng     *rand.Rand
	nodes   []*nodeRT
	done    chan signal
	aborted bool
	runErr  error

	messages int64
	dropped  int64
}

type signal struct {
	id       int
	finished bool
	err      error
	outbox   []routed
}

type routed struct {
	from, to int
	msg      Msg
}

type nodeRT struct {
	resume    chan []Incoming
	inbox     []Incoming
	live      int64 // words charged by the algorithm
	peak      int64
	ticks     int
	finished  bool
	outputs   []any
	violation bool // already recorded a violation this round (dedup)
}

// New creates an engine over topo. The zero μ (unset WithMu) means
// unbounded memory.
func New(topo Topology, opts ...Option) *Engine {
	e := &Engine{
		topo:      topo,
		seed:      1,
		edgeCap:   1,
		maxRounds: 2_000_000,
		n:         topo.N(),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Mu returns the configured memory bound (≤ 0 when unbounded).
func (e *Engine) Mu() int64 { return e.mu }

// N returns the node count.
func (e *Engine) N() int { return e.n }

// Run executes program on every node and returns the aggregated result.
// program receives the node's Ctx; returning from program terminates the
// node. Run returns an error if the round limit was hit, a node
// panicked, or (in strict mode) μ was violated.
func (e *Engine) Run(program func(*Ctx)) (*Result, error) {
	e.rng = rand.New(rand.NewSource(e.seed))
	e.nodes = make([]*nodeRT, e.n)
	e.done = make(chan signal, e.n)
	e.round = 0
	e.aborted = false
	e.runErr = nil
	e.messages = 0
	e.dropped = 0
	var violations []Violation

	for i := 0; i < e.n; i++ {
		e.nodes[i] = &nodeRT{resume: make(chan []Incoming, 1)}
	}
	for i := 0; i < e.n; i++ {
		ctx := newCtx(e, i)
		go runNode(ctx, program)
	}

	active := e.n
	for active > 0 {
		ticked := make([]int, 0, active)
		staged := make([]routed, 0)
		for j := 0; j < active; j++ {
			s := <-e.done
			staged = append(staged, s.outbox...)
			if s.finished {
				e.nodes[s.id].finished = true
				if s.err != nil && e.runErr == nil && !errors.Is(s.err, errAbort) {
					e.runErr = s.err
					e.aborted = true
				}
			} else {
				ticked = append(ticked, s.id)
			}
		}
		active = len(ticked)
		e.deliver(staged, &violations)
		e.round++
		if e.round > e.maxRounds && active > 0 {
			e.aborted = true
			if e.runErr == nil {
				e.runErr = ErrMaxRounds
			}
		}
		if e.strict && len(violations) > 0 {
			e.aborted = true
			if e.runErr == nil {
				e.runErr = fmt.Errorf("%w: %v", ErrMemory, violations[0])
			}
		}
		sort.Ints(ticked)
		for _, id := range ticked {
			rt := e.nodes[id]
			in := rt.inbox
			rt.inbox = nil
			rt.resume <- in
		}
	}

	res := &Result{
		Messages:   e.messages,
		Dropped:    e.dropped,
		Outputs:    make([][]any, e.n),
		PeakWords:  make([]int64, e.n),
		Violations: violations,
	}
	for i, rt := range e.nodes {
		res.Outputs[i] = rt.outputs
		res.PeakWords[i] = rt.peak
		if rt.ticks > res.Rounds {
			res.Rounds = rt.ticks
		}
	}
	return res, e.runErr
}

// deliver routes staged messages into inboxes, applies the inbox order,
// and performs memory accounting for inbox contents.
func (e *Engine) deliver(staged []routed, violations *[]Violation) {
	if len(staged) == 0 {
		return
	}
	// Deterministic routing independent of goroutine scheduling.
	sort.Slice(staged, func(i, j int) bool {
		if staged[i].to != staged[j].to {
			return staged[i].to < staged[j].to
		}
		return staged[i].from < staged[j].from
	})
	for _, m := range staged {
		rt := e.nodes[m.to]
		if rt.finished {
			e.dropped++
			continue
		}
		rt.inbox = append(rt.inbox, Incoming{From: m.from, Msg: m.msg})
		e.messages++
	}
	for id, rt := range e.nodes {
		if len(rt.inbox) == 0 {
			continue
		}
		switch e.order {
		case OrderRandom:
			e.rng.Shuffle(len(rt.inbox), func(i, j int) {
				rt.inbox[i], rt.inbox[j] = rt.inbox[j], rt.inbox[i]
			})
		case OrderReversed:
			for i, j := 0, len(rt.inbox)-1; i < j; i, j = i+1, j-1 {
				rt.inbox[i], rt.inbox[j] = rt.inbox[j], rt.inbox[i]
			}
		}
		total := rt.live + int64(len(rt.inbox))*MsgWords
		if total > rt.peak {
			rt.peak = total
		}
		if e.mu > 0 && total > e.mu {
			*violations = append(*violations, Violation{Node: id, Round: e.round, Words: total})
		}
	}
}

var errAbort = errors.New("sim: run aborted")

func runNode(ctx *Ctx, program func(*Ctx)) {
	defer func() {
		var err error
		if r := recover(); r != nil {
			if e, ok := r.(error); ok && errors.Is(e, errAbort) {
				err = errAbort
			} else {
				err = fmt.Errorf("sim: node %d panicked: %v", ctx.id, r)
			}
		}
		ctx.eng.done <- signal{id: ctx.id, finished: true, err: err, outbox: ctx.takeOutbox()}
	}()
	program(ctx)
}
