package sim

import (
	"fmt"
	"math/rand"
)

// Ctx is a node's handle to the simulation: its identity, topology view,
// messaging, memory meter, output channel and RNG. A Ctx is owned by the
// node goroutine and must not be shared.
type Ctx struct {
	eng *Engine
	id  int
	nbr []int       // neighbor ids (topology knowledge, free per the model)
	prt map[int]int // neighbor id -> port
	rng *rand.Rand

	outbox []routed
	spare  []routed    // retired outbox buffer, recycled by takeOutbox
	sent   map[int]int // port -> messages sent this round
}

func newCtx(e *Engine, id int) *Ctx {
	nbr := e.topo.Neighbors(id)
	prt := make(map[int]int, len(nbr))
	for p, u := range nbr {
		prt[u] = p
	}
	return &Ctx{
		eng:  e,
		id:   id,
		nbr:  nbr,
		prt:  prt,
		rng:  rand.New(rand.NewSource(e.seed*1_000_003 + int64(id))),
		sent: make(map[int]int),
	}
}

// ID returns this node's id in 0..N-1.
func (c *Ctx) ID() int { return c.id }

// N returns the number of nodes in the network.
func (c *Ctx) N() int { return c.eng.n }

// Mu returns the memory bound μ in words (≤ 0 when unbounded).
func (c *Ctx) Mu() int64 { return c.eng.mu }

// Degree returns the number of neighbors.
func (c *Ctx) Degree() int { return len(c.nbr) }

// Neighbors returns this node's neighbor ids. The slice must not be
// modified.
func (c *Ctx) Neighbors() []int { return c.nbr }

// Neighbor returns the id of the neighbor on the given port.
func (c *Ctx) Neighbor(port int) int { return c.nbr[port] }

// PortOf returns the port of neighbor id, or -1 if id is not adjacent.
func (c *Ctx) PortOf(id int) int {
	if p, ok := c.prt[id]; ok {
		return p
	}
	return -1
}

// Rand returns this node's deterministic private RNG.
func (c *Ctx) Rand() *rand.Rand { return c.rng }

// Round returns the number of Tick calls this node has performed.
func (c *Ctx) Round() int { return c.eng.nodes[c.id].ticks }

// Send queues one message to the neighbor on port for delivery at the
// start of the next round. It panics if the per-edge bandwidth cap is
// exceeded within the current round.
func (c *Ctx) Send(port int, m Msg) {
	if c.sent[port] >= c.eng.edgeCap {
		panic(fmt.Sprintf("sim: node %d exceeded edge capacity %d to port %d in one round",
			c.id, c.eng.edgeCap, port))
	}
	c.sent[port]++
	c.outbox = append(c.outbox, routed{from: c.id, to: c.nbr[port], msg: m})
}

// SendID queues one message to the adjacent node with the given id.
func (c *Ctx) SendID(id int, m Msg) {
	p := c.PortOf(id)
	if p < 0 {
		panic(fmt.Sprintf("sim: node %d attempted to send to non-neighbor %d", c.id, id))
	}
	c.Send(p, m)
}

// Broadcast queues one copy of m to every neighbor.
func (c *Ctx) Broadcast(m Msg) {
	for p := range c.nbr {
		c.Send(p, m)
	}
}

// Tick ends the node's current round: queued messages are handed to the
// engine, the node blocks until every node reaches the barrier, and the
// messages that arrived are returned. The returned inbox counts toward
// the node's memory until it drops the slice.
//
// The returned slice aliases an engine-owned buffer that is reused for
// the node's next delivery: it is valid only until this node's next
// Tick call. Copy any messages that must outlive the round. Build with
// `-tags simdebug` to poison retired buffers and surface violations of
// this contract as sentinel messages (From/Kind = -1).
func (c *Ctx) Tick() []Incoming {
	rt := c.eng.nodes[c.id]
	rt.ticks++
	c.eng.done <- signal{id: c.id, outbox: c.takeOutbox()}
	in := <-rt.resume
	if c.eng.aborted {
		panic(errAbort)
	}
	return in
}

// Idle performs k rounds with no sends, discarding any received
// messages.
func (c *Ctx) Idle(k int) {
	for i := 0; i < k; i++ {
		c.Tick()
	}
}

// Emit outputs v. Per the μ-CONGEST model, emitted outputs leave the
// node immediately and consume no memory.
func (c *Ctx) Emit(v any) {
	rt := c.eng.nodes[c.id]
	rt.outputs = append(rt.outputs, v)
}

// Charge records that the algorithm now holds `words` additional words
// of memory. Peak usage and μ violations are tracked by the engine.
func (c *Ctx) Charge(words int64) {
	rt := c.eng.nodes[c.id]
	rt.live += words
	if rt.live > rt.peak {
		rt.peak = rt.live
	}
	if c.eng.mu > 0 && rt.live > c.eng.mu && c.eng.strict {
		panic(fmt.Sprintf("sim: node %d exceeded μ=%d with %d live words", c.id, c.eng.mu, rt.live))
	}
}

// Release returns `words` words to the memory meter.
func (c *Ctx) Release(words int64) {
	rt := c.eng.nodes[c.id]
	rt.live -= words
	if rt.live < 0 {
		panic(fmt.Sprintf("sim: node %d released more memory than charged", c.id))
	}
}

// Live returns the words currently charged by the algorithm (excluding
// the in-flight inbox).
func (c *Ctx) Live() int64 { return c.eng.nodes[c.id].live }

// takeOutbox hands the queued messages to the engine and recycles the
// buffer retired one barrier ago: the engine finished delivering from it
// before this node was last resumed, so it is free for reuse. The two
// buffers alternate, making steady-state sends allocation-free.
func (c *Ctx) takeOutbox() []routed {
	out := c.outbox
	c.outbox = c.spare[:0]
	c.spare = out
	for k := range c.sent {
		delete(c.sent, k)
	}
	return out
}
