package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// Ctx is a node's handle to the simulation: its identity, topology view,
// messaging, memory meter, output channel and RNG. A Ctx is owned by the
// node goroutine and must not be shared.
//
// Topology state is materialized lazily so that engine setup stays O(1)
// per node even on implicit topologies like Complete: the neighbor slice
// is fetched on first Neighbors (or first port use without a topology
// fast path), the id→port map on first PortOf without one, and the
// private RNG on first Rand.
type Ctx struct {
	eng *Engine
	rt  *nodeRT // this node's runtime slot, cached off the hot paths
	id  int
	deg int
	at  IndexedTopology // cached engine fast path (nil when unsupported)
	nbr []int           // lazily materialized neighbor list (nil until needed)
	prt map[int]int     // lazy id -> port fallback (topologies without PortOf)
	rng *rand.Rand      // lazily created on first Rand

	outbox []routed
	spare  []routed // retired outbox buffer, recycled by takeOutbox

	// Per-edge bandwidth meter. sent[p] packs the round stamp (high 32
	// bits) over the count of messages sent on port p (low 32 bits); an
	// entry is valid only while its stamp equals sentRound, so
	// takeOutbox's reset is an O(1) stamp bump instead of a per-round
	// clear. The array is sized lazily by the highest port actually
	// used, so a node that sends on few ports of a huge degree stays
	// cheap. sentRound wraps at 2³², far beyond any bounded run
	// (WithMaxRounds defaults to 2·10⁶).
	sent      []uint64
	sentRound uint32
	sentCap   uint32 // edgeCap clamped to uint32, cached off the Engine
}

// newCtx initializes the node's slot of the engine's flat Ctx slice —
// one allocation per run, not per node — and returns it.
func newCtx(e *Engine, ctxs []Ctx, id int) *Ctx {
	c := &ctxs[id]
	c.eng, c.rt, c.id, c.at = e, &e.nodes[id], id, e.topoAt
	if e.topoDeg != nil {
		c.deg = e.topoDeg.Degree(id)
	} else {
		c.nbr = e.topo.Neighbors(id)
		c.deg = len(c.nbr)
	}
	switch {
	case e.edgeCap > math.MaxInt32:
		c.sentCap = math.MaxInt32
	case e.edgeCap < 0:
		// A negative cap must stay fail-fast (the first Send panics),
		// not wrap to an effectively unlimited uint32.
		c.sentCap = 0
	default:
		c.sentCap = uint32(e.edgeCap)
	}
	return c
}

// neighbors returns the materialized neighbor list, fetching it from the
// topology on first use.
func (c *Ctx) neighbors() []int {
	if c.nbr == nil {
		c.nbr = c.eng.topo.Neighbors(c.id)
	}
	return c.nbr
}

// ID returns this node's id in 0..N-1.
func (c *Ctx) ID() int { return c.id }

// N returns the number of nodes in the network.
func (c *Ctx) N() int { return c.eng.n }

// Mu returns the memory bound μ in words (≤ 0 when unbounded).
func (c *Ctx) Mu() int64 { return c.eng.mu }

// Degree returns the number of neighbors.
func (c *Ctx) Degree() int { return c.deg }

// Neighbors returns this node's neighbor ids. The slice must not be
// modified.
func (c *Ctx) Neighbors() []int { return c.neighbors() }

// Neighbor returns the id of the neighbor on the given port.
func (c *Ctx) Neighbor(port int) int {
	if c.nbr == nil && c.at != nil {
		return c.at.NeighborAt(c.id, port)
	}
	return c.neighbors()[port]
}

// PortOf returns the port of neighbor id, or -1 if id is not adjacent.
func (c *Ctx) PortOf(id int) int {
	if c.eng.topoPort != nil {
		return c.eng.topoPort.PortOf(c.id, id)
	}
	if c.prt == nil {
		nbr := c.neighbors()
		c.prt = make(map[int]int, len(nbr))
		for p, u := range nbr {
			c.prt[u] = p
		}
	}
	if p, ok := c.prt[id]; ok {
		return p
	}
	return -1
}

// Rand returns this node's deterministic private RNG. The stream depends
// only on the engine seed and the node id.
func (c *Ctx) Rand() *rand.Rand {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.eng.seed*1_000_003 + int64(c.id)))
	}
	return c.rng
}

// Round returns the number of Tick calls this node has performed.
// A fault-layer restart resets the count: the restarted program is a
// fresh execution and sees Round() grow from 0 again.
func (c *Ctx) Round() int { return c.rt.ticks }

// Restarts returns how many times this node has been crashed and
// restarted by the fault layer (see WithFaults). Always 0 in
// fault-free runs; a freshly restarted program observes the
// incremented count from its first instruction.
func (c *Ctx) Restarts() int { return c.rt.restarts }

// meter charges one message against the per-edge cap of port, growing
// the stamped count array to cover it first.
//
//muvet:hotpath
func (c *Ctx) meter(port int) {
	if port >= len(c.sent) {
		c.growSent(port + 1)
	}
	v := c.sent[port]
	if uint32(v>>32) != c.sentRound {
		v = uint64(c.sentRound) << 32 // stale stamp: count restarts at 0
	}
	if uint32(v) >= c.sentCap {
		panic(fmt.Sprintf("sim: node %d exceeded edge capacity %d to port %d in one round",
			c.id, c.eng.edgeCap, port))
	}
	c.sent[port] = v + 1
}

// growSent extends the bandwidth-meter array to at least n entries
// (doubling, capped at the degree) so repeated growth on ascending ports
// stays amortized O(1).
func (c *Ctx) growSent(n int) {
	size := 2 * len(c.sent)
	if size < n {
		size = n
	}
	if size > c.deg {
		size = c.deg
	}
	if size < n {
		size = n // port ≥ degree: out of range, but let the caller panic on use
	}
	sent := make([]uint64, size)
	copy(sent, c.sent)
	c.sent = sent
}

// Send queues one message to the neighbor on port for delivery at the
// start of the next round. It panics if the per-edge bandwidth cap is
// exceeded within the current round.
//
//muvet:hotpath
func (c *Ctx) Send(port int, m Msg) {
	c.meter(port)
	var to int
	if c.nbr != nil {
		to = c.nbr[port]
	} else if c.at != nil {
		to = c.at.NeighborAt(c.id, port)
	} else {
		to = c.neighbors()[port]
	}
	c.outbox = append(c.outbox, routed{from: c.id, to: to, msg: m})
}

// SendID queues one message to the adjacent node with the given id.
func (c *Ctx) SendID(id int, m Msg) {
	p := c.PortOf(id)
	if p < 0 {
		panic(fmt.Sprintf("sim: node %d attempted to send to non-neighbor %d", c.id, id))
	}
	c.Send(p, m)
}

// Broadcast queues one copy of m to every neighbor. It meters and
// resolves all ports in single passes instead of re-deriving each
// neighbor through the generic Send path.
//
//muvet:hotpath
func (c *Ctx) Broadcast(m Msg) {
	deg := c.deg
	if deg == 0 {
		return
	}
	if len(c.sent) < deg {
		c.growSent(deg)
	}
	stamp := uint64(c.sentRound) << 32
	for p := 0; p < deg; p++ {
		v := c.sent[p]
		if uint32(v>>32) != c.sentRound {
			v = stamp
		}
		if uint32(v) >= c.sentCap {
			panic(fmt.Sprintf("sim: node %d exceeded edge capacity %d to port %d in one round",
				c.id, c.eng.edgeCap, p))
		}
		c.sent[p] = v + 1
	}
	out := c.outbox
	if need := len(out) + deg; cap(out) < need {
		// One growth instead of doubling through the append loop; at
		// least 2x so repeated Broadcasts in one round stay amortized.
		if dbl := 2 * cap(out); need < dbl {
			need = dbl
		}
		grown := make([]routed, len(out), need)
		copy(grown, out)
		out = grown
	}
	if nbr := c.nbr; nbr != nil {
		for _, u := range nbr {
			out = append(out, routed{from: c.id, to: u, msg: m})
		}
	} else if at := c.at; at != nil {
		for p := 0; p < deg; p++ {
			out = append(out, routed{from: c.id, to: at.NeighborAt(c.id, p), msg: m})
		}
	} else {
		for _, u := range c.neighbors() {
			out = append(out, routed{from: c.id, to: u, msg: m})
		}
	}
	c.outbox = out
}

// Tick ends the node's current round: queued messages are handed to the
// engine, the node blocks until every node reaches the barrier, and the
// messages that arrived are returned. The returned inbox counts toward
// the node's memory until it drops the slice.
//
// The returned slice aliases an engine-owned buffer that is reused for
// the node's next delivery: it is valid only until this node's next
// Tick call. Copy any messages that must outlive the round. Build with
// `-tags simdebug` to poison retired buffers and surface violations of
// this contract as sentinel messages (From/Kind = -1).
//
//muvet:hotpath
func (c *Ctx) Tick() []Incoming {
	rt := c.rt
	if rt.step != nil {
		// A stepped node blocking here would deadlock the delivery worker
		// driving it; fail as a node error instead.
		panic(fmt.Sprintf("sim: node %d runs a step program; the engine owns its round boundary (return true from Step instead of calling Tick)", c.id))
	}
	rt.ticks++
	if out := c.takeOutbox(); len(out) > 0 {
		c.eng.senderOut[c.id] = out
	}
	c.eng.arrive()
	in := <-rt.resume
	// The crash check precedes the abort check: the fault point only
	// crashes nodes on non-aborted rounds, and a crashing node must
	// unwind through the crashAck handshake, not the abort path. The
	// resume receive orders the engine's serial crashing write before
	// this read.
	if rt.crashing {
		panic(errCrash)
	}
	if c.eng.aborted {
		panic(errAbort)
	}
	return in
}

// Idle performs k rounds with no sends, discarding any received
// messages.
func (c *Ctx) Idle(k int) {
	for i := 0; i < k; i++ {
		c.Tick()
	}
}

// Emit outputs v. Per the μ-CONGEST model, emitted outputs leave the
// node immediately and consume no memory.
//
//muvet:hotpath
func (c *Ctx) Emit(v any) {
	c.rt.outputs = append(c.rt.outputs, v)
}

// Charge records that the algorithm now holds `words` additional words
// of memory. Peak usage and μ violations are tracked by the engine.
// Negative words are rejected with a panic: silently shrinking the
// meter would bypass Release's underflow check and could drive the
// live count negative. Use Release to return memory.
//
// The words delivered to the node at the last barrier stay charged
// alongside the algorithm's live words — the engine cannot observe the
// node dropping the inbox slice before its next Tick — so both the peak
// update and the strict-mode abort check match the engine's barrier
// accounting: a node that charges over μ while still holding its inbox
// aborts (strict) and has the overrun reflected in PeakWords.
//
//muvet:hotpath
func (c *Ctx) Charge(words int64) {
	if words < 0 {
		panic(fmt.Sprintf("sim: node %d Charge(%d): negative words (use Release to return memory)",
			c.id, words))
	}
	rt := c.rt
	rt.live += words
	if total := rt.live + rt.inboxWords; total > rt.peak {
		rt.peak = total
	}
	if c.eng.strict && c.eng.mu > 0 && rt.live+rt.inboxWords > c.eng.mu {
		panic(fmt.Errorf("%w: node %d holds %d live + %d inbox words > μ=%d",
			ErrMemory, c.id, rt.live, rt.inboxWords, c.eng.mu))
	}
}

// Release returns `words` words to the memory meter. Negative words are
// rejected with a panic, symmetrically with Charge.
//
//muvet:hotpath
func (c *Ctx) Release(words int64) {
	if words < 0 {
		panic(fmt.Sprintf("sim: node %d Release(%d): negative words (use Charge to add memory)",
			c.id, words))
	}
	rt := c.rt
	rt.live -= words
	if rt.live < 0 {
		panic(fmt.Sprintf("sim: node %d released more memory than charged", c.id))
	}
}

// Live returns the words currently charged by the algorithm (excluding
// the in-flight inbox).
func (c *Ctx) Live() int64 { return c.rt.live }

// takeOutbox hands the queued messages to the engine and recycles the
// buffer retired one barrier ago: the engine finished delivering from it
// before this node was last resumed, so it is free for reuse. The two
// buffers alternate, making steady-state sends allocation-free. Bumping
// the round stamp invalidates every per-port send count in O(1).
//
//muvet:hotpath
func (c *Ctx) takeOutbox() []routed {
	out := c.outbox
	c.outbox = c.spare[:0]
	c.spare = out
	c.sentRound++
	return out
}
