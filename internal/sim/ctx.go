package sim

import (
	"fmt"
	"math/rand"
)

// Ctx is a node's handle to the simulation: its identity, topology view,
// messaging, memory meter, output channel and RNG. A Ctx is owned by the
// node goroutine and must not be shared.
//
// Topology state is materialized lazily so that engine setup stays O(1)
// per node even on implicit topologies like Complete: the neighbor slice
// is fetched on first Neighbors (or first port use without a topology
// fast path), the id→port map on first PortOf without one, and the
// private RNG on first Rand.
type Ctx struct {
	eng *Engine
	id  int
	deg int
	nbr []int       // lazily materialized neighbor list (nil until needed)
	prt map[int]int // lazy id -> port fallback (topologies without PortOf)
	rng *rand.Rand  // lazily created on first Rand

	outbox []routed
	spare  []routed    // retired outbox buffer, recycled by takeOutbox
	sent   map[int]int // port -> messages sent this round
}

func newCtx(e *Engine, id int) *Ctx {
	c := &Ctx{eng: e, id: id, sent: make(map[int]int)}
	if e.topoDeg != nil {
		c.deg = e.topoDeg.Degree(id)
	} else {
		c.nbr = e.topo.Neighbors(id)
		c.deg = len(c.nbr)
	}
	return c
}

// neighbors returns the materialized neighbor list, fetching it from the
// topology on first use.
func (c *Ctx) neighbors() []int {
	if c.nbr == nil {
		c.nbr = c.eng.topo.Neighbors(c.id)
	}
	return c.nbr
}

// ID returns this node's id in 0..N-1.
func (c *Ctx) ID() int { return c.id }

// N returns the number of nodes in the network.
func (c *Ctx) N() int { return c.eng.n }

// Mu returns the memory bound μ in words (≤ 0 when unbounded).
func (c *Ctx) Mu() int64 { return c.eng.mu }

// Degree returns the number of neighbors.
func (c *Ctx) Degree() int { return c.deg }

// Neighbors returns this node's neighbor ids. The slice must not be
// modified.
func (c *Ctx) Neighbors() []int { return c.neighbors() }

// Neighbor returns the id of the neighbor on the given port.
func (c *Ctx) Neighbor(port int) int {
	if c.nbr == nil && c.eng.topoAt != nil {
		return c.eng.topoAt.NeighborAt(c.id, port)
	}
	return c.neighbors()[port]
}

// PortOf returns the port of neighbor id, or -1 if id is not adjacent.
func (c *Ctx) PortOf(id int) int {
	if c.eng.topoPort != nil {
		return c.eng.topoPort.PortOf(c.id, id)
	}
	if c.prt == nil {
		nbr := c.neighbors()
		c.prt = make(map[int]int, len(nbr))
		for p, u := range nbr {
			c.prt[u] = p
		}
	}
	if p, ok := c.prt[id]; ok {
		return p
	}
	return -1
}

// Rand returns this node's deterministic private RNG. The stream depends
// only on the engine seed and the node id.
func (c *Ctx) Rand() *rand.Rand {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.eng.seed*1_000_003 + int64(c.id)))
	}
	return c.rng
}

// Round returns the number of Tick calls this node has performed.
func (c *Ctx) Round() int { return c.eng.nodes[c.id].ticks }

// Send queues one message to the neighbor on port for delivery at the
// start of the next round. It panics if the per-edge bandwidth cap is
// exceeded within the current round.
func (c *Ctx) Send(port int, m Msg) {
	if c.sent[port] >= c.eng.edgeCap {
		panic(fmt.Sprintf("sim: node %d exceeded edge capacity %d to port %d in one round",
			c.id, c.eng.edgeCap, port))
	}
	c.sent[port]++
	c.outbox = append(c.outbox, routed{from: c.id, to: c.Neighbor(port), msg: m})
}

// SendID queues one message to the adjacent node with the given id.
func (c *Ctx) SendID(id int, m Msg) {
	p := c.PortOf(id)
	if p < 0 {
		panic(fmt.Sprintf("sim: node %d attempted to send to non-neighbor %d", c.id, id))
	}
	c.Send(p, m)
}

// Broadcast queues one copy of m to every neighbor.
func (c *Ctx) Broadcast(m Msg) {
	for p := 0; p < c.deg; p++ {
		c.Send(p, m)
	}
}

// Tick ends the node's current round: queued messages are handed to the
// engine, the node blocks until every node reaches the barrier, and the
// messages that arrived are returned. The returned inbox counts toward
// the node's memory until it drops the slice.
//
// The returned slice aliases an engine-owned buffer that is reused for
// the node's next delivery: it is valid only until this node's next
// Tick call. Copy any messages that must outlive the round. Build with
// `-tags simdebug` to poison retired buffers and surface violations of
// this contract as sentinel messages (From/Kind = -1).
func (c *Ctx) Tick() []Incoming {
	rt := c.eng.nodes[c.id]
	rt.ticks++
	c.eng.done <- signal{id: c.id, outbox: c.takeOutbox()}
	in := <-rt.resume
	if c.eng.aborted {
		panic(errAbort)
	}
	return in
}

// Idle performs k rounds with no sends, discarding any received
// messages.
func (c *Ctx) Idle(k int) {
	for i := 0; i < k; i++ {
		c.Tick()
	}
}

// Emit outputs v. Per the μ-CONGEST model, emitted outputs leave the
// node immediately and consume no memory.
func (c *Ctx) Emit(v any) {
	rt := c.eng.nodes[c.id]
	rt.outputs = append(rt.outputs, v)
}

// Charge records that the algorithm now holds `words` additional words
// of memory. Peak usage and μ violations are tracked by the engine.
//
// The words delivered to the node at the last barrier stay charged
// alongside the algorithm's live words — the engine cannot observe the
// node dropping the inbox slice before its next Tick — so both the peak
// update and the strict-mode abort check match the engine's barrier
// accounting: a node that charges over μ while still holding its inbox
// aborts (strict) and has the overrun reflected in PeakWords.
func (c *Ctx) Charge(words int64) {
	rt := c.eng.nodes[c.id]
	rt.live += words
	if total := rt.live + rt.inboxWords; total > rt.peak {
		rt.peak = total
	}
	if c.eng.strict && c.eng.mu > 0 && rt.live+rt.inboxWords > c.eng.mu {
		panic(fmt.Errorf("%w: node %d holds %d live + %d inbox words > μ=%d",
			ErrMemory, c.id, rt.live, rt.inboxWords, c.eng.mu))
	}
}

// Release returns `words` words to the memory meter.
func (c *Ctx) Release(words int64) {
	rt := c.eng.nodes[c.id]
	rt.live -= words
	if rt.live < 0 {
		panic(fmt.Sprintf("sim: node %d released more memory than charged", c.id))
	}
}

// Live returns the words currently charged by the algorithm (excluding
// the in-flight inbox).
func (c *Ctx) Live() int64 { return c.eng.nodes[c.id].live }

// takeOutbox hands the queued messages to the engine and recycles the
// buffer retired one barrier ago: the engine finished delivering from it
// before this node was last resumed, so it is free for reuse. The two
// buffers alternate, making steady-state sends allocation-free.
func (c *Ctx) takeOutbox() []routed {
	out := c.outbox
	c.outbox = c.spare[:0]
	c.spare = out
	for k := range c.sent {
		delete(c.sent, k)
	}
	return out
}
