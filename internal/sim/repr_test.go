package sim

import (
	"math/rand"
	"sync"
	"testing"

	"mucongest/internal/graph"
)

// This file pins the topology-representation contract: the compact CSR
// graphs and the implicit arithmetic topologies must be edge-for-edge,
// port-for-port interchangeable with their explicit counterparts — the
// historical golden digests reproduce bit-for-bit on the new
// representations, in both execution modes, for every inbox order.

// TestGoldenDigestsOnCSR reruns the golden determinism corpora on the
// CSR representation: the cycle and powerlaw graphs built directly in
// CSR form (identical generator draw sequences) must reproduce the
// digests recorded on the explicit graphs, goroutine and step mode
// alike. A single byte of divergence in adjacency, port numbering or
// the engine fast paths the CSR takes would shift the digest.
func TestGoldenDigestsOnCSR(t *testing.T) {
	corpora := []struct {
		name   string
		topo   Topology
		seed   int64
		golden map[InboxOrder]uint64
	}{
		{"cycle1536csr", graph.CycleCSR(1536), 7, goldenCycle1536},
		{"powerlaw1536csr", graph.BarabasiAlbertCSR(1536, 3, rand.New(rand.NewSource(13))), 7, goldenPowerlaw1536},
	}
	for _, cp := range corpora {
		for order, want := range cp.golden {
			for _, w := range []int{1, 3} {
				e := New(cp.topo, WithSeed(cp.seed), WithInboxOrder(order), WithSimWorkers(w))
				res, err := e.Run(detProgram)
				if err != nil {
					t.Fatal(err)
				}
				if got := digestResult(res); got != want {
					t.Errorf("%s order %v workers %d: digest = %#x, want golden %#x", cp.name, order, w, got, want)
				}
				res, err = New(cp.topo, WithSeed(cp.seed), WithInboxOrder(order), WithSimWorkers(w)).RunProgram(detSteps)
				if err != nil {
					t.Fatal(err)
				}
				if got := digestResult(res); got != want {
					t.Errorf("%s step mode order %v workers %d: digest = %#x, want golden %#x", cp.name, order, w, got, want)
				}
			}
		}
	}
}

// implicitCases pairs each implicit topology with its explicit twin.
func implicitCases() []struct {
	name     string
	implicit Topology
	explicit *graph.Graph
} {
	return []struct {
		name     string
		implicit Topology
		explicit *graph.Graph
	}{
		{"grid5x7", NewGrid(5, 7), graph.Grid(5, 7)},
		{"grid1x9", NewGrid(1, 9), graph.Grid(1, 9)},
		{"grid9x1", NewGrid(9, 1), graph.Grid(9, 1)},
		{"grid2x2", NewGrid(2, 2), graph.Grid(2, 2)},
		{"torus3x3", NewTorus(3, 3), graph.Torus(3, 3)},
		{"torus4x5", NewTorus(4, 5), graph.Torus(4, 5)},
		{"hypercube1", NewHypercube(1), graph.Hypercube(1)},
		{"hypercube4", NewHypercube(4), graph.Hypercube(4)},
		{"hypercube7", NewHypercube(7), graph.Hypercube(7)},
	}
}

// TestImplicitShapeMatchesExplicit proves each implicit family is
// edge-for-edge and port-for-port identical to the explicit graph at
// small n: N, Degree, Neighbors (in order), NeighborAt and PortOf.
func TestImplicitShapeMatchesExplicit(t *testing.T) {
	for _, tc := range implicitCases() {
		g := tc.explicit
		if tc.implicit.N() != g.N() {
			t.Fatalf("%s: n = %d, explicit %d", tc.name, tc.implicit.N(), g.N())
		}
		deg := tc.implicit.(DegreeTopology)
		at := tc.implicit.(IndexedTopology)
		pt := tc.implicit.(PortedTopology)
		for v := 0; v < g.N(); v++ {
			want := g.Neighbors(v)
			if d := deg.Degree(v); d != len(want) {
				t.Fatalf("%s: node %d degree %d, explicit %d", tc.name, v, d, len(want))
			}
			got := tc.implicit.Neighbors(v)
			if len(got) != len(want) {
				t.Fatalf("%s: node %d row length %d, explicit %d", tc.name, v, len(got), len(want))
			}
			for p, u := range want {
				if got[p] != u {
					t.Fatalf("%s: node %d port %d: implicit %d, explicit %d", tc.name, v, p, got[p], u)
				}
				if n := at.NeighborAt(v, p); n != u {
					t.Fatalf("%s: NeighborAt(%d,%d) = %d, want %d", tc.name, v, p, n, u)
				}
				if n := pt.PortOf(v, u); n != p {
					t.Fatalf("%s: PortOf(%d,%d) = %d, want %d", tc.name, v, u, n, p)
				}
			}
			if pt.PortOf(v, v) != -1 {
				t.Fatalf("%s: PortOf(%d,%d) should be -1", tc.name, v, v)
			}
		}
	}
}

// TestImplicitMatchesExplicitDigests runs the deterministic golden
// program on both representations of each implicit family — every
// inbox order, both execution modes, workers 1 and 2 — and requires
// bit-identical result digests. This is the digest-level counterpart
// of the shape test: if it passes, the engine cannot distinguish the
// representations.
func TestImplicitMatchesExplicitDigests(t *testing.T) {
	for _, tc := range implicitCases() {
		for order := OrderBySender; order <= OrderReversed; order++ {
			for _, w := range []int{1, 2} {
				opts := func() []Option {
					return []Option{WithSeed(11), WithInboxOrder(order), WithSimWorkers(w)}
				}
				eRes, err := New(tc.explicit, opts()...).Run(detProgram)
				if err != nil {
					t.Fatal(err)
				}
				iRes, err := New(tc.implicit, opts()...).Run(detProgram)
				if err != nil {
					t.Fatal(err)
				}
				if a, b := digestResult(eRes), digestResult(iRes); a != b {
					t.Errorf("%s order %v workers %d: explicit digest %#x, implicit %#x", tc.name, order, w, a, b)
				}
				iStep, err := New(tc.implicit, opts()...).RunProgram(detSteps)
				if err != nil {
					t.Fatal(err)
				}
				if a, b := digestResult(eRes), digestResult(iStep); a != b {
					t.Errorf("%s step mode order %v workers %d: explicit digest %#x, implicit %#x", tc.name, order, w, a, b)
				}
			}
		}
	}
}

// TestCompleteNeighborsParallel hammers the lazily cached Complete
// neighbor lists from many goroutines (run under -race in CI): the
// warm path is lock-free, every call must return the one canonical
// slice for its node.
func TestCompleteNeighborsParallel(t *testing.T) {
	c := NewComplete(300)
	first := make([][]int, c.N())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := 0; v < c.N(); v++ {
				a := c.Neighbors(v)
				if len(a) != c.N()-1 {
					t.Errorf("node %d: %d neighbors, want %d", v, len(a), c.N()-1)
					return
				}
				for p, u := range a {
					if u != c.NeighborAt(v, p) {
						t.Errorf("node %d port %d: cached %d, arithmetic %d", v, p, u, c.NeighborAt(v, p))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	// Stability: repeated calls return the same canonical slice.
	for v := 0; v < c.N(); v++ {
		first[v] = c.Neighbors(v)
	}
	for v := 0; v < c.N(); v++ {
		if again := c.Neighbors(v); &again[0] != &first[v][0] {
			t.Fatalf("node %d: Neighbors returned a different slice across calls", v)
		}
	}
}

// BenchmarkCompleteNeighborsWarm times the warm (cached) Neighbors
// path: before the lock-free rework every call took a global mutex;
// now it is two atomic loads.
func BenchmarkCompleteNeighborsWarm(b *testing.B) {
	c := NewComplete(1024)
	for v := 0; v < c.N(); v++ {
		c.Neighbors(v) // warm the cache
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		v := 0
		for pb.Next() {
			if len(c.Neighbors(v)) != 1023 {
				b.Fatal("bad neighbor count")
			}
			v = (v + 1) & 1023
		}
	})
}
