// Command benchjson converts `go test -bench` output on stdin into the
// mucongest.bench/v1 JSON schema on stdout: one entry per benchmark
// with name, ns/op, B/op and allocs/op. `make bench-record` pipes the
// BenchmarkEngineRound* cells through it to produce the committed
// performance baseline (BENCH_PR4.json), which CI validates with
// internal/tools/recordcheck — so the perf trajectory across PRs stays
// machine-readable and cannot silently drop fields.
//
// Input lines must carry allocation columns (run the benchmarks with
// -benchmem); lines that are not benchmark results are ignored, and an
// input with no result lines is an error.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// resultLine matches one `go test -bench -benchmem` result, e.g.
//
//	BenchmarkEngineRoundDense64-8  5  4876744 ns/op  4424 B/op  70 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped from the reported name.
var resultLine = regexp.MustCompile(
	`^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op`)

type entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
}

func main() {
	var entries []entry
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := resultLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err1 := strconv.ParseFloat(m[2], 64)
		by, err2 := strconv.ParseFloat(m[3], 64)
		al, err3 := strconv.ParseFloat(m[4], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			fmt.Fprintf(os.Stderr, "benchjson: unparseable result line: %s\n", sc.Text())
			os.Exit(1)
		}
		entries = append(entries, entry{Name: m[1], NsPerOp: ns, BytesPerOp: by, AllocsPerOp: al})
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin (did you pass -benchmem?)")
		os.Exit(1)
	}
	doc := struct {
		Schema     string  `json:"schema"`
		Count      int     `json:"count"`
		Benchmarks []entry `json:"benchmarks"`
	}{Schema: "mucongest.bench/v1", Count: len(entries), Benchmarks: entries}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
