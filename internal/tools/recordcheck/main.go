// Command recordcheck validates a muexp JSON record document on stdin
// against the documented mucongest.records/v1 schema: the schema stamp,
// a consistent count, and every documented field present with a sane
// value on every record. CI pipes `muexp -format json` through it so
// the emitter contract cannot drift from EXPERIMENTS.md silently.
//
// It decodes generically (not through bench.Record) on purpose: a field
// renamed in the struct but not in the docs must fail here.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
)

// fields maps every documented record field to a checker.
var fields = map[string]func(any) error{
	"exp":          nonEmptyString,
	"cell":         nonEmptyString,
	"topo":         nonEmptyString,
	"row":          nonNegativeNumber,
	"seed":         int64String,
	"params":       isObject,
	"mu":           isNumber,
	"rounds":       nonNegativeNumber,
	"messages":     nonNegativeNumber,
	"peakWords":    nonNegativeNumber,
	"muViolations": nonNegativeNumber,
	"overMuRounds": nonNegativeNumber,
}

func nonEmptyString(v any) error {
	s, ok := v.(string)
	if !ok || s == "" {
		return fmt.Errorf("want non-empty string, got %#v", v)
	}
	return nil
}

func isNumber(v any) error {
	if _, ok := v.(float64); !ok {
		return fmt.Errorf("want number, got %#v", v)
	}
	return nil
}

// int64String: seeds span the full int64 range, beyond float64
// precision, so the schema carries them as decimal strings.
func int64String(v any) error {
	s, ok := v.(string)
	if !ok {
		return fmt.Errorf("want int64-in-string, got %#v", v)
	}
	if _, err := strconv.ParseInt(s, 10, 64); err != nil {
		return fmt.Errorf("want int64-in-string, got %q", s)
	}
	return nil
}

func nonNegativeNumber(v any) error {
	f, ok := v.(float64)
	if !ok || f < 0 {
		return fmt.Errorf("want number ≥ 0, got %#v", v)
	}
	return nil
}

func isObject(v any) error {
	if _, ok := v.(map[string]any); !ok {
		return fmt.Errorf("want object, got %#v", v)
	}
	return nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "recordcheck: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var doc struct {
		Schema  string           `json:"schema"`
		Count   *int             `json:"count"`
		Records []map[string]any `json:"records"`
	}
	dec := json.NewDecoder(os.Stdin)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		fail("invalid JSON document: %v", err)
	}
	if doc.Schema != "mucongest.records/v1" {
		fail("schema %q, want mucongest.records/v1", doc.Schema)
	}
	if doc.Count == nil || *doc.Count != len(doc.Records) {
		fail("count field inconsistent with %d records", len(doc.Records))
	}
	if len(doc.Records) == 0 {
		fail("no records: a smoke run must produce at least one")
	}
	for i, r := range doc.Records {
		if len(r) != len(fields) {
			fail("record %d has %d fields, schema documents %d: %v", i, len(r), len(fields), keys(r))
		}
		for name, check := range fields {
			v, ok := r[name]
			if !ok {
				fail("record %d missing field %q", i, name)
			}
			if err := check(v); err != nil {
				fail("record %d field %q: %v", i, name, err)
			}
		}
	}
	fmt.Printf("recordcheck: %d records OK (%s)\n", len(doc.Records), doc.Schema)
}

func keys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
