// Command recordcheck validates a JSON document on stdin against its
// declared schema, dispatching on the top-level "schema" stamp:
//
//   - mucongest.records/v1 — muexp experiment records: a consistent
//     count and every documented field present with a sane value on
//     every record. CI pipes `muexp -format json` through it so the
//     emitter contract cannot drift from EXPERIMENTS.md silently.
//   - mucongest.bench/v1 — benchjson performance baselines
//     (BENCH_PR*.json): per-benchmark name, ns/op, B/op and allocs/op.
//     CI validates the committed baseline so the perf trajectory stays
//     machine-readable.
//
// It decodes generically (not through the Go structs) on purpose: a
// field renamed in code but not in the docs must fail here.
//
// A second mode compares two bench baselines cell by cell:
//
//	recordcheck -compare baseline.json fresh.json -tol-ns 1.3 -tol-allocs 1.05 [-only REGEX]
//
// exits non-zero if any baseline benchmark's ns/op or allocs/op grew
// beyond the tolerance ratio (or vanished) in the fresh file, so a perf
// regression can gate a pipeline instead of being eyeballed. -only
// narrows the gate to the baseline cells whose name matches the
// regexp — CI holds the stable large-n engine cells to a tight ratio
// while leaving sub-microsecond cells out of the gate.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
)

// recordFields maps every documented experiment-record field to a
// checker.
var recordFields = map[string]func(any) error{
	"exp":          nonEmptyString,
	"cell":         nonEmptyString,
	"topo":         nonEmptyString,
	"row":          nonNegativeNumber,
	"seed":         int64String,
	"params":       isObject,
	"mu":           isNumber,
	"rounds":       nonNegativeNumber,
	"messages":     nonNegativeNumber,
	"peakWords":    nonNegativeNumber,
	"muViolations": nonNegativeNumber,
	"overMuRounds": nonNegativeNumber,
}

func nonEmptyString(v any) error {
	s, ok := v.(string)
	if !ok || s == "" {
		return fmt.Errorf("want non-empty string, got %#v", v)
	}
	return nil
}

func isNumber(v any) error {
	if _, ok := v.(float64); !ok {
		return fmt.Errorf("want number, got %#v", v)
	}
	return nil
}

// int64String: seeds span the full int64 range, beyond float64
// precision, so the schema carries them as decimal strings.
func int64String(v any) error {
	s, ok := v.(string)
	if !ok {
		return fmt.Errorf("want int64-in-string, got %#v", v)
	}
	if _, err := strconv.ParseInt(s, 10, 64); err != nil {
		return fmt.Errorf("want int64-in-string, got %q", s)
	}
	return nil
}

func nonNegativeNumber(v any) error {
	f, ok := v.(float64)
	if !ok || f < 0 {
		return fmt.Errorf("want number ≥ 0, got %#v", v)
	}
	return nil
}

func isObject(v any) error {
	if _, ok := v.(map[string]any); !ok {
		return fmt.Errorf("want object, got %#v", v)
	}
	return nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "recordcheck: "+format+"\n", args...)
	os.Exit(1)
}

// benchFields maps every documented bench-baseline field to a checker.
var benchFields = map[string]func(any) error{
	"name":        nonEmptyString,
	"nsPerOp":     positiveNumber,
	"bytesPerOp":  nonNegativeNumber,
	"allocsPerOp": nonNegativeNumber,
}

func positiveNumber(v any) error {
	f, ok := v.(float64)
	if !ok || f <= 0 {
		return fmt.Errorf("want number > 0, got %#v", v)
	}
	return nil
}

// checkRows validates one entry array: a consistent count and exactly
// the documented fields, each with a sane value, on every row.
func checkRows(kind string, rows []map[string]any, count *int, fields map[string]func(any) error) {
	if count == nil || *count != len(rows) {
		fail("count field inconsistent with %d %ss", len(rows), kind)
	}
	if len(rows) == 0 {
		fail("no %ss: a run must produce at least one", kind)
	}
	for i, r := range rows {
		if len(r) != len(fields) {
			fail("%s %d has %d fields, schema documents %d: %v", kind, i, len(r), len(fields), keys(r))
		}
		for name, check := range fields {
			v, ok := r[name]
			if !ok {
				fail("%s %d missing field %q", kind, i, name)
			}
			if err := check(v); err != nil {
				fail("%s %d field %q: %v", kind, i, name, err)
			}
		}
	}
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-compare" {
		if err := runCompare(os.Args[2:], os.Stdout); err != nil {
			fail("%v", err)
		}
		return
	}
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		fail("reading stdin: %v", err)
	}
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		fail("invalid JSON document: %v", err)
	}
	switch probe.Schema {
	case "mucongest.records/v1":
		var doc struct {
			Schema  string           `json:"schema"`
			Count   *int             `json:"count"`
			Records []map[string]any `json:"records"`
		}
		decodeStrict(data, &doc)
		checkRows("record", doc.Records, doc.Count, recordFields)
		fmt.Printf("recordcheck: %d records OK (%s)\n", len(doc.Records), doc.Schema)
	case "mucongest.bench/v1":
		var doc struct {
			Schema     string           `json:"schema"`
			Count      *int             `json:"count"`
			Benchmarks []map[string]any `json:"benchmarks"`
		}
		decodeStrict(data, &doc)
		checkRows("benchmark", doc.Benchmarks, doc.Count, benchFields)
		fmt.Printf("recordcheck: %d benchmarks OK (%s)\n", len(doc.Benchmarks), doc.Schema)
	default:
		fail("schema %q, want mucongest.records/v1 or mucongest.bench/v1", probe.Schema)
	}
}

func decodeStrict(data []byte, doc any) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(doc); err != nil {
		fail("invalid JSON document: %v", err)
	}
}

func keys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
