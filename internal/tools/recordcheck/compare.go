package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
)

// runCompare implements `recordcheck -compare baseline.json fresh.json
// [-tol-ns R] [-tol-allocs R] [-only REGEX]`: load two
// mucongest.bench/v1 documents and fail if any baseline cell regressed
// beyond the tolerance ratios in the fresh run. -only restricts the
// gate to baseline cells whose name matches the regexp, so a CI
// pipeline can hold a stable subset (e.g. the large-n engine cells) to
// a tight ratio without the noisy small cells tripping it. The flag
// package stops parsing at the first positional argument, so the two
// file operands are peeled off by hand and the FlagSet only sees what
// follows them.
func runCompare(args []string, stdout io.Writer) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: recordcheck -compare baseline.json fresh.json [-tol-ns R] [-tol-allocs R] [-only REGEX]")
	}
	basePath, freshPath := args[0], args[1]
	fs := flag.NewFlagSet("recordcheck -compare", flag.ContinueOnError)
	tolNS := fs.Float64("tol-ns", 1.10,
		"fresh/baseline ns/op ratio above which a cell counts as regressed")
	tolAllocs := fs.Float64("tol-allocs", 1.0,
		"fresh/baseline allocs/op ratio above which a cell counts as regressed")
	only := fs.String("only", "",
		"gate only the baseline cells whose name matches this regexp")
	if err := fs.Parse(args[2:]); err != nil {
		return err
	}
	if rest := fs.Args(); len(rest) > 0 {
		return fmt.Errorf("unexpected arguments after flags: %v", rest)
	}
	if *tolNS < 1 || *tolAllocs < 1 {
		return fmt.Errorf("tolerance ratios must be >= 1 (got -tol-ns %v -tol-allocs %v)", *tolNS, *tolAllocs)
	}

	base, err := loadBench(basePath)
	if err != nil {
		return err
	}
	fresh, err := loadBench(freshPath)
	if err != nil {
		return err
	}
	if *only != "" {
		re, err := regexp.Compile(*only)
		if err != nil {
			return fmt.Errorf("-only: %v", err)
		}
		for name := range base {
			if !re.MatchString(name) {
				delete(base, name)
			}
		}
		// An -only that selects nothing gates nothing — that is a broken
		// pipeline, not a pass.
		if len(base) == 0 {
			return fmt.Errorf("-only %q matches no baseline cell in %s", *only, basePath)
		}
	}
	regressions := compareBench(base, fresh, *tolNS, *tolAllocs)
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "recordcheck: regression: %s\n", r)
		}
		return fmt.Errorf("%d of %d baseline cells regressed beyond tolerance", len(regressions), len(base))
	}
	fmt.Fprintf(stdout, "recordcheck: %d baseline cells within tolerance (ns/op <= %.2fx, allocs/op <= %.2fx)\n",
		len(base), *tolNS, *tolAllocs)
	return nil
}

// benchCell is one benchmark row of a mucongest.bench/v1 document.
type benchCell struct {
	NSPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
}

// loadBench reads a mucongest.bench/v1 file into per-name cells,
// rejecting schema drift, count mismatches, duplicates and non-positive
// timings so a comparison never silently runs over a malformed side.
func loadBench(path string) (map[string]benchCell, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// Probe the schema stamp leniently first: a records/v1 file must be
	// reported as the wrong schema, not as its fields being unknown.
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if probe.Schema != "mucongest.bench/v1" {
		return nil, fmt.Errorf("%s: schema %q, -compare wants mucongest.bench/v1", path, probe.Schema)
	}
	var doc struct {
		Schema     string `json:"schema"`
		Count      *int   `json:"count"`
		Benchmarks []struct {
			Name        string  `json:"name"`
			NSPerOp     float64 `json:"nsPerOp"`
			BytesPerOp  float64 `json:"bytesPerOp"`
			AllocsPerOp float64 `json:"allocsPerOp"`
		} `json:"benchmarks"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if doc.Count == nil || *doc.Count != len(doc.Benchmarks) {
		return nil, fmt.Errorf("%s: count field inconsistent with %d benchmarks", path, len(doc.Benchmarks))
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	cells := make(map[string]benchCell, len(doc.Benchmarks))
	for i, b := range doc.Benchmarks {
		if b.Name == "" {
			return nil, fmt.Errorf("%s: benchmark %d has no name", path, i)
		}
		if b.NSPerOp <= 0 {
			return nil, fmt.Errorf("%s: benchmark %q: nsPerOp %v, want > 0", path, b.Name, b.NSPerOp)
		}
		if b.BytesPerOp < 0 || b.AllocsPerOp < 0 {
			return nil, fmt.Errorf("%s: benchmark %q: negative B/op or allocs/op", path, b.Name)
		}
		if _, dup := cells[b.Name]; dup {
			return nil, fmt.Errorf("%s: duplicate benchmark %q", path, b.Name)
		}
		cells[b.Name] = benchCell{NSPerOp: b.NSPerOp, BytesPerOp: b.BytesPerOp, AllocsPerOp: b.AllocsPerOp}
	}
	return cells, nil
}

// compareBench checks every baseline cell against the fresh run and
// returns one message per regression, in name order. A cell missing
// from the fresh run is a regression (a deleted benchmark must retire
// its baseline row first); benchmarks only in the fresh run are new
// coverage and pass. B/op is carried in the schema but not gated here:
// it moves with allocator size classes, and allocs/op is the stable
// proxy the repo tracks.
func compareBench(base, fresh map[string]benchCell, tolNS, tolAllocs float64) []string {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var regressions []string
	for _, name := range names {
		b := base[name]
		f, ok := fresh[name]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("%s: in baseline but missing from fresh run", name))
			continue
		}
		if f.NSPerOp > b.NSPerOp*tolNS {
			regressions = append(regressions,
				fmt.Sprintf("%s: ns/op %.1f -> %.1f (%.2fx > %.2fx tolerance)",
					name, b.NSPerOp, f.NSPerOp, f.NSPerOp/b.NSPerOp, tolNS))
		}
		if f.AllocsPerOp > b.AllocsPerOp*tolAllocs {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op %.0f -> %.0f (tolerance %.2fx)",
					name, b.AllocsPerOp, f.AllocsPerOp, tolAllocs))
		}
	}
	return regressions
}
