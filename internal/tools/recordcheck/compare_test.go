package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchDoc renders a synthetic mucongest.bench/v1 document. Cells are
// (name, ns, bytes, allocs) quadruples.
func benchDoc(cells ...[4]string) string {
	var rows []string
	for _, c := range cells {
		rows = append(rows, fmt.Sprintf(
			`{"name":%q,"nsPerOp":%s,"bytesPerOp":%s,"allocsPerOp":%s}`,
			c[0], c[1], c[2], c[3]))
	}
	return fmt.Sprintf(`{"schema":"mucongest.bench/v1","count":%d,"benchmarks":[%s]}`,
		len(cells), strings.Join(rows, ","))
}

func writeDoc(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "base.json", benchDoc(
		[4]string{"BenchmarkStep/path", "1000", "64", "2"},
		[4]string{"BenchmarkStep/star", "2000", "128", "4"},
	))
	fresh := writeDoc(t, dir, "fresh.json", benchDoc(
		[4]string{"BenchmarkStep/path", "1200", "64", "2"},
		[4]string{"BenchmarkStep/star", "1900", "96", "4"},
	))
	var out bytes.Buffer
	err := runCompare([]string{base, fresh, "-tol-ns", "1.3", "-tol-allocs", "1.05"}, &out)
	if err != nil {
		t.Fatalf("runCompare: %v", err)
	}
	if !strings.Contains(out.String(), "2 baseline cells within tolerance") {
		t.Errorf("output = %q, want the within-tolerance summary", out.String())
	}
}

func TestCompareNsRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "base.json", benchDoc([4]string{"BenchmarkStep/path", "1000", "64", "2"}))
	fresh := writeDoc(t, dir, "fresh.json", benchDoc([4]string{"BenchmarkStep/path", "1400", "64", "2"}))
	err := runCompare([]string{base, fresh, "-tol-ns", "1.3", "-tol-allocs", "1.05"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "1 of 1 baseline cells regressed") {
		t.Fatalf("err = %v, want a one-cell regression", err)
	}
}

func TestCompareAllocRegressionDespiteFasterNs(t *testing.T) {
	dir := t.TempDir()
	base := writeDoc(t, dir, "base.json", benchDoc([4]string{"BenchmarkStep/path", "1000", "64", "4"}))
	fresh := writeDoc(t, dir, "fresh.json", benchDoc([4]string{"BenchmarkStep/path", "900", "64", "5"}))
	err := runCompare([]string{base, fresh, "-tol-ns", "1.3", "-tol-allocs", "1.05"}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("allocs/op 4 -> 5 exceeds 1.05x; want a regression")
	}
}

func TestCompareZeroAllocBaselineIsStrict(t *testing.T) {
	// 0 * tolerance is still 0: a zero-alloc baseline cell admits no
	// fresh allocations at any ratio.
	regs := compareBench(
		map[string]benchCell{"b": {NSPerOp: 100, AllocsPerOp: 0}},
		map[string]benchCell{"b": {NSPerOp: 100, AllocsPerOp: 1}},
		2.0, 2.0)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op 0 -> 1") {
		t.Fatalf("regressions = %v, want the zero-alloc cell flagged", regs)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	regs := compareBench(
		map[string]benchCell{"gone": {NSPerOp: 100}},
		map[string]benchCell{},
		1.3, 1.05)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing from fresh run") {
		t.Fatalf("regressions = %v, want the missing cell flagged", regs)
	}
}

func TestCompareNewBenchmarkPasses(t *testing.T) {
	regs := compareBench(
		map[string]benchCell{"old": {NSPerOp: 100, AllocsPerOp: 1}},
		map[string]benchCell{
			"old": {NSPerOp: 100, AllocsPerOp: 1},
			"new": {NSPerOp: 9999, AllocsPerOp: 50},
		},
		1.05, 1.0)
	if len(regs) != 0 {
		t.Fatalf("regressions = %v; a benchmark only in the fresh run must pass", regs)
	}
}

func TestCompareOnlyFilter(t *testing.T) {
	dir := t.TempDir()
	// engine cell regresses 2x, step cell is clean. -only scoped to the
	// step cells must pass; unscoped (or scoped to engine) must fail.
	base := writeDoc(t, dir, "base.json", benchDoc(
		[4]string{"BenchmarkEngineRoundCycle65536Workers/w=4", "1000", "64", "0"},
		[4]string{"BenchmarkStep/path", "500", "32", "2"},
	))
	fresh := writeDoc(t, dir, "fresh.json", benchDoc(
		[4]string{"BenchmarkEngineRoundCycle65536Workers/w=4", "2000", "64", "0"},
		[4]string{"BenchmarkStep/path", "500", "32", "2"},
	))

	var out bytes.Buffer
	if err := runCompare([]string{base, fresh, "-tol-ns", "1.3", "-only", "^BenchmarkStep/"}, &out); err != nil {
		t.Fatalf("-only ^BenchmarkStep/: %v", err)
	}
	if !strings.Contains(out.String(), "1 baseline cells within tolerance") {
		t.Errorf("output = %q, want exactly the one matching cell gated", out.String())
	}

	err := runCompare([]string{base, fresh, "-tol-ns", "1.3", "-only", "EngineRound"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "1 of 1 baseline cells regressed") {
		t.Fatalf("-only EngineRound: err = %v, want the regressed engine cell flagged", err)
	}

	err = runCompare([]string{base, fresh, "-only", "NoSuchBenchmark"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "matches no baseline cell") {
		t.Fatalf("-only with no matches: err = %v, want an explicit empty-gate error", err)
	}

	err = runCompare([]string{base, fresh, "-only", "("}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-only:") {
		t.Fatalf("-only with a bad regexp: err = %v, want a compile error", err)
	}
}

func TestCompareRejectsBadInputs(t *testing.T) {
	dir := t.TempDir()
	good := writeDoc(t, dir, "good.json", benchDoc([4]string{"b", "100", "0", "0"}))
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"too few operands", []string{good}, "usage:"},
		{"wrong schema", []string{
			writeDoc(t, dir, "records.json", `{"schema":"mucongest.records/v1","count":0,"records":[]}`),
			good}, "-compare wants mucongest.bench/v1"},
		{"count drift", []string{
			writeDoc(t, dir, "drift.json",
				`{"schema":"mucongest.bench/v1","count":2,"benchmarks":[{"name":"b","nsPerOp":1,"bytesPerOp":0,"allocsPerOp":0}]}`),
			good}, "count field inconsistent"},
		{"unknown field", []string{
			writeDoc(t, dir, "extra.json",
				`{"schema":"mucongest.bench/v1","count":1,"benchmarks":[{"name":"b","nsPerOp":1,"bytesPerOp":0,"allocsPerOp":0,"mbPerSec":9}]}`),
			good}, "unknown field"},
		{"duplicate name", []string{
			writeDoc(t, dir, "dup.json", benchDoc([4]string{"b", "1", "0", "0"}, [4]string{"b", "2", "0", "0"})),
			good}, "duplicate benchmark"},
		{"tolerance below one", []string{good, good, "-tol-ns", "0.5"}, "must be >= 1"},
		{"stray positional", []string{good, good, "-tol-ns", "1.2", "third.json"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := runCompare(tc.args, &bytes.Buffer{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want it to mention %q", err, tc.want)
			}
		})
	}
}
