package muvettest

import (
	"go/token"
	"path/filepath"
	"testing"
)

// The runner tests run from the muvettest package directory, so the
// corpus root is the muvet package's testdata two levels up.
var corpusRoot = filepath.Join("..", "testdata", "src")

// TestCorpusImporterResolvesCorpusPackage checks that an import path
// matching a directory under testdata/src is type-checked from source:
// the shared stepstub package must expose the types the step-contract
// corpora match on.
func TestCorpusImporterResolvesCorpusPackage(t *testing.T) {
	ci := NewCorpusImporter(token.NewFileSet(), corpusRoot)
	pkg, err := ci.Import("stepstub")
	if err != nil {
		t.Fatalf("Import(stepstub): %v", err)
	}
	if pkg.Name() != "stepstub" {
		t.Fatalf("package name = %q, want %q", pkg.Name(), "stepstub")
	}
	for _, name := range []string{"Ctx", "Incoming", "StepProgram", "Program"} {
		if pkg.Scope().Lookup(name) == nil {
			t.Errorf("stepstub is missing %s", name)
		}
	}
	// Second import must hit the cache and return the identical package
	// so cross-package identity checks (types.Identical on Incoming)
	// hold when two corpora import the same sibling.
	again, err := ci.Import("stepstub")
	if err != nil {
		t.Fatalf("second Import(stepstub): %v", err)
	}
	if again != pkg {
		t.Errorf("second import returned a distinct *types.Package; corpus packages must be cached")
	}
}

// TestCorpusImporterFallsBackToStdlib checks that paths with no corpus
// directory fall through to the standard-library source importer.
func TestCorpusImporterFallsBackToStdlib(t *testing.T) {
	ci := NewCorpusImporter(token.NewFileSet(), corpusRoot)
	pkg, err := ci.Import("sync")
	if err != nil {
		t.Fatalf("Import(sync): %v", err)
	}
	if pkg.Scope().Lookup("Mutex") == nil {
		t.Errorf("stdlib fallback returned a sync package without Mutex")
	}
}

// TestCorpusImporterSharedFileSet checks the documented position
// contract: corpus packages are parsed into the FileSet the runner
// hands in, so analyzers can compare object positions across packages.
func TestCorpusImporterSharedFileSet(t *testing.T) {
	fset := token.NewFileSet()
	ci := NewCorpusImporter(fset, corpusRoot)
	pkg, err := ci.Import("stepstub")
	if err != nil {
		t.Fatalf("Import(stepstub): %v", err)
	}
	obj := pkg.Scope().Lookup("Incoming")
	if obj == nil {
		t.Fatal("stepstub.Incoming not found")
	}
	pos := fset.Position(obj.Pos())
	if filepath.Base(pos.Filename) != "stepstub.go" {
		t.Errorf("Incoming declared at %s; position not resolvable in the shared FileSet", pos)
	}
}
