// Package muvettest is a minimal analysistest clone for the muvet
// suite: it loads a testdata package from source, runs one analyzer
// over it, and checks the diagnostics against `// want "regexp"`
// comments in the corpus.
//
// The x/tools analysistest package is not vendored here (the repo
// builds offline against the standard library only), so this carries
// just the subset the muvet tests need: source-importer type checking,
// per-line want expectations, and an importPath override so a corpus
// can stand in for a scoped repo package such as
// "mucongest/internal/sim".
//
// Corpora may be multi-file and may import sibling corpus packages:
// import paths are resolved under testdata/src first (so the
// step-contract corpora share one "stepstub" types package and
// interface implementations resolve across package boundaries), falling
// back to the standard-library source importer.
package muvettest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"mucongest/internal/tools/muvet/analysis"
)

// expectation is one `// want` clause: a regexp that must match a
// diagnostic reported on the same line.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	hit  bool
}

// finding is one diagnostic the analyzer actually reported.
type finding struct {
	file    string
	line    int
	message string
	matched bool
}

// Run loads testdata/src/<dir>, type-checks it with the source
// importer (standard library only), runs the analyzer as if the
// package's import path were importPath, and compares diagnostics
// with the corpus's `// want "regexp"` comments. Multiple clauses per
// line (`// want "a" "b"`) all must match, and every diagnostic must
// be wanted.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	root := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("muvettest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(root, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("muvettest: parse: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("muvettest: no Go files under %s", root)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: NewCorpusImporter(fset, filepath.Join("testdata", "src"))}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("muvettest: typecheck %s: %v", root, err)
	}

	wants := collectWants(t, fset, files)
	var got []*finding
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		ImportPath: importPath,
		TypesInfo:  info,
		Report: func(d analysis.Diagnostic) {
			p := fset.Position(d.Pos)
			got = append(got, &finding{file: filepath.Base(p.Filename), line: p.Line, message: d.Message})
		},
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("muvettest: %s: %v", a.Name, err)
	}

	for _, f := range got {
		for _, w := range wants {
			if !w.hit && w.file == f.file && w.line == f.line && w.rx.MatchString(f.message) {
				w.hit, f.matched = true, true
				break
			}
		}
	}
	sort.Slice(got, func(i, j int) bool {
		if got[i].file != got[j].file {
			return got[i].file < got[j].file
		}
		return got[i].line < got[j].line
	})
	for _, f := range got {
		if !f.matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", f.file, f.line, f.message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.rx)
		}
	}
}

// CorpusImporter resolves import paths under a corpus root directory
// (testdata/src) before falling back to the standard-library source
// importer. Corpus packages are parsed and type-checked from source on
// first import, sharing the runner's FileSet so object positions stay
// comparable across packages, and are cached for the importer's
// lifetime.
type CorpusImporter struct {
	fset *token.FileSet
	root string
	base types.Importer
	pkgs map[string]*types.Package
}

// NewCorpusImporter returns an importer rooted at dir.
func NewCorpusImporter(fset *token.FileSet, dir string) *CorpusImporter {
	return &CorpusImporter{
		fset: fset,
		root: dir,
		base: importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*types.Package{},
	}
}

// Import implements types.Importer.
func (ci *CorpusImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := ci.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ci.root, filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		return ci.base.Import(path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ci.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return ci.base.Import(path)
	}
	conf := types.Config{Importer: ci}
	pkg, err := conf.Check(path, ci.fset, files, nil)
	if err != nil {
		return nil, err
	}
	ci.pkgs[path] = pkg
	return pkg, nil
}

// wantRx matches the quoted regexp clauses after a want marker.
var wantRx = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// collectWants extracts the `// want "rx"` expectations of the corpus.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				clauses := wantRx.FindAllString(text, -1)
				if len(clauses) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", filepath.Base(p.Filename), p.Line, c.Text)
				}
				for _, cl := range clauses {
					pat := cl
					if pat[0] == '"' {
						var err error
						pat, err = strconv.Unquote(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want clause %s: %v", filepath.Base(p.Filename), p.Line, cl, err)
						}
					} else {
						pat = pat[1 : len(pat)-1]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %s: %v", filepath.Base(p.Filename), p.Line, cl, err)
					}
					wants = append(wants, &expectation{file: filepath.Base(p.Filename), line: p.Line, rx: rx})
				}
			}
		}
	}
	return wants
}
