package muvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"mucongest/internal/tools/muvet/analysis"
)

// NoDeterm forbids nondeterminism sources in the packages whose output
// is pinned byte-for-bit (engine, reference engine, record layer,
// differential harness):
//
//   - time.Now / time.Since values feeding a serialized struct field
//     (json/csv-tagged, not "-") or a fmt formatting call. Wall time
//     may be measured — bench.Record.WallTime does — as long as it
//     never reaches serialized bytes.
//   - the global math/rand RNG (rand.Intn etc. without an explicit
//     Source); all engine randomness must flow through seeded streams.
//   - `range` over a map whose body is order-sensitive: appends,
//     string building, emitted rows/records, first- or last-writer-wins
//     assignments to outer variables. The sorted-keys idiom
//     (`for k := range m { keys = append(keys, k) }` + sort) and pure
//     order-insensitive aggregation (counters, min/max, map writes)
//     are recognized and allowed.
//
// Suppress a deliberate exception with //muvet:allow nodeterm(reason).
var NoDeterm = &analysis.Analyzer{
	Name: "nodeterm",
	Doc:  "forbid wall-clock, global-RNG and map-order nondeterminism in determinism-pinned packages",
	Run:  runNoDeterm,
}

// nodetermScope lists the packages whose observable behavior is pinned
// bit-for-bit by golden digests and the differential harness.
var nodetermScope = []string{
	"mucongest/internal/sim",
	"mucongest/internal/sim/refsim",
	"mucongest/internal/bench",
	"mucongest/internal/harness",
}

// globalRandFuncs are the math/rand (and v2) package-level functions
// that draw from the unseeded process-global RNG.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint32N": true, "Uint64N": true, "UintN": true, "Uint": true,
}

// fmtFormatFuncs are the fmt formatting entry points treated as
// serialization sinks for tainted values.
var fmtFormatFuncs = map[string]bool{
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Errorf": true, "Appendf": true, "Append": true, "Appendln": true,
}

// orderSensitiveMethods are method names whose invocation inside a map
// range makes iteration order observable: buffered/emitted output and
// engine effects.
var orderSensitiveMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"AddRow": true, "AddRecord": true, "Emit": true,
	"Send": true, "SendID": true, "Broadcast": true, "Charge": true, "Release": true,
}

func runNoDeterm(pass *analysis.Pass) error {
	if !inScope(pass.ImportPath, nodetermScope...) {
		return nil
	}
	allow := buildAllowlist(pass)
	report := func(pos token.Pos, format string, args ...any) {
		if !allow.allowed(pass.Fset, pos, "nodeterm") {
			pass.Reportf(pos, format, args...)
		}
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGlobalRand(pass, fn, report)
			checkTimeTaint(pass, fn, report)
			checkMapRange(pass, fn, report)
		}
	}
	return nil
}

// checkGlobalRand flags calls to the process-global math/rand RNG.
func checkGlobalRand(pass *analysis.Pass, fn *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		path, name := pkgFunc(pass.TypesInfo, call)
		if (path == "math/rand" || path == "math/rand/v2") && globalRandFuncs[name] {
			report(call.Pos(), "call to global math/rand.%s: derive randomness from a seeded stream (sim.ShardStreamSeed or the node RNG)", name)
		}
		return true
	})
}

// isWallClockCall matches time.Now and time.Since calls.
func isWallClockCall(info *types.Info, n ast.Node) (string, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	if path, name := pkgFunc(info, call); path == "time" && (name == "Now" || name == "Since") {
		return "time." + name, true
	}
	return "", false
}

// checkTimeTaint flags wall-clock values that reach serialized bytes:
// it taints variables assigned from time.Now/time.Since within the
// function, then reports fmt formatting calls and serialized struct
// field writes whose value subtree contains a tainted variable or a
// direct wall-clock call.
func checkTimeTaint(pass *analysis.Pass, fn *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	info := pass.TypesInfo
	tainted := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, rhs := range asg.Rhs {
			if _, ok := isWallClockCall(info, rhs); !ok {
				continue
			}
			if id, ok := asg.Lhs[i].(*ast.Ident); ok {
				if obj := objOf(info, id); obj != nil {
					tainted[obj] = true
				}
			}
		}
		return true
	})
	hasTaint := func(e ast.Expr) (string, bool) {
		var src string
		found := contains(e, func(n ast.Node) bool {
			if s, ok := isWallClockCall(info, n); ok {
				src = s
				return true
			}
			if id, ok := n.(*ast.Ident); ok {
				if obj := objOf(info, id); obj != nil && tainted[obj] {
					src = id.Name + " (from time.Now/time.Since)"
					return true
				}
			}
			return false
		})
		return src, found
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if path, name := pkgFunc(info, n); path == "fmt" && fmtFormatFuncs[name] {
				for _, arg := range n.Args {
					if src, ok := hasTaint(arg); ok {
						report(arg.Pos(), "wall-clock value %s formatted by fmt.%s: output must be deterministic", src, name)
					}
				}
			}
		case *ast.CompositeLit:
			checkSerializedFields(info, n, hasTaint, report)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fieldIsSerialized(info, sel) {
					if src, ok := hasTaint(n.Rhs[i]); ok {
						report(n.Rhs[i].Pos(), "wall-clock value %s written to serialized field %s", src, sel.Sel.Name)
					}
				}
			}
		}
		return true
	})
}

// checkSerializedFields inspects a struct composite literal and reports
// tainted values assigned to serialized (json/csv-tagged) fields.
func checkSerializedFields(info *types.Info, lit *ast.CompositeLit,
	hasTaint func(ast.Expr) (string, bool), report func(token.Pos, string, ...any)) {
	st, ok := structTypeOf(info, lit)
	if !ok {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == key.Name && isSerializedField(st, i) {
				if src, ok := hasTaint(kv.Value); ok {
					report(kv.Value.Pos(), "wall-clock value %s assigned to serialized field %s", src, key.Name)
				}
			}
		}
	}
}

// structTypeOf resolves a composite literal to its underlying struct
// type, unwrapping named types and pointers.
func structTypeOf(info *types.Info, lit *ast.CompositeLit) (*types.Struct, bool) {
	tv, ok := info.Types[lit]
	if !ok {
		return nil, false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// fieldIsSerialized reports whether sel names a serialized struct
// field.
func fieldIsSerialized(info *types.Info, sel *ast.SelectorExpr) bool {
	obj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return false
	}
	recv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	t := recv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == obj {
			return isSerializedField(st, i)
		}
	}
	return false
}

// checkMapRange flags map iteration whose body observes the iteration
// order.
func checkMapRange(pass *analysis.Pass, fn *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if isSortedKeysIdiom(rng) {
			return true
		}
		if pos, why, sensitive := orderSensitiveSink(info, rng); sensitive {
			report(pos, "map iteration order reaches %s: collect and sort the keys first (or //muvet:allow nodeterm(reason))", why)
		}
		return true
	})
}

// isSortedKeysIdiom recognizes `for k := range m { keys = append(keys, k) }`.
func isSortedKeysIdiom(rng *ast.RangeStmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return false
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && arg.Name == key.Name
}

// orderSensitiveSink scans a map-range body for a construct that makes
// iteration order observable. Order-insensitive aggregation — counters
// (x += v, x++), map writes (m[k] = v), min/max selection guarded by a
// </> comparison — passes; appends, string building, emitted output,
// channel sends and overwrite-style assignments to variables declared
// outside the loop do not. The walk keeps the stack of enclosing
// nodes so assignments can see their guarding if conditions.
func orderSensitiveSink(info *types.Info, rng *ast.RangeStmt) (token.Pos, string, bool) {
	var pos token.Pos
	var why string
	var stack []ast.Node
	declaredOutside := func(id *ast.Ident) bool {
		obj := objOf(info, id)
		return obj != nil && (obj.Pos() < rng.Pos() || obj.Pos() > rng.End())
	}
	found := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			pos, why, found = n.Pos(), "a channel send", true
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				pos, why, found = n.Pos(), "an append", true
				break
			}
			if path, name := pkgFunc(info, n); path == "fmt" && fmtFormatFuncs[name] {
				pos, why, found = n.Pos(), "fmt."+name, true
				break
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && orderSensitiveMethods[sel.Sel.Name] {
				pos, why, found = n.Pos(), "method "+sel.Sel.Name, true
			}
		case *ast.AssignStmt:
			if p, w, bad := orderSensitiveAssign(info, n, stack, declaredOutside); bad {
				pos, why, found = p, w, true
			}
		}
		return true
	})
	return pos, why, found
}

// orderSensitiveAssign classifies one assignment inside a map-range
// body. String concatenation and plain overwrites of outer variables
// are order-sensitive; numeric accumulation, map-index writes and
// assignments guarded by a </> comparison (min/max idiom) are not.
func orderSensitiveAssign(info *types.Info, asg *ast.AssignStmt, stack []ast.Node,
	declaredOutside func(*ast.Ident) bool) (token.Pos, string, bool) {
	switch asg.Tok {
	case token.ADD_ASSIGN:
		if lhs, ok := asg.Lhs[0].(*ast.Ident); ok {
			if tv, ok := info.Types[lhs]; ok {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					return asg.Pos(), "string concatenation", true
				}
			}
		}
	case token.ASSIGN:
		appendRHS := false
		if len(asg.Rhs) == 1 {
			if call, ok := asg.Rhs[0].(*ast.CallExpr); ok {
				if fid, ok := call.Fun.(*ast.Ident); ok && fid.Name == "append" {
					appendRHS = true
				}
			}
		}
		for _, lhs := range asg.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" || !declaredOutside(id) {
				continue // blank, loop-local, or an index/field write
			}
			if appendRHS {
				return asg.Pos(), "an append", true
			}
			if guardedByComparison(info, stack, objOf(info, id)) {
				continue // min/max selection: order-insensitive
			}
			return asg.Pos(), "an overwrite of " + id.Name + " (first/last writer wins)", true
		}
	}
	return 0, "", false
}

// guardedByComparison reports whether an enclosing if condition
// compares obj with </<=/>/>= — the min/max selection idiom, whose
// fixed point is iteration-order independent.
func guardedByComparison(info *types.Info, stack []ast.Node, obj types.Object) bool {
	if obj == nil {
		return false
	}
	for _, anc := range stack {
		ifs, ok := anc.(*ast.IfStmt)
		if !ok {
			continue
		}
		bin, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok {
			continue
		}
		switch bin.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			if contains(bin, func(n ast.Node) bool {
				i, ok := n.(*ast.Ident)
				return ok && objOf(info, i) == obj
			}) {
				return true
			}
		}
	}
	return false
}
