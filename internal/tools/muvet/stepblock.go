package muvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"mucongest/internal/tools/muvet/analysis"
)

// StepBlock enforces the core promise of goroutine-free step execution:
// a StepProgram runs INLINE on a delivery worker, so a Step method —
// and everything it transitively calls within the package — must never
// block, spawn, or yield. Flagged in the step path:
//
//   - channel operations: send, receive, select, range over a channel;
//   - go statements (a spawned goroutine defeats the zero-goroutine
//     accounting and can outlive the round);
//   - blocking sync primitives: sync.Mutex.Lock, sync.RWMutex.Lock /
//     RLock, sync.WaitGroup.Wait, sync.Cond.Wait;
//   - time.Sleep;
//   - Tick / Idle calls on a node context: the engine owns the round
//     boundary (Ctx.Tick panics at runtime inside a Step; this catches
//     it at vet time). Tick and Idle are reported as yields and their
//     bodies are not descended into — the barrier internals legally use
//     channels.
//
// Step methods are matched structurally (Step(ctx, in []Incoming) bool)
// so the same pass covers sim.StepProgram, refsim.StepNode and test
// doubles. The transitive walk follows static calls to functions and
// methods declared in the same package; interface calls are opaque.
//
// Suppress a deliberate violation (e.g. a fixture proving the runtime
// panic) with //muvet:allow stepblock(reason).
var StepBlock = &analysis.Analyzer{
	Name: "stepblock",
	Doc:  "Step methods and their callees must not block, spawn goroutines, or yield",
	Run:  runStepBlock,
}

func runStepBlock(pass *analysis.Pass) error {
	allow := buildAllowlist(pass)
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] || allow.allowed(pass.Fset, pos, "stepblock") {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, format, args...)
	}
	decls := funcDeclOf(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			recv, ok := isStepMethod(pass.TypesInfo, fn)
			if !ok {
				continue
			}
			entry := "(" + recv + ").Step"
			visited := map[*types.Func]bool{}
			checkStepPath(pass, decls, fn, entry, true, visited, report)
		}
	}
	return nil
}

// checkStepPath scans one function body reachable from a Step entry for
// blocking constructs, then follows its static same-package callees.
// direct distinguishes the Step body itself from transitively reached
// helpers (the diagnostics name the path).
func checkStepPath(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl,
	fn *ast.FuncDecl, entry string, direct bool, visited map[*types.Func]bool,
	report func(token.Pos, string, ...any)) {

	info := pass.TypesInfo
	where := entry
	if !direct {
		where = fn.Name.Name + " (reachable from " + entry + ")"
	}
	var callees []*types.Func
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			report(n.Pos(), "channel send in %s: a goroutine-free step program runs inline on a delivery worker and must not block", where)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.Pos(), "channel receive in %s: a goroutine-free step program runs inline on a delivery worker and must not block", where)
			}
		case *ast.SelectStmt:
			report(n.Pos(), "select statement in %s: a goroutine-free step program runs inline on a delivery worker and must not block", where)
		case *ast.GoStmt:
			report(n.Pos(), "goroutine spawned in %s: step execution is goroutine-free and a spawned goroutine can outlive the round", where)
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					report(n.Pos(), "range over a channel in %s: a goroutine-free step program runs inline on a delivery worker and must not block", where)
				}
			}
		case *ast.CallExpr:
			// Yields are matched on the selector, not the resolved callee:
			// the harness twins hold their context through an interface
			// (refsim.NodeCtx), whose methods have no static body. Their
			// bodies — the barrier internals — legally use channels, so a
			// yield call is reported and never descended into.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && isYieldName(sel.Sel.Name) {
				if m, ok := info.Uses[sel.Sel].(*types.Func); ok {
					if sig, ok := m.Type().(*types.Signature); ok && sig.Recv() != nil {
						report(n.Pos(), "%s called in %s: the engine owns the round boundary (return true from Step to end the round)", sel.Sel.Name, where)
						return true
					}
				}
			}
			if path, name := pkgFunc(info, n); path == "time" && name == "Sleep" {
				report(n.Pos(), "time.Sleep in %s: a goroutine-free step program runs inline on a delivery worker and must not block", where)
				return true
			}
			callee := staticCallee(info, n)
			if callee == nil {
				return true
			}
			if callee.Pkg() != nil && callee.Pkg().Path() == "sync" && syncWaitMethods[callee.Name()] {
				report(n.Pos(), "sync.%s in %s: a goroutine-free step program runs inline on a delivery worker and must not block", callee.Name(), where)
				return true
			}
			callees = append(callees, callee)
		}
		return true
	})
	for _, callee := range callees {
		next, ok := decls[callee]
		if !ok || visited[callee] {
			continue
		}
		visited[callee] = true
		checkStepPath(pass, decls, next, entry, false, visited, report)
	}
}

// syncWaitMethods are the blocking entry points of the sync package.
var syncWaitMethods = map[string]bool{
	"Lock": true, "RLock": true, "Wait": true,
}

// isYieldName reports whether a method name is a round-boundary yield.
func isYieldName(name string) bool {
	return name == "Tick" || name == "Idle"
}
