package muvet

import (
	"go/ast"
	"go/token"

	"mucongest/internal/tools/muvet/analysis"
)

// ShardRNG pins the engine's RNG derivation contract: inside the
// production engine and the reference engine, every rand.NewSource
// seed must come from sim.ShardStreamSeed (the per-shard OrderRandom
// streams), sim.FaultStreamSeed (the fault-injection streams keyed
// (seed, round, shard, kind)) or the documented node-RNG derivation
// `seed*1_000_003 + int64(id)`. Ad-hoc seeding — the PR-1-era
// `rand.NewSource(seed + something)` style — silently re-keys golden
// digests and breaks refsim/engine parity, so it fails vet.
//
// Suppress a deliberate new derivation (after updating refsim and the
// determinism docs) with //muvet:allow shardrng(reason).
var ShardRNG = &analysis.Analyzer{
	Name: "shardrng",
	Doc:  "engine RNG seeds must derive from ShardStreamSeed or the node-RNG rule",
	Run:  runShardRNG,
}

var shardRNGScope = []string{
	"mucongest/internal/sim",
	"mucongest/internal/sim/refsim",
}

// nodeRNGFactor is the documented node-RNG derivation multiplier
// (Ctx.Rand streams are keyed seed*1_000_003 + id on both engines).
const nodeRNGFactor = "1_000_003"

func runShardRNG(pass *analysis.Pass) error {
	if !inScope(pass.ImportPath, shardRNGScope...) {
		return nil
	}
	allow := buildAllowlist(pass)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, name := pkgFunc(pass.TypesInfo, call); path != "math/rand" || name != "NewSource" {
				return true
			}
			if len(call.Args) == 1 && isBlessedSeed(call.Args[0]) {
				return true
			}
			if !allow.allowed(pass.Fset, call.Pos(), "shardrng") {
				pass.Reportf(call.Pos(), "ad-hoc rand.NewSource seed in the engine: derive it via sim.ShardStreamSeed(seed, shard) or the node rule seed*%s+int64(id) so refsim and the golden digests stay in sync", nodeRNGFactor)
			}
			return true
		})
	}
	return nil
}

// isBlessedSeed recognizes the three sanctioned derivations:
//
//	ShardStreamSeed(seed, s)                  (any qualifier)
//	FaultStreamSeed(seed, round, shard, kind) (any qualifier)
//	<seed expr>*1_000_003 + <id expr>
func isBlessedSeed(e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		name := calleeName(call)
		return name == "ShardStreamSeed" || name == "FaultStreamSeed"
	}
	bin, ok := e.(*ast.BinaryExpr)
	if !ok || bin.Op != token.ADD {
		return false
	}
	return isNodeRNGProduct(bin.X) || isNodeRNGProduct(bin.Y)
}

// isNodeRNGProduct matches `x * 1_000_003` in either operand order.
func isNodeRNGProduct(e ast.Expr) bool {
	bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || bin.Op != token.MUL {
		return false
	}
	return isNodeRNGLit(bin.X) || isNodeRNGLit(bin.Y)
}

func isNodeRNGLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && (lit.Value == nodeRNGFactor || lit.Value == "1000003")
}
