package muvet

import (
	"go/ast"
	"go/types"

	"mucongest/internal/tools/muvet/analysis"
)

// stepcontract.go: shared structural matching for the goroutine-free
// step-execution contracts of internal/sim. The analyzers match method
// SHAPES rather than one concrete interface so a single pass covers
// sim.StepProgram, refsim.StepNode, and corpus stand-ins:
//
//   - a Step method: named "Step", two parameters with the second a
//     slice of a named type called "Incoming", one bool result. This is
//     exactly the StepProgram/StepNode signature modulo the context
//     parameter type.
//   - a Node method: named "Node", one parameter (the node context),
//     two results with the second a func type — the Program surface
//     that picks each node's execution form.

// funcDeclOf indexes every function and method declared in the pass's
// files by its types.Func object, so call edges can be resolved to
// bodies for transitive checks.
func funcDeclOf(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				decls[obj] = fn
			}
		}
	}
	return decls
}

// isStepMethod reports whether fn structurally implements the
// StepProgram contract. The receiver type string is returned for
// diagnostics.
func isStepMethod(info *types.Info, fn *ast.FuncDecl) (recv string, ok bool) {
	if fn.Name.Name != "Step" || fn.Recv == nil || fn.Body == nil {
		return "", false
	}
	obj, isFn := info.Defs[fn.Name].(*types.Func)
	if !isFn {
		return "", false
	}
	sig, isSig := obj.Type().(*types.Signature)
	if !isSig || sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return "", false
	}
	sl, isSlice := sig.Params().At(1).Type().Underlying().(*types.Slice)
	if !isSlice {
		return "", false
	}
	named, isNamed := sl.Elem().(*types.Named)
	if !isNamed || named.Obj().Name() != "Incoming" {
		return "", false
	}
	b, isBasic := sig.Results().At(0).Type().Underlying().(*types.Basic)
	if !isBasic || b.Kind() != types.Bool {
		return "", false
	}
	return recvTypeName(sig), true
}

// isNodeMethod reports whether fn structurally implements the Program
// contract's Node method: one context parameter, two results with the
// second a func type.
func isNodeMethod(info *types.Info, fn *ast.FuncDecl) (recv string, ok bool) {
	if fn.Name.Name != "Node" || fn.Recv == nil || fn.Body == nil {
		return "", false
	}
	obj, isFn := info.Defs[fn.Name].(*types.Func)
	if !isFn {
		return "", false
	}
	sig, isSig := obj.Type().(*types.Signature)
	if !isSig || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return "", false
	}
	if _, isFunc := sig.Results().At(1).Type().Underlying().(*types.Signature); !isFunc {
		return "", false
	}
	return recvTypeName(sig), true
}

// recvTypeName renders a method receiver's base type name for
// diagnostics ("tickingStep" for both tickingStep and *tickingStep).
func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	if named, isNamed := t.(*types.Named); isNamed {
		return named.Obj().Name()
	}
	return t.String()
}

// paramObj returns the object of the i-th parameter of fn, or nil when
// the parameter is unnamed or blank.
func paramObj(info *types.Info, fn *ast.FuncDecl, i int) types.Object {
	idx := 0
	for _, field := range fn.Type.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, name := range field.Names {
			if idx == i {
				if name.Name == "_" {
					return nil
				}
				return info.Defs[name]
			}
			idx++
		}
	}
	return nil
}

// staticCallee resolves a call to the *types.Func it statically invokes
// (package function or concrete method). Interface method calls and
// closure calls return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	// Interface methods have no body to follow: their receiver's base
	// type is an interface.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if _, isIface := t.Underlying().(*types.Interface); isIface {
			return nil
		}
	}
	return fn
}
