package muvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"mucongest/internal/tools/muvet/analysis"
)

// StepAlias enforces the inbox aliasing contract on the step execution
// form: the `in []Incoming` parameter of a Step method aliases an
// engine-owned buffer that is reused for the node's next delivery
// (simdebug poisons it at the next Step), so neither the slice nor a
// sub-slice or element pointer may escape the Step invocation. Flagged:
//
//   - storing in (or an alias: a local copy, a sub-slice in[a:b], a
//     pointer &in[i]) into a struct field — including the receiver,
//     which outlives the call — a container, or a variable declared
//     outside the method;
//   - sending it on a channel;
//   - retaining it via append(dst, in) — append(dst, in...) copies the
//     elements and is fine, as is copying an element value in[i];
//   - capturing it in a function literal that may outlive the call
//     (immediately invoked literals are fine).
//
// Passing in to a helper is not an escape at the call site; the helper
// is a Step-path function with contracts of its own.
//
// Aliases are tracked as reaching facts over the method's control-flow
// graph, so escapes through renames and branches are caught. Suppress a
// deliberate retention (poisoning fixtures) with
// //muvet:allow stepalias(reason).
var StepAlias = &analysis.Analyzer{
	Name: "stepalias",
	Doc:  "the Step inbox parameter must not escape the Step invocation",
	Run:  runStepAlias,
}

// stepTracked marks a variable that may alias the Step inbox buffer.
const stepTracked analysis.FlowState = 1

func runStepAlias(pass *analysis.Pass) error {
	allow := buildAllowlist(pass)
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] || allow.allowed(pass.Fset, pos, "stepalias") {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, format, args...)
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := isStepMethod(pass.TypesInfo, fn); !ok {
				continue
			}
			inObj := paramObj(pass.TypesInfo, fn, 1)
			if inObj == nil {
				continue // unnamed or blank inbox: nothing can escape
			}
			checkStepAliasFunc(pass, fn, inObj, report)
		}
	}
	return nil
}

// stepAliasFrame carries one Step method's analysis state.
type stepAliasFrame struct {
	pass  *analysis.Pass
	body  *ast.BlockStmt
	inObj types.Object
}

func checkStepAliasFunc(pass *analysis.Pass, fn *ast.FuncDecl, inObj types.Object, report func(token.Pos, string, ...any)) {
	fr := &stepAliasFrame{pass: pass, body: fn.Body, inObj: inObj}
	cfg := analysis.BuildCFG(fn.Body)
	seed := analysis.Facts{inObj: stepTracked}
	in := cfg.ForwardSeeded(seed, func(b *analysis.Block, f analysis.Facts) analysis.Facts {
		for _, n := range b.Nodes {
			analysis.ApplyAssign(pass.TypesInfo, f, n, fr.evalAlias)
		}
		return f
	})

	// Escape checks: replay each block from its fixpoint entry facts,
	// testing every node under the facts holding at its execution point.
	everTracked := map[types.Object]bool{inObj: true}
	for _, b := range cfg.Blocks {
		for obj, st := range in[b] {
			if st&stepTracked != 0 {
				everTracked[obj] = true
			}
		}
	}
	for _, b := range cfg.Blocks {
		f := in[b].Clone()
		for _, n := range b.Nodes {
			fr.checkEscapes(f, n, report)
			analysis.ApplyAssign(pass.TypesInfo, f, n, fr.evalAlias)
		}
	}

	// Closure captures: a reference to a tracked variable inside a
	// nested literal outlives the call unless the literal is invoked on
	// the spot.
	info := pass.TypesInfo
	iife := map[*ast.FuncLit]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
				// An immediately invoked literal runs within the Step
				// call; captures inside it are fine.
				iife[lit] = true
			}
		}
		return true
	})
	var litRanges [][2]token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && !iife[lit] {
			litRanges = append(litRanges, [2]token.Pos{lit.Pos(), lit.End()})
			return false
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		inLit := false
		for _, r := range litRanges {
			if r[0] <= id.Pos() && id.Pos() < r[1] {
				inLit = true
				break
			}
		}
		if !inLit {
			return true
		}
		if obj := objOf(info, id); obj != nil && everTracked[obj] {
			report(id.Pos(), "Step inbox %s captured by a function literal that may outlive the Step call (copy the messages instead)", id.Name)
		}
		return true
	})
}

// evalAlias computes whether an expression may alias the inbox buffer:
// the tracked variables themselves, sub-slices, and pointers to
// elements. Indexing (in[i]) yields an element COPY — Msg is a value
// struct — and is untracked.
func (fr *stepAliasFrame) evalAlias(f analysis.Facts, e ast.Expr) analysis.FlowState {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := objOf(fr.pass.TypesInfo, e); obj != nil {
			return f[obj]
		}
	case *ast.SliceExpr:
		return fr.evalAlias(f, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if idx, ok := ast.Unparen(e.X).(*ast.IndexExpr); ok {
				return fr.evalAlias(f, idx.X)
			}
		}
	}
	return 0
}

// checkEscapes diagnoses inbox aliases leaving the Step invocation
// through one block node.
func (fr *stepAliasFrame) checkEscapes(f analysis.Facts, n ast.Node, report func(token.Pos, string, ...any)) {
	info := fr.pass.TypesInfo
	isAlias := func(e ast.Expr) bool { return fr.evalAlias(f, e) != 0 }
	declaredOutside := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < fr.body.Pos() || obj.Pos() > fr.body.End())
	}
	analysis.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for i, lhs := range m.Lhs {
				if i >= len(m.Rhs) || !isAlias(m.Rhs[i]) {
					continue
				}
				switch l := lhs.(type) {
				case *ast.SelectorExpr:
					report(m.Pos(), "Step inbox stored in field %s: in aliases an engine buffer reused at the node's next Step (copy the messages instead)", l.Sel.Name)
				case *ast.IndexExpr:
					report(m.Pos(), "Step inbox stored into a container: in aliases an engine buffer reused at the node's next Step (copy the messages instead)")
				case *ast.Ident:
					if lobj := objOf(info, l); declaredOutside(lobj) {
						report(m.Pos(), "Step inbox assigned to %s, declared outside the method: the buffer is reused at the node's next Step (copy the messages instead)", l.Name)
					}
				}
			}
		case *ast.SendStmt:
			if isAlias(m.Value) {
				report(m.Pos(), "Step inbox sent on a channel: in aliases an engine buffer reused at the node's next Step (copy the messages instead)")
			}
		case *ast.CallExpr:
			if id, ok := m.Fun.(*ast.Ident); ok && id.Name == "append" && m.Ellipsis == token.NoPos {
				for _, arg := range m.Args[1:] {
					if isAlias(arg) {
						report(arg.Pos(), "Step inbox stored via append: appending the slice value retains the engine buffer (use append(dst, in...) to copy the messages)")
					}
				}
			}
		}
		return true
	})
}
