package muvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mucongest/internal/tools/muvet/analysis"
)

// RecordPurity structurally pins the mucongest.records/v1 byte-identity
// contract: every serialized bench.Record field must be a deterministic
// function of (cell, seed). In package bench it flags, for Record
// composite literals and Record field assignments:
//
//   - wall-clock values (time.Now / time.Since results, or any value of
//     type time.Time / time.Duration) in any field except WallTime,
//     which is json:"-" by contract;
//   - pointer identity: fmt verbs %p (and %v applied to a pointer), or
//     uintptr / unsafe.Pointer conversions;
//   - values computed inside (or from variables assigned inside) a
//     range over a map — iteration order would leak into the bytes.
//
// The same wall-clock and pointer checks apply to the emitters: any
// function whose name starts with WriteRecords.
//
// Suppress with //muvet:allow recordpurity(reason) — and say why the
// value is deterministic anyway.
var RecordPurity = &analysis.Analyzer{
	Name: "recordpurity",
	Doc:  "serialized bench.Record fields must stay byte-deterministic",
	Run:  runRecordPurity,
}

const recordPurityScope = "mucongest/internal/bench"

func runRecordPurity(pass *analysis.Pass) error {
	if !inScope(pass.ImportPath, recordPurityScope) {
		return nil
	}
	allow := buildAllowlist(pass)
	report := func(pos token.Pos, format string, args ...any) {
		if !allow.allowed(pass.Fset, pos, "recordpurity") {
			pass.Reportf(pos, format, args...)
		}
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkRecordWrites(pass, fn, report)
			if strings.HasPrefix(fn.Name.Name, "WriteRecords") {
				checkEmitterBody(pass, fn, report)
			}
		}
	}
	return nil
}

// mapRangeAssigned collects the variables assigned (plain or compound)
// inside the body of any range-over-map loop in fn — the carriers of
// iteration-order taint.
func mapRangeAssigned(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if isSortedKeysIdiom(rng) {
			return true // keys get sorted before use; order never leaks
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			asg, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range asg.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					if obj := objOf(info, id); obj != nil {
						tainted[obj] = true
					}
				}
			}
			return true
		})
		return true
	})
	return tainted
}

// isRecordType reports whether t (possibly pointer / named) is the
// bench Record struct.
func isRecordType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Record"
}

// checkRecordWrites inspects Record composite literals and
// `rec.Field = v` assignments in one function.
func checkRecordWrites(pass *analysis.Pass, fn *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	info := pass.TypesInfo
	mapTainted := mapRangeAssigned(info, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			tv, ok := info.Types[n]
			if !ok || !isRecordType(tv.Type) {
				return true
			}
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || key.Name == "WallTime" {
					continue
				}
				checkRecordValue(pass, key.Name, kv.Value, mapTainted, report)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name == "WallTime" {
					continue
				}
				if recv, ok := info.Types[sel.X]; ok && isRecordType(recv.Type) {
					checkRecordValue(pass, sel.Sel.Name, n.Rhs[i], mapTainted, report)
				}
			}
		}
		return true
	})
}

// checkRecordValue applies the purity rules to one field value.
func checkRecordValue(pass *analysis.Pass, field string, v ast.Expr,
	mapTainted map[types.Object]bool, report func(token.Pos, string, ...any)) {
	info := pass.TypesInfo
	if src, ok := containsWallClock(info, v); ok {
		report(v.Pos(), "Record.%s set from wall clock (%s): serialized fields must be deterministic in (cell, seed)", field, src)
	}
	if ok, what := containsPointerIdentity(info, v); ok {
		report(v.Pos(), "Record.%s set from pointer identity (%s): addresses differ run to run", field, what)
	}
	if contains(v, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		return ok && mapTainted[objOf(info, id)]
	}) {
		report(v.Pos(), "Record.%s set from a value built under map iteration: encode with sorted keys instead", field)
	}
}

// checkEmitterBody applies the wall-clock and pointer rules to a
// WriteRecords* emitter as a whole.
func checkEmitterBody(pass *analysis.Pass, fn *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if _, ok := isWallClockCall(info, e); ok {
			report(e.Pos(), "wall-clock read inside emitter %s: mucongest.records/v1 output is byte-identity pinned", fn.Name.Name)
			return false
		}
		if call, isCall := e.(*ast.CallExpr); isCall {
			if ok, what := fmtPointerVerb(info, call); ok {
				report(call.Pos(), "pointer-formatting (%s) inside emitter %s: addresses differ run to run", what, fn.Name.Name)
				return false
			}
		}
		return true
	})
}

// containsWallClock reports whether the expression subtree reads the
// wall clock or mentions a time.Time / time.Duration value.
func containsWallClock(info *types.Info, e ast.Expr) (string, bool) {
	var src string
	found := contains(e, func(n ast.Node) bool {
		if s, ok := isWallClockCall(info, n); ok {
			src = s
			return true
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return false
		}
		obj := objOf(info, id)
		if obj == nil || obj.Type() == nil {
			return false
		}
		if named, ok := obj.Type().(*types.Named); ok {
			tn := named.Obj()
			if tn.Pkg() != nil && tn.Pkg().Path() == "time" && (tn.Name() == "Time" || tn.Name() == "Duration") {
				src = id.Name + " (time." + tn.Name() + ")"
				return true
			}
		}
		return false
	})
	return src, found
}

// containsPointerIdentity reports fmt %p verbs, %v-on-pointer, and
// uintptr / unsafe.Pointer conversions in the subtree.
func containsPointerIdentity(info *types.Info, e ast.Expr) (bool, string) {
	var what string
	found := contains(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		if ok, w := fmtPointerVerb(info, call); ok {
			what = w
			return true
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.Uintptr {
				what = "uintptr conversion"
				return true
			}
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
				what = "unsafe.Pointer conversion"
				return true
			}
		}
		return false
	})
	return found, what
}

// fmtPointerVerb reports whether a fmt formatting call renders pointer
// identity: a %p verb, or a %v applied to a pointer-typed argument.
func fmtPointerVerb(info *types.Info, call *ast.CallExpr) (bool, string) {
	path, name := pkgFunc(info, call)
	if path != "fmt" || !fmtFormatFuncs[name] {
		return false, ""
	}
	args := call.Args
	if strings.HasPrefix(name, "F") && len(args) > 0 {
		args = args[1:] // skip the io.Writer
	}
	if len(args) == 0 {
		return false, ""
	}
	lit, ok := ast.Unparen(args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		// Non-literal format (or Sprint-style): fall back to checking
		// for pointer-typed arguments.
		return fmtHasPointerArg(info, args), "pointer argument"
	}
	if strings.Contains(lit.Value, "%p") {
		return true, "%p"
	}
	if strings.Contains(lit.Value, "%v") && fmtHasPointerArg(info, args[1:]) {
		return true, "%v on a pointer"
	}
	return false, ""
}

func fmtHasPointerArg(info *types.Info, args []ast.Expr) bool {
	for _, a := range args {
		tv, ok := info.Types[a]
		if !ok || tv.Type == nil {
			continue
		}
		switch tv.Type.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Signature:
			return true
		}
	}
	return false
}
