package muvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"mucongest/internal/tools/muvet/analysis"
)

// HotAlloc turns the TestSteadyStateRoundAllocFree runtime pin into a
// per-line review gate: functions annotated //muvet:hotpath must not
// contain constructs that allocate on the steady-state path —
//
//   - fmt formatting calls (Sprintf and family);
//   - map and slice composite literals;
//   - make / new calls;
//   - append onto a freshly made slice or slice literal (uncapped
//     growth every call);
//   - string concatenation and string<->[]byte conversions;
//   - function literals capturing outer variables (potential closure
//     allocation);
//   - explicit conversions to an interface type (boxing).
//
// Two cold sub-paths are recognized and exempt without annotation:
// anything that only feeds a panic call (abort paths run once), and
// anything inside an if whose condition reads cap(...) (the
// grow-on-demand warmup idiom — it stops allocating once buffers reach
// steady-state capacity). Everything else needs
// //muvet:allow hotalloc(reason) with a justification.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "//muvet:hotpath functions must not allocate on the steady-state path",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) error {
	allow := buildAllowlist(pass)
	report := func(pos token.Pos, format string, args ...any) {
		if !allow.allowed(pass.Fset, pos, "hotalloc") {
			pass.Reportf(pos, format, args...)
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasHotpathDirective(fn) {
				continue
			}
			checkHotFunc(pass, fn, report)
		}
	}
	return nil
}

// checkHotFunc walks one hot-path function keeping the enclosing-node
// stack, so each allocating construct can be tested for the two cold
// exemptions (panic argument, cap-guarded warmup block).
func checkHotFunc(pass *analysis.Pass, fn *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	info := pass.TypesInfo
	var stack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if coldContext(stack) {
			return true
		}
		switch n := n.(type) {
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					report(n.Pos(), "map literal allocates in hot path %s", fn.Name.Name)
				case *types.Slice:
					report(n.Pos(), "slice literal allocates in hot path %s", fn.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, fn, n, report)
		case *ast.FuncLit:
			if captures(info, n) {
				report(n.Pos(), "capturing closure in hot path %s may allocate per call (hoist it or //muvet:allow hotalloc(reason) if proven non-escaping)", fn.Name.Name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info, n) {
				report(n.Pos(), "string concatenation allocates in hot path %s", fn.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info, n.Lhs[0]) {
				report(n.Pos(), "string concatenation allocates in hot path %s", fn.Name.Name)
			}
		}
		return true
	})
}

// checkHotCall classifies one call inside a hot function.
func checkHotCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	info := pass.TypesInfo
	if path, name := pkgFunc(info, call); path == "fmt" && fmtFormatFuncs[name] {
		report(call.Pos(), "fmt.%s allocates in hot path %s", name, fn.Name.Name)
		return
	}
	id, ok := call.Fun.(*ast.Ident)
	if ok {
		switch id.Name {
		case "make":
			report(call.Pos(), "make allocates in hot path %s (pre-size in setup, or guard with a cap() check for warmup growth)", fn.Name.Name)
			return
		case "new":
			report(call.Pos(), "new allocates in hot path %s", fn.Name.Name)
			return
		case "append":
			if len(call.Args) > 0 && isFreshSlice(call.Args[0]) {
				report(call.Pos(), "append onto a fresh slice allocates every call in hot path %s (reuse a buffer)", fn.Name.Name)
			}
			return
		case "string":
			report(call.Pos(), "string conversion allocates in hot path %s", fn.Name.Name)
			return
		}
	}
	// Explicit conversions: []byte(s) and interface boxing T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		switch tv.Type.Underlying().(type) {
		case *types.Slice:
			report(call.Pos(), "slice conversion allocates in hot path %s", fn.Name.Name)
		case *types.Interface:
			report(call.Pos(), "interface conversion boxes its operand in hot path %s", fn.Name.Name)
		}
	}
}

// isFreshSlice reports whether the append base is allocated at the
// call site: a slice literal or a make call.
func isFreshSlice(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			return id.Name == "make"
		}
	}
	return false
}

// coldContext reports whether the innermost enclosing constructs mark
// the current node as off the steady-state path: a panic argument, or
// a block guarded by an if condition reading cap(...).
func coldContext(stack []ast.Node) bool {
	for i, n := range stack {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" && i < len(stack)-1 {
				return true
			}
		case *ast.IfStmt:
			if condReadsCap(n.Cond) {
				return true
			}
		}
	}
	return false
}

// condReadsCap reports whether an if condition contains a cap(...)
// call — the warmup grow-guard idiom.
func condReadsCap(cond ast.Expr) bool {
	return contains(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "cap"
	})
}

// captures reports whether a function literal references identifiers
// declared outside it (other than package-level objects, whose use
// never forces a closure allocation by itself).
func captures(info *types.Info, lit *ast.FuncLit) bool {
	return contains(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return false
		}
		obj := objOf(info, id)
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() {
			return false
		}
		if v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
			return false // package-level variable, not a capture
		}
		return v.Pos() < lit.Pos() || v.Pos() > lit.End()
	})
}

// isStringType reports whether e's static type is a string.
func isStringType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
