package muvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"mucongest/internal/tools/muvet/analysis"
)

// HotAlloc turns the TestSteadyStateRoundAllocFree runtime pin into a
// per-line review gate: functions annotated //muvet:hotpath must not
// contain constructs that allocate on the steady-state path —
//
//   - fmt formatting calls (Sprintf and family);
//   - map and slice composite literals;
//   - make / new calls;
//   - append onto a freshly made slice or slice literal (uncapped
//     growth every call);
//   - string concatenation and string<->[]byte conversions;
//   - function literals capturing outer variables (potential closure
//     allocation);
//   - explicit conversions to an interface type (boxing).
//
// Cold sub-paths are exempt without annotation, and computed on the
// function's control-flow graph rather than by syntactic enclosure:
//
//   - blocks dominated by the THEN branch of an if whose condition
//     reads cap(...) — the grow-on-demand warmup idiom, which stops
//     allocating once buffers reach steady-state capacity. The else
//     branch and the join stay hot: only the guarded growth itself is
//     exempt (the first-generation pass exempted the whole if,
//     silently passing allocations in the else arm);
//   - blocks from which every path ends in panic (abort paths run at
//     most once). This subsumes the old panic-argument exemption and
//     extends it to the build-the-message-then-panic shape, which the
//     old pass flagged.
//
// Everything else needs //muvet:allow hotalloc(reason) with a
// justification.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "//muvet:hotpath functions must not allocate on the steady-state path",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) error {
	allow := buildAllowlist(pass)
	report := func(pos token.Pos, format string, args ...any) {
		if !allow.allowed(pass.Fset, pos, "hotalloc") {
			pass.Reportf(pos, format, args...)
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasHotpathDirective(fn) {
				continue
			}
			checkHotFunc(pass, fn, report)
		}
	}
	return nil
}

// checkHotFunc builds the function's CFG, marks the cold blocks, and
// runs the allocating-construct checks over every hot block's nodes.
func checkHotFunc(pass *analysis.Pass, fn *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	cfg := analysis.BuildCFG(fn.Body)
	cold := coldBlocks(fn.Body, cfg)
	for _, b := range cfg.Blocks {
		if cold[b] {
			continue
		}
		for _, n := range b.Nodes {
			checkHotNode(pass, fn, n, report)
		}
	}
}

// coldBlocks computes the blocks off the steady-state path: those on
// which every outgoing path panics, and those dominated by the then
// branch of a cap-reading if (warmup growth).
func coldBlocks(body *ast.BlockStmt, cfg *analysis.CFG) map[*analysis.Block]bool {
	cold := map[*analysis.Block]bool{}

	// Backwards all-paths-panic fixpoint. A block ending in panic seeds
	// the set; a block whose every successor is doomed joins it.
	for _, b := range cfg.Blocks {
		if endsInPanic(b) {
			cold[b] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			if cold[b] || b == cfg.Exit || len(b.Succs) == 0 {
				continue
			}
			doomed := true
			for _, s := range b.Succs {
				if !cold[s] {
					doomed = false
					break
				}
			}
			if doomed {
				cold[b] = true
				changed = true
			}
		}
	}

	// Warmup growth: every block dominated by the then-successor of a
	// cap-guard if. Dominance (rather than lexical enclosure) scopes the
	// exemption to exactly the guarded branch.
	var capConds []ast.Expr
	analysis.Inspect(body, func(n ast.Node) bool {
		if ifs, ok := n.(*ast.IfStmt); ok && condReadsCap(ifs.Cond) {
			capConds = append(capConds, ifs.Cond)
		}
		return true
	})
	if len(capConds) > 0 {
		idom := cfg.Dominators()
		for _, cond := range capConds {
			head := blockOf(cfg, cond)
			if head == nil || len(head.Succs) == 0 {
				continue
			}
			// Builder invariant: the first successor added to the block
			// holding an if condition is the then branch.
			thenB := head.Succs[0]
			for _, b := range cfg.Blocks {
				if analysis.Dominated(idom, b, thenB) {
					cold[b] = true
				}
			}
		}
	}
	return cold
}

// endsInPanic reports whether the block's last node is a direct
// panic(...) statement.
func endsInPanic(b *analysis.Block) bool {
	if len(b.Nodes) == 0 {
		return false
	}
	es, ok := b.Nodes[len(b.Nodes)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// blockOf finds the block holding a given node.
func blockOf(cfg *analysis.CFG, n ast.Node) *analysis.Block {
	for _, b := range cfg.Blocks {
		for _, m := range b.Nodes {
			if m == n {
				return b
			}
		}
	}
	return nil
}

// checkHotNode walks one block node keeping the enclosing-node stack,
// so constructs nested in a panic argument (inside function literals,
// which the CFG does not model) stay exempt. A RangeStmt node carries
// its whole statement in the loop-head block; its Body belongs to other
// blocks and is skipped here.
func checkHotNode(pass *analysis.Pass, fn *ast.FuncDecl, root ast.Node, report func(token.Pos, string, ...any)) {
	info := pass.TypesInfo
	var rangeBody *ast.BlockStmt
	if rs, ok := root.(*ast.RangeStmt); ok {
		rangeBody = rs.Body
	}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if rangeBody != nil && n == ast.Node(rangeBody) {
			return false
		}
		stack = append(stack, n)
		if inPanicArg(stack) {
			return true
		}
		switch n := n.(type) {
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					report(n.Pos(), "map literal allocates in hot path %s", fn.Name.Name)
				case *types.Slice:
					report(n.Pos(), "slice literal allocates in hot path %s", fn.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, fn, n, report)
		case *ast.FuncLit:
			if captures(info, n) {
				report(n.Pos(), "capturing closure in hot path %s may allocate per call (hoist it or //muvet:allow hotalloc(reason) if proven non-escaping)", fn.Name.Name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info, n) {
				report(n.Pos(), "string concatenation allocates in hot path %s", fn.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info, n.Lhs[0]) {
				report(n.Pos(), "string concatenation allocates in hot path %s", fn.Name.Name)
			}
		}
		return true
	})
}

// checkHotCall classifies one call inside a hot function.
func checkHotCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr, report func(token.Pos, string, ...any)) {
	info := pass.TypesInfo
	if path, name := pkgFunc(info, call); path == "fmt" && fmtFormatFuncs[name] {
		report(call.Pos(), "fmt.%s allocates in hot path %s", name, fn.Name.Name)
		return
	}
	id, ok := call.Fun.(*ast.Ident)
	if ok {
		switch id.Name {
		case "make":
			report(call.Pos(), "make allocates in hot path %s (pre-size in setup, or guard with a cap() check for warmup growth)", fn.Name.Name)
			return
		case "new":
			report(call.Pos(), "new allocates in hot path %s", fn.Name.Name)
			return
		case "append":
			if len(call.Args) > 0 && isFreshSlice(call.Args[0]) {
				report(call.Pos(), "append onto a fresh slice allocates every call in hot path %s (reuse a buffer)", fn.Name.Name)
			}
			return
		case "string":
			report(call.Pos(), "string conversion allocates in hot path %s", fn.Name.Name)
			return
		}
	}
	// Explicit conversions: []byte(s) and interface boxing T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		switch tv.Type.Underlying().(type) {
		case *types.Slice:
			report(call.Pos(), "slice conversion allocates in hot path %s", fn.Name.Name)
		case *types.Interface:
			report(call.Pos(), "interface conversion boxes its operand in hot path %s", fn.Name.Name)
		}
	}
}

// isFreshSlice reports whether the append base is allocated at the
// call site: a slice literal or a make call.
func isFreshSlice(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			return id.Name == "make"
		}
	}
	return false
}

// inPanicArg reports whether the enclosing-node stack places the
// current node inside a panic(...) argument.
func inPanicArg(stack []ast.Node) bool {
	for i, n := range stack {
		if call, ok := n.(*ast.CallExpr); ok && i < len(stack)-1 {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// condReadsCap reports whether an if condition contains a cap(...)
// call — the warmup grow-guard idiom.
func condReadsCap(cond ast.Expr) bool {
	return contains(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "cap"
	})
}

// captures reports whether a function literal references identifiers
// declared outside it (other than package-level objects, whose use
// never forces a closure allocation by itself).
func captures(info *types.Info, lit *ast.FuncLit) bool {
	return contains(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return false
		}
		obj := objOf(info, id)
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() {
			return false
		}
		if v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
			return false // package-level variable, not a capture
		}
		return v.Pos() < lit.Pos() || v.Pos() > lit.End()
	})
}

// isStringType reports whether e's static type is a string.
func isStringType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
