// Package muvet is the repo's static contract checker: eight analyzers
// that enforce, at `go vet` time, the engine invariants the runtime
// safety net (simdebug poisoning, golden determinism digests, the
// 0-alloc round pin, the refsim differential harness) can only catch
// after a violation executes.
//
//	nodeterm     no nondeterminism sources feeding serialized output
//	inboxalias   Tick inboxes must not escape their round
//	shardrng     engine RNGs derive from ShardStreamSeed / the node rule
//	hotalloc     //muvet:hotpath functions stay allocation-free
//	recordpurity bench.Record stays byte-deterministic
//	stepblock    Step methods and their callees never block, spawn or yield
//	stepalias    the Step inbox parameter never escapes the invocation
//	ctxretain    Program.Node never retains the node context
//
// The step-contract analyzers and the rebased inboxalias/hotalloc run
// on a shared per-function control-flow graph with a reaching-values
// lattice (internal/tools/muvet/analysis), so branch, loop back-edge
// and panic-path reasoning are dataflow facts rather than source-order
// heuristics.
//
// # Annotation grammar
//
// Findings are suppressed line by line with
//
//	//muvet:allow <analyzer>(<reason>)
//
// placed on the offending line or the line directly above it. The
// reason is mandatory — an empty pair of parentheses does not parse —
// so every suppression documents why the contract does not apply.
// Several analyzers can be allowed at once:
//
//	//muvet:allow nodeterm(cold path) hotalloc(warmup only)
//
// Hot-path functions opt in to the hotalloc check with a doc-comment
// directive on the declaration:
//
//	//muvet:hotpath
//	func (c *Ctx) Send(port int, m Msg) { ... }
package muvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"mucongest/internal/tools/muvet/analysis"
)

// Suite returns the eight analyzers in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		NoDeterm, InboxAlias, ShardRNG, HotAlloc, RecordPurity,
		StepBlock, StepAlias, CtxRetain,
	}
}

// stripTestVariant normalizes the import path of a test variant
// ("pkg [pkg.test]") to the base package path.
func stripTestVariant(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// inScope reports whether path (already normalized) is one of the
// given repo package paths.
func inScope(path string, pkgs ...string) bool {
	for _, p := range pkgs {
		if path == p {
			return true
		}
	}
	return false
}

// isTestFile reports whether pos sits in a _test.go file.
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// allowRx matches one clause of a //muvet:allow comment: the analyzer
// name followed by a parenthesized non-empty reason.
var allowRx = regexp.MustCompile(`([a-z]+)\(([^()]+)\)`)

// allowlist indexes the //muvet:allow annotations of one pass:
// file line → set of analyzer names allowed on that line.
type allowlist map[string]map[int]map[string]bool

// buildAllowlist scans every comment of the pass once. An annotation on
// line L suppresses findings on L and on L+1, so both the end-of-line
// and the line-above placement work.
func buildAllowlist(pass *analysis.Pass) allowlist {
	al := allowlist{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//muvet:allow")
				if !ok {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				lines := al[p.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					al[p.Filename] = lines
				}
				for _, m := range allowRx.FindAllStringSubmatch(text, -1) {
					for _, line := range []int{p.Line, p.Line + 1} {
						if lines[line] == nil {
							lines[line] = map[string]bool{}
						}
						lines[line][m[1]] = true
					}
				}
			}
		}
	}
	return al
}

// allowed reports whether analyzer name is suppressed at pos.
func (al allowlist) allowed(fset *token.FileSet, pos token.Pos, name string) bool {
	p := fset.Position(pos)
	return al[p.Filename][p.Line][name]
}

// hasHotpathDirective reports whether a function declaration carries
// the //muvet:hotpath doc directive.
func hasHotpathDirective(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == "//muvet:hotpath" || strings.HasPrefix(c.Text, "//muvet:hotpath ") {
			return true
		}
	}
	return false
}

// contains reports whether the subtree rooted at n contains a node for
// which pred returns true.
func contains(n ast.Node, pred func(ast.Node) bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found || m == nil {
			return false
		}
		if pred(m) {
			found = true
			return false
		}
		return true
	})
	return found
}

// pkgFunc resolves a call to a package-level function and returns its
// package path and name ("" , "" when the callee is not one, e.g. a
// method or a local closure).
func pkgFunc(info *types.Info, call *ast.CallExpr) (path, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", "" // method, not a package-level function
	}
	return fn.Pkg().Path(), fn.Name()
}

// calleeName returns the bare selector or identifier name a call is
// spelled with (the syntactic callee), e.g. "ShardStreamSeed" for both
// ShardStreamSeed(...) and sim.ShardStreamSeed(...).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// objOf returns the object an identifier resolves to (definition or
// use), or nil.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// isSerializedField reports whether the struct field obj is part of a
// serialized encoding: its tag carries a json: or csv: key that is not
// "-". Fields without such a tag are treated as not serialized.
func isSerializedField(s *types.Struct, i int) bool {
	tag := s.Tag(i)
	for _, key := range []string{"json", "csv"} {
		v, ok := lookupTag(tag, key)
		if ok && v != "-" {
			return true
		}
	}
	return false
}

// lookupTag is a minimal reflect.StructTag.Lookup clone (value up to
// the first comma), avoiding a reflect dependency in the analyzers.
func lookupTag(tag, key string) (string, bool) {
	for tag != "" {
		tag = strings.TrimLeft(tag, " ")
		i := strings.Index(tag, ":\"")
		if i < 0 {
			break
		}
		name := tag[:i]
		rest := tag[i+2:]
		j := strings.Index(rest, `"`)
		if j < 0 {
			break
		}
		val := rest[:j]
		tag = rest[j+1:]
		if name == key {
			if k := strings.Index(val, ","); k >= 0 {
				val = val[:k]
			}
			return val, true
		}
	}
	return "", false
}
