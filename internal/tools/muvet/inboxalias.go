package muvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"mucongest/internal/tools/muvet/analysis"
)

// InboxAlias statically enforces the Tick inbox aliasing contract: the
// slice returned by Tick aliases an engine-owned buffer that is reused
// for the node's next delivery, so it is valid only until the node's
// next Tick (or Idle) call and must never outlive the round. This is
// the compile-time complement of `-tags simdebug` poisoning, which
// turns the same violations into runtime sentinels.
//
// Flagged escapes of an inbox value (the Tick result or a variable
// bound to it, directly or through local copies):
//
//   - assignment into a struct field, or into a variable declared
//     outside the function holding the inbox (package var or an outer
//     function's local captured by the program closure);
//   - a channel send;
//   - storing the slice itself via append(dst, inbox) — appending the
//     elements with append(dst, inbox...) copies and is fine;
//   - returning the inbox;
//   - capturing the inbox variable in a nested function literal.
//
// Use-after-invalidation — reading an inbox variable after a later
// Tick/Idle call on the same context — is computed as a reaching fact
// over the function's control-flow graph (analysis.BuildCFG): a
// binding that flows around a loop back edge into a yield is stale on
// the next iteration even when the yield sits textually after the use,
// and a yield on a branch that returns before the use does not poison
// the fall-through path. (The first-generation linear scan approximated
// both with source positions: it missed in-loop bindings going stale
// and flagged yields on paths that could not reach the use.)
//
// Suppress deliberate violations (e.g. the simdebug poisoning test)
// with //muvet:allow inboxalias(reason).
var InboxAlias = &analysis.Analyzer{
	Name: "inboxalias",
	Doc:  "flag Tick inbox slices escaping their round or read after the next Tick",
	Run:  runInboxAlias,
}

func runInboxAlias(pass *analysis.Pass) error {
	allow := buildAllowlist(pass)
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] || allow.allowed(pass.Fset, pos, "inboxalias") {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, format, args...)
	}
	for _, f := range pass.Files {
		var frames []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					frames = append(frames, n.Body)
				}
			case *ast.FuncLit:
				frames = append(frames, n.Body)
			}
			return true
		})
		for _, body := range frames {
			checkInboxFrame(pass, body, report)
		}
	}
	return nil
}

// isTickCall matches a method call spelled x.Tick() with no arguments
// whose static result is a slice — the inbox-producing call on either
// engine's Ctx or on the shared NodeCtx contract. It returns the root
// identifier object of the receiver when it is a plain identifier.
func isTickCall(info *types.Info, n ast.Node) (recv types.Object, ok bool) {
	call, isCall := n.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return nil, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Tick" {
		return nil, false
	}
	if tv, ok := info.Types[call]; !ok || tv.Type == nil {
		return nil, false
	} else if _, isSlice := tv.Type.Underlying().(*types.Slice); !isSlice {
		return nil, false
	}
	if id, isID := sel.X.(*ast.Ident); isID {
		recv = objOf(info, id)
	}
	return recv, true
}

// isYieldCall matches Tick and Idle method calls — the points at which
// a previously delivered inbox is invalidated.
func isYieldCall(info *types.Info, n ast.Node) (recv types.Object, ok bool) {
	call, isCall := n.(*ast.CallExpr)
	if !isCall {
		return nil, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || (sel.Sel.Name != "Tick" && sel.Sel.Name != "Idle") {
		return nil, false
	}
	if _, isMethod := info.Uses[sel.Sel].(*types.Func); !isMethod {
		return nil, false
	}
	if id, isID := sel.X.(*ast.Ident); isID {
		recv = objOf(info, id)
	}
	return recv, true
}

// sameCtx reports whether two receiver objects may be the same node
// context. Unknown receivers are treated conservatively as matching.
func sameCtx(a, b types.Object) bool {
	if a == nil || b == nil {
		return true
	}
	return a == b
}

// Inbox fact bits: FRESH marks a live binding to the latest Tick
// result; STALE marks a binding whose buffer a later yield on the same
// context has retired (on at least one path).
const (
	inboxFresh analysis.FlowState = 1 << iota
	inboxStale
)

// inboxFrame carries the per-frame state shared by the transfer
// function and the reporting walk.
type inboxFrame struct {
	pass *analysis.Pass
	body *ast.BlockStmt
	// bindRecv remembers, per tracked variable, the receiver of the
	// Tick call that bound it (flow-insensitively; used only to scope
	// invalidation to the same context).
	bindRecv map[types.Object]types.Object
	// bindEnds are the source positions (assignment ends) at which each
	// variable was bound to a Tick result — the textual record used for
	// closure-capture detection and diagnostic wording.
	bindEnds map[types.Object][]token.Pos
	// yields are every Tick/Idle call site of the frame, in source
	// order, used to word stale-use diagnostics.
	yields []inboxYield
}

type inboxYield struct {
	pos  token.Pos
	recv types.Object
}

// checkInboxFrame analyzes one function body. Nested function literals
// are separate frames: their internals are skipped here except that
// reads of this frame's inbox variables inside them are capture
// escapes.
func checkInboxFrame(pass *analysis.Pass, body *ast.BlockStmt, report func(token.Pos, string, ...any)) {
	info := pass.TypesInfo
	fr := &inboxFrame{
		pass:     pass,
		body:     body,
		bindRecv: map[types.Object]types.Object{},
		bindEnds: map[types.Object][]token.Pos{},
	}

	// Textual pre-pass at this frame's nesting level: record bind sites
	// and yield sites (for diagnostics), and nested-literal captures.
	var litRanges [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			litRanges = append(litRanges, [2]token.Pos{lit.Pos(), lit.End()})
			return false
		}
		return true
	})
	inNestedLit := func(pos token.Pos) bool {
		for _, r := range litRanges {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}
	analysis.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				recv, ok := isTickCall(info, ast.Unparen(rhs))
				if !ok {
					continue
				}
				if id, isID := n.Lhs[i].(*ast.Ident); isID && id.Name != "_" {
					if obj := objOf(info, id); obj != nil {
						fr.bindRecv[obj] = recv
						fr.bindEnds[obj] = append(fr.bindEnds[obj], n.End())
					}
				}
			}
		case *ast.CallExpr:
			if recv, ok := isYieldCall(info, n); ok {
				fr.yields = append(fr.yields, inboxYield{pos: n.Pos(), recv: recv})
			}
		}
		return true
	})

	// Capture escapes: a read of a frame-bound inbox variable inside a
	// nested literal outlives the round.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || !inNestedLit(id.Pos()) {
			return true
		}
		obj := objOf(info, id)
		if obj == nil {
			return true
		}
		for _, bindEnd := range fr.bindEnds[obj] {
			if bindEnd <= id.Pos() {
				report(id.Pos(), "inbox variable %s captured by a nested function literal: the closure may outlive the round (copy the messages instead)", id.Name)
				break
			}
		}
		return true
	})

	if len(fr.bindEnds) == 0 {
		// No bound inbox variables: only direct Tick-result escapes are
		// possible; the reporting walk below still covers them, so run
		// it over trivially empty facts.
	}

	cfg := analysis.BuildCFG(body)
	eval := fr.evalInbox
	in := cfg.Forward(func(b *analysis.Block, f analysis.Facts) analysis.Facts {
		for _, n := range b.Nodes {
			fr.applyNode(f, n, nil)
		}
		return f
	})

	// Reporting walk: re-run each block's transfer from its fixpoint
	// entry facts, interleaving the escape and stale-use checks in
	// execution order.
	for _, b := range cfg.Blocks {
		f := in[b].Clone()
		for _, n := range b.Nodes {
			fr.checkEscapes(f, n, report)
			fr.applyNode(f, n, report)
		}
	}
	_ = eval
}

// evalInbox computes the abstract state of an expression: a direct Tick
// call is a fresh inbox; an identifier carries its variable's fact.
func (fr *inboxFrame) evalInbox(f analysis.Facts, e ast.Expr) analysis.FlowState {
	e = ast.Unparen(e)
	if _, ok := isTickCall(fr.pass.TypesInfo, e); ok {
		return inboxFresh
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := objOf(fr.pass.TypesInfo, id); obj != nil {
			return f[obj]
		}
	}
	return 0
}

// applyNode advances the facts over one block node: yields and ident
// reads are processed in source-position order (mirroring evaluation
// order within the statement), then the node's assignment effect is
// applied. When report is non-nil, stale reads are diagnosed.
func (fr *inboxFrame) applyNode(f analysis.Facts, n ast.Node, report func(token.Pos, string, ...any)) {
	info := fr.pass.TypesInfo

	// Idents that are plain assignment targets are writes, not reads.
	writes := map[*ast.Ident]bool{}
	analysis.Inspect(n, func(m ast.Node) bool {
		if asg, ok := m.(*ast.AssignStmt); ok {
			for _, lhs := range asg.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					writes[id] = true
				}
			}
		}
		return true
	})

	type event struct {
		pos   token.Pos
		yield types.Object // receiver, for yield events
		isY   bool
		id    *ast.Ident // for read events
	}
	var events []event
	analysis.Inspect(n, func(m ast.Node) bool {
		if recv, ok := isYieldCall(info, m); ok {
			events = append(events, event{pos: m.Pos(), yield: recv, isY: true})
		}
		if id, ok := m.(*ast.Ident); ok && !writes[id] {
			events = append(events, event{pos: id.Pos(), id: id})
		}
		return true
	})
	// The AST walk is already in source order for siblings; a stable
	// sort by position makes it exact for nested shapes.
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].pos < events[j-1].pos; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
	for _, ev := range events {
		if ev.isY {
			for obj, st := range f {
				if st&inboxFresh != 0 && sameCtx(fr.bindRecv[obj], ev.yield) {
					f[obj] = (st &^ inboxFresh) | inboxStale
				}
			}
			continue
		}
		if report == nil {
			continue
		}
		obj := objOf(info, ev.id)
		if obj == nil || f[obj]&inboxStale == 0 {
			continue
		}
		if fr.linearYieldBetween(obj, ev.pos) {
			report(ev.pos, "use of inbox %s after a later Tick: the engine reused its buffer at that barrier (bind a fresh Tick result or copy before ticking)", ev.id.Name)
		} else {
			report(ev.pos, "use of inbox %s inside a loop that Ticks without rebinding it: stale after the first iteration (bind the Tick result each iteration)", ev.id.Name)
		}
	}

	analysis.ApplyAssign(info, f, n, fr.evalInbox)
}

// linearYieldBetween reports whether some yield on the binding's
// context sits textually between a bind of obj and the use — the
// straight-line staleness shape; otherwise the staleness arrived over a
// loop back edge and the diagnostic says so.
func (fr *inboxFrame) linearYieldBetween(obj types.Object, use token.Pos) bool {
	for _, bindEnd := range fr.bindEnds[obj] {
		for _, y := range fr.yields {
			if bindEnd < y.pos && y.pos < use && sameCtx(fr.bindRecv[obj], y.recv) {
				return true
			}
		}
	}
	return false
}

// checkEscapes diagnoses inbox values leaving the frame through one
// block node, under the facts holding at the node's entry.
func (fr *inboxFrame) checkEscapes(f analysis.Facts, n ast.Node, report func(token.Pos, string, ...any)) {
	info := fr.pass.TypesInfo
	isInbox := func(e ast.Expr) bool { return fr.evalInbox(f, e) != 0 }
	declaredOutsideFrame := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < fr.body.Pos() || obj.Pos() > fr.body.End())
	}
	analysis.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for i, lhs := range m.Lhs {
				if i >= len(m.Rhs) {
					break
				}
				if !isInbox(m.Rhs[i]) {
					continue
				}
				switch l := lhs.(type) {
				case *ast.SelectorExpr:
					report(m.Pos(), "inbox slice stored in field %s: it aliases an engine buffer valid only until the next Tick (copy the messages instead)", l.Sel.Name)
				case *ast.IndexExpr:
					report(m.Pos(), "inbox slice stored into a container: it aliases an engine buffer valid only until the next Tick (copy the messages instead)")
				case *ast.Ident:
					if lobj := objOf(info, l); declaredOutsideFrame(lobj) {
						report(m.Pos(), "inbox slice assigned to %s, declared outside this function: the buffer is reused at the next Tick (copy the messages instead)", l.Name)
					}
				}
			}
		case *ast.SendStmt:
			if isInbox(m.Value) {
				report(m.Pos(), "inbox slice sent on a channel: it aliases an engine buffer valid only until the next Tick (copy the messages instead)")
			}
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				if isInbox(r) {
					report(m.Pos(), "inbox slice returned from the function: it aliases an engine buffer valid only until the next Tick (copy the messages instead)")
				}
			}
		case *ast.CallExpr:
			if id, ok := m.Fun.(*ast.Ident); ok && id.Name == "append" && m.Ellipsis == token.NoPos {
				for _, arg := range m.Args[1:] {
					if isInbox(arg) {
						report(arg.Pos(), "inbox slice stored via append: appending the slice value retains the engine buffer (use append(dst, inbox...) to copy the messages)")
					}
				}
			}
		}
		return true
	})
}
