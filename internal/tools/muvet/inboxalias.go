package muvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"mucongest/internal/tools/muvet/analysis"
)

// InboxAlias statically enforces the Tick inbox aliasing contract: the
// slice returned by Tick aliases an engine-owned buffer that is reused
// for the node's next delivery, so it is valid only until the node's
// next Tick (or Idle) call and must never outlive the round. This is
// the compile-time complement of `-tags simdebug` poisoning, which
// turns the same violations into runtime sentinels.
//
// Flagged escapes of an inbox value (the Tick result or a variable
// bound to it):
//
//   - assignment into a struct field, or into a variable declared
//     outside the function holding the inbox (package var or an outer
//     function's local captured by the program closure);
//   - a channel send;
//   - storing the slice itself via append(dst, inbox) — appending the
//     elements with append(dst, inbox...) copies and is fine;
//   - returning the inbox;
//   - capturing the inbox variable in a nested function literal.
//
// Additionally, any read of an inbox variable after a later Tick/Idle
// call on the same context — including reads reached by a loop back
// edge when the inbox was bound before the loop — is a
// use-after-invalidation.
//
// Suppress deliberate violations (e.g. the simdebug poisoning test)
// with //muvet:allow inboxalias(reason).
var InboxAlias = &analysis.Analyzer{
	Name: "inboxalias",
	Doc:  "flag Tick inbox slices escaping their round or read after the next Tick",
	Run:  runInboxAlias,
}

func runInboxAlias(pass *analysis.Pass) error {
	allow := buildAllowlist(pass)
	report := func(pos token.Pos, format string, args ...any) {
		if !allow.allowed(pass.Fset, pos, "inboxalias") {
			pass.Reportf(pos, format, args...)
		}
	}
	for _, f := range pass.Files {
		var frames []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					frames = append(frames, n.Body)
				}
			case *ast.FuncLit:
				frames = append(frames, n.Body)
			}
			return true
		})
		for _, body := range frames {
			checkInboxFrame(pass, body, report)
		}
	}
	return nil
}

// isTickCall matches a method call spelled x.Tick() with no arguments
// whose static result is a slice — the inbox-producing call on either
// engine's Ctx or on the shared NodeCtx contract. It returns the root
// identifier object of the receiver when it is a plain identifier.
func isTickCall(info *types.Info, n ast.Node) (recv types.Object, ok bool) {
	call, isCall := n.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return nil, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Tick" {
		return nil, false
	}
	if tv, ok := info.Types[call]; !ok || tv.Type == nil {
		return nil, false
	} else if _, isSlice := tv.Type.Underlying().(*types.Slice); !isSlice {
		return nil, false
	}
	if id, isID := sel.X.(*ast.Ident); isID {
		recv = objOf(info, id)
	}
	return recv, true
}

// isYieldCall matches Tick and Idle method calls — the points at which
// a previously delivered inbox is invalidated.
func isYieldCall(info *types.Info, n ast.Node) (recv types.Object, ok bool) {
	call, isCall := n.(*ast.CallExpr)
	if !isCall {
		return nil, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || (sel.Sel.Name != "Tick" && sel.Sel.Name != "Idle") {
		return nil, false
	}
	if _, isMethod := info.Uses[sel.Sel].(*types.Func); !isMethod {
		return nil, false
	}
	if id, isID := sel.X.(*ast.Ident); isID {
		recv = objOf(info, id)
	}
	return recv, true
}

// sameCtx reports whether two receiver objects may be the same node
// context. Unknown receivers are treated conservatively as matching.
func sameCtx(a, b types.Object) bool {
	if a == nil || b == nil {
		return true
	}
	return a == b
}

// inboxEvent is one assignment to a tracked variable: a fresh Tick
// binding or an overwrite that retires the old value.
type inboxEvent struct {
	pos    token.Pos
	isTick bool
	recv   types.Object // Tick receiver for isTick events
}

// inboxYield is one Tick/Idle call site in the frame.
type inboxYield struct {
	pos     token.Pos
	recv    types.Object
	rebinds types.Object // variable this yield's result is assigned to, if any
}

// checkInboxFrame analyzes one function body. Nested function literals
// are separate frames: their internals are skipped here except that
// reads of this frame's inbox variables inside them are capture
// escapes.
func checkInboxFrame(pass *analysis.Pass, body *ast.BlockStmt, report func(token.Pos, string, ...any)) {
	info := pass.TypesInfo
	events := map[types.Object][]inboxEvent{}
	var yields []inboxYield

	// skipOuterLit returns true when pos sits inside a function literal
	// nested in this frame.
	var litRanges [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			litRanges = append(litRanges, [2]token.Pos{lit.Pos(), lit.End()})
			return false
		}
		return true
	})
	inNestedLit := func(pos token.Pos) bool {
		for _, r := range litRanges {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}

	// Pass 1 (source order): record Tick bindings, overwrites of bound
	// variables, and yield sites — all at this frame's nesting level.
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || inNestedLit(n.Pos()) {
			return n == nil || !inNestedLit(n.Pos())
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					id, isID := n.Lhs[i].(*ast.Ident)
					if !isID || id.Name == "_" {
						continue
					}
					obj := objOf(info, id)
					if obj == nil {
						continue
					}
					if recv, ok := isTickCall(info, rhs); ok {
						events[obj] = append(events[obj], inboxEvent{pos: n.End(), isTick: true, recv: recv})
					} else if len(events[obj]) > 0 {
						events[obj] = append(events[obj], inboxEvent{pos: n.End()})
					}
				}
			}
		case *ast.CallExpr:
			if recv, ok := isYieldCall(info, n); ok {
				yields = append(yields, inboxYield{pos: n.Pos(), recv: recv, rebinds: yieldRebind(info, body, n)})
			}
		}
		return true
	})
	if len(events) == 0 && len(yields) == 0 {
		// Still check direct escapes of unbound Tick results below.
	}

	latestBind := func(obj types.Object, pos token.Pos) (inboxEvent, bool) {
		evs := events[obj]
		var last inboxEvent
		ok := false
		for _, e := range evs {
			if e.pos <= pos {
				last, ok = e, true
			}
		}
		return last, ok && last.isTick
	}
	// inboxValue reports whether expr is, at its position, an inbox: a
	// direct Tick call or a variable whose latest binding is one.
	inboxValue := func(e ast.Expr) (types.Object, bool) {
		e = ast.Unparen(e)
		if _, ok := isTickCall(info, e); ok {
			return nil, true
		}
		if id, ok := e.(*ast.Ident); ok {
			obj := objOf(info, id)
			if obj == nil {
				return nil, false
			}
			if _, bound := latestBind(obj, e.Pos()); bound {
				return obj, true
			}
		}
		return nil, false
	}
	declaredOutsideFrame := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < body.Pos() || obj.Pos() > body.End())
	}

	// Loop spans for the back-edge rule.
	var loops [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, [2]token.Pos{n.Pos(), n.End()})
		case *ast.FuncLit:
			return false
		}
		return true
	})

	// Pass 2: escapes and use-after-invalidation.
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if inNestedLit(n.Pos()) {
				return true
			}
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				obj, isInbox := inboxValue(n.Rhs[i])
				if !isInbox {
					continue
				}
				_ = obj
				switch l := lhs.(type) {
				case *ast.SelectorExpr:
					report(n.Pos(), "inbox slice stored in field %s: it aliases an engine buffer valid only until the next Tick (copy the messages instead)", l.Sel.Name)
				case *ast.IndexExpr:
					report(n.Pos(), "inbox slice stored into a container: it aliases an engine buffer valid only until the next Tick (copy the messages instead)")
				case *ast.Ident:
					if lobj := objOf(info, l); declaredOutsideFrame(lobj) {
						report(n.Pos(), "inbox slice assigned to %s, declared outside this function: the buffer is reused at the next Tick (copy the messages instead)", l.Name)
					}
				}
			}
		case *ast.SendStmt:
			if inNestedLit(n.Pos()) {
				return true
			}
			if _, isInbox := inboxValue(n.Value); isInbox {
				report(n.Pos(), "inbox slice sent on a channel: it aliases an engine buffer valid only until the next Tick (copy the messages instead)")
			}
		case *ast.ReturnStmt:
			if inNestedLit(n.Pos()) {
				return true
			}
			for _, r := range n.Results {
				if _, isInbox := inboxValue(r); isInbox {
					report(n.Pos(), "inbox slice returned from the function: it aliases an engine buffer valid only until the next Tick (copy the messages instead)")
				}
			}
		case *ast.CallExpr:
			if inNestedLit(n.Pos()) {
				return true
			}
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && n.Ellipsis == token.NoPos {
				for _, arg := range n.Args[1:] {
					if _, isInbox := inboxValue(arg); isInbox {
						report(arg.Pos(), "inbox slice stored via append: appending the slice value retains the engine buffer (use append(dst, inbox...) to copy the messages)")
					}
				}
			}
		case *ast.Ident:
			obj := objOf(info, n)
			if obj == nil {
				return true
			}
			bind, bound := latestBind(obj, n.Pos())
			if !bound || bind.pos > n.Pos() {
				return true
			}
			if inNestedLit(n.Pos()) {
				report(n.Pos(), "inbox variable %s captured by a nested function literal: the closure may outlive the round (copy the messages instead)", n.Name)
				return true
			}
			// Linear rule: a yield on the same context strictly between
			// the binding and this use invalidates the inbox.
			for _, y := range yields {
				if bind.pos < y.pos && y.pos < n.Pos() && sameCtx(y.recv, bind.recv) {
					report(n.Pos(), "use of inbox %s after a later Tick: the engine reused its buffer at that barrier (bind a fresh Tick result or copy before ticking)", n.Name)
					return true
				}
			}
			// Back-edge rule: bound before a loop that both uses it and
			// yields without rebinding it.
			for _, l := range loops {
				if bind.pos < l[0] && l[0] <= n.Pos() && n.Pos() < l[1] {
					for _, y := range yields {
						if l[0] <= y.pos && y.pos < l[1] && sameCtx(y.recv, bind.recv) && y.rebinds != obj {
							report(n.Pos(), "use of inbox %s inside a loop that Ticks without rebinding it: stale after the first iteration (bind the Tick result each iteration)", n.Name)
							return true
						}
					}
				}
			}
		}
		return true
	})
}

// yieldRebind returns the variable the yield call's result is bound to
// when the call is the RHS of an assignment (`in = c.Tick()`), or nil.
func yieldRebind(info *types.Info, body *ast.BlockStmt, call *ast.CallExpr) types.Object {
	var obj types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, rhs := range asg.Rhs {
			if ast.Unparen(rhs) == call {
				if id, ok := asg.Lhs[i].(*ast.Ident); ok {
					obj = objOf(info, id)
				}
			}
		}
		return true
	})
	return obj
}
