package muvet_test

import (
	"testing"

	"mucongest/internal/tools/muvet"
	"mucongest/internal/tools/muvet/muvettest"
)

// Each corpus declares its seeded violations with `// want` comments;
// the importPath argument places it inside the analyzer's scope.

func TestNoDeterm(t *testing.T) {
	muvettest.Run(t, muvet.NoDeterm, "nodeterm", "mucongest/internal/sim")
}

func TestInboxAlias(t *testing.T) {
	muvettest.Run(t, muvet.InboxAlias, "inboxalias", "example.com/inboxalias")
}

func TestShardRNG(t *testing.T) {
	muvettest.Run(t, muvet.ShardRNG, "shardrng", "mucongest/internal/sim")
}

func TestHotAlloc(t *testing.T) {
	muvettest.Run(t, muvet.HotAlloc, "hotalloc", "example.com/hotalloc")
}

func TestRecordPurity(t *testing.T) {
	muvettest.Run(t, muvet.RecordPurity, "recordpurity", "mucongest/internal/bench")
}

// The step-contract corpora import the shared stepstub package, so they
// also exercise muvettest's cross-package import resolution and the
// structural matching of methods whose parameter types are imported.

func TestStepBlock(t *testing.T) {
	muvettest.Run(t, muvet.StepBlock, "stepblock", "example.com/stepblock")
}

func TestStepAlias(t *testing.T) {
	muvettest.Run(t, muvet.StepAlias, "stepalias", "example.com/stepalias")
}

func TestCtxRetain(t *testing.T) {
	muvettest.Run(t, muvet.CtxRetain, "ctxretain", "example.com/ctxretain")
}

func TestSuiteOrder(t *testing.T) {
	want := []string{
		"nodeterm", "inboxalias", "shardrng", "hotalloc", "recordpurity",
		"stepblock", "stepalias", "ctxretain",
	}
	suite := muvet.Suite()
	if len(suite) != len(want) {
		t.Fatalf("Suite() has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("Suite()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}
