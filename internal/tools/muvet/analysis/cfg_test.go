package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseFunc typechecks one source file and returns the named function's
// declaration plus the type info.
func parseFunc(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == name {
			return fn, info, fset
		}
	}
	t.Fatalf("no func %s", name)
	return nil, nil, nil
}

func TestCFGLoopBackEdge(t *testing.T) {
	src := `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`
	fn, _, _ := parseFunc(t, src, "f")
	cfg := BuildCFG(fn.Body)
	// The loop head must have at least two predecessors: the entry path
	// and the back edge from the body (via the post block).
	var head *Block
	for _, b := range cfg.Blocks {
		if len(b.Preds) >= 2 && len(b.Succs) == 2 {
			head = b
			break
		}
	}
	if head == nil {
		t.Fatalf("no loop head with a back edge found; blocks: %d", len(cfg.Blocks))
	}
	// Exactly one return edge into Exit.
	if len(cfg.Exit.Preds) != 1 {
		t.Errorf("Exit has %d preds, want 1", len(cfg.Exit.Preds))
	}
}

func TestCFGIfElseJoin(t *testing.T) {
	src := `package p
func f(p bool) int {
	x := 1
	if p {
		x = 2
	} else {
		x = 3
	}
	return x
}`
	fn, _, _ := parseFunc(t, src, "f")
	cfg := BuildCFG(fn.Body)
	// The join block (holding the return) must have two predecessors.
	joins := 0
	for _, b := range cfg.Blocks {
		if b != cfg.Exit && len(b.Preds) == 2 {
			joins++
		}
	}
	if joins != 1 {
		t.Errorf("found %d two-pred join blocks, want 1", joins)
	}
}

func TestCFGReturnTerminates(t *testing.T) {
	src := `package p
func f(p bool) int {
	if p {
		return 1
	}
	return 2
}`
	fn, _, _ := parseFunc(t, src, "f")
	cfg := BuildCFG(fn.Body)
	if len(cfg.Exit.Preds) != 2 {
		t.Errorf("Exit has %d preds, want 2 (one per return)", len(cfg.Exit.Preds))
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	src := `package p
func f(p bool) int {
	if p {
		panic("boom")
	}
	return 2
}`
	fn, _, _ := parseFunc(t, src, "f")
	cfg := BuildCFG(fn.Body)
	if len(cfg.Exit.Preds) != 2 {
		t.Errorf("Exit has %d preds, want 2 (panic + return)", len(cfg.Exit.Preds))
	}
}

func TestCFGDefersCollected(t *testing.T) {
	src := `package p
func g() {}
func f() {
	defer g()
	defer g()
}`
	fn, _, _ := parseFunc(t, src, "f")
	cfg := BuildCFG(fn.Body)
	if len(cfg.Defers) != 2 {
		t.Errorf("collected %d defers, want 2", len(cfg.Defers))
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	src := `package p
func f(n int) int {
	s := 0
	switch n {
	case 0:
		s = 1
		fallthrough
	case 1:
		s = 2
	default:
		s = 3
	}
	return s
}`
	fn, _, _ := parseFunc(t, src, "f")
	cfg := BuildCFG(fn.Body)
	// The case-1 block must have two preds: the switch head and the
	// fallthrough edge from case 0.
	found := false
	for _, b := range cfg.Blocks {
		if len(b.Preds) == 2 {
			for _, n := range b.Nodes {
				if bl, ok := n.(*ast.BasicLit); ok && bl.Value == "1" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("no case block with head+fallthrough predecessors found")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	src := `package p
func f(n int) int {
	s := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 3 {
				break outer
			}
			s++
		}
	}
	return s
}`
	fn, _, _ := parseFunc(t, src, "f")
	cfg := BuildCFG(fn.Body)
	// Must build without panicking and keep the return reachable: the
	// Exit block has the single return edge.
	if len(cfg.Exit.Preds) != 1 {
		t.Errorf("Exit has %d preds, want 1", len(cfg.Exit.Preds))
	}
}

func TestCFGFuncLitNotDescended(t *testing.T) {
	src := `package p
func f() func() int {
	x := 1
	g := func() int { return x + 1 }
	return g
}`
	fn, _, _ := parseFunc(t, src, "f")
	cfg := BuildCFG(fn.Body)
	// The literal's inner return must not create an Exit edge: only the
	// outer return does.
	if len(cfg.Exit.Preds) != 1 {
		t.Errorf("Exit has %d preds, want 1 (literal body must not leak)", len(cfg.Exit.Preds))
	}
}

func TestDominators(t *testing.T) {
	src := `package p
func f(p bool) int {
	x := 0
	if p {
		x = 1
	}
	return x
}`
	fn, _, _ := parseFunc(t, src, "f")
	cfg := BuildCFG(fn.Body)
	idom := cfg.Dominators()
	entry := cfg.Entry()
	// Every reachable block is (transitively) dominated by the entry.
	for _, b := range cfg.Blocks {
		if len(b.Preds) == 0 && b != entry {
			continue // unreachable
		}
		if !Dominated(idom, b, entry) {
			t.Errorf("block %d not dominated by entry", b.Index)
		}
	}
	// The then-branch block does not dominate the join.
	var thenB *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if bl, ok := as.Rhs[0].(*ast.BasicLit); ok && bl.Value == "1" {
					thenB = b
				}
			}
		}
	}
	if thenB == nil {
		t.Fatal("then block not found")
	}
	var ret *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				ret = b
			}
		}
	}
	if ret == nil {
		t.Fatal("return block not found")
	}
	if Dominated(idom, ret, thenB) {
		t.Errorf("return block must not be dominated by the conditional then-branch")
	}
}

// TestForwardLoopFact pins the whole point of the CFG rebase: a fact
// generated before a loop and "invalidated" inside it reaches the
// loop's own earlier statements via the back edge — something a linear
// position scan cannot see.
func TestForwardLoopFact(t *testing.T) {
	src := `package p
func f(n int) int {
	x := 1
	use := 0
	for i := 0; i < n; i++ {
		use += x
		x = 0
	}
	return use
}`
	fn, info, _ := parseFunc(t, src, "f")
	cfg := BuildCFG(fn.Body)

	const tracked FlowState = 1
	const killed FlowState = 2
	eval := func(f Facts, e ast.Expr) FlowState {
		switch e := e.(type) {
		case *ast.BasicLit:
			if e.Value == "1" {
				return tracked
			}
			return killed
		case *ast.Ident:
			if obj := ObjOf(info, e); obj != nil {
				return f[obj]
			}
		}
		return 0
	}
	in := cfg.Forward(func(b *Block, f Facts) Facts {
		for _, n := range b.Nodes {
			ApplyAssign(info, f, n, eval)
		}
		return f
	})

	// Find the block containing `use += x` and check that x's entry
	// fact there is tracked|killed: tracked from the first iteration,
	// killed from the back edge.
	var xObj types.Object
	var useBlock *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ADD_ASSIGN {
				continue
			}
			useBlock = b
			if id, ok := as.Rhs[0].(*ast.Ident); ok {
				xObj = ObjOf(info, id)
			}
		}
	}
	if useBlock == nil || xObj == nil {
		t.Fatal("use block or x object not found")
	}
	got := in[useBlock][xObj]
	if got != tracked|killed {
		t.Errorf("x fact at loop use = %b, want %b (tracked joined with killed over the back edge)", got, tracked|killed)
	}
}
