package analysis

// flow.go: a reaching-values escape lattice over the CFG.
//
// The analyzers that track engine-owned values (Tick inboxes, Step
// inbox parameters, node contexts) all need the same question answered
// at every program point: "which local variables may hold a tracked
// value here, and in which state?" Facts map variables (types.Object)
// to a small bitmask; the forward solver joins facts with set union, so
// the analysis is a classic may-analysis: a variable is reported when
// ANY path gives it a violating state. The per-statement semantics —
// what generates a tracked value, what invalidates one — stay in each
// analyzer's transfer function.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FlowState is the abstract state of one variable: an analyzer-defined
// bitmask. Zero means untracked.
type FlowState uint32

// Facts maps in-scope variables to their abstract state at one program
// point. Variables absent from the map are untracked.
type Facts map[types.Object]FlowState

// Clone returns an independent copy.
func (f Facts) Clone() Facts {
	g := make(Facts, len(f))
	for k, v := range f {
		g[k] = v
	}
	return g
}

// Join unions other into f (may-analysis) and reports whether f grew.
func (f Facts) Join(other Facts) bool {
	changed := false
	for k, v := range other {
		if f[k]|v != f[k] {
			f[k] |= v
			changed = true
		}
	}
	return changed
}

// Forward runs the forward worklist dataflow to a fixpoint and returns
// each block's entry facts. transfer must compute a block's exit facts
// from (a private copy of) its entry facts without retaining either.
// Because Join only grows facts and FlowState is finite, the fixpoint
// exists and the iteration terminates.
func (c *CFG) Forward(transfer func(b *Block, in Facts) Facts) map[*Block]Facts {
	return c.ForwardSeeded(nil, transfer)
}

// ForwardSeeded is Forward with initial facts joined into the entry
// block — how parameter-carried values (a Step method's inbox slice, a
// Node method's context) enter the analysis, since no statement binds
// them.
func (c *CFG) ForwardSeeded(seed Facts, transfer func(b *Block, in Facts) Facts) map[*Block]Facts {
	in := make(map[*Block]Facts, len(c.Blocks))
	for _, b := range c.Blocks {
		in[b] = Facts{}
	}
	if seed != nil {
		in[c.Entry()].Join(seed)
	}
	// Seed every block, not just the entry: a block can GENERATE facts
	// from an empty entry state (a bind inside a loop body), so each
	// transfer must run at least once even if the block's entry facts
	// never grow.
	work := make([]*Block, 0, len(c.Blocks))
	queued := make(map[*Block]bool, len(c.Blocks))
	for _, b := range c.Blocks {
		work = append(work, b)
		queued[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := transfer(b, in[b].Clone())
		for _, s := range b.Succs {
			if in[s].Join(out) && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// ApplyAssign is the shared assignment semantics of the value-tracking
// transfers: for each LHS variable of an assignment-like node, set its
// state to eval(RHS) — killing it when the RHS is untracked. eval sees
// the RHS expression under the current facts. Handled shapes:
//
//   - x = e, x := e (element-wise when counts match);
//   - multi-value forms (x, y := f()) kill every plain LHS variable —
//     the tracked sources all produce single values;
//   - var declarations with initializers;
//   - range statements kill their key/value variables (range over a
//     tracked slice yields element copies, not the buffer).
//
// Assignments through selectors or indexes (x.f = e, m[k] = e) are not
// variable bindings and are left to the analyzer's escape checks.
func ApplyAssign(info *types.Info, f Facts, n ast.Node, eval func(Facts, ast.Expr) FlowState) {
	setIdent := func(lhs ast.Expr, st FlowState) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if st == 0 {
			delete(f, obj)
		} else {
			f[obj] = st
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			// Evaluate every RHS under the pre-state first: `a, b = b, a`
			// swaps states, it does not smear them.
			states := make([]FlowState, len(n.Rhs))
			for i, rhs := range n.Rhs {
				states[i] = eval(f, rhs)
			}
			for i, lhs := range n.Lhs {
				setIdent(lhs, states[i])
			}
			return
		}
		for _, lhs := range n.Lhs {
			setIdent(lhs, 0)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				st := FlowState(0)
				if i < len(vs.Values) && len(vs.Values) == len(vs.Names) {
					st = eval(f, vs.Values[i])
				}
				setIdent(name, st)
			}
		}
	case *ast.RangeStmt:
		setIdent(n.Key, 0)
		setIdent(n.Value, 0)
	}
}

// ObjOf resolves an identifier to its object (use or definition).
func ObjOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// PosBefore reports pos < end with both valid — a tiny helper for the
// textual tie-breaks analyzers use when wording diagnostics.
func PosBefore(pos, end token.Pos) bool {
	return pos.IsValid() && end.IsValid() && pos < end
}
