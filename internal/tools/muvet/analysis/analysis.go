// Package analysis is a minimal, dependency-free stand-in for the
// golang.org/x/tools/go/analysis framework, carrying exactly the
// surface the muvet suite needs: an Analyzer runs over one type-checked
// package and reports position-anchored diagnostics.
//
// The repo builds offline against the standard library only, so the
// real x/tools module cannot be assumed present. The API mirrors the
// upstream names (Analyzer, Pass, Diagnostic, Reportf) so the analyzers
// port to the real framework by swapping this import if x/tools ever
// becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //muvet:allow annotations. By convention it is a short
	// lower-case word (e.g. "nodeterm").
	Name string
	// Doc is the one-paragraph description shown by `muvet -list`.
	Doc string
	// Run applies the check to one package and reports findings
	// through pass.Report.
	Run func(pass *Pass) error
}

// Pass is the unit of work handed to an Analyzer: one type-checked
// package plus a sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds the package's syntax trees, parsed with comments.
	Files []*ast.File
	// Pkg is the type-checked package. ImportPath is the path the
	// build system knows the package by — for test variants it is the
	// base package path (any " [pkg.test]" suffix already stripped).
	Pkg        *types.Package
	ImportPath string
	TypesInfo  *types.Info
	Report     func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name, stamped by the driver if empty
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// File returns the syntax tree containing pos, or nil.
func (p *Pass) File(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
