package analysis

// cfg.go: a per-function control-flow graph for the muvet analyzers.
//
// The linear single-pass analyzers of the first muvet generation
// approximated control flow with source positions ("a yield textually
// between the bind and the use") and ad-hoc loop-span scans. The CFG
// makes branches, loop back edges and defers explicit, so the dataflow
// passes in flow.go compute real reaching facts: a value bound inside a
// loop is stale on the second iteration even though the invalidating
// call sits textually after the use, and a yield on a path that returns
// before the use no longer poisons the fall-through path.
//
// The builder is deliberately modest — basic blocks of statement-level
// nodes with successor edges — but it is faithful for the constructs
// that appear in node programs and engine code: if/else, for and range
// loops (with back edges), switch/type-switch (including fallthrough),
// select, labeled break/continue/goto, and early exits via return and
// panic. Deferred calls are collected on the CFG (they run at every
// exit) and nested function literals are NOT descended into: each
// literal is a separate frame with its own CFG.

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal straight-line sequence of
// statement-level nodes, executed in order, ending in a transfer of
// control to one of Succs.
type Block struct {
	// Index is the block's position in CFG.Blocks (entry is 0).
	Index int
	// Nodes holds the block's statements (and the control expressions
	// of enclosing constructs: an if condition, a switch tag, the range
	// statement itself) in execution order.
	Nodes []ast.Node
	// Succs are the possible control-flow successors.
	Succs []*Block
	// Preds are the predecessors (inverse of Succs).
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks in allocation order; Blocks[0] is the entry.
	Blocks []*Block
	// Exit is the synthetic exit block every return, panic and final
	// fall-through edge leads to. It holds no nodes.
	Exit *Block
	// Defers are the deferred calls of the body in source order. They
	// execute at every exit from the function.
	Defers []*ast.CallExpr
}

// Entry returns the function's entry block.
func (c *CFG) Entry() *Block { return c.Blocks[0] }

// BuildCFG constructs the control-flow graph of one function body.
// Nested function literals are not descended into — build a separate
// CFG per literal.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: map[string]*labelBlocks{}}
	b.cfg.Exit = b.newBlock() // allocated first so Blocks[0] can be entry; fixed below
	entry := b.newBlock()
	// Keep the documented invariant Blocks[0] == entry.
	b.cfg.Blocks[0], b.cfg.Blocks[1] = b.cfg.Blocks[1], b.cfg.Blocks[0]
	b.cfg.Blocks[0].Index, b.cfg.Blocks[1].Index = 0, 1
	b.cur = entry
	b.stmtList(body.List)
	b.edgeToExit()
	return b.cfg
}

// labelBlocks records the targets a label can transfer control to.
type labelBlocks struct {
	// dest is the block the labeled statement starts in (goto target).
	dest *Block
	// brk / cont are the break/continue targets when the labeled
	// statement is a loop, switch or select.
	brk, cont *Block
}

type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminator
	// (return, panic, break, ...) until the next statement opens a
	// fresh — possibly unreachable — block.
	cur *Block
	// breaks / conts are the innermost break and continue targets.
	breaks []*Block
	conts  []*Block
	labels map[string]*labelBlocks
	// pendingLabel is set while building the statement of a
	// LabeledStmt, so loops and switches can register their break and
	// continue targets under the label.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// use returns the block to append to, opening a fresh (unreachable)
// block when the previous statement terminated control flow.
func (b *cfgBuilder) use() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	blk := b.use()
	blk.Nodes = append(blk.Nodes, n)
}

func edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// edgeToExit closes the current block into the synthetic exit.
func (b *cfgBuilder) edgeToExit() {
	edge(b.cur, b.cfg.Exit)
	b.cur = nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the construct that claims
// it, registering the given break/continue targets.
func (b *cfgBuilder) takeLabel(brk, cont *Block) {
	if b.pendingLabel == "" {
		return
	}
	lb := b.labels[b.pendingLabel]
	lb.brk, lb.cont = brk, cont
	b.pendingLabel = ""
}

// ensureLabel returns (creating on demand) the label record; forward
// gotos reference labels before their LabeledStmt is reached.
func (b *cfgBuilder) ensureLabel(name string) *labelBlocks {
	lb := b.labels[name]
	if lb == nil {
		lb = &labelBlocks{dest: b.newBlock()}
		b.labels[name] = lb
	}
	return lb
}

// isPanicCall matches a direct panic(...) call statement, a terminator
// for CFG purposes.
func isPanicCall(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		head := b.cur
		after := b.newBlock()
		thenB := b.newBlock()
		edge(head, thenB)
		b.cur = thenB
		b.stmtList(s.Body.List)
		edge(b.cur, after)
		if s.Else != nil {
			elseB := b.newBlock()
			edge(head, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			edge(b.cur, after)
		} else {
			edge(head, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.newBlock()
		if s.Cond != nil {
			edge(head, after)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.takeLabel(after, cont)
		b.breaks = append(b.breaks, after)
		b.conts = append(b.conts, cont)
		body := b.newBlock()
		edge(head, body)
		b.cur = body
		b.stmtList(s.Body.List)
		if post != nil {
			edge(b.cur, post)
			post.Nodes = append(post.Nodes, s.Post)
			edge(post, head) // back edge
		} else {
			edge(b.cur, head) // back edge
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		edge(b.cur, head)
		// The range statement itself carries the per-iteration key and
		// value assignment; transfers treat it as such.
		head.Nodes = append(head.Nodes, s)
		after := b.newBlock()
		edge(head, after)
		b.takeLabel(after, head)
		b.breaks = append(b.breaks, after)
		b.conts = append(b.conts, head)
		body := b.newBlock()
		edge(head, body)
		b.cur = body
		b.stmtList(s.Body.List)
		edge(b.cur, head) // back edge
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var guard ast.Node
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			init, guard, clauses = sw.Init, sw.Tag, sw.Body.List
		case *ast.TypeSwitchStmt:
			init, guard, clauses = sw.Init, sw.Assign, sw.Body.List
		}
		if init != nil {
			b.stmt(init)
		}
		if guard != nil {
			b.add(guard)
		}
		head := b.use()
		after := b.newBlock()
		b.takeLabel(after, nil)
		b.breaks = append(b.breaks, after)
		// Allocate every clause block first so fallthrough can edge to
		// the next clause.
		blocks := make([]*Block, len(clauses))
		hasDefault := false
		for i, cl := range clauses {
			blocks[i] = b.newBlock()
			edge(head, blocks[i])
			if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			edge(head, after)
		}
		for i, cl := range clauses {
			cc := cl.(*ast.CaseClause)
			b.cur = blocks[i]
			for _, e := range cc.List {
				b.add(e)
			}
			fallsThrough := false
			bodyStmts := cc.Body
			if n := len(bodyStmts); n > 0 {
				if br, ok := bodyStmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
					fallsThrough = true
					bodyStmts = bodyStmts[:n-1]
				}
			}
			b.stmtList(bodyStmts)
			if fallsThrough && i+1 < len(blocks) {
				edge(b.cur, blocks[i+1])
			} else {
				edge(b.cur, after)
			}
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = after

	case *ast.SelectStmt:
		head := b.use()
		after := b.newBlock()
		b.takeLabel(after, nil)
		b.breaks = append(b.breaks, after)
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			blk := b.newBlock()
			edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			edge(b.cur, after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = after

	case *ast.LabeledStmt:
		lb := b.ensureLabel(s.Label.Name)
		edge(b.cur, lb.dest)
		b.cur = lb.dest
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			target := b.branchTarget(s, true)
			b.add(s)
			edge(b.cur, target)
			b.cur = nil
		case token.CONTINUE:
			target := b.branchTarget(s, false)
			b.add(s)
			edge(b.cur, target)
			b.cur = nil
		case token.GOTO:
			b.add(s)
			edge(b.cur, b.ensureLabel(s.Label.Name).dest)
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by the switch builder; reaching here means a
			// malformed tree — treat as a no-op.
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.edgeToExit()

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s.Call)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s) {
			b.edgeToExit()
		}

	case nil:
		// nothing

	default:
		// Assign, Decl, IncDec, Send, Go, Empty, Bad: straight-line.
		b.add(s)
	}
}

// branchTarget resolves a break/continue statement's destination.
func (b *cfgBuilder) branchTarget(s *ast.BranchStmt, isBreak bool) *Block {
	if s.Label != nil {
		if lb := b.labels[s.Label.Name]; lb != nil {
			if isBreak && lb.brk != nil {
				return lb.brk
			}
			if !isBreak && lb.cont != nil {
				return lb.cont
			}
		}
		return b.cfg.Exit // unknown label: be conservative
	}
	stack := b.breaks
	if !isBreak {
		stack = b.conts
	}
	if len(stack) == 0 {
		return b.cfg.Exit
	}
	return stack[len(stack)-1]
}

// Inspect walks the subtree rooted at each of the given nodes like
// ast.Inspect, but does not descend into nested function literals:
// their bodies are separate frames with their own CFGs. The
// *ast.FuncLit node itself is still visited.
func Inspect(root ast.Node, f func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit != root {
			f(lit)
			return false
		}
		return f(n)
	})
}

// Dominators computes the immediate-dominator relation of the CFG with
// the classic iterative algorithm (the graphs here are tiny). The
// returned map is idom[b] for every reachable block except the entry.
func (c *CFG) Dominators() map[*Block]*Block {
	entry := c.Entry()
	// Reverse postorder over reachable blocks.
	var order []*Block
	seen := make(map[*Block]bool, len(c.Blocks))
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpo := make(map[*Block]int, len(order))
	for i, b := range order {
		rpo[b] = i
	}

	idom := map[*Block]*Block{entry: entry}
	intersect := func(a, b *Block) *Block {
		for a != b {
			for rpo[a] > rpo[b] {
				a = idom[a]
			}
			for rpo[b] > rpo[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if idom[p] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	delete(idom, entry)
	return idom
}

// Dominated reports whether block b is dominated by dom: every path
// from the entry to b passes through dom. A block dominates itself.
func Dominated(idom map[*Block]*Block, b, dom *Block) bool {
	for b != nil {
		if b == dom {
			return true
		}
		next := idom[b]
		if next == b {
			return false
		}
		b = next
	}
	return false
}
