// Corpus for the inboxalias analyzer: every way a Tick inbox can
// escape its round, plus the copying idioms that are fine.
package inboxalias

type Msg struct{ A int64 }

// Ctx mimics the engine node context shape: Tick yields the inbox
// slice (an aliased, reused buffer), Idle yields without messages.
type Ctx struct{ buf []Msg }

func (c *Ctx) Tick() []Msg { return c.buf }
func (c *Ctx) Idle()       {}

var global []Msg

type holder struct{ in []Msg }

func escapeToGlobal(c *Ctx) {
	in := c.Tick()
	global = in // want `inbox slice assigned to global, declared outside this function`
}

func escapeToField(c *Ctx, h *holder) {
	in := c.Tick()
	h.in = in // want `inbox slice stored in field in`
}

func escapeToChannel(c *Ctx, ch chan []Msg) {
	in := c.Tick()
	ch <- in // want `inbox slice sent on a channel`
}

func escapeByReturn(c *Ctx) []Msg {
	return c.Tick() // want `inbox slice returned from the function`
}

func escapeViaAppend(c *Ctx, history [][]Msg) [][]Msg {
	in := c.Tick()
	history = append(history, in) // want `inbox slice stored via append`
	return history
}

func copyViaAppendOK(c *Ctx, log []Msg) []Msg {
	in := c.Tick()
	log = append(log, in...) // spreading copies the messages
	return log
}

func captureInClosure(c *Ctx) func() int {
	in := c.Tick()
	return func() int { return len(in) } // want `inbox variable in captured by a nested function literal`
}

func useAfterTick(c *Ctx) int64 {
	in := c.Tick()
	c.Tick()
	return in[0].A // want `use of inbox in after a later Tick`
}

func useAfterIdle(c *Ctx) int {
	in := c.Tick()
	c.Idle()
	return len(in) // want `use of inbox in after a later Tick`
}

func staleAcrossRounds(c *Ctx) int64 {
	in := c.Tick()
	var sum int64
	for i := 0; i < 3; i++ {
		sum += in[0].A // want `use of inbox in inside a loop that Ticks without rebinding it`
		c.Tick()
	}
	return sum
}

func rebindEachRoundOK(c *Ctx) int64 {
	var sum int64
	in := c.Tick()
	for i := 0; i < 3; i++ {
		sum += in[0].A
		in = c.Tick()
	}
	return sum
}

func deliberateStashAllowed(c *Ctx) {
	in := c.Tick()
	//muvet:allow inboxalias(poisoning-test fixture retains the slice on purpose)
	global = in
}

// bindInLoopStale goes stale over the loop back edge: the binding
// happens inside the loop, so the old linear pass (which required the
// binding to precede the loop) missed it. The CFG dataflow sees the
// Idle on iteration k invalidating the binding read on iteration k+1.
func bindInLoopStale(c *Ctx) int64 {
	var sum int64
	var in []Msg
	for i := 0; i < 3; i++ {
		if i == 0 {
			in = c.Tick()
		}
		sum += in[0].A // want `use of inbox in inside a loop that Ticks without rebinding it`
		c.Idle()
	}
	return sum
}

// yieldNotOnPath must NOT be flagged: the Idle sits textually between
// the bind and the use, but on a branch that returns before the use —
// the fall-through path never yields. The old linear rule ("a yield
// between the bind and the use") reported a false positive here.
func yieldNotOnPath(c *Ctx, p bool) int {
	in := c.Tick()
	if p {
		c.Idle()
		return 0
	}
	return len(in)
}

// escapeThroughCopy escapes via a local alias: the old pass only
// tracked variables bound directly to a Tick call, so the copy washed
// the taint off. The reaching-values lattice propagates it.
func escapeThroughCopy(c *Ctx, h *holder) {
	in := c.Tick()
	alias := in
	h.in = alias // want `inbox slice stored in field in`
}
