// Corpus for the stepalias analyzer: every way the Step inbox
// parameter can escape its invocation, plus the copying idioms that
// are fine. Types come from the imported stepstub package, exercising
// cross-package signature matching.
package stepalias

import "stepstub"

var global []stepstub.Incoming

var _ stepstub.StepProgram = (*fieldStep)(nil)

type fieldStep struct{ held []stepstub.Incoming }

func (s *fieldStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	s.held = in // want `Step inbox stored in field held`
	return true
}

type globalStep struct{}

func (globalStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	global = in // want `Step inbox assigned to global`
	return true
}

type chanStep struct{ ch chan []stepstub.Incoming }

func (s *chanStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	s.ch <- in // want `Step inbox sent on a channel`
	return true
}

type appendStep struct{ log [][]stepstub.Incoming }

func (s *appendStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	s.log = append(s.log, in) // want `Step inbox stored via append`
	return true
}

type subsliceStep struct{ held []stepstub.Incoming }

func (s *subsliceStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	if len(in) > 1 {
		s.held = in[1:] // want `Step inbox stored in field held`
	}
	return true
}

type ptrStep struct{ first *stepstub.Incoming }

func (s *ptrStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	if len(in) > 0 {
		s.first = &in[0] // want `Step inbox stored in field first`
	}
	return true
}

// aliasStep escapes through a rename on one branch: the reaching-facts
// lattice propagates the alias to the store.
type aliasStep struct{ held []stepstub.Incoming }

func (s *aliasStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	var tail []stepstub.Incoming
	if len(in) > 2 {
		tail = in
	}
	s.held = tail // want `Step inbox stored in field held`
	return true
}

type captureStep struct{ probe func() int }

func (s *captureStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	s.probe = func() int { return len(in) } // want `Step inbox in captured by a function literal`
	return true
}

// copyStep copies the messages out: spreading append, element value
// copies, and passing to a helper are all fine.
type copyStep struct {
	log  []stepstub.Incoming
	last stepstub.Incoming
}

func (s *copyStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	s.log = append(s.log, in...) // spreading copies the elements
	if len(in) > 0 {
		s.last = in[len(in)-1] // element copy: Msg is a value struct
	}
	emitAll(c, in) // helper call: not an escape at the call site
	return true
}

// iifeStep reads the inbox through an immediately invoked literal,
// which runs within the Step call: fine.
type iifeStep struct{ n int }

func (s *iifeStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	s.n = func() int { return len(in) }()
	return true
}

func emitAll(c *stepstub.Ctx, in []stepstub.Incoming) {
	for _, m := range in {
		c.Emit(m.Msg.A)
	}
}

// stashStep is the suppression case: a poisoning fixture retains the
// inbox on purpose.
type stashStep struct{ held []stepstub.Incoming }

func (s *stashStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	//muvet:allow stepalias(poisoning fixture retains the inbox on purpose)
	s.held = in
	return true
}
