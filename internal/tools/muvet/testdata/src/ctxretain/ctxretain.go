// Corpus for the ctxretain analyzer: every way a Program.Node
// implementation can retain the node context beyond the node's own
// execution, plus the legal handoffs to the returned execution forms.
package ctxretain

import "stepstub"

var leaked *stepstub.Ctx

// stepper is a legitimate step program embedding its node's context —
// the StepProgram IS the node's execution, so this is the contract
// working as intended.
type stepper struct{ c *stepstub.Ctx }

func (s *stepper) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool { return false }

func newStepper(c *stepstub.Ctx) *stepper { return &stepper{c: c} }

var _ stepstub.Program = (*fieldProg)(nil)

type fieldProg struct{ last *stepstub.Ctx }

func (p *fieldProg) Node(c *stepstub.Ctx) (stepstub.StepProgram, func(*stepstub.Ctx)) {
	p.last = c // want `node context stored in field last`
	return nil, func(*stepstub.Ctx) {}
}

type globalProg struct{}

func (globalProg) Node(c *stepstub.Ctx) (stepstub.StepProgram, func(*stepstub.Ctx)) {
	leaked = c // want `node context assigned to leaked`
	return nil, func(*stepstub.Ctx) {}
}

type chanProg struct{ ch chan *stepstub.Ctx }

func (p *chanProg) Node(c *stepstub.Ctx) (stepstub.StepProgram, func(*stepstub.Ctx)) {
	p.ch <- c // want `node context sent on a channel`
	return nil, func(*stepstub.Ctx) {}
}

type appendProg struct{ all []*stepstub.Ctx }

func (p *appendProg) Node(c *stepstub.Ctx) (stepstub.StepProgram, func(*stepstub.Ctx)) {
	p.all = append(p.all, c) // want `node context retained via append`
	return nil, func(*stepstub.Ctx) {}
}

type goProg struct{}

func (goProg) Node(c *stepstub.Ctx) (stepstub.StepProgram, func(*stepstub.Ctx)) {
	go func() { // want `node context captured by a goroutine spawned in Node`
		c.Idle()
	}()
	return nil, func(*stepstub.Ctx) {}
}

// embedProg leaks the context INSIDE a step-program value stored on the
// shared Program receiver: the composite literal carries the taint.
type embedProg struct{ cache *stepper }

func (p *embedProg) Node(c *stepstub.Ctx) (stepstub.StepProgram, func(*stepstub.Ctx)) {
	p.cache = &stepper{c: c} // want `node context stored in field cache`
	return p.cache, nil
}

// aliasProg retains through a rename: the reaching facts follow it.
type aliasProg struct{ last *stepstub.Ctx }

func (p *aliasProg) Node(c *stepstub.Ctx) (stepstub.StepProgram, func(*stepstub.Ctx)) {
	mine := c
	p.last = mine // want `node context stored in field last`
	return nil, func(*stepstub.Ctx) {}
}

// factoryProg hands c to the returned execution forms — a factory call
// and a composite literal in the return statement. Both are the node's
// own execution: no findings.
type factoryProg struct{}

func (factoryProg) Node(c *stepstub.Ctx) (stepstub.StepProgram, func(*stepstub.Ctx)) {
	if c == nil {
		return newStepper(c), nil
	}
	return &stepper{c: c}, nil
}

// closureProg captures c in the returned blocking func: that closure
// runs as the node, so the capture is legal.
type closureProg struct{}

func (closureProg) Node(c *stepstub.Ctx) (stepstub.StepProgram, func(*stepstub.Ctx)) {
	return nil, func(own *stepstub.Ctx) {
		if own == c {
			own.Emit(1)
		}
	}
}

// registryProg is the suppression case: a debug registry keeps
// contexts for postmortem dumps.
type registryProg struct{}

func (registryProg) Node(c *stepstub.Ctx) (stepstub.StepProgram, func(*stepstub.Ctx)) {
	//muvet:allow ctxretain(debug registry keeps contexts for postmortem dumps)
	leaked = c
	return nil, func(*stepstub.Ctx) {}
}
