// Corpus for the nodeterm analyzer: seeded nondeterminism violations
// plus the idioms the checker must leave alone.
package nodeterm

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

type stats struct {
	ElapsedS float64       `json:"elapsed_s"`
	Rounds   int           `json:"rounds"`
	Wall     time.Duration `json:"-"`
	scratch  string
}

func globalRand() int {
	n := rand.Intn(10) // want `call to global math/rand\.Intn`
	n += rand.Int()    // want `call to global math/rand\.Int`
	return n
}

func seededRandOK(seed int64) int {
	r := rand.New(rand.NewSource(seed*1_000_003 + 1))
	return r.Intn(10)
}

func wallClockToFmt() string {
	start := time.Now()
	return fmt.Sprintf("took %v", time.Since(start)) // want `wall-clock value time\.Since formatted by fmt\.Sprintf`
}

func wallClockToField() stats {
	start := time.Now()
	el := time.Since(start)
	return stats{
		Rounds:   3,
		ElapsedS: el.Seconds(), // want `wall-clock value el \(from time\.Now/time\.Since\) assigned to serialized field ElapsedS`
		Wall:     el,           // json:"-": measuring wall time is fine
	}
}

func wallClockFieldAssign(s *stats) {
	t0 := time.Now()
	s.ElapsedS = time.Since(t0).Seconds() // want `wall-clock value time\.Since written to serialized field ElapsedS`
	s.scratch = "x"                       // untagged field: not serialized
}

func emitUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k+"!") // want `map iteration order reaches an append`
	}
	return out
}

func dumpUnsorted(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want `map iteration order reaches method WriteString`
	}
}

func joinKeys(m map[string]bool) string {
	s := ""
	for k := range m {
		s += k // want `map iteration order reaches string concatenation`
	}
	return s
}

// firstError mirrors the PR-3 abort-race shape: harvesting per-node
// errors from a map and keeping the first one observed lets iteration
// order pick the winner.
func firstError(errs map[int]error) error {
	var first error
	for _, e := range errs {
		if first == nil {
			first = e // want `map iteration order reaches an overwrite of first \(first/last writer wins\)`
		}
	}
	return first
}

func emitSortedOK(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func totalOK(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func minValOK(m map[string]int) int {
	best := 1 << 30
	for _, v := range m {
		if v < best {
			best = v
		}
	}
	return best
}

func allowedRand() int {
	//muvet:allow nodeterm(diagnostic sampling, never serialized)
	return rand.Intn(3)
}
