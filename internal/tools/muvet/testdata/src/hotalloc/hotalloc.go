// Corpus for the hotalloc analyzer: allocation in annotated hot paths
// fails; the warmup and abort idioms (and unannotated functions) pass.
package hotalloc

import "fmt"

type ring struct {
	buf  []int
	out  []int
	name string
}

// push is the legitimate warmup allocator: growth happens only inside
// the cap-guarded branch, so the steady state is allocation-free.
//
//muvet:hotpath
func (r *ring) push(v int) {
	if need := len(r.buf) + 1; cap(r.buf) < need {
		next := make([]int, len(r.buf), need*2)
		copy(next, r.buf)
		r.buf = next
	}
	r.buf = append(r.buf, v)
}

//muvet:hotpath
func (r *ring) label(v int) string {
	return fmt.Sprintf("ring[%s]=%d", r.name, v) // want `fmt\.Sprintf allocates in hot path label`
}

//muvet:hotpath
func (r *ring) freshMap() map[int]int {
	return map[int]int{1: 1} // want `map literal allocates in hot path freshMap`
}

//muvet:hotpath
func (r *ring) freshSlice() {
	r.out = append([]int{}, r.buf...) // want `slice literal allocates in hot path freshSlice` `append onto a fresh slice allocates every call in hot path freshSlice`
}

//muvet:hotpath
func (r *ring) grow() {
	r.buf = make([]int, 8) // want `make allocates in hot path grow`
}

//muvet:hotpath
func (r *ring) concat(a, b string) string {
	return a + b // want `string concatenation allocates in hot path concat`
}

//muvet:hotpath
func (r *ring) stringify(b []byte) string {
	return string(b) // want `string conversion allocates in hot path stringify`
}

//muvet:hotpath
func (r *ring) closure(v int) func() int {
	return func() int { return v } // want `capturing closure in hot path closure`
}

//muvet:hotpath
func (r *ring) box(v int) any {
	return any(v) // want `interface conversion boxes its operand in hot path box`
}

//muvet:hotpath
func (r *ring) guard(v int) {
	if v < 0 {
		panic(fmt.Sprintf("bad v=%d", v)) // abort path: exempt
	}
	r.buf[0] = v
}

//muvet:hotpath
func (r *ring) note(v int) {
	//muvet:allow hotalloc(cold diagnostics, called once per run)
	r.name = fmt.Sprintf("v=%d", v)
}

// elseOfGuardHot: only the THEN branch of a cap-guard is the warmup
// path. The else arm runs on every steady-state call, so allocation
// there is flagged (the old pass exempted the whole if statement).
//
//muvet:hotpath
func (r *ring) elseOfGuardHot(v int) {
	if cap(r.buf) > len(r.buf) {
		r.buf = append(r.buf, v)
	} else {
		r.out = make([]int, 1) // want `make allocates in hot path elseOfGuardHot`
	}
}

// abortMessage builds its panic message in a separate statement: the
// whole block ends in panic, so it is cold even though the Sprintf is
// not syntactically a panic argument (the old pass flagged it).
//
//muvet:hotpath
func (r *ring) abortMessage(v int) {
	if v < 0 {
		msg := fmt.Sprintf("bad v=%d", v)
		panic(msg)
	}
	r.buf[0] = v
}

// setup is not annotated: allocation is free here.
func setup() *ring {
	return &ring{buf: make([]int, 0, 64), name: fmt.Sprintf("ring-%d", 0)}
}
