// Package stepstub provides the shared node-context and message types
// the step-contract corpora import, standing in for mucongest's
// internal/sim. Keeping it a separate corpus package exercises
// muvettest's cross-package import resolution: the analyzers must
// recognize Step and Node methods whose parameter types come from an
// imported package.
package stepstub

// Msg is a value struct like sim.Msg: copying an element copies the
// payload.
type Msg struct {
	Kind int32
	A    int64
}

// Incoming mirrors sim.Incoming; the name is what the step-contract
// analyzers match the inbox slice on.
type Incoming struct {
	From int
	Msg  Msg
}

// Ctx mimics the engine node context: Tick yields the inbox (an
// aliased, reused buffer), Idle yields without messages, Send/Emit are
// the non-blocking effects a step program may use.
type Ctx struct{ inbox []Incoming }

func (c *Ctx) Tick() []Incoming     { return c.inbox }
func (c *Ctx) Idle()                {}
func (c *Ctx) Send(port int, m Msg) {}
func (c *Ctx) Emit(v int64)         {}

// StepProgram mirrors sim.StepProgram.
type StepProgram interface {
	Step(c *Ctx, in []Incoming) bool
}

// Program mirrors sim.Program.
type Program interface {
	Node(c *Ctx) (StepProgram, func(*Ctx))
}
