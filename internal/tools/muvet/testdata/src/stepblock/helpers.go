// helpers.go holds the transitive-call cases in a SEPARATE FILE of the
// same package: the analyzer must resolve callees across file
// boundaries and report violations in helpers reachable from a Step
// entry.
package stepblock

import "stepstub"

var _ stepstub.StepProgram = (*transStep)(nil)

type transStep struct{ ch chan int }

func (s *transStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	fanOut(s.ch)
	s.drain(c)
	return true
}

// fanOut is a plain function reachable only from transStep.Step.
func fanOut(ch chan int) {
	ch <- 7 // want `channel send in fanOut \(reachable from \(transStep\)\.Step\)`
}

// drain is a method callee; yields are forbidden transitively too.
func (s *transStep) drain(c *stepstub.Ctx) {
	c.Idle() // want `Idle called in drain \(reachable from \(transStep\)\.Step\)`
}

// cleanHelper is reachable from Step but only computes: no findings.
func cleanHelper(in []stepstub.Incoming) int64 {
	var sum int64
	for _, m := range in {
		sum += m.Msg.A
	}
	return sum
}

var _ stepstub.StepProgram = (*cleanTransStep)(nil)

type cleanTransStep struct{}

func (cleanTransStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	c.Emit(cleanHelper(in))
	return true
}
