// Corpus for the stepblock analyzer: every way a goroutine-free Step
// program can block, spawn or yield, plus the effects that are fine.
// The interface assertions pin that the structurally matched methods
// are exactly the stepstub.StepProgram implementations.
package stepblock

import (
	"sync"
	"time"

	"stepstub"
)

var (
	_ stepstub.StepProgram = (*sendStep)(nil)
	_ stepstub.StepProgram = (*tickStep)(nil)
	_ stepstub.StepProgram = (*okStep)(nil)
)

type sendStep struct{ ch chan int }

func (s *sendStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	s.ch <- 1 // want `channel send in \(sendStep\)\.Step`
	return true
}

type recvStep struct{ ch chan int }

func (s *recvStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	v := <-s.ch // want `channel receive in \(recvStep\)\.Step`
	c.Emit(int64(v))
	return true
}

type selectStep struct{ ch chan int }

func (s *selectStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	select { // want `select statement in \(selectStep\)\.Step`
	case <-s.ch: // want `channel receive in \(selectStep\)\.Step`
	default:
	}
	return true
}

type rangeStep struct{ ch chan int }

func (s *rangeStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	for v := range s.ch { // want `range over a channel in \(rangeStep\)\.Step`
		c.Emit(int64(v))
	}
	return true
}

type goStep struct{}

func (goStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	go func() { // want `goroutine spawned in \(goStep\)\.Step`
		c.Emit(1)
	}()
	return true
}

type lockStep struct{ mu sync.Mutex }

func (s *lockStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	s.mu.Lock() // want `sync\.Lock in \(lockStep\)\.Step`
	defer s.mu.Unlock()
	return true
}

type waitStep struct{ wg sync.WaitGroup }

func (s *waitStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	s.wg.Wait() // want `sync\.Wait in \(waitStep\)\.Step`
	return true
}

type sleepStep struct{}

func (sleepStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	time.Sleep(time.Millisecond) // want `time\.Sleep in \(sleepStep\)\.Step`
	return true
}

type tickStep struct{}

func (tickStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	c.Tick() // want `Tick called in \(tickStep\)\.Step`
	return true
}

type idleStep struct{}

func (idleStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	c.Idle() // want `Idle called in \(idleStep\)\.Step`
	return true
}

// okStep uses only the non-blocking effects: no findings.
type okStep struct{ sum int64 }

func (s *okStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	for _, m := range in {
		s.sum += m.Msg.A
	}
	c.Send(0, stepstub.Msg{A: s.sum})
	c.Emit(s.sum)
	return true
}

// allowedStep is the suppression case: a fixture deliberately proving
// the runtime Tick-in-Step panic.
type allowedStep struct{}

func (allowedStep) Step(c *stepstub.Ctx, in []stepstub.Incoming) bool {
	//muvet:allow stepblock(fixture proving the runtime Tick-in-Step panic)
	c.Tick()
	return false
}
