// Corpus for the shardrng analyzer: the three blessed seed derivations
// pass, anything ad hoc fails.
package shardrng

import "math/rand"

// ShardStreamSeed stands in for sim.ShardStreamSeed: the analyzer
// matches the callee name, so the corpus supplies a local twin.
func ShardStreamSeed(seed int64, shard int) int64 {
	return seed ^ int64(shard)*2654435761
}

// FaultStreamSeed stands in for sim.FaultStreamSeed, the fault-layer
// stream derivation blessed alongside ShardStreamSeed.
func FaultStreamSeed(seed int64, round, shard int, kind uint32) int64 {
	return seed ^ int64(round)*3 ^ int64(shard)*5 ^ int64(kind)*7
}

func adHocSeed(seed int64, shard int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(shard))) // want `ad-hoc rand\.NewSource seed in the engine`
}

func bareSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `ad-hoc rand\.NewSource seed in the engine`
}

func blessedShardSeed(seed int64, shard int) *rand.Rand {
	return rand.New(rand.NewSource(ShardStreamSeed(seed, shard)))
}

func blessedNodeSeed(seed int64, id int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(id)))
}

func blessedFaultSeed(seed int64, round, shard int) *rand.Rand {
	return rand.New(rand.NewSource(FaultStreamSeed(seed, round, shard, 1)))
}

func allowedMigration(seed int64) *rand.Rand {
	//muvet:allow shardrng(scratch stream for a local experiment, not part of any digest)
	return rand.New(rand.NewSource(seed + 99))
}
