// Corpus for the recordpurity analyzer: serialized Record fields fed
// from wall clocks, pointer identity, or map iteration fail; the
// WallTime escape hatch and the sorted-params idiom pass.
package recordpurity

import (
	"fmt"
	"io"
	"sort"
	"time"
)

type Record struct {
	Family   string        `json:"family"`
	ElapsedS float64       `json:"elapsed_s"`
	Params   string        `json:"params"`
	WallTime time.Duration `json:"-"`
}

func makeRecordBad(start time.Time) Record {
	return Record{
		Family:   "bfs",
		ElapsedS: time.Since(start).Seconds(), // want `Record\.ElapsedS set from wall clock`
		WallTime: time.Since(start),           // json:"-" by contract: measuring is fine
	}
}

func labelBad(r *Record, e *int) {
	r.Params = fmt.Sprintf("engine=%p", e) // want `Record\.Params set from pointer identity`
}

func paramsBad(r *Record, p map[string]string) {
	s := ""
	for k, v := range p {
		s += k + "=" + v + ";"
	}
	r.Params = s // want `Record\.Params set from a value built under map iteration`
}

func paramsSortedOK(r *Record, p map[string]string) {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += k + "=" + p[k] + ";"
	}
	r.Params = s
}

func WriteRecordsDebug(w io.Writer, recs []Record) {
	fmt.Fprintf(w, "# emitted at %v\n", time.Now()) // want `wall-clock read inside emitter WriteRecordsDebug`
	for i := range recs {
		fmt.Fprintf(w, "%d\n", i)
	}
}

func WriteRecordsTrace(w io.Writer, recs []*Record) {
	for _, r := range recs {
		fmt.Fprintf(w, "rec@%p\n", r) // want `pointer-formatting \(%p\) inside emitter WriteRecordsTrace`
	}
}

var schemaRev = 1

func stampAllowed(r *Record) {
	//muvet:allow recordpurity(stable package-level address, identical within a run)
	r.Params = fmt.Sprintf("%v", &schemaRev)
}
