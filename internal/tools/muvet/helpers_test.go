package muvet

import "testing"

func TestStripTestVariant(t *testing.T) {
	cases := []struct{ in, want string }{
		{"mucongest/internal/sim", "mucongest/internal/sim"},
		{"mucongest/internal/sim [mucongest/internal/sim.test]", "mucongest/internal/sim"},
		{"mucongest/internal/sim_test [mucongest/internal/sim.test]", "mucongest/internal/sim_test"},
	}
	for _, c := range cases {
		if got := stripTestVariant(c.in); got != c.want {
			t.Errorf("stripTestVariant(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestInScope(t *testing.T) {
	if !inScope("mucongest/internal/sim", nodetermScope...) {
		t.Error("sim should be in nodeterm scope")
	}
	if inScope("mucongest/internal/topo", nodetermScope...) {
		t.Error("topo should not be in nodeterm scope")
	}
	if inScope("mucongest/internal/bench", shardRNGScope...) {
		t.Error("bench should not be in shardrng scope")
	}
}

func TestLookupTag(t *testing.T) {
	cases := []struct {
		tag, key, want string
		ok             bool
	}{
		{`json:"name"`, "json", "name", true},
		{`json:"name,omitempty"`, "json", "name", true},
		{`json:"-"`, "json", "-", true},
		{`csv:"col" json:"x"`, "json", "x", true},
		{`csv:"col"`, "json", "", false},
		{``, "json", "", false},
	}
	for _, c := range cases {
		got, ok := lookupTag(c.tag, c.key)
		if got != c.want || ok != c.ok {
			t.Errorf("lookupTag(%q, %q) = %q,%v want %q,%v", c.tag, c.key, got, ok, c.want, c.ok)
		}
	}
}

func TestAllowRx(t *testing.T) {
	ms := allowRx.FindAllStringSubmatch(" nodeterm(cold path) hotalloc(warmup only)", -1)
	if len(ms) != 2 || ms[0][1] != "nodeterm" || ms[1][1] != "hotalloc" {
		t.Fatalf("allowRx parse = %v", ms)
	}
	if allowRx.FindAllStringSubmatch(" nodeterm()", -1) != nil {
		t.Error("empty reason must not parse")
	}
}
