package muvet

import (
	"go/ast"
	"go/token"
	"go/types"

	"mucongest/internal/tools/muvet/analysis"
)

// CtxRetain enforces the Program.Node contract comment in
// internal/sim/step.go: "Node is called once per node during engine
// setup and may be called concurrently for distinct nodes; it must not
// retain c beyond the node's own execution." The returned StepProgram
// and func(*Ctx) ARE the node's execution, so handing c to them —
// s(c), &stepper{c: c} in a return statement — is the contract working
// as intended. What must not happen is c leaking somewhere with a
// longer lifetime:
//
//   - a store into a struct field (the Program value is shared by every
//     node and outlives them all) or a container;
//   - an assignment to a package variable or an outer function's local;
//   - a channel send, or retention via append;
//   - capture by a goroutine spawned inside Node.
//
// Aliases of c (locals, composite literals embedding it) are tracked as
// reaching facts over the method's control-flow graph. Suppress a
// deliberate retention with //muvet:allow ctxretain(reason).
var CtxRetain = &analysis.Analyzer{
	Name: "ctxretain",
	Doc:  "Program.Node must not retain the node context beyond the node's execution",
	Run:  runCtxRetain,
}

// ctxTracked marks a variable that may hold (or embed) the node ctx.
const ctxTracked analysis.FlowState = 1

func runCtxRetain(pass *analysis.Pass) error {
	allow := buildAllowlist(pass)
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] || allow.allowed(pass.Fset, pos, "ctxretain") {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, format, args...)
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := isNodeMethod(pass.TypesInfo, fn); !ok {
				continue
			}
			cObj := paramObj(pass.TypesInfo, fn, 0)
			if cObj == nil {
				continue // unnamed context: nothing to retain
			}
			checkCtxRetainFunc(pass, fn, cObj, report)
		}
	}
	return nil
}

// ctxRetainFrame carries one Node method's analysis state.
type ctxRetainFrame struct {
	pass *analysis.Pass
	body *ast.BlockStmt
}

func checkCtxRetainFunc(pass *analysis.Pass, fn *ast.FuncDecl, cObj types.Object, report func(token.Pos, string, ...any)) {
	fr := &ctxRetainFrame{pass: pass, body: fn.Body}
	cfg := analysis.BuildCFG(fn.Body)
	seed := analysis.Facts{cObj: ctxTracked}
	in := cfg.ForwardSeeded(seed, func(b *analysis.Block, f analysis.Facts) analysis.Facts {
		for _, n := range b.Nodes {
			analysis.ApplyAssign(pass.TypesInfo, f, n, fr.evalCtx)
		}
		return f
	})

	everTracked := map[types.Object]bool{cObj: true}
	for _, b := range cfg.Blocks {
		for obj, st := range in[b] {
			if st&ctxTracked != 0 {
				everTracked[obj] = true
			}
		}
	}
	for _, b := range cfg.Blocks {
		f := in[b].Clone()
		for _, n := range b.Nodes {
			fr.checkEscapes(f, n, everTracked, report)
			analysis.ApplyAssign(pass.TypesInfo, f, n, fr.evalCtx)
		}
	}
}

// evalCtx computes whether an expression may carry the node context: a
// tracked variable, an address-of of one, or a composite literal with a
// tracked element (a step-program struct embedding c).
func (fr *ctxRetainFrame) evalCtx(f analysis.Facts, e ast.Expr) analysis.FlowState {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := objOf(fr.pass.TypesInfo, e); obj != nil {
			return f[obj]
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return fr.evalCtx(f, e.X)
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if fr.evalCtx(f, v) != 0 {
				return ctxTracked
			}
		}
	}
	return 0
}

// checkEscapes diagnoses the node context leaving Node's own scope
// through one block node.
func (fr *ctxRetainFrame) checkEscapes(f analysis.Facts, n ast.Node, everTracked map[types.Object]bool, report func(token.Pos, string, ...any)) {
	info := fr.pass.TypesInfo
	isCtx := func(e ast.Expr) bool { return fr.evalCtx(f, e) != 0 }
	declaredOutside := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < fr.body.Pos() || obj.Pos() > fr.body.End())
	}
	analysis.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for i, lhs := range m.Lhs {
				if i >= len(m.Rhs) || !isCtx(m.Rhs[i]) {
					continue
				}
				switch l := lhs.(type) {
				case *ast.SelectorExpr:
					report(m.Pos(), "node context stored in field %s: Node must not retain c beyond the node's own execution", l.Sel.Name)
				case *ast.IndexExpr:
					report(m.Pos(), "node context stored into a container: Node must not retain c beyond the node's own execution")
				case *ast.Ident:
					if lobj := objOf(info, l); declaredOutside(lobj) {
						report(m.Pos(), "node context assigned to %s, declared outside Node: it must not be retained beyond the node's own execution", l.Name)
					}
				}
			}
		case *ast.SendStmt:
			if isCtx(m.Value) {
				report(m.Pos(), "node context sent on a channel: Node must not retain c beyond the node's own execution")
			}
		case *ast.CallExpr:
			if id, ok := m.Fun.(*ast.Ident); ok && id.Name == "append" && m.Ellipsis == token.NoPos {
				for _, arg := range m.Args[1:] {
					if isCtx(arg) {
						report(arg.Pos(), "node context retained via append: Node must not retain c beyond the node's own execution")
					}
				}
			}
		case *ast.GoStmt:
			spawnsCtx := false
			for _, arg := range m.Call.Args {
				if isCtx(arg) {
					spawnsCtx = true
				}
			}
			if lit, ok := ast.Unparen(m.Call.Fun).(*ast.FuncLit); ok && !spawnsCtx {
				spawnsCtx = contains(lit.Body, func(nn ast.Node) bool {
					id, ok := nn.(*ast.Ident)
					if !ok {
						return false
					}
					obj := objOf(info, id)
					return obj != nil && everTracked[obj]
				})
			}
			if spawnsCtx {
				report(m.Pos(), "node context captured by a goroutine spawned in Node: it may outlive the node's own execution")
			}
		}
		return true
	})
}
