package clique

import (
	"math/rand"
	"testing"

	"mucongest/internal/graph"
	"mucongest/internal/sim"
)

func TestMuCongestTrianglesComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp-dense", graph.Gnp(28, 0.5, rng)},
		{"gnp-sparse", graph.Gnp(40, 0.15, rng)},
		{"cliques", graph.CycleOfCliques(4, 7)},
		{"barbell", graph.BarbellExpanders(14, 0.6, rng)},
	} {
		want := ListAll(tc.g, 3)
		got, res, err := RunMuCongestTriangles(MuTriangleConfig{
			G: tc.g, Mu: int64(2 * tc.g.N()),
		}, sim.WithSeed(7))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !SameSet(got, want) {
			t.Fatalf("%s: listed %d triangles, want %d", tc.name, len(got), len(want))
		}
		if res.Rounds <= 0 && tc.g.M() > 0 {
			t.Fatalf("%s: no rounds recorded", tc.name)
		}
	}
}

func TestMuCongestTrianglesRoundsDropWithMu(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.Gnp(80, 0.5, rng)
	rounds := func(mu int64) int {
		_, res, err := RunMuCongestTriangles(MuTriangleConfig{G: g, Mu: mu}, sim.WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	// Stay within the theorem's μ ≤ n^(4/3) range, where the √(m̃/μ)
	// bucket term governs.
	small := rounds(int64(g.N()))
	big := rounds(int64(g.N()) * 4)
	if big >= small {
		t.Fatalf("rounds should drop as μ grows: μ=n→%d, μ=4n→%d", small, big)
	}
}

func TestMuCongestTrianglesAlphaTradeoff(t *testing.T) {
	// Lemma A.2: α saves memory but costs rounds (×α² on routed loads).
	rng := rand.New(rand.NewSource(3))
	g := graph.Gnp(36, 0.5, rng)
	run := func(alpha int) *sim.Result {
		_, res, err := RunMuCongestTriangles(MuTriangleConfig{
			G: g, Mu: int64(g.N()), Alpha: alpha,
		}, sim.WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := run(1)
	r3 := run(3)
	if r3.Rounds <= r1.Rounds {
		t.Fatalf("α=3 should cost more rounds: %d vs %d", r3.Rounds, r1.Rounds)
	}
}

func TestMuCongestEmptyAndTriangleFree(t *testing.T) {
	// Triangle-free graph: must terminate with zero triangles.
	g := graph.Cycle(12)
	got, _, err := RunMuCongestTriangles(MuTriangleConfig{G: g, Mu: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("cycle has no triangles, listed %v", got)
	}
}

func TestMuCongestDeterministicAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.Gnp(24, 0.4, rng)
	a, resA, err := RunMuCongestTriangles(MuTriangleConfig{G: g, Mu: 48}, sim.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	b, resB, err := RunMuCongestTriangles(MuTriangleConfig{G: g, Mu: 48}, sim.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if !SameSet(a, b) || resA.Rounds != resB.Rounds {
		t.Fatalf("non-deterministic: %d/%d triangles, %d/%d rounds",
			len(a), len(b), resA.Rounds, resB.Rounds)
	}
}
