package clique

import (
	"math"
	"sort"
	"sync"

	"mucongest/internal/expander"
	"mucongest/internal/graph"
	"mucongest/internal/sim"
)

// Message kinds for the μ-CONGEST triangle listing.
const (
	kindMPXClaim int32 = 140 + iota
	kindTriQuery
	kindTriAnswer
)

// MuTriangleConfig parameterizes the Theorem 1.2 listing.
type MuTriangleConfig struct {
	G     *graph.Graph
	Mu    int64
	Alpha int     // Lemma A.2 round–space tradeoff parameter (≥1)
	Beta  float64 // MPX decomposition parameter (default 0.4)
	X     float64 // low-degree threshold multiplier x·n^(1/3) (default 2)
}

// muPlan is the shared oracle state of the listing driver: the evolving
// active edge set, the per-iteration clustering and the bucket/triple
// assignments. All mutations happen at node 0 between engine barriers
// (the same pattern as clique.OracleRouter); every quantity is
// computable in the model — centralizing it is a bookkeeping
// convenience, while all listing traffic is routed (and charged) by
// expander.Router.
type muPlan struct {
	mu      sync.Mutex
	adj     []map[int]bool // active adjacency
	edges   int
	removed []bool
	tau     int

	clusterOf []int // per node; -1 inactive
	// Per-cluster listing plan, rebuilt every iteration.
	bucketOf  []map[int]int // cluster ordinal -> node -> bucket
	sPerC     []int         // buckets per cluster
	triples   [][][3]int    // cluster ordinal -> its full triple list
	listers   [][]int       // cluster ordinal -> listing nodes
	blocks    int
	clusterIx map[int]int // cluster center -> ordinal
	nodeCls   [][]int     // node -> cluster ordinals whose universe contains it
}

func newMuPlan(g *graph.Graph) *muPlan {
	p := &muPlan{
		adj:     make([]map[int]bool, g.N()),
		removed: make([]bool, g.N()),
	}
	for v := 0; v < g.N(); v++ {
		p.adj[v] = make(map[int]bool, g.Degree(v))
		for _, u := range g.Neighbors(v) {
			p.adj[v][u] = true
		}
		p.edges += g.Degree(v)
	}
	p.edges /= 2
	return p
}

func (p *muPlan) activeDeg(v int) int {
	if p.removed[v] {
		return 0
	}
	return len(p.adj[v])
}

func (p *muPlan) removeNode(v int) {
	for u := range p.adj[v] {
		delete(p.adj[u], v)
		p.edges--
	}
	p.adj[v] = map[int]bool{}
	p.removed[v] = true
}

func (p *muPlan) removeEdge(u, v int) {
	if p.adj[u][v] {
		delete(p.adj[u], v)
		delete(p.adj[v], u)
		p.edges--
	}
}

// MuCongestTriangles implements Theorem 1.2's architecture: iterate
// {list-and-remove low-degree nodes (Theorem B.1); cluster the rest
// (MPX low-diameter decomposition, the §A.3.1 primitive); within each
// cluster partition the universe V_i ∪ V'_i into s = √(m̃/μ) buckets,
// assign every bucket triple to a listing node of the dominant degree
// class, and deliver each triple's ≤ O(μ) edges through the expander
// router (Lemma A.2 charge); remove intra-cluster edges and recurse}.
// All triangles are emitted as Clique values; dedupe with
// CollectTriangles.
func MuCongestTriangles(cfg MuTriangleConfig, router *expander.Router) func(*sim.Ctx) {
	g := cfg.G
	n := g.N()
	if cfg.Beta <= 0 {
		cfg.Beta = 0.4
	}
	if cfg.X <= 0 {
		cfg.X = 2
	}
	if cfg.Alpha < 1 {
		cfg.Alpha = 1
	}
	plan := newMuPlan(g)
	tau := int(math.Ceil(cfg.X * math.Pow(float64(n), 1.0/3)))
	if tau < 2 {
		tau = 2
	}
	plan.tau = tau
	mpxHorizon := int(8*math.Log(float64(n)+2)/cfg.Beta) + 4
	maxIter := 4*int(math.Log2(float64(g.M()+2))) + 8

	return func(c *sim.Ctx) {
		id := c.ID()
		c.Charge(int64(g.Degree(id)))
		defer c.Release(int64(g.Degree(id)))

		for iter := 0; iter < maxIter; iter++ {
			if plan.edges == 0 {
				return
			}
			// Phase A: low-degree nodes list their triangles (Thm B.1).
			lowDegreeListing(c, plan, tau)
			// Barrier: node 0 removes the listed nodes.
			c.Tick()
			if id == 0 {
				// Snapshot first: only nodes that were low-degree during
				// phase A (and hence listed their triangles) may go.
				// Removing as we scan would cascade onto nodes whose
				// degree only dropped below τ mid-loop.
				var toRemove []int
				for v := 0; v < n; v++ {
					if !plan.removed[v] && plan.activeDeg(v) <= tau {
						toRemove = append(toRemove, v)
					}
				}
				for _, v := range toRemove {
					if debugNodeRemovalHook != nil {
						debugNodeRemovalHook(plan, v)
					}
					plan.removeNode(v)
				}
			}
			c.Tick()
			if plan.edges == 0 {
				return
			}
			// Phase B: MPX clustering of the remaining graph.
			runMPXPhase(c, plan, cfg.Beta, mpxHorizon)
			c.Tick()
			if id == 0 {
				buildListingPlan(plan, cfg.Mu, c.Rand())
				if debugPlanHook != nil {
					debugPlanHook(plan)
				}
			}
			c.Tick()
			// Phase C: chunked triple delivery and listing.
			for blk := 0; blk < plan.blocks; blk++ {
				out := packetsFor(plan, id, blk)
				recv := router.Route(c, out)
				if len(recv) > 0 {
					c.Charge(int64(2 * len(recv)))
					edges := make([][2]int, len(recv))
					for i, p := range recv {
						edges[i] = [2]int{int(p.A), int(p.B)}
					}
					for _, tri := range ListInEdgeSet(edges, 3) {
						c.Emit(tri)
					}
					c.Release(int64(2 * len(recv)))
				}
			}
			// Barrier: node 0 removes intra-cluster edges.
			c.Tick()
			if id == 0 {
				for v := 0; v < n; v++ {
					for u := range plan.adj[v] {
						if v < u && plan.clusterOf[v] >= 0 && plan.clusterOf[v] == plan.clusterOf[u] {
							if debugRemovalHook != nil {
								debugRemovalHook(plan, v, u)
							}
							plan.removeEdge(v, u)
						}
					}
				}
			}
			c.Tick()
		}
	}
}

// lowDegreeListing is Theorem B.1 restricted to the active subgraph:
// nodes with active degree ≤ tau query their neighbors about mutual
// active edges and emit every triangle they belong to, in 2·tau rounds.
func lowDegreeListing(c *sim.Ctx, plan *muPlan, tau int) {
	id := c.ID()
	var nbrs []int
	for u := range plan.adj[id] {
		nbrs = append(nbrs, u)
	}
	sort.Ints(nbrs)
	amLister := !plan.removed[id] && len(nbrs) > 0 && len(nbrs) <= tau
	for phase := 0; phase < tau; phase++ {
		var queried int64 = -1
		if amLister && phase < len(nbrs) {
			queried = int64(nbrs[phase])
			for _, u := range nbrs {
				c.SendID(u, sim.Msg{Kind: kindTriQuery, A: queried})
			}
		}
		inA := c.Tick()
		for _, m := range inA {
			if m.Msg.Kind != kindTriQuery {
				continue
			}
			ans := int64(0)
			if plan.adj[id][int(m.Msg.A)] {
				ans = 1
			}
			c.SendID(m.From, sim.Msg{Kind: kindTriAnswer, A: m.Msg.A, B: ans})
		}
		inB := c.Tick()
		if queried < 0 {
			continue
		}
		u := int(queried)
		for _, m := range inB {
			if m.Msg.Kind != kindTriAnswer || int(m.Msg.A) != u || m.Msg.B != 1 {
				continue
			}
			if u < m.From {
				tri := Clique{id, u, m.From}
				sortClique(tri)
				c.Emit(tri)
			}
		}
	}
}

// runMPXPhase runs the random-shift clustering over active nodes and
// deposits the result into the shared plan.
func runMPXPhase(c *sim.Ctx, plan *muPlan, beta float64, horizon int) {
	id := c.ID()
	active := !plan.removed[id] && len(plan.adj[id]) > 0
	cluster := -1
	if active {
		shift := int(c.Rand().ExpFloat64() / beta)
		if shift > horizon-1 {
			shift = horizon - 1
		}
		start := horizon - 1 - shift
		joinedAt := -1
		for r := 0; r < horizon; r++ {
			if cluster < 0 && r == start {
				cluster = id
				joinedAt = r
			}
			if cluster >= 0 && r == joinedAt {
				for u := range plan.adj[id] {
					c.SendID(u, sim.Msg{Kind: kindMPXClaim, A: int64(cluster)})
				}
			}
			for _, m := range c.Tick() {
				if m.Msg.Kind == kindMPXClaim && cluster < 0 {
					cluster = int(m.Msg.A)
					joinedAt = r + 1
				}
			}
		}
		if cluster < 0 {
			cluster = id
		}
	} else {
		c.Idle(horizon)
	}
	plan.mu.Lock()
	if plan.clusterOf == nil || len(plan.clusterOf) != c.N() {
		plan.clusterOf = make([]int, c.N())
	}
	plan.clusterOf[id] = cluster
	plan.mu.Unlock()
}

// buildListingPlan (node 0, between barriers) derives buckets, degree-
// class listing sets and triple assignments per cluster.
func buildListingPlan(plan *muPlan, mu int64, rng interface{ Intn(int) int }) {
	n := len(plan.adj)
	members := map[int][]int{}
	for v := 0; v < n; v++ {
		if cl := plan.clusterOf[v]; cl >= 0 && !plan.removed[v] {
			members[cl] = append(members[cl], v)
		}
	}
	plan.clusterIx = map[int]int{}
	plan.bucketOf = nil
	plan.sPerC = nil
	plan.listers = nil
	plan.nodeCls = make([][]int, n)
	var allTriples [][][3]int
	plan.blocks = 0
	centers := make([]int, 0, len(members))
	for cl := range members {
		centers = append(centers, cl)
	}
	sort.Ints(centers)
	for _, cl := range centers {
		mem := members[cl]
		// Universe: members plus boundary; m̃ = edges incident to the cluster.
		uni := map[int]bool{}
		mTilde := 0
		for _, v := range mem {
			uni[v] = true
		}
		for _, v := range mem {
			for u := range plan.adj[v] {
				uni[u] = true
				mTilde++
			}
		}
		// Edges inside counted twice, boundary once; close enough for s.
		mTilde = (mTilde + 1) / 2
		if mTilde == 0 {
			continue
		}
		ord := len(plan.sPerC)
		plan.clusterIx[cl] = ord
		// Listing set: dominant degree class among members (Lemma B.5
		// bucketing — at least a 1/log n fraction of the bandwidth).
		classDeg := map[int]int{}
		for _, v := range mem {
			classDeg[degClass(plan.activeDeg(v))] += plan.activeDeg(v)
		}
		bestClass, bestW := 0, -1
		for cls, w := range classDeg {
			if w > bestW || (w == bestW && cls < bestClass) {
				bestClass, bestW = cls, w
			}
		}
		var listers []int
		for _, v := range mem {
			if degClass(plan.activeDeg(v)) == bestClass {
				listers = append(listers, v)
			}
		}
		sort.Ints(listers)
		s := int(math.Ceil(math.Sqrt(float64(2*mTilde) / float64(max64(1, mu)))))
		if s < 1 {
			s = 1
		}
		// Lower-bound s by |U|^(1/3), the A-set regime of Appendix B
		// (m̃/n^(2/3) ≤ μ): without it the bucket count degenerates and
		// the chunks concentrate on one listing node, losing both the
		// parallelism and the 1/√μ round scaling.
		if floor := int(math.Ceil(math.Cbrt(float64(len(uni))))); s < floor {
			s = floor
		}
		buckets := make(map[int]int, len(uni))
		uniSorted := make([]int, 0, len(uni))
		for v := range uni {
			uniSorted = append(uniSorted, v)
		}
		sort.Ints(uniSorted)
		for _, v := range uniSorted {
			buckets[v] = rng.Intn(s)
			plan.nodeCls[v] = append(plan.nodeCls[v], ord)
		}
		// All bucket triples (multisets), assigned round-robin.
		var triples [][3]int
		for a := 0; a < s; a++ {
			for b := a; b < s; b++ {
				for cc := b; cc < s; cc++ {
					triples = append(triples, [3]int{a, b, cc})
				}
			}
		}
		blocks := (len(triples) + len(listers) - 1) / len(listers)
		if blocks > plan.blocks {
			plan.blocks = blocks
		}
		plan.sPerC = append(plan.sPerC, s)
		plan.bucketOf = append(plan.bucketOf, buckets)
		plan.listers = append(plan.listers, listers)
		allTriples = append(allTriples, triples)
	}
	plan.triples = allTriples
}

// packetsFor computes the edges node id must ship in the given block:
// for every cluster whose universe contains it, every owned active edge
// whose endpoints' buckets both lie in a triple assigned this block.
func packetsFor(plan *muPlan, id, blk int) []expander.Packet {
	var out []expander.Packet
	for _, ord := range plan.nodeCls[id] {
		buckets := plan.bucketOf[ord]
		listers := plan.listers[ord]
		triples := plan.triples[ord]
		lo := blk * len(listers)
		hi := lo + len(listers)
		if hi > len(triples) {
			hi = len(triples)
		}
		for ti := lo; ti < hi; ti++ {
			tri := triples[ti]
			lister := listers[ti-lo]
			bu, okU := buckets[id]
			if !okU || !inTriple(tri, bu) {
				continue
			}
			for w := range plan.adj[id] {
				if w < id {
					continue // owner = smaller endpoint
				}
				bw, okW := buckets[w]
				if !okW || !inTriple(tri, bw) {
					continue
				}
				out = append(out, expander.Packet{Dst: lister, A: int64(id), B: int64(w)})
			}
		}
	}
	return out
}

func inTriple(t [3]int, b int) bool { return t[0] == b || t[1] == b || t[2] == b }

func degClass(d int) int {
	c := 0
	for d > 1 {
		d >>= 1
		c++
	}
	return c
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// RunMuCongestTriangles executes the listing and returns the deduped
// triangles plus run statistics.
func RunMuCongestTriangles(cfg MuTriangleConfig, opts ...sim.Option) ([]Clique, *sim.Result, error) {
	router := expander.NewRouter(cfg.G, cfg.Alpha)
	e := sim.New(cfg.G, opts...)
	res, err := e.Run(MuCongestTriangles(cfg, router))
	if err != nil {
		return nil, res, err
	}
	return CollectTriangles(res), res, nil
}

// debugRemovalHook, when non-nil, observes every intra-cluster edge
// removal with the plan state still intact (test instrumentation).
var debugRemovalHook func(p *muPlan, v, u int)

// debugNodeRemovalHook, when non-nil, observes every low-degree node
// removal with the plan state still intact (test instrumentation).
var debugNodeRemovalHook func(p *muPlan, v int)

// debugPlanHook, when non-nil, observes the freshly built listing plan
// (test instrumentation).
var debugPlanHook func(p *muPlan)
