package clique

import (
	"math"
	"sort"

	"mucongest/internal/cover"
	"mucongest/internal/graph"
	"mucongest/internal/sim"
)

// ccPlan is the deterministic global schedule of Theorem 2.10: node
// groups, master assignments, and per-master subset covers. Every node
// computes the identical plan locally from (n, k, μ), so the plan needs
// no communication — exactly as in the paper's proof.
type ccPlan struct {
	k         int
	groups    [][]int // node ids per group
	multisets [][]int // each a sorted multiset of group indices
	masters   []int   // master node per multiset
	covers    [][][]int
	universes [][]int // sorted union of group members per multiset
	blocks    int
}

func newCCPlan(n, k int, mu int64) *ccPlan {
	gc := int(math.Floor(math.Pow(float64(n), 1/float64(k))))
	if gc < 1 {
		gc = 1
	}
	gs := (n + gc - 1) / gc
	p := &ccPlan{k: k}
	for j := 0; j < gc; j++ {
		lo, hi := j*gs, (j+1)*gs
		if hi > n {
			hi = n
		}
		grp := make([]int, 0, hi-lo)
		for v := lo; v < hi; v++ {
			grp = append(grp, v)
		}
		if len(grp) > 0 {
			p.groups = append(p.groups, grp)
		}
	}
	gc = len(p.groups)
	// Enumerate multisets of k group indices.
	idx := make([]int, k)
	var rec func(pos, start int)
	rec = func(pos, start int) {
		if pos == k {
			ms := make([]int, k)
			copy(ms, idx)
			p.multisets = append(p.multisets, ms)
			return
		}
		for j := start; j < gc; j++ {
			idx[pos] = j
			rec(pos+1, j)
		}
	}
	rec(0, 0)
	b := int(math.Floor(math.Sqrt(float64(mu))))
	if b < k {
		b = k
	}
	for t, ms := range p.multisets {
		p.masters = append(p.masters, t%n)
		seen := map[int]bool{}
		var uni []int
		for _, j := range ms {
			if !seen[j] {
				seen[j] = true
				uni = append(uni, p.groups[j]...)
			}
		}
		sort.Ints(uni)
		p.universes = append(p.universes, uni)
		cov := cover.New(len(uni), b, k)
		p.covers = append(p.covers, cov)
		if len(cov) > p.blocks {
			p.blocks = len(cov)
		}
	}
	return p
}

// CongestedCliqueKCliques implements Theorem 2.10: deterministic
// k-clique listing in the μ-Congested-Clique in O(n^(k-2)/μ^(k/2-1))
// rounds for n ≤ μ ≤ n^(2-2/k). The returned program must be run on a
// sim.Engine over sim.NewComplete(g.N()); each node's input is its
// incident edges of g. All nodes share router (created once per run).
//
// Schedule: in block i, the master of every group-multiset receives all
// edges inside the i-th set of its subset cover (at most ~μ edge words)
// via Lenzen routing, lists the k-cliques in that batch, emits them,
// and frees the batch.
func CongestedCliqueKCliques(g *graph.Graph, k int, mu int64, router *OracleRouter) func(*sim.Ctx) {
	plan := newCCPlan(g.N(), k, mu)
	return func(c *sim.Ctx) {
		id := c.ID()
		nbr := g.Neighbors(id)
		c.Charge(int64(len(nbr))) // input adjacency
		defer c.Release(int64(len(nbr)))

		// Which multisets does this node's master role cover?
		var myMultisets []int
		for t, m := range plan.masters {
			if m == id {
				myMultisets = append(myMultisets, t)
			}
		}
		for blk := 0; blk < plan.blocks; blk++ {
			var out []Packet
			for t, cov := range plan.covers {
				if blk >= len(cov) {
					continue
				}
				uni := plan.universes[t]
				// Membership test for this node in S (local indices).
				inS := make(map[int]bool, len(cov[blk]))
				for _, li := range cov[blk] {
					inS[uni[li]] = true
				}
				if !inS[id] {
					continue
				}
				dst := plan.masters[t]
				for _, w := range nbr {
					if w > id && inS[w] {
						out = append(out, Packet{Dst: dst, A: int64(id), B: int64(w)})
					}
				}
			}
			recv := router.Route(c, out)
			if len(recv) > 0 {
				c.Charge(int64(2 * len(recv))) // the ≤ O(μ) edge batch
				edges := make([][2]int, len(recv))
				for i, p := range recv {
					edges[i] = [2]int{int(p.A), int(p.B)}
				}
				for _, cl := range ListInEdgeSet(edges, k) {
					c.Emit(cl)
				}
				c.Release(int64(2 * len(recv)))
			}
			_ = myMultisets
		}
	}
}

// PredictedCCRounds returns the Theorem 2.10 bound n^(k-2)/μ^(k/2-1),
// the theory column of experiment E2.
func PredictedCCRounds(n int, k int, mu int64) float64 {
	return math.Pow(float64(n), float64(k-2)) / math.Pow(float64(mu), float64(k)/2-1)
}
