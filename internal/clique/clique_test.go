package clique

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mucongest/internal/graph"
	"mucongest/internal/lowerbound"
	"mucongest/internal/sim"
)

func TestListAllSmall(t *testing.T) {
	// K4 has 4 triangles and 1 4-clique.
	g, _ := graph.FromEdges(4, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3},
		{U: 1, V: 2}, {U: 1, V: 3}, {U: 2, V: 3},
	})
	if tri := ListAll(g, 3); len(tri) != 4 {
		t.Fatalf("triangles in K4: %d", len(tri))
	}
	if k4 := ListAll(g, 4); len(k4) != 1 {
		t.Fatalf("4-cliques in K4: %d", len(k4))
	}
	if k5 := ListAll(g, 5); len(k5) != 0 {
		t.Fatalf("5-cliques in K4: %d", len(k5))
	}
}

func TestListInEdgeSetMatchesListAll(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Gnp(14, 0.5, rng)
	var edges [][2]int
	for _, e := range g.Edges() {
		edges = append(edges, [2]int{e.U, e.V})
	}
	for k := 3; k <= 4; k++ {
		a := ListAll(g, k)
		b := ListInEdgeSet(edges, k)
		if !SameSet(a, b) {
			t.Fatalf("k=%d: edge-set listing differs (%d vs %d)", k, len(a), len(b))
		}
	}
}

func TestDedupAndSameSet(t *testing.T) {
	a := []Clique{{1, 2, 3}, {3, 2, 1}, {4, 5, 6}}
	d := Dedup(a)
	if len(d) != 2 {
		t.Fatalf("dedup -> %d", len(d))
	}
	if !SameSet(a, []Clique{{4, 5, 6}, {1, 2, 3}}) {
		t.Fatal("SameSet false negative")
	}
	if SameSet(a, []Clique{{1, 2, 3}}) {
		t.Fatal("SameSet false positive")
	}
}

func TestLocalListingCompleteOnLowDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.Gnp(24, 0.3, rng)
	// Bound above Δ: every node active, so ALL triangles must be found.
	bound := g.MaxDegree()
	e := sim.New(g)
	res, err := e.Run(LocalListing(g, bound, bound))
	if err != nil {
		t.Fatal(err)
	}
	got := CollectTriangles(res)
	want := ListAll(g, 3)
	if !SameSet(got, want) {
		t.Fatalf("local listing found %d triangles, want %d", len(got), len(want))
	}
}

func TestLocalListingPartialCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Gnp(30, 0.4, rng)
	bound := 8
	e := sim.New(g)
	res, err := e.Run(LocalListing(g, bound, bound))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, cl := range CollectTriangles(res) {
		got[cl.Key()] = true
	}
	// Every triangle containing an active (deg ≤ bound) node must appear.
	for _, tri := range ListAll(g, 3) {
		hasActive := false
		for _, v := range tri {
			if g.Degree(v) <= bound {
				hasActive = true
			}
		}
		if hasActive && !got[tri.Key()] {
			t.Fatalf("missed triangle %v with active node", tri)
		}
	}
}

func TestLocalListingRoundsLinearInBound(t *testing.T) {
	g := graph.Star(40) // hub has degree 39, leaves degree 1
	e := sim.New(g)
	res, err := e.Run(LocalListing(g, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 4 {
		t.Fatalf("low-degree listing used %d rounds", res.Rounds)
	}
}

func TestOracleRouterDelivers(t *testing.T) {
	n := 10
	router := NewOracleRouter(n)
	e := sim.New(sim.NewComplete(n))
	res, err := e.Run(func(c *sim.Ctx) {
		// Everyone sends its id to node (id+1) mod n, 5 copies.
		var out []Packet
		for i := 0; i < 5; i++ {
			out = append(out, Packet{Dst: (c.ID() + 1) % n, A: int64(c.ID()), B: int64(i)})
		}
		in := router.Route(c, out)
		if len(in) != 5 {
			c.Emit(-1)
			return
		}
		for _, p := range in {
			if int(p.A) != (c.ID()+n-1)%n {
				c.Emit(-2)
				return
			}
		}
		c.Emit(int64(len(in)))
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if res.Outputs[v][0].(int64) != 5 {
			t.Fatalf("node %d: %v", v, res.Outputs[v][0])
		}
	}
}

func TestOracleRouterRoundCharge(t *testing.T) {
	n := 8
	router := NewOracleRouter(n)
	e := sim.New(sim.NewComplete(n))
	// Each node sends 2 messages to every other node: maxIn = maxOut =
	// 2(n-1), so routing costs ⌈2(n-1)/(n-1)⌉+1 = 3 rounds + 2 barriers.
	res, err := e.Run(func(c *sim.Ctx) {
		var out []Packet
		for rep := 0; rep < 2; rep++ {
			for d := 0; d < n; d++ {
				if d != c.ID() {
					out = append(out, Packet{Dst: d, A: int64(rep)})
				}
			}
		}
		router.Route(c, out)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 + 2 + 1
	if res.Rounds != want {
		t.Fatalf("rounds %d want %d", res.Rounds, want)
	}
}

func runCC(t *testing.T, g *graph.Graph, k int, mu int64) ([]Clique, *sim.Result) {
	t.Helper()
	router := NewOracleRouter(g.N())
	e := sim.New(sim.NewComplete(g.N()), sim.WithMu(mu*4)) // O(μ) slack
	res, err := e.Run(CongestedCliqueKCliques(g, k, mu, router))
	if err != nil {
		t.Fatal(err)
	}
	return CollectTriangles(res), res
}

func TestCongestedCliqueTrianglesComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{16, 27} {
		g := graph.Gnp(n, 0.5, rng)
		mu := int64(n) * 2
		got, _ := runCC(t, g, 3, mu)
		want := ListAll(g, 3)
		if !SameSet(got, want) {
			t.Fatalf("n=%d: CC listing %d triangles want %d", n, len(got), len(want))
		}
	}
}

func TestCongestedClique4Cliques(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.Gnp(16, 0.6, rng)
	got, _ := runCC(t, g, 4, 32)
	want := ListAll(g, 4)
	if !SameSet(got, want) {
		t.Fatalf("4-cliques: %d want %d", len(got), len(want))
	}
}

func TestCongestedCliqueMemoryScalesWithMu(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.Gnp(32, 0.5, rng)
	_, resSmall := runCC(t, g, 3, 32)
	_, resBig := runCC(t, g, 3, 512)
	if resSmall.MaxPeakWords() >= resBig.MaxPeakWords() {
		t.Fatalf("peak memory should grow with μ: %d vs %d",
			resSmall.MaxPeakWords(), resBig.MaxPeakWords())
	}
	if len(resSmall.Violations) > 0 || len(resBig.Violations) > 0 {
		t.Fatalf("μ violations: %v %v", resSmall.Violations, resBig.Violations)
	}
}

func TestCongestedCliqueRoundsDecreaseWithMu(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Gnp(48, 0.5, rng)
	_, r1 := runCC(t, g, 3, 48)
	_, r2 := runCC(t, g, 3, 48*8)
	if r2.Rounds >= r1.Rounds {
		t.Fatalf("rounds must drop as μ grows: μ=n %d vs μ=8n %d", r1.Rounds, r2.Rounds)
	}
}

func TestCliqueCountBoundLemma21(t *testing.T) {
	// Lemma 2.1: a graph with m edges has O(m^(k/2)) k-cliques.
	f := func(seed int64, nRaw, pRaw uint8) bool {
		n := int(nRaw%16) + 6
		p := 0.2 + float64(pRaw%60)/100
		g := graph.Gnp(n, p, rand.New(rand.NewSource(seed)))
		m := float64(g.M())
		for k := 3; k <= 4; k++ {
			cnt := float64(len(ListAll(g, k)))
			if cnt > lowerbound.KCliqueMax(m, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
