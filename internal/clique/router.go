package clique

import (
	"sort"
	"sync"

	"mucongest/internal/sim"
)

// Packet is one routed message: a destination and an O(log n)-bit
// payload.
type Packet struct {
	Dst     int
	A, B, C int64
}

// OracleRouter realizes Lenzen's routing scheme (Lemma 2.9 of the
// paper) for the μ-Congested-Clique: a routing instance in which every
// node sends and receives at most L messages completes in
// ⌈L/(n-1)⌉ + O(1) rounds. Lenzen's theorem guarantees a conflict-free
// schedule of that length exists; rather than re-implement his
// distributed sorting protocol, the router computes the schedule
// centrally (a documented substitution from the paper’s Section 2 routing) while charging
// the exact round count of the lemma and preserving the per-node
// message loads, which is what the experiments measure.
//
// Route is an SPMD subroutine: every node must call it at the same
// logical point. Memory for the received batch is charged to the
// receiving node by the caller.
type OracleRouter struct {
	n        int
	mu       sync.Mutex
	deposits [][]Packet
	received [][]Packet
	rounds   int
}

// NewOracleRouter returns a router for an n-node clique.
func NewOracleRouter(n int) *OracleRouter {
	return &OracleRouter{
		n:        n,
		deposits: make([][]Packet, n),
		received: make([][]Packet, n),
	}
}

// Route delivers every node's out packets and returns the packets
// addressed to this node, charging ⌈maxLoad/(n-1)⌉ + 1 rounds plus the
// two barrier rounds used for schedule agreement.
func (r *OracleRouter) Route(c *sim.Ctx, out []Packet) []Packet {
	r.mu.Lock()
	r.deposits[c.ID()] = out
	r.mu.Unlock()
	c.Tick() // barrier: all deposits visible afterwards
	if c.ID() == 0 {
		r.schedule()
	}
	c.Tick() // barrier: schedule visible to all
	c.Idle(r.rounds)
	return r.received[c.ID()]
}

// schedule computes the Lenzen round count from the realized loads and
// groups packets by destination in deterministic (src, payload) order.
func (r *OracleRouter) schedule() {
	in := make([]int, r.n)
	maxOut := 0
	for _, d := range r.deposits {
		if len(d) > maxOut {
			maxOut = len(d)
		}
		for _, p := range d {
			in[p.Dst]++
		}
	}
	maxIn := 0
	for _, k := range in {
		if k > maxIn {
			maxIn = k
		}
	}
	for v := range r.received {
		r.received[v] = nil
	}
	type tagged struct {
		src int
		p   Packet
	}
	byDst := make([][]tagged, r.n)
	for src, d := range r.deposits {
		for _, p := range d {
			byDst[p.Dst] = append(byDst[p.Dst], tagged{src, p})
		}
		r.deposits[src] = nil
	}
	for v := range byDst {
		sort.Slice(byDst[v], func(i, j int) bool {
			a, b := byDst[v][i], byDst[v][j]
			if a.src != b.src {
				return a.src < b.src
			}
			if a.p.A != b.p.A {
				return a.p.A < b.p.A
			}
			return a.p.B < b.p.B
		})
		for _, tg := range byDst[v] {
			r.received[v] = append(r.received[v], tg.p)
		}
	}
	load := maxOut
	if maxIn > load {
		load = maxIn
	}
	r.rounds = (load+r.n-2)/(r.n-1) + 1
	if load == 0 {
		r.rounds = 0
	}
}
