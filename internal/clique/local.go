package clique

import (
	"mucongest/internal/graph"
	"mucongest/internal/sim"
)

// Message kinds for the local-listing protocol.
const (
	kindQuery int32 = 100 + iota
	kindAnswer
)

// LocalListing implements Theorem B.1: every node v with
// deg(v) ≤ degBound learns all triangles it belongs to, in
// O(max active degree) rounds, using only its incident edges. All other
// nodes cooperate by answering adjacency queries. Triangles are emitted
// as Clique values by the active node with the smallest id in the
// triangle among active ids (so each triangle with at least one active
// node is emitted at least once; callers dedup).
//
// Memory: each node stores its adjacency list (deg words, an input) and
// O(1) extra words.
//
// Returns a node program to be run under sim; phases is 2·phaseCount
// rounds where phaseCount must upper-bound every active node's degree.
func LocalListing(g *graph.Graph, degBound, phaseCount int) func(*sim.Ctx) {
	return func(c *sim.Ctx) {
		id := c.ID()
		nbr := g.Neighbors(id)
		deg := len(nbr)
		c.Charge(int64(deg)) // the node's input adjacency
		defer c.Release(int64(deg))
		active := deg <= degBound && deg > 0
		for phase := 0; phase < phaseCount; phase++ {
			// Round A: active nodes broadcast their phase-th neighbor.
			var queried int64 = -1
			if active && phase < deg {
				queried = int64(nbr[phase])
				c.Broadcast(sim.Msg{Kind: kindQuery, A: queried})
			}
			inA := c.Tick()
			// Round B: answer each query on the edge it arrived on.
			for _, m := range inA {
				if m.Msg.Kind != kindQuery {
					continue
				}
				ans := int64(0)
				if g.HasEdge(id, int(m.Msg.A)) {
					ans = 1
				}
				c.SendID(m.From, sim.Msg{Kind: kindAnswer, A: m.Msg.A, B: ans})
			}
			inB := c.Tick()
			if queried < 0 {
				continue
			}
			u := int(queried)
			for _, m := range inB {
				if m.Msg.Kind != kindAnswer || int(m.Msg.A) != u || m.Msg.B != 1 {
					continue
				}
				w := m.From
				if u >= w {
					continue // emit each (u,w) pair once
				}
				tri := Clique{id, u, w}
				sortClique(tri)
				c.Emit(tri)
			}
		}
	}
}

func sortClique(c Clique) {
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
}

// CollectTriangles extracts emitted Clique values from a sim result and
// dedups them.
func CollectTriangles(res *sim.Result) []Clique {
	var out []Clique
	for _, outs := range res.Outputs {
		for _, o := range outs {
			if cl, ok := o.(Clique); ok {
				out = append(out, cl)
			}
		}
	}
	return Dedup(out)
}
