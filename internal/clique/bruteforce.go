// Package clique implements the paper's clique-listing algorithms: the
// local listing primitive of Theorem B.1, the deterministic k-clique
// listing in the μ-Congested-Clique via subset covers (Theorem 2.10),
// and the μ-CONGEST triangle listing of Theorem 1.2 built on clustering
// and memory-chunked edge delivery, plus a brute-force reference
// enumerator used for correctness checks and by master nodes on their
// μ-bounded edge batches.
package clique

import (
	"sort"

	"mucongest/internal/graph"
)

// Clique is a sorted list of k node ids forming a clique.
type Clique []int

// Key returns a canonical string key for set-comparison in tests and
// dedup.
func (c Clique) Key() string {
	b := make([]byte, 0, len(c)*4)
	for _, v := range c {
		b = append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return string(b)
}

// ListAll enumerates every k-clique of g by ordered extension: cliques
// are grown in increasing node order, intersecting candidate sets. The
// reference algorithm for tests.
func ListAll(g *graph.Graph, k int) []Clique {
	if k < 1 {
		return nil
	}
	var out []Clique
	cur := make([]int, 0, k)
	var extend func(cands []int)
	extend = func(cands []int) {
		if len(cur) == k {
			cl := make(Clique, k)
			copy(cl, cur)
			out = append(out, cl)
			return
		}
		for i, v := range cands {
			cur = append(cur, v)
			if len(cur) == k {
				extend(nil)
			} else {
				next := intersectGreater(cands[i+1:], g.Neighbors(v))
				extend(next)
			}
			cur = cur[:len(cur)-1]
		}
	}
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	extend(all)
	return out
}

// intersectGreater returns the intersection of two sorted int slices.
func intersectGreater(a, b []int) []int {
	out := make([]int, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// ListInEdgeSet enumerates all k-cliques of the graph induced by the
// given edge list (node ids arbitrary). Used by master nodes on their
// ≤ μ-word edge batches.
func ListInEdgeSet(edges [][2]int, k int) []Clique {
	ids := make(map[int]int)
	var order []int
	for _, e := range edges {
		for _, v := range e {
			if _, ok := ids[v]; !ok {
				ids[v] = len(order)
				order = append(order, v)
			}
		}
	}
	sort.Ints(order)
	for i, v := range order {
		ids[v] = i
	}
	g := graph.New(len(order))
	seen := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		u, v := ids[e[0]], ids[e[1]]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if !seen[[2]int{u, v}] {
			seen[[2]int{u, v}] = true
			g.AddEdge(u, v)
		}
	}
	g.Finish()
	var out []Clique
	for _, cl := range ListAll(g, k) {
		mapped := make(Clique, len(cl))
		for i, v := range cl {
			mapped[i] = order[v]
		}
		sort.Ints(mapped)
		out = append(out, mapped)
	}
	return out
}

// Dedup returns the set union of cliques, sorted canonically.
func Dedup(cls []Clique) []Clique {
	seen := make(map[string]Clique, len(cls))
	for _, c := range cls {
		s := make(Clique, len(c))
		copy(s, c)
		sort.Ints(s)
		seen[s.Key()] = s
	}
	out := make([]Clique, 0, len(seen))
	for _, c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		for x := range out[i] {
			if out[i][x] != out[j][x] {
				return out[i][x] < out[j][x]
			}
		}
		return false
	})
	return out
}

// SameSet reports whether two clique collections are equal as sets.
func SameSet(a, b []Clique) bool {
	da, db := Dedup(a), Dedup(b)
	if len(da) != len(db) {
		return false
	}
	for i := range da {
		if da[i].Key() != db[i].Key() {
			return false
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
