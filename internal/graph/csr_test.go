package graph

import (
	"math/rand"
	"sync"
	"testing"
)

// csrMatchesGraph asserts the two representations are edge-for-edge and
// port-for-port identical: same n, m, degrees, neighbor rows (in
// order), NeighborAt and PortOf answers.
func csrMatchesGraph(t *testing.T, name string, c *CSR, g *Graph) {
	t.Helper()
	if c.N() != g.N() || c.M() != g.M() {
		t.Fatalf("%s: CSR n=%d m=%d, graph n=%d m=%d", name, c.N(), c.M(), g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if c.Degree(v) != g.Degree(v) {
			t.Fatalf("%s: node %d degree CSR %d, graph %d", name, v, c.Degree(v), g.Degree(v))
		}
		gn := g.Neighbors(v)
		cn := c.Neighbors(v)
		if len(cn) != len(gn) {
			t.Fatalf("%s: node %d row length CSR %d, graph %d", name, v, len(cn), len(gn))
		}
		for p, u := range gn {
			if cn[p] != u {
				t.Fatalf("%s: node %d port %d: CSR %d, graph %d", name, v, p, cn[p], u)
			}
			if got := c.NeighborAt(v, p); got != u {
				t.Fatalf("%s: NeighborAt(%d,%d) = %d, want %d", name, v, p, got, u)
			}
			if got := c.PortOf(v, u); got != p {
				t.Fatalf("%s: PortOf(%d,%d) = %d, want %d", name, v, u, got, p)
			}
		}
		if c.PortOf(v, v) != -1 {
			t.Fatalf("%s: PortOf(%d,%d) should be -1", name, v, v)
		}
	}
}

// TestCSRMatchesExplicit pins every direct CSR constructor against its
// explicit counterpart built with an identically seeded RNG: the draw
// sequences are shared, so the adjacency must be bit-identical.
func TestCSRMatchesExplicit(t *testing.T) {
	seed := func() *rand.Rand { return rand.New(rand.NewSource(99)) }
	cases := []struct {
		name string
		csr  *CSR
		g    *Graph
	}{
		{"cycle", CycleCSR(97), Cycle(97)},
		{"path", PathCSR(41), Path(41)},
		{"star", StarCSR(33), Star(33)},
		{"cycliques", CycleOfCliquesCSR(5, 6), CycleOfCliques(5, 6)},
		{"grid", GridCSR(7, 5), Grid(7, 5)},
		{"gnp", GnpCSR(60, 0.3, seed()), Gnp(60, 0.3, seed())},
		{"gnpconn", GnpConnectedCSR(40, 0.2, seed()), GnpConnected(40, 0.2, seed())},
		{"hub", HubAndBlobCSR(50, 0.25, seed()), HubAndBlob(50, 0.25, seed())},
		{"barbell", BarbellExpandersCSR(20, 0.4, seed()), BarbellExpanders(20, 0.4, seed())},
		{"regular", RandomRegularCSR(48, 5, seed()), RandomRegular(48, 5, seed())},
		{"powerlaw", BarabasiAlbertCSR(300, 3, seed()), BarabasiAlbert(300, 3, seed())},
	}
	for _, tc := range cases {
		csrMatchesGraph(t, tc.name, tc.csr, tc.g)
		conv := FromGraph(tc.g)
		csrMatchesGraph(t, tc.name+"/FromGraph", conv, tc.g)
	}
}

// TestCSRConnected pins Connected on both sides of the truth.
func TestCSRConnected(t *testing.T) {
	if !CycleCSR(50).Connected() {
		t.Error("cycle must be connected")
	}
	if GnpCSR(50, 0, rand.New(rand.NewSource(1))).Connected() {
		t.Error("empty G(50,0) must be disconnected")
	}
	if !GnpCSR(1, 0, rand.New(rand.NewSource(1))).Connected() {
		t.Error("single node is connected")
	}
}

// TestGnpSparseSampler checks the skip-sampling regime above
// gnpDenseLimit: determinism for equal seeds, symmetric well-formed
// adjacency, and an edge count within a loose binomial window.
func TestGnpSparseSampler(t *testing.T) {
	const n = 3000 // > gnpDenseLimit
	const p = 0.001
	a := GnpCSR(n, p, rand.New(rand.NewSource(7)))
	b := GnpCSR(n, p, rand.New(rand.NewSource(7)))
	if a.M() != b.M() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.M(), b.M())
	}
	for v := 0; v < n; v++ {
		if a.Degree(v) != b.Degree(v) {
			t.Fatalf("same seed, node %d degree %d vs %d", v, a.Degree(v), b.Degree(v))
		}
	}
	exp := p * float64(n) * float64(n-1) / 2 // ≈ 4498
	if m := float64(a.M()); m < exp/2 || m > 2*exp {
		t.Errorf("edge count %v far from expectation %v", m, exp)
	}
	// Symmetry + sortedness + no self-loops via the explicit wrapper,
	// which shares the exact sampler output.
	g := Gnp(n, p, rand.New(rand.NewSource(7)))
	if g.M() != a.M() {
		t.Fatalf("Graph and CSR wrappers disagree: %d vs %d edges", g.M(), a.M())
	}
	csrMatchesGraph(t, "gnp-sparse", a, g)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if u == v {
				t.Fatalf("self-loop at %d", v)
			}
			if !g.HasEdge(u, v) {
				t.Fatalf("asymmetric edge {%d,%d}", v, u)
			}
		}
	}
}

// TestCSRNeighborsConcurrent hammers the lazy Neighbors cache from many
// goroutines (run under -race in CI): every call must return the same
// canonical slice content.
func TestCSRNeighborsConcurrent(t *testing.T) {
	c := BarabasiAlbertCSR(512, 3, rand.New(rand.NewSource(3)))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := 0; v < c.N(); v++ {
				nb := c.Neighbors(v)
				if len(nb) != c.Degree(v) {
					t.Errorf("node %d: len(Neighbors)=%d, Degree=%d", v, len(nb), c.Degree(v))
					return
				}
				for p, u := range nb {
					if c.NeighborAt(v, p) != u {
						t.Errorf("node %d port %d mismatch", v, p)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestCSRBytes pins the memory model the topo registry budgets with.
func TestCSRBytes(t *testing.T) {
	c := CycleCSR(1000)
	want := CSRBytes(1000, 1000)
	if c.Bytes() != want {
		t.Fatalf("Bytes() = %d, want %d", c.Bytes(), want)
	}
	if want != 8*1001+8*1000 {
		t.Fatalf("CSRBytes(1000,1000) = %d", want)
	}
}
