// Package graph provides the undirected-graph type used as both input
// graph and communication topology throughout the repository, plus the
// workload generators the paper's experiments need (G(n,p), the
// cycle-of-cliques lower-bound instance of Theorem 1.4, random regular
// graphs, colored graphs for monochromatic-triangle statistics, ...).
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge {U, V} with U < V, optionally labeled.
type Edge struct {
	U, V  int
	Label int64
}

// Graph is a simple undirected graph on nodes 0..N-1 with adjacency
// lists. It implements sim.Topology.
type Graph struct {
	n   int
	adj [][]int
	m   int
}

// New returns an empty graph on n nodes.
func New(n int) *Graph {
	return &Graph{n: n, adj: make([][]int, n)}
}

// FromEdges builds a graph on n nodes from an edge list. Duplicate and
// self-loop edges are rejected.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	g := New(n)
	seen := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		u, v := e.U, e.V
		if u == v {
			return nil, fmt.Errorf("graph: self-loop at %d", u)
		}
		if u > v {
			u, v = v, u
		}
		if u < 0 || v >= n {
			return nil, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, n)
		}
		if seen[[2]int{u, v}] {
			return nil, fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
		}
		seen[[2]int{u, v}] = true
		g.addEdge(u, v)
	}
	g.sortAdj()
	return g, nil
}

func (g *Graph) addEdge(u, v int) {
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.m++
}

// AddEdge inserts the undirected edge {u,v}. It does not check for
// duplicates; use FromEdges for validated construction. Call sortAdj via
// Finish after bulk insertion.
func (g *Graph) AddEdge(u, v int) { g.addEdge(u, v) }

// Finish sorts adjacency lists; call once after bulk AddEdge use.
func (g *Graph) Finish() { g.sortAdj() }

func (g *Graph) sortAdj() {
	for _, a := range g.adj {
		sort.Ints(a)
	}
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// M returns the edge count.
func (g *Graph) M() int { return g.m }

// Neighbors returns v's sorted neighbor list. The slice must not be
// modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns deg(v).
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns Δ.
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) > d {
			d = len(g.adj[v])
		}
	}
	return d
}

// AvgDegree returns 2m/n.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// HasEdge reports whether {u,v} is present, via binary search.
func (g *Graph) HasEdge(u, v int) bool {
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// Edges returns all edges with U < V in lexicographic order.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				es = append(es, Edge{U: u, V: v})
			}
		}
	}
	return es
}

// Diameter returns the eccentricity maximum over all nodes via repeated
// BFS, or -1 if the graph is disconnected. O(n·m); intended for test and
// workload sizes.
func (g *Graph) Diameter() int {
	diam := 0
	dist := make([]int, g.n)
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		seen := 1
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.adj[v] {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					if dist[u] > diam {
						diam = dist[u]
					}
					queue = append(queue, u)
					seen++
				}
			}
		}
		if seen < g.n {
			return -1
		}
	}
	return diam
}

// Connected reports whether the graph is connected (true for n ≤ 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	cnt := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.adj[v] {
			if !seen[u] {
				seen[u] = true
				cnt++
				stack = append(stack, u)
			}
		}
	}
	return cnt == g.n
}

// Subgraph returns the induced subgraph on keep (given as a node set),
// along with the mapping from new ids to original ids.
func (g *Graph) Subgraph(keep map[int]bool) (*Graph, []int) {
	orig := make([]int, 0, len(keep))
	for v := 0; v < g.n; v++ {
		if keep[v] {
			orig = append(orig, v)
		}
	}
	newID := make(map[int]int, len(orig))
	for i, v := range orig {
		newID[v] = i
	}
	sub := New(len(orig))
	for i, v := range orig {
		for _, u := range g.adj[v] {
			if j, ok := newID[u]; ok && i < j {
				sub.addEdge(i, j)
			}
		}
	}
	sub.sortAdj()
	return sub, orig
}
