package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Gnp samples an Erdős–Rényi random graph G(n,p). The paper's clique
// lower bound (Theorem 1.1) and listing benches use G(n,1/2).
func Gnp(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.addEdge(u, v)
			}
		}
	}
	g.sortAdj()
	return g
}

// GnpConnected samples G(n,p) graphs until a connected one appears
// (panicking after 1000 attempts, far beyond need for p above the
// connectivity threshold).
func GnpConnected(n int, p float64, rng *rand.Rand) *Graph {
	for i := 0; i < 1000; i++ {
		g := Gnp(n, p, rng)
		if g.Connected() {
			return g
		}
	}
	panic(fmt.Sprintf("graph: could not sample connected G(%d,%g)", n, p))
}

// CycleOfCliques builds the Theorem 1.4 lower-bound instance: k cliques
// of size s connected in a cycle through their 0-th members. The total
// node count is k·s; Δ = s+1 at the connector nodes.
func CycleOfCliques(k, s int) *Graph {
	if k < 3 || s < 2 {
		panic("graph: CycleOfCliques needs k ≥ 3 cliques of size ≥ 2")
	}
	g := New(k * s)
	for i := 0; i < k; i++ {
		base := i * s
		for a := 0; a < s; a++ {
			for b := a + 1; b < s; b++ {
				g.addEdge(base+a, base+b)
			}
		}
		next := ((i + 1) % k) * s
		g.addEdge(base, next)
	}
	g.sortAdj()
	return g
}

// Star builds a star on n nodes with center 0: the extreme max-degree
// topology used for the streaming-simulator workloads.
func Star(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.addEdge(0, v)
	}
	g.sortAdj()
	return g
}

// HubAndBlob builds a graph with a designated max-degree hub (node 0)
// adjacent to all others, plus a G(n-1, p) graph among the others. The
// p-pass streaming simulation picks the hub as simulator.
func HubAndBlob(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.addEdge(0, v)
	}
	for u := 1; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.addEdge(u, v)
			}
		}
	}
	g.sortAdj()
	return g
}

// RandomRegular samples a d-regular graph on n nodes via the pairing
// model followed by random edge-switch repair of self-loops and
// multi-edges (rejection alone is hopeless beyond small d). n·d must
// be even and d < n.
func RandomRegular(n, d int, rng *rand.Rand) *Graph {
	if n*d%2 != 0 {
		panic("graph: RandomRegular requires n·d even")
	}
	if d >= n {
		panic("graph: RandomRegular requires d < n")
	}
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	type pair struct{ a, b int }
	pairs := make([]pair, 0, n*d/2)
	for i := 0; i < len(stubs); i += 2 {
		pairs = append(pairs, pair{stubs[i], stubs[i+1]})
	}
	count := func(u, v int) int {
		k := 0
		for _, p := range pairs {
			if (p.a == u && p.b == v) || (p.a == v && p.b == u) {
				k++
			}
		}
		return k
	}
	bad := func(p pair) bool { return p.a == p.b || count(p.a, p.b) > 1 }
	for guard := 0; guard < 200*n*d; guard++ {
		i := -1
		for j, p := range pairs {
			if bad(p) {
				i = j
				break
			}
		}
		if i < 0 {
			g := New(n)
			for _, p := range pairs {
				g.addEdge(p.a, p.b)
			}
			g.sortAdj()
			return g
		}
		j := rng.Intn(len(pairs))
		if j == i {
			continue
		}
		pi, pj := pairs[i], pairs[j]
		pairs[i], pairs[j] = pair{pi.a, pj.b}, pair{pj.a, pi.b}
	}
	panic("graph: RandomRegular switch repair did not converge")
}

// Path builds the n-node path 0-1-...-(n-1); the extreme-diameter
// topology for aggregation tests.
func Path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.addEdge(v, v+1)
	}
	g.sortAdj()
	return g
}

// Complete builds the complete graph K_n with explicit adjacency:
// O(n²) memory, intended for workload-graph scales. Engine-scale
// all-to-all topologies should use the implicit sim.NewComplete, which
// is O(1).
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.addEdge(u, v)
		}
	}
	g.sortAdj()
	return g
}

// Cycle builds the n-node cycle.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle needs n ≥ 3")
	}
	g := New(n)
	for v := 0; v < n; v++ {
		g.addEdge(v, (v+1)%n)
	}
	g.sortAdj()
	return g
}

// BarbellExpanders joins two G(s, p) blobs by a single bridge edge:
// a standard low-conductance instance for expander-decomposition tests.
func BarbellExpanders(s int, p float64, rng *rand.Rand) *Graph {
	g := New(2 * s)
	for u := 0; u < s; u++ {
		for v := u + 1; v < s; v++ {
			if rng.Float64() < p {
				g.addEdge(u, v)
			}
			if rng.Float64() < p {
				g.addEdge(s+u, s+v)
			}
		}
	}
	g.addEdge(0, s)
	g.sortAdj()
	return g
}

// Grid builds the rows×cols grid graph: node (r,c) has id r·cols+c and
// is adjacent to its horizontal and vertical neighbors. A moderate-
// diameter, bounded-degree topology for aggregation workloads.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic("graph: Grid needs rows, cols ≥ 1")
	}
	g := New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				g.addEdge(v, v+1)
			}
			if r+1 < rows {
				g.addEdge(v, v+cols)
			}
		}
	}
	g.sortAdj()
	return g
}

// Torus builds the rows×cols grid with wraparound edges in both
// dimensions: every node has degree exactly 4. Both dimensions must be
// at least 3, else the wrap edges would duplicate grid edges or form
// self-loops.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: Torus needs rows, cols ≥ 3")
	}
	g := New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			g.addEdge(v, r*cols+(c+1)%cols)
			g.addEdge(v, ((r+1)%rows)*cols+c)
		}
	}
	g.sortAdj()
	return g
}

// Hypercube builds the dim-dimensional hypercube on 2^dim nodes: ids
// are adjacent iff they differ in exactly one bit. Diameter and degree
// are both dim — the classic logarithmic-diameter interconnect.
func Hypercube(dim int) *Graph {
	if dim < 1 || dim > 20 {
		panic("graph: Hypercube needs 1 ≤ dim ≤ 20")
	}
	n := 1 << dim
	g := New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			u := v ^ (1 << b)
			if v < u {
				g.addEdge(v, u)
			}
		}
	}
	g.sortAdj()
	return g
}

// BarabasiAlbert samples a preferential-attachment (power-law degree)
// graph: starting from a complete seed on attach+1 nodes, each new node
// connects to attach distinct existing nodes chosen proportionally to
// their current degree. Requires n > attach ≥ 1. The result is always
// connected.
func BarabasiAlbert(n, attach int, rng *rand.Rand) *Graph {
	if attach < 1 || n <= attach {
		panic("graph: BarabasiAlbert needs n > attach ≥ 1")
	}
	g := New(n)
	// targets holds one entry per edge endpoint, so sampling an element
	// uniformly is degree-proportional sampling.
	targets := make([]int, 0, 2*(attach*(attach+1)/2+(n-attach-1)*attach))
	for u := 0; u <= attach; u++ {
		for v := u + 1; v <= attach; v++ {
			g.addEdge(u, v)
			targets = append(targets, u, v)
		}
	}
	chosen := make(map[int]bool, attach)
	picks := make([]int, 0, attach)
	for v := attach + 1; v < n; v++ {
		for k := range chosen {
			delete(chosen, k)
		}
		for len(chosen) < attach {
			chosen[targets[rng.Intn(len(targets))]] = true
		}
		// Materialize the pick set in sorted order: the order of the
		// appends below shifts every later rng.Intn index, so iterating
		// the map directly would make the sample depend on Go's map
		// ordering instead of only on the seed.
		picks = picks[:0]
		for u := range chosen {
			picks = append(picks, u)
		}
		sort.Ints(picks)
		for _, u := range picks {
			g.addEdge(v, u)
			targets = append(targets, v, u)
		}
	}
	g.sortAdj()
	return g
}

// ColorEdges assigns each edge of g a color in [1,c] according to
// weights (nil means uniform), returning the edge→color map that the
// monochromatic-triangle statistics (§1.2.2) consume.
func ColorEdges(g *Graph, c int, weights []float64, rng *rand.Rand) map[[2]int]int64 {
	colors := make(map[[2]int]int64, g.M())
	var cum []float64
	if weights != nil {
		if len(weights) != c {
			panic("graph: ColorEdges weights length must equal c")
		}
		cum = make([]float64, c)
		s := 0.0
		for i, w := range weights {
			s += w
			cum[i] = s
		}
		for i := range cum {
			cum[i] /= s
		}
	}
	for _, e := range g.Edges() {
		var col int64
		if cum == nil {
			col = int64(rng.Intn(c)) + 1
		} else {
			x := rng.Float64()
			lo := 0
			for lo < c-1 && cum[lo] < x {
				lo++
			}
			col = int64(lo) + 1
		}
		colors[[2]int{e.U, e.V}] = col
	}
	return colors
}

// ColoredGnp samples G(n,p) and colors its edges via ColorEdges. It
// returns the graph and the edge→color map, the input for
// monochromatic-triangle statistics (§1.2.2).
func ColoredGnp(n int, p float64, c int, weights []float64, rng *rand.Rand) (*Graph, map[[2]int]int64) {
	g := Gnp(n, p, rng)
	return g, ColorEdges(g, c, weights, rng)
}
