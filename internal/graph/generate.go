package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// The random generators in this file are built around flat edge-pair
// lists ([]int32 of u0,v0,u1,v1,...): one core draws the edges, and
// thin wrappers materialize either the explicit *Graph (pairsGraph) or
// the compact *CSR (fromPairs). The cores preserve the historical RNG
// draw sequences exactly — the golden determinism digests and every
// recorded experiment depend on a seed reproducing the same graph —
// except where a generator switches to a sparse sampler above
// gnpDenseLimit, which is documented on the generator.

// pairsGraph materializes a pair list as an explicit adjacency graph.
func pairsGraph(n int, pairs []int32) *Graph {
	g := New(n)
	for i := 0; i < len(pairs); i += 2 {
		g.addEdge(int(pairs[i]), int(pairs[i+1]))
	}
	g.sortAdj()
	return g
}

// gnpDenseLimit is the node count up to which G(n,p) sampling draws
// one rng.Float64 per candidate pair (the historical draw sequence).
// Above it, the O(n²) loop is replaced by geometric skip sampling:
// same distribution, O(n + m) time, but a different draw sequence —
// so a seed produces different (equally valid) graphs on either side
// of the limit.
const gnpDenseLimit = 2048

// gnpPairsInto appends a G(n,p) sample over nodes off..off+n-1 to
// pairs. Dense sampling below gnpDenseLimit, skip sampling above.
func gnpPairsInto(pairs []int32, n int, p float64, rng *rand.Rand, off int32) []int32 {
	if n <= gnpDenseLimit {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < p {
					pairs = append(pairs, off+int32(u), off+int32(v))
				}
			}
		}
		return pairs
	}
	if p <= 0 {
		return pairs
	}
	// Geometric skip sampling over the linearized pair indices
	// (0,1),(0,2),...,(0,n-1),(1,2),...: the gap to the next sampled
	// pair is geometrically distributed with parameter p.
	total := int64(n) * int64(n-1) / 2
	logq := math.Log1p(-p) // log(1-p) < 0; -Inf when p == 1 (skip 0, take all)
	// cumBefore(a) = pairs in rows < a; row a holds pairs (a, a+1..n-1).
	cumBefore := func(a int64) int64 { return a*int64(n-1) - a*(a-1)/2 }
	for i := int64(-1); ; {
		f := math.Log1p(-rng.Float64()) / logq
		if f >= float64(total-i) { // also guards int64 overflow at tiny p
			break
		}
		i += int64(f) + 1
		if i >= total {
			break
		}
		lo, hi := int64(0), int64(n-2)
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if cumBefore(mid) <= i {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		a := lo
		b := a + 1 + (i - cumBefore(a))
		pairs = append(pairs, off+int32(a), off+int32(b))
	}
	return pairs
}

func gnpPairs(n int, p float64, rng *rand.Rand) []int32 {
	est := int64(p * float64(n) * float64(n-1) / 2)
	return gnpPairsInto(make([]int32, 0, 2*est), n, p, rng, 0)
}

// Gnp samples an Erdős–Rényi random graph G(n,p). The paper's clique
// lower bound (Theorem 1.1) and listing benches use G(n,1/2). Above
// gnpDenseLimit nodes the sampler switches from per-pair draws to
// geometric skip sampling (see gnpPairsInto).
func Gnp(n int, p float64, rng *rand.Rand) *Graph {
	return pairsGraph(n, gnpPairs(n, p, rng))
}

// GnpCSR is Gnp emitting the compact CSR representation directly: the
// identical draw sequence as Gnp for equal n, so both representations
// of a seed are edge-for-edge identical.
func GnpCSR(n int, p float64, rng *rand.Rand) *CSR {
	return fromPairs(n, gnpPairs(n, p, rng))
}

// GnpConnected samples G(n,p) graphs until a connected one appears
// (panicking after 1000 attempts, far beyond need for p above the
// connectivity threshold).
func GnpConnected(n int, p float64, rng *rand.Rand) *Graph {
	for i := 0; i < 1000; i++ {
		g := Gnp(n, p, rng)
		if g.Connected() {
			return g
		}
	}
	panic(fmt.Sprintf("graph: could not sample connected G(%d,%g)", n, p))
}

// GnpConnectedCSR is GnpConnected emitting CSR directly.
func GnpConnectedCSR(n int, p float64, rng *rand.Rand) *CSR {
	for i := 0; i < 1000; i++ {
		c := GnpCSR(n, p, rng)
		if c.Connected() {
			return c
		}
	}
	panic(fmt.Sprintf("graph: could not sample connected G(%d,%g)", n, p))
}

// cycliquesPairs emits the CycleOfCliques edge list.
func cycliquesPairs(k, s int) []int32 {
	if k < 3 || s < 2 {
		panic("graph: CycleOfCliques needs k ≥ 3 cliques of size ≥ 2")
	}
	pairs := make([]int32, 0, 2*k*(s*(s-1)/2+1))
	for i := 0; i < k; i++ {
		base := int32(i * s)
		for a := int32(0); a < int32(s); a++ {
			for b := a + 1; b < int32(s); b++ {
				pairs = append(pairs, base+a, base+b)
			}
		}
		next := int32(((i + 1) % k) * s)
		pairs = append(pairs, base, next)
	}
	return pairs
}

// CycleOfCliques builds the Theorem 1.4 lower-bound instance: k cliques
// of size s connected in a cycle through their 0-th members. The total
// node count is k·s; Δ = s+1 at the connector nodes.
func CycleOfCliques(k, s int) *Graph { return pairsGraph(k*s, cycliquesPairs(k, s)) }

// CycleOfCliquesCSR is CycleOfCliques emitting CSR directly.
func CycleOfCliquesCSR(k, s int) *CSR { return fromPairs(k*s, cycliquesPairs(k, s)) }

func starPairs(n int) []int32 {
	pairs := make([]int32, 0, 2*(n-1))
	for v := int32(1); v < int32(n); v++ {
		pairs = append(pairs, 0, v)
	}
	return pairs
}

// Star builds a star on n nodes with center 0: the extreme max-degree
// topology used for the streaming-simulator workloads.
func Star(n int) *Graph { return pairsGraph(n, starPairs(n)) }

// StarCSR is Star emitting CSR directly.
func StarCSR(n int) *CSR { return fromPairs(n, starPairs(n)) }

// hubPairs emits the hub edges followed by the blob sample; the blob
// draws are identical to a G(n-1,p) over ids shifted by one.
func hubPairs(n int, p float64, rng *rand.Rand) []int32 {
	pairs := make([]int32, 0, 2*(n-1))
	for v := int32(1); v < int32(n); v++ {
		pairs = append(pairs, 0, v)
	}
	return gnpPairsInto(pairs, n-1, p, rng, 1)
}

// HubAndBlob builds a graph with a designated max-degree hub (node 0)
// adjacent to all others, plus a G(n-1, p) graph among the others. The
// p-pass streaming simulation picks the hub as simulator. The blob
// inherits Gnp's sampler switch above gnpDenseLimit nodes.
func HubAndBlob(n int, p float64, rng *rand.Rand) *Graph {
	return pairsGraph(n, hubPairs(n, p, rng))
}

// HubAndBlobCSR is HubAndBlob emitting CSR directly.
func HubAndBlobCSR(n int, p float64, rng *rand.Rand) *CSR {
	return fromPairs(n, hubPairs(n, p, rng))
}

// regularPairs runs the pairing model with switch repair and returns
// the flat edge list. The repair keeps pair multiplicities in a map so
// each badness check is O(1) instead of an O(m) scan — the draw
// sequence (shuffle, switch partners) is unchanged, only the scan cost.
func regularPairs(n, d int, rng *rand.Rand) []int32 {
	if n*d%2 != 0 {
		panic("graph: RandomRegular requires n·d even")
	}
	if d >= n {
		panic("graph: RandomRegular requires d < n")
	}
	stubs := make([]int32, 0, n*d)
	for v := int32(0); v < int32(n); v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	type pair struct{ a, b int32 }
	pairs := make([]pair, 0, n*d/2)
	key := func(p pair) uint64 {
		a, b := p.a, p.b
		if a > b {
			a, b = b, a
		}
		return uint64(uint32(a))<<32 | uint64(uint32(b))
	}
	cnt := make(map[uint64]int, n*d/2)
	for i := 0; i < len(stubs); i += 2 {
		p := pair{stubs[i], stubs[i+1]}
		pairs = append(pairs, p)
		cnt[key(p)]++
	}
	bad := func(p pair) bool { return p.a == p.b || cnt[key(p)] > 1 }
	for guard := 0; guard < 200*n*d; guard++ {
		i := -1
		for j, p := range pairs {
			if bad(p) {
				i = j
				break
			}
		}
		if i < 0 {
			out := make([]int32, 0, 2*len(pairs))
			for _, p := range pairs {
				out = append(out, p.a, p.b)
			}
			return out
		}
		j := rng.Intn(len(pairs))
		if j == i {
			continue
		}
		pi, pj := pairs[i], pairs[j]
		cnt[key(pi)]--
		cnt[key(pj)]--
		pairs[i], pairs[j] = pair{pi.a, pj.b}, pair{pj.a, pi.b}
		cnt[key(pairs[i])]++
		cnt[key(pairs[j])]++
	}
	panic("graph: RandomRegular switch repair did not converge")
}

// RandomRegular samples a d-regular graph on n nodes via the pairing
// model followed by random edge-switch repair of self-loops and
// multi-edges (rejection alone is hopeless beyond small d). n·d must
// be even and d < n.
func RandomRegular(n, d int, rng *rand.Rand) *Graph {
	return pairsGraph(n, regularPairs(n, d, rng))
}

// RandomRegularCSR is RandomRegular emitting CSR directly, with the
// identical draw sequence.
func RandomRegularCSR(n, d int, rng *rand.Rand) *CSR {
	return fromPairs(n, regularPairs(n, d, rng))
}

func pathPairs(n int) []int32 {
	pairs := make([]int32, 0, 2*(n-1))
	for v := int32(0); v+1 < int32(n); v++ {
		pairs = append(pairs, v, v+1)
	}
	return pairs
}

// Path builds the n-node path 0-1-...-(n-1); the extreme-diameter
// topology for aggregation tests.
func Path(n int) *Graph { return pairsGraph(n, pathPairs(n)) }

// PathCSR is Path emitting CSR directly.
func PathCSR(n int) *CSR { return fromPairs(n, pathPairs(n)) }

// Complete builds the complete graph K_n with explicit adjacency:
// O(n²) memory, intended for workload-graph scales. Engine-scale
// all-to-all topologies should use the implicit sim.NewComplete, which
// is O(1).
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.addEdge(u, v)
		}
	}
	g.sortAdj()
	return g
}

func cyclePairs(n int) []int32 {
	if n < 3 {
		panic("graph: Cycle needs n ≥ 3")
	}
	pairs := make([]int32, 0, 2*n)
	for v := 0; v < n; v++ {
		pairs = append(pairs, int32(v), int32((v+1)%n))
	}
	return pairs
}

// Cycle builds the n-node cycle.
func Cycle(n int) *Graph { return pairsGraph(n, cyclePairs(n)) }

// CycleCSR is Cycle emitting CSR directly.
func CycleCSR(n int) *CSR { return fromPairs(n, cyclePairs(n)) }

// barbellPairs draws both blobs. Up to gnpDenseLimit nodes per blob the
// two blobs' per-pair draws interleave (the historical sequence); above
// it each blob is skip-sampled in turn.
func barbellPairs(s int, p float64, rng *rand.Rand) []int32 {
	var pairs []int32
	if s <= gnpDenseLimit {
		for u := int32(0); u < int32(s); u++ {
			for v := u + 1; v < int32(s); v++ {
				if rng.Float64() < p {
					pairs = append(pairs, u, v)
				}
				if rng.Float64() < p {
					pairs = append(pairs, int32(s)+u, int32(s)+v)
				}
			}
		}
	} else {
		pairs = gnpPairsInto(pairs, s, p, rng, 0)
		pairs = gnpPairsInto(pairs, s, p, rng, int32(s))
	}
	return append(pairs, 0, int32(s))
}

// BarbellExpanders joins two G(s, p) blobs by a single bridge edge:
// a standard low-conductance instance for expander-decomposition tests.
func BarbellExpanders(s int, p float64, rng *rand.Rand) *Graph {
	return pairsGraph(2*s, barbellPairs(s, p, rng))
}

// BarbellExpandersCSR is BarbellExpanders emitting CSR directly.
func BarbellExpandersCSR(s int, p float64, rng *rand.Rand) *CSR {
	return fromPairs(2*s, barbellPairs(s, p, rng))
}

// Grid builds the rows×cols grid graph: node (r,c) has id r·cols+c and
// is adjacent to its horizontal and vertical neighbors. A moderate-
// diameter, bounded-degree topology for aggregation workloads.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic("graph: Grid needs rows, cols ≥ 1")
	}
	g := New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				g.addEdge(v, v+1)
			}
			if r+1 < rows {
				g.addEdge(v, v+cols)
			}
		}
	}
	g.sortAdj()
	return g
}

// Torus builds the rows×cols grid with wraparound edges in both
// dimensions: every node has degree exactly 4. Both dimensions must be
// at least 3, else the wrap edges would duplicate grid edges or form
// self-loops.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic("graph: Torus needs rows, cols ≥ 3")
	}
	g := New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			g.addEdge(v, r*cols+(c+1)%cols)
			g.addEdge(v, ((r+1)%rows)*cols+c)
		}
	}
	g.sortAdj()
	return g
}

// Hypercube builds the dim-dimensional hypercube on 2^dim nodes: ids
// are adjacent iff they differ in exactly one bit. Diameter and degree
// are both dim — the classic logarithmic-diameter interconnect.
func Hypercube(dim int) *Graph {
	if dim < 1 || dim > 20 {
		panic("graph: Hypercube needs 1 ≤ dim ≤ 20")
	}
	n := 1 << dim
	g := New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < dim; b++ {
			u := v ^ (1 << b)
			if v < u {
				g.addEdge(v, u)
			}
		}
	}
	g.sortAdj()
	return g
}

// baPairs draws the preferential-attachment edge list into flat
// arrays: the degree-proportional target pool and the per-node pick
// set are plain int32 slices (the pick set is kept sorted by
// insertion), no per-node map or sort. The draw sequence — one
// rng.Intn per candidate, retried on duplicates, picks applied in
// ascending order — is bit-identical to the historical map-based
// implementation, so seeds reproduce the same graphs.
func baPairs(n, attach int, rng *rand.Rand) []int32 {
	if attach < 1 || n <= attach {
		panic("graph: BarabasiAlbert needs n > attach ≥ 1")
	}
	m := attach*(attach+1)/2 + (n-attach-1)*attach
	pairs := make([]int32, 0, 2*m)
	// targets holds one entry per edge endpoint, so sampling an element
	// uniformly is degree-proportional sampling.
	targets := make([]int32, 0, 2*m)
	for u := int32(0); u <= int32(attach); u++ {
		for v := u + 1; v <= int32(attach); v++ {
			pairs = append(pairs, u, v)
			targets = append(targets, u, v)
		}
	}
	picks := make([]int32, 0, attach)
	for v := int32(attach + 1); v < int32(n); v++ {
		picks = picks[:0]
		for len(picks) < attach {
			u := targets[rng.Intn(len(targets))]
			// Sorted insertion keeps the pick set ordered as it grows, so
			// the appends below happen in ascending order — the order of
			// the appends shifts every later rng.Intn index, so it must
			// depend only on the seed. attach is small; linear is fine.
			i := 0
			for i < len(picks) && picks[i] < u {
				i++
			}
			if i < len(picks) && picks[i] == u {
				continue
			}
			picks = append(picks, 0)
			copy(picks[i+1:], picks[i:])
			picks[i] = u
		}
		for _, u := range picks {
			pairs = append(pairs, v, u)
			targets = append(targets, v, u)
		}
	}
	return pairs
}

// BarabasiAlbert samples a preferential-attachment (power-law degree)
// graph: starting from a complete seed on attach+1 nodes, each new node
// connects to attach distinct existing nodes chosen proportionally to
// their current degree. Requires n > attach ≥ 1. The result is always
// connected.
func BarabasiAlbert(n, attach int, rng *rand.Rand) *Graph {
	return pairsGraph(n, baPairs(n, attach, rng))
}

// BarabasiAlbertCSR is BarabasiAlbert emitting the compact CSR
// representation directly — identical draw sequence, identical
// adjacency, no per-node slices. This is the engine-scale power-law
// constructor.
func BarabasiAlbertCSR(n, attach int, rng *rand.Rand) *CSR {
	return fromPairs(n, baPairs(n, attach, rng))
}

// GridCSR builds the rows×cols grid in CSR form (see Grid). For
// engine-scale runs prefer the implicit sim.NewGrid, which needs no
// adjacency at all; this exists for CSR-consuming workloads.
func GridCSR(rows, cols int) *CSR {
	if rows < 1 || cols < 1 {
		panic("graph: Grid needs rows, cols ≥ 1")
	}
	pairs := make([]int32, 0, 2*(rows*(cols-1)+cols*(rows-1)))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := int32(r*cols + c)
			if c+1 < cols {
				pairs = append(pairs, v, v+1)
			}
			if r+1 < rows {
				pairs = append(pairs, v, v+int32(cols))
			}
		}
	}
	return fromPairs(rows*cols, pairs)
}

// ColorEdges assigns each edge of g a color in [1,c] according to
// weights (nil means uniform), returning the edge→color map that the
// monochromatic-triangle statistics (§1.2.2) consume.
func ColorEdges(g *Graph, c int, weights []float64, rng *rand.Rand) map[[2]int]int64 {
	colors := make(map[[2]int]int64, g.M())
	var cum []float64
	if weights != nil {
		if len(weights) != c {
			panic("graph: ColorEdges weights length must equal c")
		}
		cum = make([]float64, c)
		s := 0.0
		for i, w := range weights {
			s += w
			cum[i] = s
		}
		for i := range cum {
			cum[i] /= s
		}
	}
	for _, e := range g.Edges() {
		var col int64
		if cum == nil {
			col = int64(rng.Intn(c)) + 1
		} else {
			x := rng.Float64()
			lo := 0
			for lo < c-1 && cum[lo] < x {
				lo++
			}
			col = int64(lo) + 1
		}
		colors[[2]int{e.U, e.V}] = col
	}
	return colors
}

// ColoredGnp samples G(n,p) and colors its edges via ColorEdges. It
// returns the graph and the edge→color map, the input for
// monochromatic-triangle statistics (§1.2.2).
func ColoredGnp(n int, p float64, c int, weights []float64, rng *rand.Rand) (*Graph, map[[2]int]int64) {
	g := Gnp(n, p, rng)
	return g, ColorEdges(g, c, weights, rng)
}
