package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromEdgesBasics(t *testing.T) {
	g, err := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 2, V: 1}, {U: 3, V: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("missing edge 1-2")
	}
	if g.HasEdge(1, 3) {
		t.Fatal("phantom edge 1-3")
	}
	if g.Degree(0) != 2 || g.Degree(3) != 1 {
		t.Fatal("bad degrees")
	}
}

func TestFromEdgesRejectsBad(t *testing.T) {
	if _, err := FromEdges(3, []Edge{{U: 1, V: 1}}); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := FromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 0}}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := FromEdges(3, []Edge{{U: 0, V: 5}}); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestGnpAdjacencySymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Gnp(60, 0.3, rng)
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if !g.HasEdge(u, v) {
				t.Fatalf("asymmetric adjacency %d-%d", v, u)
			}
		}
	}
	// Edge count should be near p·C(n,2) = 531.
	if g.M() < 350 || g.M() > 720 {
		t.Fatalf("G(60,0.3) edge count %d implausible", g.M())
	}
}

func TestCycleOfCliquesShape(t *testing.T) {
	k, s := 5, 6
	g := CycleOfCliques(k, s)
	if g.N() != k*s {
		t.Fatalf("n=%d", g.N())
	}
	wantM := k*(s*(s-1)/2) + k
	if g.M() != wantM {
		t.Fatalf("m=%d want %d", g.M(), wantM)
	}
	// Connector nodes have degree s+1 (wait: s-1 inside + 2 cycle edges).
	if g.Degree(0) != s+1 {
		t.Fatalf("connector degree %d want %d", g.Degree(0), s+1)
	}
	if g.Degree(1) != s-1 {
		t.Fatalf("inner degree %d want %d", g.Degree(1), s-1)
	}
	if !g.Connected() {
		t.Fatal("disconnected")
	}
}

func TestStarAndPathAndCycle(t *testing.T) {
	s := Star(7)
	if s.Degree(0) != 6 || s.M() != 6 {
		t.Fatal("star shape")
	}
	p := Path(5)
	if p.Diameter() != 4 {
		t.Fatalf("path diameter %d", p.Diameter())
	}
	c := Cycle(8)
	if c.Diameter() != 4 {
		t.Fatalf("cycle diameter %d", c.Diameter())
	}
	for v := 0; v < 8; v++ {
		if c.Degree(v) != 2 {
			t.Fatal("cycle degree")
		}
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := RandomRegular(20, 4, rng)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("node %d degree %d", v, g.Degree(v))
		}
	}
	if g.M() != 40 {
		t.Fatalf("m=%d", g.M())
	}
}

func TestHubAndBlob(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := HubAndBlob(30, 0.2, rng)
	if g.Degree(0) != 29 {
		t.Fatalf("hub degree %d", g.Degree(0))
	}
	if g.MaxDegree() != 29 {
		t.Fatal("hub must be max degree")
	}
}

func TestSubgraph(t *testing.T) {
	g, _ := FromEdges(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 0, V: 4}})
	sub, orig := g.Subgraph(map[int]bool{1: true, 2: true, 3: true})
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("sub n=%d m=%d", sub.N(), sub.M())
	}
	if orig[0] != 1 || orig[2] != 3 {
		t.Fatalf("orig mapping %v", orig)
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.Finish()
	if g.Diameter() != -1 {
		t.Fatal("disconnected diameter must be -1")
	}
	if g.Connected() {
		t.Fatal("connected misreport")
	}
}

func TestBarbellLowConductance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := BarbellExpanders(20, 0.5, rng)
	if !g.Connected() {
		t.Fatal("barbell disconnected")
	}
	// Exactly one edge crosses the two halves.
	cross := 0
	for _, e := range g.Edges() {
		if (e.U < 20) != (e.V < 20) {
			cross++
		}
	}
	if cross != 1 {
		t.Fatalf("cross edges %d want 1", cross)
	}
}

func TestColoredGnp(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, colors := ColoredGnp(40, 0.3, 5, []float64{10, 1, 1, 1, 1}, rng)
	if len(colors) != g.M() {
		t.Fatalf("colors %d edges %d", len(colors), g.M())
	}
	count1 := 0
	for _, c := range colors {
		if c < 1 || c > 5 {
			t.Fatalf("color %d out of range", c)
		}
		if c == 1 {
			count1++
		}
	}
	if float64(count1) < 0.5*float64(g.M()) {
		t.Fatalf("heavy color underrepresented: %d of %d", count1, g.M())
	}
}

func TestCompleteShape(t *testing.T) {
	for _, n := range []int{1, 2, 7} {
		g := Complete(n)
		if g.N() != n || g.M() != n*(n-1)/2 {
			t.Fatalf("Complete(%d): n=%d m=%d", n, g.N(), g.M())
		}
		for v := 0; v < n; v++ {
			nb := g.Neighbors(v)
			if len(nb) != n-1 {
				t.Fatalf("Complete(%d): deg(%d)=%d", n, v, len(nb))
			}
			for p, u := range nb {
				want := p
				if p >= v {
					want = p + 1
				}
				if u != want {
					t.Fatalf("Complete(%d): Neighbors(%d)[%d]=%d, want %d (ascending, skipping self)", n, v, p, u, want)
				}
			}
		}
	}
}

func TestGridShape(t *testing.T) {
	rows, cols := 5, 7
	g := Grid(rows, cols)
	if g.N() != rows*cols {
		t.Fatalf("n=%d", g.N())
	}
	if wantM := rows*(cols-1) + cols*(rows-1); g.M() != wantM {
		t.Fatalf("m=%d want %d", g.M(), wantM)
	}
	if !g.Connected() {
		t.Fatal("grid disconnected")
	}
	// Corner degree 2, edge degree 3, interior degree 4.
	if g.Degree(0) != 2 || g.Degree(1) != 3 || g.Degree(cols+1) != 4 {
		t.Fatalf("degrees %d %d %d", g.Degree(0), g.Degree(1), g.Degree(cols+1))
	}
	if want := (rows - 1) + (cols - 1); g.Diameter() != want {
		t.Fatalf("diameter %d want %d", g.Diameter(), want)
	}
}

func TestTorusShape(t *testing.T) {
	rows, cols := 4, 6
	g := Torus(rows, cols)
	if g.N() != rows*cols {
		t.Fatalf("n=%d", g.N())
	}
	if wantM := 2 * rows * cols; g.M() != wantM {
		t.Fatalf("m=%d want %d", g.M(), wantM)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("node %d degree %d want 4", v, g.Degree(v))
		}
	}
	if !g.Connected() {
		t.Fatal("torus disconnected")
	}
	if want := rows/2 + cols/2; g.Diameter() != want {
		t.Fatalf("diameter %d want %d", g.Diameter(), want)
	}
}

func TestHypercubeShape(t *testing.T) {
	dim := 5
	g := Hypercube(dim)
	if g.N() != 1<<dim {
		t.Fatalf("n=%d", g.N())
	}
	if wantM := dim * (1 << (dim - 1)); g.M() != wantM {
		t.Fatalf("m=%d want %d", g.M(), wantM)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != dim {
			t.Fatalf("node %d degree %d want %d", v, g.Degree(v), dim)
		}
	}
	if !g.Connected() || g.Diameter() != dim {
		t.Fatalf("connected=%v diameter=%d want %d", g.Connected(), g.Diameter(), dim)
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, attach := 80, 3
	g := BarabasiAlbert(n, attach, rng)
	if g.N() != n {
		t.Fatalf("n=%d", g.N())
	}
	seedM := attach * (attach + 1) / 2
	if wantM := seedM + (n-attach-1)*attach; g.M() != wantM {
		t.Fatalf("m=%d want %d", g.M(), wantM)
	}
	if !g.Connected() {
		t.Fatal("BA graph disconnected")
	}
	// Every non-seed node attaches to `attach` distinct earlier nodes.
	minDeg := g.N()
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d < minDeg {
			minDeg = d
		}
	}
	if minDeg < attach {
		t.Fatalf("min degree %d < attach %d", minDeg, attach)
	}
	// Preferential attachment should concentrate degree well above the
	// regular-graph ceiling.
	if g.MaxDegree() < 3*attach {
		t.Fatalf("max degree %d suspiciously flat for preferential attachment", g.MaxDegree())
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a := BarabasiAlbert(60, 2, rand.New(rand.NewSource(9)))
	b := BarabasiAlbert(60, 2, rand.New(rand.NewSource(9)))
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestColorEdges(t *testing.T) {
	g := Grid(4, 4)
	rng := rand.New(rand.NewSource(7))
	colors := ColorEdges(g, 3, nil, rng)
	if len(colors) != g.M() {
		t.Fatalf("colors %d edges %d", len(colors), g.M())
	}
	for _, c := range colors {
		if c < 1 || c > 3 {
			t.Fatalf("color %d out of range", c)
		}
	}
}

// Property: every sampled G(n,p) has sorted, symmetric, self-loop-free
// adjacency and consistent m.
func TestGnpInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%40) + 2
		p := float64(pRaw%100) / 100.0
		g := Gnp(n, p, rand.New(rand.NewSource(seed)))
		deg := 0
		for v := 0; v < n; v++ {
			a := g.Neighbors(v)
			deg += len(a)
			for i, u := range a {
				if u == v {
					return false
				}
				if i > 0 && a[i-1] >= u {
					return false
				}
				if !g.HasEdge(u, v) {
					return false
				}
			}
		}
		return deg == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
