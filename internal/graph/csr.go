package graph

import (
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"
)

// CSR is the compact sparse-row representation of an undirected graph:
// one flat neighbor array plus one offset array, nothing per-node. It
// is the engine-scale counterpart of *Graph — identical adjacency
// (rows sorted ascending, so ports agree), a fraction of the memory
// (12 bytes per directed edge end + 8 per node instead of a Go slice
// per node), and cache-friendly sequential layout for the delivery
// loop. CSR implements sim.Topology together with all three optional
// fast paths (DegreeTopology, IndexedTopology, PortedTopology), so the
// engine never needs to materialize a neighbor slice for it.
//
// Node ids are stored as int32: a CSR graph holds at most 2^31-1
// nodes, far beyond the 1M–10M node target.
type CSR struct {
	n       int
	m       int
	offsets []int64 // len n+1; row v is adj[offsets[v]:offsets[v+1]], sorted
	adj     []int32

	// Neighbors materializes []int rows only on demand (the engine's
	// fast paths never call it). The cache table is published once via
	// tab, entries once via CompareAndSwap, so the warm path is
	// lock-free and every caller sees one canonical slice per node.
	mu  sync.Mutex
	tab atomic.Pointer[[]atomic.Pointer[[]int]]
}

// fromPairs builds a CSR graph on n nodes from a flat undirected edge
// list (u0,v0,u1,v1,...) by counting sort. The input is trusted: no
// self-loops, no duplicate edges, every id in [0,n). All generators in
// this package emit such lists.
func fromPairs(n int, pairs []int32) *CSR {
	if n < 0 || int64(n) > math.MaxInt32 {
		panic(fmt.Sprintf("graph: CSR supports 0 ≤ n ≤ %d nodes, got %d", math.MaxInt32, n))
	}
	m := len(pairs) / 2
	c := &CSR{n: n, m: m, offsets: make([]int64, n+1), adj: make([]int32, 2*m)}
	for _, v := range pairs {
		c.offsets[v+1]++
	}
	for v := 0; v < n; v++ {
		c.offsets[v+1] += c.offsets[v]
	}
	cur := make([]int64, n)
	copy(cur, c.offsets[:n])
	for i := 0; i < len(pairs); i += 2 {
		u, v := pairs[i], pairs[i+1]
		c.adj[cur[u]] = v
		cur[u]++
		c.adj[cur[v]] = u
		cur[v]++
	}
	for v := 0; v < n; v++ {
		slices.Sort(c.adj[c.offsets[v]:c.offsets[v+1]])
	}
	return c
}

// FromGraph converts an explicit adjacency graph to CSR. The rows are
// copied in g's (sorted) order, so ports are identical between the two
// representations.
func FromGraph(g *Graph) *CSR {
	n := g.N()
	if int64(n) > math.MaxInt32 {
		panic(fmt.Sprintf("graph: CSR supports at most %d nodes, got %d", math.MaxInt32, n))
	}
	c := &CSR{n: n, m: g.M(), offsets: make([]int64, n+1), adj: make([]int32, 2*g.M())}
	off := int64(0)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			c.adj[off] = int32(u)
			off++
		}
		c.offsets[v+1] = off
	}
	return c
}

// N returns the node count.
func (c *CSR) N() int { return c.n }

// M returns the edge count.
func (c *CSR) M() int { return c.m }

// Degree returns deg(v) from the offset difference alone.
func (c *CSR) Degree(v int) int { return int(c.offsets[v+1] - c.offsets[v]) }

// NeighborAt returns v's neighbor on the given port (its index in the
// ascending neighbor row).
func (c *CSR) NeighborAt(v, port int) int {
	i := c.offsets[v] + int64(port)
	if port < 0 || i >= c.offsets[v+1] {
		panic(fmt.Sprintf("graph: node %d has no port %d (degree %d)", v, port, c.Degree(v)))
	}
	return int(c.adj[i])
}

// PortOf returns the port of neighbor id as seen from v via binary
// search over v's row, or -1 when not adjacent.
func (c *CSR) PortOf(v, id int) int {
	if id < 0 || int64(id) > math.MaxInt32 {
		return -1
	}
	row := c.adj[c.offsets[v]:c.offsets[v+1]]
	i, ok := slices.BinarySearch(row, int32(id))
	if !ok {
		return -1
	}
	return i
}

// HasEdge reports whether {u,v} is present.
func (c *CSR) HasEdge(u, v int) bool { return c.PortOf(u, v) >= 0 }

// MaxDegree returns Δ.
func (c *CSR) MaxDegree() int {
	d := 0
	for v := 0; v < c.n; v++ {
		if dv := c.Degree(v); dv > d {
			d = dv
		}
	}
	return d
}

// AvgDegree returns 2m/n.
func (c *CSR) AvgDegree() float64 {
	if c.n == 0 {
		return 0
	}
	return 2 * float64(c.m) / float64(c.n)
}

// Connected reports whether the graph is connected (true for n ≤ 1),
// via BFS over the flat rows — O(n+m) time, O(n) extra memory.
func (c *CSR) Connected() bool {
	if c.n <= 1 {
		return true
	}
	seen := make([]bool, c.n)
	queue := make([]int32, 1, 1024)
	queue[0] = 0
	seen[0] = true
	cnt := 1
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, u := range c.adj[c.offsets[v]:c.offsets[v+1]] {
			if !seen[u] {
				seen[u] = true
				cnt++
				queue = append(queue, u)
			}
		}
	}
	return cnt == c.n
}

// Bytes estimates the resident size of the representation itself: the
// offset and adjacency arrays (the lazy Neighbors cache, if a program
// forces it, adds up to 16 B/node for the table plus the materialized
// rows).
func (c *CSR) Bytes() int64 { return CSRBytes(c.n, int64(c.m)) }

// CSRBytes is the CSR memory model used by the topo registry's build
// budget: offsets (8 B per node) plus both directions of every edge
// (4 B each).
func CSRBytes(n int, m int64) int64 { return 8*(int64(n)+1) + 8*m }

// Neighbors returns v's neighbor row as an []int, materialized lazily
// and cached per node; callers must not modify it. Safe for concurrent
// use; the warm path is lock-free.
func (c *CSR) Neighbors(v int) []int {
	t := c.tab.Load()
	if t == nil {
		c.mu.Lock()
		if t = c.tab.Load(); t == nil {
			nt := make([]atomic.Pointer[[]int], c.n)
			t = &nt
			c.tab.Store(t)
		}
		c.mu.Unlock()
	}
	e := &(*t)[v]
	if a := e.Load(); a != nil {
		return *a
	}
	row := c.adj[c.offsets[v]:c.offsets[v+1]]
	a := make([]int, len(row))
	for i, u := range row {
		a[i] = int(u)
	}
	// First store wins so the returned slice is stable across calls even
	// under a racing double build (both builds are identical).
	if !e.CompareAndSwap(nil, &a) {
		return *e.Load()
	}
	return a
}
