// Package stream defines the streaming-summary abstractions of Section 3
// of the paper: bounded-size summaries produced by a streaming algorithm
// (A2), and the three mergeability notions of Agarwal et al. adapted in
// Definitions 3.1–3.3 — one-way mergeable, fully mergeable, and
// composable. Summaries serialize to a fixed number of words so they can
// be shipped over CONGEST edges at one word per round.
package stream

// Summary is the state of a streaming algorithm after processing a
// stream: Definition 3.1's S(I). Insert plays the role of algorithm A2
// processing one element.
type Summary interface {
	// Insert processes one stream element.
	Insert(x int64)
	// Words serializes the summary into exactly SizeWords() words.
	Words() []int64
	// SizeWords returns the fixed serialized size M of the summary.
	SizeWords() int
}

// OneWayMergeable is Definition 3.1: A1 can absorb an A2-produced
// summary into a main summary. MergeFrom must be called on the main
// summary with the words of an A2-produced summary.
type OneWayMergeable interface {
	Summary
	// MergeFrom absorbs a serialized summary (A1's merge step).
	MergeFrom(words []int64)
}

// FullyMergeable is Definition 3.2: any two summaries, however
// produced, merge into one summary of the same size.
type FullyMergeable interface {
	OneWayMergeable
}

// Composable is Definition 3.3: ℓ summaries can be merged in a
// streaming fashion using only M memory, by folding the i-th words of
// all inputs for i = 1..M. Linear sketches compose by word-wise
// addition; ComposeWord(i, w) folds one incoming word into the state.
type Composable interface {
	FullyMergeable
	// ComposeWord folds word index i of another summary into this one.
	// After ComposeWord has been called for every index of every input,
	// the state equals the merged summary.
	ComposeWord(i int, w int64)
}

// Kind constructs empty and deserialized summaries of one configuration
// (one ε, one seed set, ...). All summaries of a Kind have equal
// SizeWords, so mergers know the wire format.
type Kind interface {
	// New returns an empty summary.
	New() Summary
	// FromWords reconstructs a summary from its serialization.
	FromWords(words []int64) Summary
	// M returns the serialized size in words of this kind's summaries.
	M() int
}

// InsertAll feeds a whole slice into s.
func InsertAll(s Summary, xs []int64) {
	for _, x := range xs {
		s.Insert(x)
	}
}
