package stream_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mucongest/internal/sketch"
	"mucongest/internal/stream"
)

// kinds under test, with whether they satisfy the stronger notions.
func allKinds() map[string]struct {
	kind       stream.Kind
	fully      bool
	composable bool
} {
	return map[string]struct {
		kind       stream.Kind
		fully      bool
		composable bool
	}{
		"gk":       {sketch.NewGKKind(0.1, 10000), false, false},
		"mg":       {sketch.NewMGKind(8), true, false},
		"crprecis": {sketch.NewCRPrecisKind(11, 3), true, true},
		"countmin": {sketch.NewCountMinKind(3, 32, 7), true, true},
		"ams":      {sketch.NewAMSKind(3, 8, 7), true, true},
		"exact":    {sketch.NewExactKind(64), true, false},
	}
}

func TestMergeabilityHierarchy(t *testing.T) {
	for name, tc := range allKinds() {
		s := tc.kind.New()
		if _, ok := s.(stream.OneWayMergeable); !ok {
			t.Fatalf("%s: not one-way mergeable", name)
		}
		if _, ok := s.(stream.Composable); ok != tc.composable {
			t.Fatalf("%s: composable = %v, want %v", name, ok, tc.composable)
		}
	}
}

// Property: serialization round-trips preserve the full wire format for
// every kind, under arbitrary streams.
func TestRoundTripProperty(t *testing.T) {
	for name, tc := range allKinds() {
		kind := tc.kind
		f := func(seed int64, nRaw uint8) bool {
			rng := rand.New(rand.NewSource(seed))
			s := kind.New()
			for i := 0; i < int(nRaw)%60; i++ {
				s.Insert(rng.Int63n(50))
			}
			w := s.Words()
			if len(w) != kind.M() {
				return false
			}
			s2 := kind.FromWords(w)
			w2 := s2.Words()
			for i := range w {
				if w[i] != w2[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// Property: for fully-mergeable kinds, merging preserves the total
// stream count regardless of the merge tree.
func TestMergePreservesCount(t *testing.T) {
	for name, tc := range allKinds() {
		if !tc.fully {
			continue
		}
		kind := tc.kind
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			parts := make([]stream.OneWayMergeable, 4)
			var total int64
			for i := range parts {
				parts[i] = kind.New().(stream.OneWayMergeable)
				k := rng.Intn(40)
				for j := 0; j < k; j++ {
					parts[i].Insert(rng.Int63n(30))
					total++
				}
			}
			parts[2].MergeFrom(parts[3].Words())
			parts[0].MergeFrom(parts[1].Words())
			parts[0].MergeFrom(parts[2].Words())
			type counter interface{ Count() int64 }
			return parts[0].(counter).Count() == total
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// Property: composable kinds compose word-streams to the same state as
// pairwise merging.
func TestComposeEqualsMerge(t *testing.T) {
	for name, tc := range allKinds() {
		if !tc.composable {
			continue
		}
		kind := tc.kind
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			a := kind.New().(stream.Composable)
			b := kind.New().(stream.Composable)
			for i := 0; i < 30; i++ {
				a.Insert(rng.Int63n(40))
				b.Insert(rng.Int63n(40))
			}
			merged := kind.FromWords(a.Words()).(stream.Composable)
			merged.MergeFrom(b.Words())
			composed := kind.New().(stream.Composable)
			for i := 0; i < kind.M(); i++ {
				composed.ComposeWord(i, a.Words()[i])
				composed.ComposeWord(i, b.Words()[i])
			}
			wm, wc := merged.Words(), composed.Words()
			for i := range wm {
				if wm[i] != wc[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestInsertAll(t *testing.T) {
	s := sketch.NewExactKind(8).New()
	stream.InsertAll(s, []int64{1, 2, 2, 3})
	if s.(*sketch.Exact).Estimate(2) != 2 {
		t.Fatal("InsertAll lost elements")
	}
}
