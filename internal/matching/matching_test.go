package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPerfectMatchingExists(t *testing.T) {
	adj := [][]int{{0, 1}, {0}, {1, 2}}
	m, err := PerfectMatching(3, adj)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for i, j := range m {
		if seen[j] {
			t.Fatalf("right vertex %d matched twice", j)
		}
		seen[j] = true
		found := false
		for _, a := range adj[i] {
			if a == j {
				found = true
			}
		}
		if !found {
			t.Fatalf("match %d-%d not an edge", i, j)
		}
	}
}

func TestPerfectMatchingImpossible(t *testing.T) {
	// Two left vertices share a single right vertex.
	if _, err := PerfectMatching(2, [][]int{{0}, {0}}); err == nil {
		t.Fatal("expected failure")
	}
}

// randomDoublyBalanced builds a random n×n non-negative matrix with all
// row and column sums equal to s, by summing s random permutation
// matrices.
func randomDoublyBalanced(n int, s int64, rng *rand.Rand) [][]int64 {
	B := make([][]int64, n)
	for i := range B {
		B[i] = make([]int64, n)
	}
	perm := make([]int, n)
	for k := int64(0); k < s; k++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for j, i := range perm {
			B[i][j]++
		}
	}
	return B
}

func TestBirkhoffReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		n int
		s int64
	}{{3, 5}, {5, 12}, {8, 30}, {4, 1}} {
		B := randomDoublyBalanced(tc.n, tc.s, rng)
		perms, err := Birkhoff(B)
		if err != nil {
			t.Fatal(err)
		}
		var tot int64
		for _, p := range perms {
			tot += p.Count
		}
		if tot != tc.s {
			t.Fatalf("counts sum %d want %d", tot, tc.s)
		}
		R := Reconstruct(tc.n, perms)
		for i := range B {
			for j := range B[i] {
				if R[i][j] != B[i][j] {
					t.Fatalf("reconstruction differs at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestBirkhoffRejectsUnbalanced(t *testing.T) {
	if _, err := Birkhoff([][]int64{{1, 0}, {0, 2}}); err == nil {
		t.Fatal("unbalanced matrix accepted")
	}
	if _, err := Birkhoff([][]int64{{1, 1}, {2, 0}}); err == nil {
		t.Fatal("column-unbalanced matrix accepted")
	}
	if _, err := Birkhoff([][]int64{{-1, 1}, {1, -1}}); err == nil {
		t.Fatal("negative matrix accepted")
	}
}

func TestBirkhoffProperty(t *testing.T) {
	f := func(seed int64, nRaw, sRaw uint8) bool {
		n := int(nRaw%6) + 2
		s := int64(sRaw%20) + 1
		rng := rand.New(rand.NewSource(seed))
		B := randomDoublyBalanced(n, s, rng)
		perms, err := Birkhoff(B)
		if err != nil {
			return false
		}
		R := Reconstruct(n, perms)
		for i := range B {
			for j := range B[i] {
				if R[i][j] != B[i][j] {
					return false
				}
			}
		}
		// Each term must be a genuine permutation.
		for _, p := range perms {
			seen := map[int]bool{}
			for _, i := range p.Perm {
				if seen[i] {
					return false
				}
				seen[i] = true
			}
			if p.Count < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBirkhoffIdentity(t *testing.T) {
	B := [][]int64{{7, 0}, {0, 7}}
	perms, err := Birkhoff(B)
	if err != nil {
		t.Fatal(err)
	}
	if len(perms) != 1 || perms[0].Count != 7 {
		t.Fatalf("identity should decompose into one term: %+v", perms)
	}
}
