// Package matching provides bipartite perfect matching and the
// Birkhoff–von Neumann decomposition of doubly "stochastic" integer
// matrices into permutation matrices, the scheduling core of the
// paper's random-order stream simulation (Theorem 1.5): a Δ×Δ matrix
// whose rows and columns all sum to n decomposes into permutation
// matrices with multiplicities summing to n, giving a congestion-free
// per-round transmission schedule.
package matching

import "fmt"

// PerfectMatching finds a perfect matching in a bipartite graph on
// [0,n)×[0,n) given by the support adjacency adj (adj[i] lists the
// right-vertices available to left-vertex i), using Kuhn's augmenting
// path algorithm. Returns match[i] = the right vertex matched to left
// i, or an error if no perfect matching exists.
func PerfectMatching(n int, adj [][]int) ([]int, error) {
	matchL := make([]int, n) // left i -> right
	matchR := make([]int, n) // right j -> left
	for i := range matchL {
		matchL[i] = -1
		matchR[i] = -1
	}
	visited := make([]bool, n)
	var try func(i int) bool
	try = func(i int) bool {
		for _, j := range adj[i] {
			if visited[j] {
				continue
			}
			visited[j] = true
			if matchR[j] == -1 || try(matchR[j]) {
				matchL[i] = j
				matchR[j] = i
				return true
			}
		}
		return false
	}
	for i := 0; i < n; i++ {
		for k := range visited {
			visited[k] = false
		}
		if !try(i) {
			return nil, fmt.Errorf("matching: no perfect matching covers left vertex %d", i)
		}
	}
	return matchL, nil
}

// Permutation is one term of a Birkhoff decomposition: the permutation
// P (as dest-per-source mapping) repeated Count times.
type Permutation struct {
	Perm  []int // Perm[j] = row i such that P[i][j] = 1
	Count int64
}

// Birkhoff decomposes a non-negative integer matrix B whose rows and
// columns all sum to the same value s into at most Δ²−2Δ+2 permutation
// matrices with positive integer multiplicities summing to s
// (Birkhoff's theorem [9] applied to B/s). Each round of the resulting
// schedule moves exactly one unit along each row and column — the
// congestion-free property Theorem 1.5 needs.
func Birkhoff(B [][]int64) ([]Permutation, error) {
	n := len(B)
	if n == 0 {
		return nil, nil
	}
	// Validate equal row/column sums.
	var s int64
	for j := range B[0] {
		s += B[0][j]
	}
	colSum := make([]int64, n)
	for i := range B {
		var rs int64
		if len(B[i]) != n {
			return nil, fmt.Errorf("matching: B not square")
		}
		for j := range B[i] {
			if B[i][j] < 0 {
				return nil, fmt.Errorf("matching: negative entry B[%d][%d]", i, j)
			}
			rs += B[i][j]
			colSum[j] += B[i][j]
		}
		if rs != s {
			return nil, fmt.Errorf("matching: row %d sums %d, want %d", i, rs, s)
		}
	}
	for j, cs := range colSum {
		if cs != s {
			return nil, fmt.Errorf("matching: column %d sums %d, want %d", j, cs, s)
		}
	}
	// Work on a copy.
	W := make([][]int64, n)
	for i := range B {
		W[i] = append([]int64(nil), B[i]...)
	}
	var out []Permutation
	remaining := s
	for remaining > 0 {
		// Support graph: left = columns (sources), right = rows (dests).
		adj := make([][]int, n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				if W[i][j] > 0 {
					adj[j] = append(adj[j], i)
				}
			}
		}
		m, err := PerfectMatching(n, adj)
		if err != nil {
			return nil, fmt.Errorf("matching: Birkhoff stalled with %d remaining: %w", remaining, err)
		}
		gamma := remaining
		for j := 0; j < n; j++ {
			if W[m[j]][j] < gamma {
				gamma = W[m[j]][j]
			}
		}
		for j := 0; j < n; j++ {
			W[m[j]][j] -= gamma
		}
		out = append(out, Permutation{Perm: m, Count: gamma})
		remaining -= gamma
	}
	return out, nil
}

// Reconstruct rebuilds the matrix Σ Count·P from a decomposition (for
// verification).
func Reconstruct(n int, perms []Permutation) [][]int64 {
	B := make([][]int64, n)
	for i := range B {
		B[i] = make([]int64, n)
	}
	for _, p := range perms {
		for j, i := range p.Perm {
			B[i][j] += p.Count
		}
	}
	return B
}
