// Package mergesim implements Section 3.1: network-wide simulation of
// mergeable streaming algorithms in μ-CONGEST.
//
//   - One-way mergeable (Theorem 1.6): the tree is cut into O(√(|I|/M))
//     clusters of ≈ s = √(|I|·M) information each; every cluster leader
//     summarizes its cluster's items (A2), and all summaries converge to
//     the root, which folds them one-way (A1) into the main summary.
//   - Fully mergeable (Theorem 1.7): level-synchronous hierarchical
//     pairwise merging up the BFS tree, with the final per-node stage
//     collecting up to μ/(2M) summaries at once — realizing the
//     M·log(Δ/(μ/M)) per-level cost. (Documented deviation from the paper:
//     the paper recurses on information-centroids for log|I| depth; we
//     recurse on BFS levels, identical on the low-diameter workloads.)
//   - Composable (Theorem 1.8): same levels, but children stream their
//     serialized words in parallel and the parent folds word-by-word
//     (Definition 3.3), collapsing each level to M+O(1) rounds.
package mergesim

import (
	"math"

	"mucongest/internal/congest"
	"mucongest/internal/sim"
	"mucongest/internal/stream"
)

const (
	kindItem int32 = congest.KindUser + 32 + iota
	kindItemDone
	kindItemCredit
	kindSumWord
	kindSumDone
	kindFinish2
	kindWeight
	kindCluster
	kindRole
	kindMergeWord
)

// OneWayProgram returns the Theorem 1.6 node program. items[v] is node
// v's input multiset I_v; kind supplies the one-way mergeable summary.
// The root (node `root`) emits the final summary's serialized words.
func OneWayProgram(items [][]int64, kind stream.Kind, root, maxDepth int) func(*sim.Ctx) {
	return func(c *sim.Ctx) {
		tr := congest.BuildBFSTree(c, root, maxDepth)
		mine := items[c.ID()]
		tv := int64(len(mine))

		// Subtree weights and |I|.
		W := congest.Convergecast(c, tr, maxDepth, []int64{tv}, congest.OpSum)[0]
		// Learn children's subtree weights (one extra round).
		if tr.Parent >= 0 {
			c.SendID(tr.Parent, sim.Msg{Kind: kindWeight, A: W})
		}
		childW := make(map[int]int64, len(tr.Children))
		for _, m := range c.Tick() {
			if m.Msg.Kind == kindWeight {
				childW[m.From] = m.Msg.A
			}
		}
		totalI := congest.BroadcastDown(c, tr, maxDepth, 1, []int64{W})[0]
		M := int64(kind.M())
		s := int64(math.Sqrt(float64(totalI) * float64(M)))
		if s < 1 {
			s = 1
		}

		// Leaders: minimal subtrees of weight ≥ s, plus the root.
		isLeader := c.ID() == root
		if W >= s {
			heavyChild := false
			for _, w := range childW {
				if w >= s {
					heavyChild = true
				}
			}
			if !heavyChild {
				isLeader = true
			}
		}
		// Cluster flood: each node learns its leader (depth-pipelined).
		myLeader := -1
		if isLeader {
			myLeader = c.ID()
		}
		for r := 0; r < maxDepth+2; r++ {
			if myLeader >= 0 && r == tr.Depth {
				for _, ch := range tr.Children {
					c.SendID(ch, sim.Msg{Kind: kindCluster, A: int64(myLeader)})
				}
			}
			for _, m := range c.Tick() {
				if m.Msg.Kind == kindCluster && myLeader < 0 {
					myLeader = int(m.Msg.A)
				}
			}
		}

		// Stream items to leaders (A2 at each leader).
		var summary stream.Summary
		if isLeader {
			summary = kind.New()
			c.Charge(M)
			defer c.Release(M)
		}
		gatherItems(c, tr, maxDepth, isLeader, mine, summary)

		// Converge leader summaries to the root; fold one-way (A1).
		mainWords := gatherSummaries(c, tr, maxDepth, isLeader, summary, kind, root)
		if c.ID() == root {
			c.Emit(mainWords)
		}
	}
}

// gatherItems pipelines every node's items to its cluster leader with
// credit flow control; leaders Insert arriving items. Termination:
// DONE converges to the root, which floods a FINISH countdown.
func gatherItems(c *sim.Ctx, tr *congest.Tree, maxDepth int,
	isLeader bool, mine []int64, summary stream.Summary) {

	queue := append([]int64(nil), mine...)
	if isLeader {
		for _, x := range mine {
			summary.Insert(x)
		}
		queue = nil
	}
	c.Charge(int64(len(queue) + 2*len(tr.Children) + 8))
	defer c.Release(int64(len(queue) + 2*len(tr.Children) + 8))
	childDone := make(map[int]bool, len(tr.Children))
	outstanding := make(map[int]int, len(tr.Children))
	credits := 0
	doneSent := false
	queueCap := 2*len(tr.Children) + 4
	isRoot := tr.Parent < 0

	for {
		if !isRoot {
			switch {
			case len(queue) > 0 && credits > 0:
				x := queue[0]
				queue = queue[1:]
				credits--
				c.SendID(tr.Parent, sim.Msg{Kind: kindItem, A: x})
			case len(queue) == 0 && !doneSent && len(childDone) == len(tr.Children):
				doneSent = true
				c.SendID(tr.Parent, sim.Msg{Kind: kindItemDone})
			}
		}
		space := queueCap - len(queue)
		if isLeader {
			space = len(tr.Children)
		}
		for _, ch := range tr.Children {
			if space <= 0 {
				break
			}
			if !childDone[ch] && outstanding[ch] < 2 {
				outstanding[ch]++
				space--
				c.SendID(ch, sim.Msg{Kind: kindItemCredit})
			}
		}
		if isRoot && len(childDone) == len(tr.Children) && len(queue) == 0 {
			for _, ch := range tr.Children {
				c.SendID(ch, sim.Msg{Kind: kindFinish2, A: int64(maxDepth)})
			}
			c.Idle(maxDepth + 1)
			return
		}
		for _, m := range c.Tick() {
			switch m.Msg.Kind {
			case kindItem:
				outstanding[m.From]--
				if isLeader {
					summary.Insert(m.Msg.A)
				} else {
					queue = append(queue, m.Msg.A)
				}
			case kindItemDone:
				childDone[m.From] = true
			case kindItemCredit:
				credits++
			case kindFinish2:
				finishDown(c, tr, int(m.Msg.A))
				return
			}
		}
	}
}

// gatherSummaries streams every leader's serialized summary up the tree
// (FIFO relays, words tagged with the leader id); the root reassembles
// arriving summaries and folds each completed one into the main summary
// via the one-way merge. Returns the main summary's words at the root.
func gatherSummaries(c *sim.Ctx, tr *congest.Tree, maxDepth int,
	isLeader bool, summary stream.Summary, kind stream.Kind, root int) []int64 {

	type word struct{ leader, idx, val int64 }
	var queue []word
	M := kind.M()
	if isLeader && c.ID() != root {
		ws := summary.Words()
		for i, w := range ws {
			queue = append(queue, word{int64(c.ID()), int64(i), w})
		}
	}
	var main stream.OneWayMergeable
	partial := map[int64][]int64{}
	gotWords := map[int64]int{}
	if c.ID() == root {
		if summary == nil {
			summary = kind.New()
		}
		main = summary.(stream.OneWayMergeable)
	}
	c.Charge(int64(len(queue) + 8))
	defer c.Release(int64(len(queue) + 8))
	childDone := make(map[int]bool, len(tr.Children))
	doneSent := false

	for {
		if tr.Parent >= 0 {
			switch {
			case len(queue) > 0:
				w := queue[0]
				queue = queue[1:]
				c.SendID(tr.Parent, sim.Msg{Kind: kindSumWord, A: w.leader, B: w.idx, C: w.val})
			case !doneSent && len(childDone) == len(tr.Children):
				doneSent = true
				c.SendID(tr.Parent, sim.Msg{Kind: kindSumDone})
			}
		}
		if c.ID() == root && len(childDone) == len(tr.Children) {
			for _, ch := range tr.Children {
				c.SendID(ch, sim.Msg{Kind: kindFinish2, A: int64(maxDepth)})
			}
			c.Idle(maxDepth + 1)
			return main.Words()
		}
		for _, m := range c.Tick() {
			switch m.Msg.Kind {
			case kindSumWord:
				if c.ID() == root {
					l := m.Msg.A
					if partial[l] == nil {
						partial[l] = make([]int64, M)
						c.Charge(int64(M))
					}
					partial[l][m.Msg.B] = m.Msg.C
					gotWords[l]++
					if gotWords[l] == M {
						main.MergeFrom(partial[l])
						delete(partial, l)
						delete(gotWords, l)
						c.Release(int64(M))
					}
				} else {
					queue = append(queue, word{m.Msg.A, m.Msg.B, m.Msg.C})
				}
			case kindSumDone:
				childDone[m.From] = true
			case kindFinish2:
				finishDown(c, tr, int(m.Msg.A))
				return nil
			}
		}
	}
}

func finishDown(c *sim.Ctx, tr *congest.Tree, ttl int) {
	if ttl <= 0 {
		return
	}
	for _, ch := range tr.Children {
		c.SendID(ch, sim.Msg{Kind: kindFinish2, A: int64(ttl - 1)})
	}
	c.Idle(ttl)
}
