package mergesim

import (
	"math"
	"math/rand"
	"testing"

	"mucongest/internal/graph"
	"mucongest/internal/sketch"
	"mucongest/internal/stream"
)

func randomItems(n int, perNode int, universe int64, rng *rand.Rand) [][]int64 {
	items := make([][]int64, n)
	for v := range items {
		k := perNode/2 + rng.Intn(perNode)
		items[v] = make([]int64, k)
		for i := range items[v] {
			items[v][i] = rng.Int63n(universe) + 1
		}
	}
	return items
}

func exactCounts(items [][]int64) map[int64]int64 {
	m := map[int64]int64{}
	for _, it := range items {
		for _, x := range it {
			m[x]++
		}
	}
	return m
}

func testGraphsMerge(rng *rand.Rand) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"gnp":   graph.GnpConnected(24, 0.25, rng),
		"cycle": graph.Cycle(16),
		"star":  graph.Star(18),
	}
}

func TestOneWayExactSummaryCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, g := range testGraphsMerge(rng) {
		items := randomItems(g.N(), 20, 30, rng)
		kind := sketch.NewExactKind(30)
		sum, res, err := RunOneWay(g, items, kind)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ex := sum.(*sketch.Exact)
		want := exactCounts(items)
		for x, c := range want {
			if ex.Estimate(x) != c {
				t.Fatalf("%s: label %d count %d want %d", name, x, ex.Estimate(x), c)
			}
		}
		if ex.Count() != TotalItems(items) {
			t.Fatalf("%s: total %d want %d", name, ex.Count(), TotalItems(items))
		}
		if res.Rounds <= 0 {
			t.Fatal("no rounds")
		}
	}
}

func TestOneWayGKQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.GnpConnected(30, 0.2, rng)
	items := randomItems(g.N(), 60, 1000, rng)
	total := TotalItems(items)
	eps := 0.1
	kind := sketch.NewGKKind(eps, total)
	sum, _, err := RunOneWay(g, items, kind)
	if err != nil {
		t.Fatal(err)
	}
	gk := sum.(*sketch.GK)
	if gk.Count() != total {
		t.Fatalf("count %d want %d", gk.Count(), total)
	}
	// Quantile error vs exact, allowing the compounded one-way bound.
	var all []int64
	for _, it := range items {
		all = append(all, it...)
	}
	exact := sketch.NewExactKind(1001).New().(*sketch.Exact)
	stream.InsertAll(exact, all)
	for _, phi := range []float64{0.25, 0.5, 0.75} {
		got := gk.Query(phi)
		// Rank of got must be within 3εm of φm.
		var below int64
		for _, x := range all {
			if x < got {
				below++
			}
		}
		err := math.Abs(float64(below) - phi*float64(total))
		if err > 3*eps*float64(total)+float64(total)/100 {
			t.Fatalf("φ=%v: rank error %.0f", phi, err)
		}
	}
}

func TestFullyMergeableMG(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for name, g := range testGraphsMerge(rng) {
		items := make([][]int64, g.N())
		z := rand.NewZipf(rng, 1.3, 1, 29)
		var m int64
		for v := range items {
			for i := 0; i < 40; i++ {
				items[v] = append(items[v], int64(z.Uint64())+1)
				m++
			}
		}
		k := 9
		kind := sketch.NewMGKind(k)
		sum, _, err := RunFully(g, items, kind, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mg := sum.(*sketch.MG)
		if mg.Count() != m {
			t.Fatalf("%s: count %d want %d", name, mg.Count(), m)
		}
		want := exactCounts(items)
		for x := int64(1); x <= 30; x++ {
			est := mg.Estimate(x)
			if est > want[x] || est < want[x]-m/int64(k+1) {
				t.Fatalf("%s: label %d est %d exact %d m/(k+1)=%d",
					name, x, est, want[x], m/int64(k+1))
			}
		}
	}
}

func TestComposableCRPrecisExactOnWideSketch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.GnpConnected(20, 0.3, rng)
	items := randomItems(g.N(), 25, 40, rng)
	kind := sketch.NewCRPrecisKind(41, 4) // primes > universe: collision-free
	sum, _, err := RunComposable(g, items, kind)
	if err != nil {
		t.Fatal(err)
	}
	cr := sum.(*sketch.CRPrecis)
	want := exactCounts(items)
	for x := int64(1); x <= 40; x++ {
		if cr.Estimate(x) != want[x] {
			t.Fatalf("label %d est %d want %d", x, cr.Estimate(x), want[x])
		}
	}
}

func TestComposableFasterThanFully(t *testing.T) {
	// Theorem 1.8 vs 1.7: composable merging drops the log(Δ/(μ/M))
	// factor, so on a star (Δ = n-1) it must use markedly fewer rounds.
	g := graph.Star(24)
	rng := rand.New(rand.NewSource(5))
	items := randomItems(g.N(), 10, 20, rng)
	kind := sketch.NewCRPrecisKind(23, 3)
	_, resF, err := RunFully(g, items, kind, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, resC, err := RunComposable(g, items, kind)
	if err != nil {
		t.Fatal(err)
	}
	if resC.Rounds >= resF.Rounds {
		t.Fatalf("composable %d rounds, fully %d — expected a clear win",
			resC.Rounds, resF.Rounds)
	}
}

func TestFullyRoundsDropWithMu(t *testing.T) {
	// Theorem 1.7's μ dependence: larger μ → larger merge groups →
	// fewer pair-halving iterations → fewer rounds.
	g := graph.Star(30)
	rng := rand.New(rand.NewSource(6))
	items := randomItems(g.N(), 8, 16, rng)
	kind := sketch.NewMGKind(6)
	_, resSmall, err := RunFully(g, items, kind, 0) // g=1
	if err != nil {
		t.Fatal(err)
	}
	_, resBig, err := RunFully(g, items, kind, int64(40*kind.M()))
	if err != nil {
		t.Fatal(err)
	}
	if resBig.Rounds >= resSmall.Rounds {
		t.Fatalf("μ-rich run %d rounds should beat μ-poor %d",
			resBig.Rounds, resSmall.Rounds)
	}
	// Correctness preserved in both regimes.
	for _, r := range []*sketch.MG{} {
		_ = r
	}
}

func TestExactHeavyCountRefinement(t *testing.T) {
	// Paper's application: sketch finds candidates, then exact counts
	// via BFS-tree aggregation in O(ε⁻¹ + D) rounds.
	rng := rand.New(rand.NewSource(7))
	g := graph.GnpConnected(22, 0.25, rng)
	items := randomItems(g.N(), 30, 25, rng)
	want := exactCounts(items)
	cands := []int64{1, 2, 3, 7, 19}
	counts, res, err := RunExactCounts(g, items, cands)
	if err != nil {
		t.Fatal(err)
	}
	for i, cand := range cands {
		if counts[i] != want[cand] {
			t.Fatalf("candidate %d: %d want %d", cand, counts[i], want[cand])
		}
	}
	// O(ε⁻¹ + D) shape: far fewer rounds than n·|cands|.
	if res.Rounds > 6*(g.N()+len(cands)) {
		t.Fatalf("exact counting used %d rounds", res.Rounds)
	}
}

func TestOneWayRoundsScaleWithSqrtI(t *testing.T) {
	// Theorem 1.6: rounds ≈ √(|I|·M) + D. Quadrupling |I| should
	// roughly double the gather cost, not quadruple it.
	g := graph.Cycle(20)
	rng := rand.New(rand.NewSource(8))
	kind := sketch.NewMGKind(4)
	rounds := func(perNode int) int {
		items := make([][]int64, g.N())
		for v := range items {
			for i := 0; i < perNode; i++ {
				items[v] = append(items[v], rng.Int63n(10))
			}
		}
		_, res, err := RunOneWay(g, items, kind)
		if err != nil {
			t.Fatal(err)
		}
		return res.Rounds
	}
	r1 := rounds(16)
	r4 := rounds(64)
	if float64(r4) > 3.2*float64(r1) {
		t.Fatalf("|I|×4 inflated rounds %d→%d (>3.2×): not √|I| scaling", r1, r4)
	}
}
