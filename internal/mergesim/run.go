package mergesim

import (
	"fmt"

	"mucongest/internal/congest"
	"mucongest/internal/graph"
	"mucongest/internal/sim"
	"mucongest/internal/stream"
)

// RunOneWay executes Theorem 1.6 on g with per-node item multisets and
// returns the root's merged summary plus run statistics.
func RunOneWay(g *graph.Graph, items [][]int64, kind stream.Kind, opts ...sim.Option) (stream.Summary, *sim.Result, error) {
	return runMerge(g, kind, OneWayProgram(items, kind, 0, g.N()), opts...)
}

// RunFully executes Theorem 1.7 with memory bound mu (≤0 for pure
// pairwise merging).
func RunFully(g *graph.Graph, items [][]int64, kind stream.Kind, mu int64, opts ...sim.Option) (stream.Summary, *sim.Result, error) {
	return runMerge(g, kind, FullyProgram(items, kind, 0, g.N(), g.MaxDegree(), mu), opts...)
}

// RunComposable executes Theorem 1.8.
func RunComposable(g *graph.Graph, items [][]int64, kind stream.Kind, opts ...sim.Option) (stream.Summary, *sim.Result, error) {
	return runMerge(g, kind, ComposableProgram(items, kind, 0, g.N()), opts...)
}

func runMerge(g *graph.Graph, kind stream.Kind, program func(*sim.Ctx), opts ...sim.Option) (stream.Summary, *sim.Result, error) {
	e := sim.New(g, opts...)
	res, err := e.Run(program)
	if err != nil {
		return nil, res, err
	}
	if len(res.Outputs[0]) == 0 {
		return nil, res, fmt.Errorf("mergesim: root emitted nothing")
	}
	words, ok := res.Outputs[0][0].([]int64)
	if !ok {
		return nil, res, fmt.Errorf("mergesim: unexpected root output %T", res.Outputs[0][0])
	}
	return kind.FromWords(words), res, nil
}

// ExactCountProgram is the paper's Theorem 1.7 application refinement:
// given ≤ 3/ε candidate labels (found by the sketch pass), count each
// candidate's exact frequency by propagating per-label counts up a BFS
// tree — O(ε⁻¹ + D) rounds and O(Δ + ε⁻¹) memory. Every node emits the
// exact counts (root-authoritative; broadcast included).
func ExactCountProgram(items [][]int64, candidates []int64, root, maxDepth int) func(*sim.Ctx) {
	return func(c *sim.Ctx) {
		tr := congest.BuildBFSTree(c, root, maxDepth)
		local := make([]int64, len(candidates))
		for _, x := range items[c.ID()] {
			for i, cand := range candidates {
				if x == cand {
					local[i]++
				}
			}
		}
		c.Charge(int64(len(candidates)))
		defer c.Release(int64(len(candidates)))
		up := congest.Convergecast(c, tr, maxDepth, local, congest.OpSum)
		counts := congest.BroadcastDown(c, tr, maxDepth, len(candidates), up)
		if c.ID() == root {
			c.Emit(counts)
		}
	}
}

// RunExactCounts executes ExactCountProgram and returns the exact
// frequencies of the candidate labels.
func RunExactCounts(g *graph.Graph, items [][]int64, candidates []int64, opts ...sim.Option) ([]int64, *sim.Result, error) {
	e := sim.New(g, opts...)
	res, err := e.Run(ExactCountProgram(items, candidates, 0, g.N()))
	if err != nil {
		return nil, res, err
	}
	return res.Outputs[0][0].([]int64), res, nil
}

// TotalItems returns |I| = Σ t_v.
func TotalItems(items [][]int64) int64 {
	var t int64
	for _, it := range items {
		t += int64(len(it))
	}
	return t
}
