package mergesim

import (
	"sort"

	"mucongest/internal/congest"
	"mucongest/internal/sim"
	"mucongest/internal/stream"
)

// Roles sent in merge directives.
const (
	roleSend     = 1 // stream your summary; the parent relays it to a sibling
	roleRecv     = 2 // expect a relayed summary and merge it
	roleSendToMe = 3 // stream your summary directly to the parent
)

// pairIterations returns the number of pair-halving iterations needed
// to reduce deltaMax summaries to at most group survivors.
func pairIterations(deltaMax int, group int64) int {
	if group < 1 {
		group = 1
	}
	it := 0
	k := int64(deltaMax)
	for k > group {
		k = (k + 1) / 2
		it++
	}
	return it
}

// FullyProgram returns the Theorem 1.7 node program: level-synchronous
// hierarchical merging of a fully-mergeable summary up the BFS tree.
// At each tree level, children summaries are pairwise merged — the
// sender streams its M words through the parent to a sibling, exactly
// the paper's "use u to forward summaries between matched subtrees" —
// until at most g = max(1, μ/(2M)) summaries remain; those stream to
// the parent in parallel and are folded in. Each level therefore costs
// O(M·log(Δ/g) + M) rounds, the theorem's per-level term. The paper
// recurses on information centroids (log|I| levels); we recurse on BFS
// levels — identical on the low-diameter workloads benched (documented
// deviation). mu ≤ 0 means g = 1.
func FullyProgram(items [][]int64, kind stream.Kind, root, maxDepth int,
	deltaMax int, mu int64) func(*sim.Ctx) {

	M := kind.M()
	group := int64(1)
	if mu > 0 {
		group = mu / int64(2*M)
		if group < 1 {
			group = 1
		}
	}
	iters := pairIterations(deltaMax, group)
	return func(c *sim.Ctx) {
		tr := congest.BuildBFSTree(c, root, maxDepth)
		depth := int(congest.MaxAll(c, tr, maxDepth, int64(tr.Depth)))

		summary := kind.New().(stream.FullyMergeable)
		c.Charge(int64(M))
		defer c.Release(int64(M))
		for _, x := range items[c.ID()] {
			summary.Insert(x)
		}
		active := append([]int(nil), tr.Children...)
		sort.Ints(active)

		for level := depth - 1; level >= 0; level-- {
			amParent := tr.Depth == level
			amChild := tr.Depth == level+1

			for it := 0; it < iters; it++ {
				// Directive round.
				relay := make(map[int]int) // sender -> receiver
				if amParent && int64(len(active)) > group {
					var survivors []int
					for i := 0; i+1 < len(active); i += 2 {
						recv, send := active[i], active[i+1]
						relay[send] = recv
						c.SendID(send, sim.Msg{Kind: kindRole, A: roleSend})
						c.SendID(recv, sim.Msg{Kind: kindRole, A: roleRecv})
					}
					if len(active)%2 == 1 {
						survivors = append([]int(nil), active[len(active)-1])
					}
					for i := 0; i+1 < len(active); i += 2 {
						survivors = append(survivors, active[i])
					}
					sort.Ints(survivors)
					active = survivors
				}
				role := 0
				for _, m := range c.Tick() {
					if m.Msg.Kind == kindRole && m.From == tr.Parent {
						role = int(m.Msg.A)
					}
				}
				// M+2 streaming sub-rounds with relay lag 1.
				var myWords, buf []int64
				if amChild && role == roleSend {
					myWords = summary.Words()
				}
				if amChild && role == roleRecv {
					buf = make([]int64, M)
					c.Charge(int64(M))
				}
				for r := 0; r < M+2; r++ {
					if myWords != nil && r < M {
						c.SendID(tr.Parent, sim.Msg{Kind: kindMergeWord, A: int64(r), B: myWords[r]})
					}
					for _, m := range c.Tick() {
						if m.Msg.Kind != kindMergeWord {
							continue
						}
						if amParent {
							if to, ok := relay[m.From]; ok {
								c.SendID(to, sim.Msg{Kind: kindMergeWord, A: m.Msg.A, B: m.Msg.B})
							}
						} else if buf != nil && m.From == tr.Parent {
							buf[m.Msg.A] = m.Msg.B
						}
					}
				}
				if buf != nil {
					summary.MergeFrom(buf)
					c.Release(int64(M))
				}
			}

			// Final stage: remaining ≤ g children stream to the parent.
			if amParent {
				for _, ch := range active {
					c.SendID(ch, sim.Msg{Kind: kindRole, A: roleSendToMe})
				}
			}
			role := 0
			for _, m := range c.Tick() {
				if m.Msg.Kind == kindRole && m.From == tr.Parent {
					role = int(m.Msg.A)
				}
			}
			var myWords []int64
			if amChild && role == roleSendToMe {
				myWords = summary.Words()
			}
			var bufs map[int][]int64
			if amParent && len(active) > 0 {
				bufs = make(map[int][]int64, len(active))
				c.Charge(int64(len(active) * M))
			}
			for r := 0; r < M+1; r++ {
				if myWords != nil && r < M {
					c.SendID(tr.Parent, sim.Msg{Kind: kindMergeWord, A: int64(r), B: myWords[r]})
				}
				for _, m := range c.Tick() {
					if m.Msg.Kind != kindMergeWord || bufs == nil {
						continue
					}
					if bufs[m.From] == nil {
						bufs[m.From] = make([]int64, M)
					}
					bufs[m.From][m.Msg.A] = m.Msg.B
				}
			}
			if bufs != nil {
				for _, ch := range active {
					if b := bufs[ch]; b != nil {
						summary.MergeFrom(b)
					}
				}
				c.Release(int64(len(active) * M))
				active = nil
			}
		}
		if c.ID() == root {
			c.Emit(summary.Words())
		}
	}
}

// ComposableProgram returns the Theorem 1.8 node program: the same
// level-synchronous recursion, but every level merges ALL children
// summaries in a single streaming stage — children transmit their i-th
// word simultaneously and the parent folds them with ComposeWord using
// only M memory (Definition 3.3) — collapsing each level to M+O(1)
// rounds.
func ComposableProgram(items [][]int64, kind stream.Kind, root, maxDepth int) func(*sim.Ctx) {
	M := kind.M()
	return func(c *sim.Ctx) {
		tr := congest.BuildBFSTree(c, root, maxDepth)
		depth := int(congest.MaxAll(c, tr, maxDepth, int64(tr.Depth)))

		summary := kind.New().(stream.Composable)
		c.Charge(int64(M))
		defer c.Release(int64(M))
		for _, x := range items[c.ID()] {
			summary.Insert(x)
		}

		for level := depth - 1; level >= 0; level-- {
			amParent := tr.Depth == level
			amChild := tr.Depth == level+1
			var myWords []int64
			if amChild {
				myWords = summary.Words()
			}
			for r := 0; r < M+1; r++ {
				if amChild && r < M {
					c.SendID(tr.Parent, sim.Msg{Kind: kindMergeWord, A: int64(r), B: myWords[r]})
				}
				for _, m := range c.Tick() {
					if amParent && m.Msg.Kind == kindMergeWord {
						summary.ComposeWord(int(m.Msg.A), m.Msg.B)
					}
				}
			}
		}
		if c.ID() == root {
			c.Emit(summary.Words())
		}
	}
}
