// Package lowerbound collects the paper's information-theoretic bounds
// as formulas used as the "theory" columns of the experiment tables,
// plus the combinatorial facts they rest on (Lemma 2.1) and small
// entropy helpers mirroring Section 2.1's proof machinery.
package lowerbound

import "math"

// KCliqueListingRounds is Theorem 1.1: any k-clique listing algorithm
// in μ-CONGEST with per-round inbound message bound ℓ needs at least
// Ω(n^(k-1)/(μ^(k/2-1)·ℓ)) rounds (constants suppressed; the function
// returns the bound with constant 1).
func KCliqueListingRounds(n float64, k int, mu, ell float64) float64 {
	return math.Pow(n, float64(k-1)) / (math.Pow(mu, float64(k)/2-1) * ell)
}

// TriangleListingRounds specializes Theorem 1.1 to k=3 with ℓ=n:
// Ω(n/√μ).
func TriangleListingRounds(n, mu float64) float64 {
	return KCliqueListingRounds(n, 3, mu, n)
}

// KCliqueMax is Lemma 2.1: a graph with m edges contains at most
// O(m^(k/2)) k-cliques. The tight constant is (2m)^(k/2)/k!·... ; the
// classical Kruskal–Katona style bound m^(k/2)/ (k/2)!·c suffices for
// the property tests; we return the clean m^(k/2) envelope, which the
// true count never exceeds for k ≥ 3.
func KCliqueMax(m float64, k int) float64 {
	return math.Pow(m, float64(k)/2)
}

// StreamingSimulationRounds is Theorem 1.4: with μ ≤ n/4, single-node
// simulation of a p-pass edge-streaming algorithm needs Ω(n·Δ·p)
// rounds.
func StreamingSimulationRounds(n, delta, p float64) float64 {
	return n * delta * p
}

// CachedSimulationRounds is Theorem 1.3's upper bound O(n·(Δ+p)).
func CachedSimulationRounds(n, delta, p float64) float64 {
	return n * (delta + p)
}

// OneWayMergeRounds is Theorem 1.6: O(min{n·M, √(|I|·M)} + D).
func OneWayMergeRounds(n, M, totalInfo, D float64) float64 {
	return math.Min(n*M, math.Sqrt(totalInfo*M)) + D
}

// FullyMergeRounds is Theorem 1.7:
// O(log(min{nM,|I|}) · (M·log(Δ/(μ/M)) + D)).
func FullyMergeRounds(n, M, totalInfo, D, delta, mu float64) float64 {
	lg := math.Log2(math.Min(n*M, totalInfo))
	if lg < 1 {
		lg = 1
	}
	ratio := delta / math.Max(1, mu/M)
	lr := math.Log2(ratio)
	if lr < 1 {
		lr = 1
	}
	return lg * (M*lr + D)
}

// ComposableMergeRounds is Theorem 1.8: O(log(min{nM,|I|})·(M+D)).
func ComposableMergeRounds(n, M, totalInfo, D float64) float64 {
	lg := math.Log2(math.Min(n*M, totalInfo))
	if lg < 1 {
		lg = 1
	}
	return lg * (M + D)
}

// Entropy returns the Shannon entropy (bits) of a distribution given as
// nonnegative weights.
func Entropy(weights []float64) float64 {
	var tot float64
	for _, w := range weights {
		tot += w
	}
	if tot == 0 {
		return 0
	}
	var h float64
	for _, w := range weights {
		if w > 0 {
			p := w / tot
			h -= p * math.Log2(p)
		}
	}
	return h
}
