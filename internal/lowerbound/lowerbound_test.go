package lowerbound

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTriangleBoundSpecializes(t *testing.T) {
	// Thm 1.1 at k=3, ℓ=n gives Ω(n/√μ).
	got := TriangleListingRounds(1000, 100)
	want := 1000.0 / math.Sqrt(100)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %f want %f", got, want)
	}
}

func TestBoundsMonotone(t *testing.T) {
	f := func(nRaw, muRaw uint16) bool {
		n := float64(nRaw%1000) + 10
		mu := float64(muRaw%500) + 10
		// More memory never increases any of the round bounds.
		if KCliqueListingRounds(n, 3, mu*2, n) > KCliqueListingRounds(n, 3, mu, n) {
			return false
		}
		if FullyMergeRounds(n, 20, 1000, 5, 50, mu*2) > FullyMergeRounds(n, 20, 1000, 5, 50, mu)+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKCliqueMaxEnvelope(t *testing.T) {
	// A clique on v nodes has C(v,k) k-cliques and C(v,2) edges; the
	// m^(k/2) envelope must dominate.
	for v := 4; v <= 12; v++ {
		m := float64(v * (v - 1) / 2)
		for k := 3; k <= 5; k++ {
			cnt := binom(v, k)
			if cnt > KCliqueMax(m, k) {
				t.Fatalf("K_%d: %f cliques of size %d exceed m^(k/2)=%f", v, cnt, k, KCliqueMax(m, k))
			}
		}
	}
}

func binom(n, k int) float64 {
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

func TestEntropy(t *testing.T) {
	if h := Entropy([]float64{1, 1, 1, 1}); math.Abs(h-2) > 1e-12 {
		t.Fatalf("uniform-4 entropy %f", h)
	}
	if h := Entropy([]float64{5, 0, 0}); h != 0 {
		t.Fatalf("point mass entropy %f", h)
	}
	if h := Entropy(nil); h != 0 {
		t.Fatalf("empty entropy %f", h)
	}
}

func TestStreamingBounds(t *testing.T) {
	if StreamingSimulationRounds(10, 4, 3) != 120 {
		t.Fatal("naive bound")
	}
	if CachedSimulationRounds(10, 4, 3) != 70 {
		t.Fatal("cached bound")
	}
	// min(n·M, √(|I|·M)) + D: the n·M term binds here (40 < 200).
	if OneWayMergeRounds(10, 4, 10000, 7) != 47 {
		t.Fatal("one-way bound")
	}
	if OneWayMergeRounds(1000, 4, 10000, 7) != math.Sqrt(40000)+7 {
		t.Fatal("one-way bound (√ branch)")
	}
	if ComposableMergeRounds(4, 10, 1e9, 3) <= 0 {
		t.Fatal("composable bound")
	}
}
