package mucongest

import (
	"io"
	"testing"

	"mucongest/internal/bench"
	"mucongest/internal/graph"
	"mucongest/internal/sim"
	"mucongest/internal/topo"
)

// One benchmark per experiment of README.md's E1–E12 map. Each iteration runs the
// whole experiment (workload generation + simulation sweep); reported
// ns/op therefore tracks the end-to-end cost of regenerating the
// corresponding paper table. Sizes are scaled down from cmd/muexp's
// defaults to keep `go test -bench=.` snappy.

func runTables(b *testing.B, f func() *bench.Table) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := f()
		t.Fprint(io.Discard)
	}
}

func BenchmarkE1_LowerBoundTightness(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E1E2(topo.MustParse("gnp:n=36,p=0.5"), 4, 1) })
}

func BenchmarkE2_CliqueListingCC(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E1E2(topo.MustParse("gnp:n=32,p=0.5"), 3, 1) })
}

func BenchmarkE3_TriangleMuCongest(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E3(topo.MustParse("gnp:n=40,p=0.5"), 1) })
}

func BenchmarkE4_PPassSimulation(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E4E5(topo.MustParse("cycliques:k=3,size=6"), 1) })
}

func BenchmarkE5_CycleOfCliques(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E4E5(topo.MustParse("cycliques:k=4,size=6"), 2) })
}

func BenchmarkE6_RandomOrderShuffle(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E6(topo.MustParse("hub:n=14,p=0.4"), 1) })
}

func BenchmarkE7_OneWayGK(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E7(topo.MustParse("gnp:n=16,p=0.15,conn=1"), 1) })
}

func BenchmarkE8_FullyMergeableMG(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E8(topo.MustParse("gnp:n=16,p=0.15,conn=1"), 1) })
}

func BenchmarkE9_ComposableCRPrecis(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E9(topo.MustParse("gnp:n=16,p=0.15,conn=1"), 1) })
}

func BenchmarkE10_MonochromaticTriangles(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E10(topo.MustParse("gnp:n=24,p=0.5"), 1) })
}

// The BenchmarkEngineRound* family isolates the engine round loop
// (staging, routing, inbox ordering, memory accounting) from any
// algorithm logic: every node broadcasts every round for a fixed number
// of rounds. ns/op and allocs/op therefore track the per-round engine
// overhead that every experiment pays.

func benchEngineRounds(b *testing.B, topo sim.Topology, rounds int, opts ...sim.Option) {
	b.Helper()
	b.ReportAllocs()
	program := func(c *sim.Ctx) {
		for r := 0; r < rounds; r++ {
			c.Broadcast(sim.Msg{Kind: 1, A: int64(c.ID()), B: int64(r)})
			c.Tick()
		}
	}
	for i := 0; i < b.N; i++ {
		e := sim.New(topo, append([]sim.Option{sim.WithSeed(1)}, opts...)...)
		if _, err := e.Run(program); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineRoundDense64(b *testing.B) {
	benchEngineRounds(b, sim.NewComplete(64), 32)
}

func BenchmarkEngineRoundSparseRing1024(b *testing.B) {
	benchEngineRounds(b, graph.Cycle(1024), 32)
}

func BenchmarkEngineRoundRandomOrder64(b *testing.B) {
	benchEngineRounds(b, sim.NewComplete(64), 32, sim.WithInboxOrder(sim.OrderRandom))
}

func BenchmarkEngineRoundReversed64(b *testing.B) {
	benchEngineRounds(b, sim.NewComplete(64), 32, sim.WithInboxOrder(sim.OrderReversed))
}

func BenchmarkE11_RoutingTradeoff(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E11E12(topo.MustParse("gnp:n=28,p=0.5"), 1) })
}

func BenchmarkE12_DecompTradeoff(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E11E12(topo.MustParse("gnp:n=32,p=0.5"), 2) })
}
