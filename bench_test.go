package mucongest

import (
	"io"
	"math/rand"
	"testing"

	"mucongest/internal/bench"
	"mucongest/internal/graph"
	"mucongest/internal/sim"
	"mucongest/internal/topo"
)

// One benchmark per experiment of README.md's E1–E12 map. Each iteration runs the
// whole experiment (workload generation + simulation sweep); reported
// ns/op therefore tracks the end-to-end cost of regenerating the
// corresponding paper table. Sizes are scaled down from cmd/muexp's
// defaults to keep `go test -bench=.` snappy.

func runTables(b *testing.B, f func() *bench.Table) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := f()
		t.Fprint(io.Discard)
	}
}

func BenchmarkE1_LowerBoundTightness(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E1E2(topo.MustParse("gnp:n=36,p=0.5"), 4, 1) })
}

func BenchmarkE2_CliqueListingCC(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E1E2(topo.MustParse("gnp:n=32,p=0.5"), 3, 1) })
}

func BenchmarkE3_TriangleMuCongest(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E3(topo.MustParse("gnp:n=40,p=0.5"), 1) })
}

func BenchmarkE4_PPassSimulation(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E4E5(topo.MustParse("cycliques:k=3,size=6"), 1) })
}

func BenchmarkE5_CycleOfCliques(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E4E5(topo.MustParse("cycliques:k=4,size=6"), 2) })
}

func BenchmarkE6_RandomOrderShuffle(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E6(topo.MustParse("hub:n=14,p=0.4"), 1) })
}

func BenchmarkE7_OneWayGK(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E7(topo.MustParse("gnp:n=16,p=0.15,conn=1"), 1) })
}

func BenchmarkE8_FullyMergeableMG(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E8(topo.MustParse("gnp:n=16,p=0.15,conn=1"), 1) })
}

func BenchmarkE9_ComposableCRPrecis(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E9(topo.MustParse("gnp:n=16,p=0.15,conn=1"), 1) })
}

func BenchmarkE10_MonochromaticTriangles(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E10(topo.MustParse("gnp:n=24,p=0.5"), 1) })
}

// The BenchmarkEngineRound* family isolates the engine round loop
// (staging, routing, inbox ordering, memory accounting) from any
// algorithm logic: every node broadcasts every round for a fixed number
// of rounds. ns/op and allocs/op therefore track the per-round engine
// overhead that every experiment pays.

func benchEngineRounds(b *testing.B, topo sim.Topology, rounds int, opts ...sim.Option) {
	b.Helper()
	b.ReportAllocs()
	program := bench.BroadcastProgram(rounds)
	for i := 0; i < b.N; i++ {
		e := sim.New(topo, append([]sim.Option{sim.WithSeed(1)}, opts...)...)
		if _, err := e.Run(program); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngineRoundsStep runs the identical workload in goroutine-free
// step mode: the machines are pre-allocated outside the timer once and
// reset per iteration, so ns/op isolates the engine's round loop (bind,
// route, account, inline step dispatch) exactly as the goroutine cells
// isolate theirs.
func benchEngineRoundsStep(b *testing.B, topo sim.Topology, rounds int, opts ...sim.Option) {
	b.Helper()
	b.ReportAllocs()
	prog := bench.BroadcastSteps(topo.N(), rounds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := sim.New(topo, append([]sim.Option{sim.WithSeed(1)}, opts...)...)
		if _, err := e.RunProgram(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngineRoundsStepWarm is benchEngineRoundsStep with one untimed
// warm-up run: the first run at a given scale pays one-time growth of
// the shared run-scratch pools, so cold single-iteration numbers swing
// with whatever ran before. The warm cells measure the steady-state
// round loop — reproducible enough at -benchtime 1x for the CI perf
// gate to ratio allocations tightly (ROADMAP item 5's warm-iteration
// bench-record mode).
func benchEngineRoundsStepWarm(b *testing.B, topo sim.Topology, rounds int, opts ...sim.Option) {
	b.Helper()
	prog := bench.BroadcastSteps(topo.N(), rounds)
	run := func() {
		e := sim.New(topo, append([]sim.Option{sim.WithSeed(1)}, opts...)...)
		if _, err := e.RunProgram(prog); err != nil {
			b.Fatal(err)
		}
	}
	run() // warm-up, untimed
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

func BenchmarkEngineRoundDense64(b *testing.B) {
	benchEngineRounds(b, sim.NewComplete(64), 32)
}

func BenchmarkEngineRoundSparseRing1024(b *testing.B) {
	benchEngineRounds(b, graph.Cycle(1024), 32)
}

func BenchmarkEngineRoundRandomOrder64(b *testing.B) {
	benchEngineRounds(b, sim.NewComplete(64), 32, sim.WithInboxOrder(sim.OrderRandom))
}

func BenchmarkEngineRoundReversed64(b *testing.B) {
	benchEngineRounds(b, sim.NewComplete(64), 32, sim.WithInboxOrder(sim.OrderReversed))
}

// BenchmarkEngineRoundBroadcastComplete512 isolates the per-message
// send path at high fan-out: 512 nodes broadcasting on the implicit
// complete topology is ~262k Send meters + routed appends per round,
// all through the IndexedTopology port arithmetic (no materialized
// adjacency), so ns/op tracks Ctx.Broadcast/Send overhead directly.
func BenchmarkEngineRoundBroadcastComplete512(b *testing.B) {
	benchEngineRounds(b, sim.NewComplete(512), 4)
}

// Large-scale cells: the engine round loop at 65536 nodes, the scale the
// sharded delivery path is built for. The Workers1/Workers4/WorkersMax
// triple measures the parallel-delivery speedup directly (identical
// results, different wall-clock); torus and powerlaw cover structured
// and heavy-tailed degree distributions at the same scale. Setup
// (graph generation) happens once per benchmark, outside the timer.

var benchLargeTopo = struct {
	cycle, cycle1m, torus, powerlaw, powerlaw1m sim.Topology
}{}

func largeCycle() sim.Topology {
	if benchLargeTopo.cycle == nil {
		benchLargeTopo.cycle = graph.Cycle(65536)
	}
	return benchLargeTopo.cycle
}

func benchEngineLarge(b *testing.B, topo sim.Topology, workers int) {
	b.Helper()
	b.ResetTimer()
	benchEngineRounds(b, topo, 4, sim.WithSimWorkers(workers))
}

func BenchmarkEngineRoundCycle65536Workers1(b *testing.B) {
	benchEngineLarge(b, largeCycle(), 1)
}

func BenchmarkEngineRoundCycle65536Workers4(b *testing.B) {
	benchEngineLarge(b, largeCycle(), 4)
}

func BenchmarkEngineRoundCycle65536WorkersMax(b *testing.B) {
	benchEngineLarge(b, largeCycle(), 0) // 0 = GOMAXPROCS
}

// The Step triple is the A/B counterpart of the three cells above: the
// identical broadcast workload on the identical topology, but driven
// goroutine-free through the step runtime. The goroutine cells pay
// 65536 goroutine spawns + barrier hand-offs per op; these pay a bind
// phase and inline step dispatch inside the delivery workers.

func benchEngineLargeStep(b *testing.B, topo sim.Topology, workers int) {
	b.Helper()
	benchEngineRoundsStep(b, topo, 4, sim.WithSimWorkers(workers))
}

func BenchmarkEngineRoundCycle65536StepWorkers1(b *testing.B) {
	benchEngineLargeStep(b, largeCycle(), 1)
}

func BenchmarkEngineRoundCycle65536StepWorkers4(b *testing.B) {
	benchEngineLargeStep(b, largeCycle(), 4)
}

func BenchmarkEngineRoundCycle65536StepWorkersMax(b *testing.B) {
	benchEngineLargeStep(b, largeCycle(), 0)
}

// BenchmarkEngineRoundCycle1MStep is the scale smoke the goroutine
// runtime cannot reasonably serve: a full broadcast round loop over a
// one-million-node cycle, goroutine-free. Run with -benchtime 1x in CI;
// a single op proves a routine 1M-node run completes and bounds its
// wall-clock.
func BenchmarkEngineRoundCycle1MStep(b *testing.B) {
	if benchLargeTopo.cycle1m == nil {
		benchLargeTopo.cycle1m = graph.Cycle(1 << 20)
	}
	b.ResetTimer()
	benchEngineRoundsStep(b, benchLargeTopo.cycle1m, 2, sim.WithSimWorkers(0))
}

func BenchmarkEngineRoundTorus65536(b *testing.B) {
	if benchLargeTopo.torus == nil {
		benchLargeTopo.torus = graph.Torus(256, 256)
	}
	benchEngineLarge(b, benchLargeTopo.torus, 0)
}

// BenchmarkEngineRoundPowerlaw65536 drives heavy-tailed degrees at
// 65536 nodes on the compact CSR adjacency, goroutine-free and warm:
// the per-round engine cost on the representation and runtime the
// large-n experiments actually use. Through PR9 this cell ran the
// explicit graph.Graph in goroutine mode, cold — 1.05 s and 112 MB per
// op (BENCH_PR9.json); the CSR + step + warm combination is the
// tentpole speedup the PR10 baseline records.
func BenchmarkEngineRoundPowerlaw65536(b *testing.B) {
	if benchLargeTopo.powerlaw == nil {
		benchLargeTopo.powerlaw = graph.BarabasiAlbertCSR(65536, 3, rand.New(rand.NewSource(1)))
	}
	benchEngineRoundsStepWarm(b, benchLargeTopo.powerlaw, 4, sim.WithSimWorkers(0))
}

// The 1M cells pin the large-n story end to end: a million-node
// power-law CSR (built once, outside the timer) and a million-node
// implicit torus (O(1) memory, port arithmetic only) each complete a
// goroutine-free broadcast round loop. Run with -benchtime 1x in CI; a
// single op proves the representation layer serves engine rounds at
// the scale the explicit adjacency could not hold.

func BenchmarkEngineRoundPowerlaw1MStep(b *testing.B) {
	if benchLargeTopo.powerlaw1m == nil {
		benchLargeTopo.powerlaw1m = graph.BarabasiAlbertCSR(1<<20, 3, rand.New(rand.NewSource(1)))
	}
	benchEngineRoundsStep(b, benchLargeTopo.powerlaw1m, 2, sim.WithSimWorkers(0))
}

func BenchmarkEngineRoundTorus1MStep(b *testing.B) {
	benchEngineRoundsStep(b, sim.NewTorus(1024, 1024), 2, sim.WithSimWorkers(0))
}

// BenchmarkEngineRoundComplete65536Setup pins the implicit Complete
// topology: engine construction plus one-node port arithmetic at a
// scale where the old explicit adjacency (O(n²) ints) was unbuildable.
func BenchmarkEngineRoundComplete65536Setup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := sim.NewComplete(65536)
		e := sim.New(c, sim.WithSeed(1))
		if e.N() != 65536 || c.PortOf(0, 65535) != 65534 {
			b.Fatal("bad complete topology")
		}
	}
}

func BenchmarkE11_RoutingTradeoff(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E11E12(topo.MustParse("gnp:n=28,p=0.5"), 1) })
}

func BenchmarkE12_DecompTradeoff(b *testing.B) {
	runTables(b, func() *bench.Table { return bench.E11E12(topo.MustParse("gnp:n=32,p=0.5"), 2) })
}
