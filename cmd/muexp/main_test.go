package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildMuexp compiles the command once into the test's temp dir so the
// CLI contract (flag validation, exit codes, stderr wording) is checked
// against the real binary, not a re-implementation.
func buildMuexp(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "muexp")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestEngineModeValidation pins the -enginemode usage contract: an
// invalid value is a usage error (exit 2) whose message lists the valid
// choices, and both valid values pass flag validation.
func TestEngineModeValidation(t *testing.T) {
	bin := buildMuexp(t)

	out, err := exec.Command(bin, "-enginemode", "fibers").CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("err = %v, want an exit error", err)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Errorf("exit code = %d, want 2 (usage error)", code)
	}
	msg := string(out)
	if !strings.Contains(msg, `unknown -enginemode "fibers"`) {
		t.Errorf("stderr = %q, want the rejected value quoted", msg)
	}
	if !strings.Contains(msg, "valid: step, goroutine") {
		t.Errorf("stderr = %q, want the valid choices listed", msg)
	}

	// Both valid modes must get past flag validation. A tiny -engine
	// workload keeps the run fast while exercising the mode for real.
	for _, mode := range []string{"step", "goroutine"} {
		out, err := exec.Command(bin,
			"-enginemode", mode, "-engine", "cycle:n=16", "-enginerounds", "1",
			"-simworkers", "1").CombinedOutput()
		if err != nil {
			t.Errorf("-enginemode %s: %v\n%s", mode, err, out)
		}
	}
}

// TestFaultsValidation pins the -faults usage contract against the real
// binary: a malformed spec is a usage error (exit 2) whose message
// lists the valid fault names, -faults without -engine is rejected, and
// a valid plan runs the engine workload and reports the fault ledger in
// the summary line.
func TestFaultsValidation(t *testing.T) {
	bin := buildMuexp(t)

	out, err := exec.Command(bin, "-faults", "flood:p=0.5").CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("err = %v, want an exit error", err)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Errorf("exit code = %d, want 2 (usage error)", code)
	}
	msg := string(out)
	if !strings.Contains(msg, `unknown fault "flood"`) {
		t.Errorf("stderr = %q, want the rejected fault quoted", msg)
	}
	if !strings.Contains(msg, "valid: crash, edgedown, loss") {
		t.Errorf("stderr = %q, want the valid choices listed", msg)
	}

	// A well-formed plan outside the -engine mode is still a usage
	// error: experiment fault plans belong to the experiment definitions.
	out, err = exec.Command(bin, "-faults", "loss:p=0.1").CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Errorf("-faults without -engine: err = %v, want exit 2\n%s", err, out)
	} else if !strings.Contains(string(out), "-faults requires -engine") {
		t.Errorf("stderr = %q, want the -engine requirement spelled out", out)
	}

	// A valid plan must run for real and surface the fault ledger.
	out, err = exec.Command(bin,
		"-engine", "cycle:n=64", "-enginerounds", "4", "-simworkers", "1",
		"-faults", "loss:p=0.5").CombinedOutput()
	if err != nil {
		t.Fatalf("valid -faults run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), `faults="loss:p=0.5"`) {
		t.Errorf("summary = %q, want the fault spec echoed", out)
	}
	if !strings.Contains(string(out), "faultdrops=") {
		t.Errorf("summary = %q, want the fault ledger reported", out)
	}
}
