// Command muexp runs the paper-reproduction experiments (DESIGN.md §4)
// and prints one table per experiment with theory vs measured columns.
//
// Usage:
//
//	muexp [-seed N] [-exp E3]   # one experiment, or all by default
package main

import (
	"flag"
	"fmt"
	"os"

	"mucongest/internal/bench"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed for workloads and protocols")
	exp := flag.String("exp", "all", "experiment id (E1, E3, E4, E6, E7, E8, E9, E10, E11) or 'all'")
	flag.Parse()

	var tables []*bench.Table
	switch *exp {
	case "all":
		tables = bench.All(*seed)
	case "E1", "E2":
		tables = []*bench.Table{bench.E1E2(48, 3, *seed), bench.E1E2(36, 4, *seed)}
	case "E3":
		tables = []*bench.Table{bench.E3(96, *seed)}
	case "E4", "E5":
		tables = []*bench.Table{bench.E4E5(4, 8, *seed)}
	case "E6":
		tables = []*bench.Table{bench.E6(20, *seed)}
	case "E7":
		tables = []*bench.Table{bench.E7(24, *seed)}
	case "E8":
		tables = []*bench.Table{bench.E8(24, *seed)}
	case "E9":
		tables = []*bench.Table{bench.E9(24, *seed)}
	case "E10":
		tables = []*bench.Table{bench.E10(32, *seed)}
	case "E11", "E12":
		tables = []*bench.Table{bench.E11E12(40, *seed)}
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	for _, t := range tables {
		t.Fprint(os.Stdout)
	}
}
