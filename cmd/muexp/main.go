// Command muexp runs the paper-reproduction experiments (README.md,
// experiments E1–E12) and prints one table per experiment with theory
// vs measured columns.
//
// Usage:
//
//	muexp [-seed N] [-exp E3] [-parallel N]
//
// By default every experiment runs, spread over a worker pool of
// GOMAXPROCS goroutines. Each table cell derives its own seed from
// -seed, so the output is byte-identical for every -parallel value.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"mucongest/internal/bench"
)

func main() {
	specs := bench.Specs()
	valid := strings.Join(bench.ExperimentIDs(specs), ", ")

	seed := flag.Int64("seed", 1, "random seed for workloads and protocols")
	exp := flag.String("exp", "all", "experiment id ("+valid+") or 'all'")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"number of experiment cells to run concurrently")
	flag.Parse()

	selected, ok := bench.SelectSpecs(specs, *exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; valid: %s, all\n", *exp, valid)
		os.Exit(2)
	}
	for _, t := range bench.RunParallel(selected, *seed, *parallel) {
		t.Fprint(os.Stdout)
	}
}
