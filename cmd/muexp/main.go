// Command muexp runs the paper-reproduction experiments (EXPERIMENTS.md,
// experiments E1–E13) and emits one table per experiment with theory
// vs measured columns, or the structured run records as CSV/JSON.
//
// Usage:
//
//	muexp [-seed N] [-exp E3] [-parallel N] [-simworkers N] [-format table|csv|json] [-out FILE] [-topo SPEC]
//	      [-engine SPEC] [-enginerounds N] [-enginemode step|goroutine] [-faults SPEC]
//	      [-cpuprofile FILE] [-memprofile FILE]
//
// By default every experiment runs, spread over a worker pool of
// GOMAXPROCS goroutines. Each table cell derives its own seed from
// -seed, so the output — rendered tables and serialized records alike —
// is byte-identical for every -parallel value.
//
// -parallel controls how many experiment cells run concurrently;
// -simworkers controls how many delivery workers each simulation engine
// shards its round loop across (sim.WithSimWorkers). Engine results are
// bit-for-bit identical for every -simworkers value; both flags must be
// ≥ 1.
//
// -format selects the emitter: "table" renders the human-readable
// tables; "csv" and "json" serialize the structured bench.Records
// (schema mucongest.records/v1). -out writes to a file instead of
// stdout. -topo re-runs the selected experiments on any registered
// topology family, e.g. -topo torus:rows=8,cols=8 (see `mugraph -kinds`
// for the registry).
//
// -engine SPEC bypasses the experiment sweep entirely and runs the raw
// engine broadcast workload (internal/bench.BroadcastProgram /
// BroadcastSteps — the same code the BenchmarkEngineRound* cells time)
// on the named topology, printing one summary line with nodes, rounds,
// messages and wall-clock. -enginemode selects the execution form:
// "step" (default) drives goroutine-free state machines inline in the
// delivery workers; "goroutine" runs the classic blocking program per
// node. Both produce identical results; only wall-clock differs. This
// is the CLI hook for scale smokes the benchmark harness is too heavy
// for, e.g. a one-million-node round loop:
//
//	muexp -engine cycle:n=1048576 -enginemode step -enginerounds 2
//
// -faults applies a seeded fault plan (sim.ParseFaults: message loss,
// node crash/restart, edge churn) to the -engine workload and appends
// the fault ledger to the summary line, e.g.:
//
//	muexp -engine cycle:n=4096 -faults loss:p=0.01+crash:p=0.001,restart=5
//
// A malformed spec is a usage error (exit 2). The experiment sweep does
// not take -faults: its fault plans are part of the experiment
// definitions (E13 sweeps message-loss rates internally and records
// each run's fault spec in its params).
// -cpuprofile and -memprofile write runtime/pprof profiles of the real
// experiment sweep (engine hot paths included), for `go tool pprof`.
// Unwritable profile paths are usage errors (exit 2).
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mucongest/internal/bench"
	"mucongest/internal/sim"
	"mucongest/internal/topo"
)

func seededRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func main() {
	specs := bench.Specs()
	valid := strings.Join(bench.ExperimentIDs(specs), ", ")

	seed := flag.Int64("seed", 1, "random seed for workloads and protocols")
	exp := flag.String("exp", "all", "experiment id ("+valid+") or 'all'")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"number of experiment cells to run concurrently (≥ 1)")
	simWorkers := flag.Int("simworkers", runtime.GOMAXPROCS(0),
		"delivery workers per simulation engine round loop (≥ 1; results are identical for any value)")
	format := flag.String("format", "table", "output format: table | csv | json")
	out := flag.String("out", "", "write output to this file instead of stdout")
	topoSpec := flag.String("topo", "",
		"topology spec override, family:k=v,... (families: "+
			strings.Join(topo.FamilyNames(), ", ")+")")
	engineSpec := flag.String("engine", "",
		"run the raw engine broadcast workload on this topology spec instead of the experiment sweep, e.g. cycle:n=1048576")
	engineRounds := flag.Int("enginerounds", 4, "rounds for the -engine broadcast workload (≥ 1)")
	engineMode := flag.String("enginemode", "step", "-engine execution form: step (goroutine-free) | goroutine")
	faultsSpec := flag.String("faults", "",
		"fault-plan spec for the -engine workload, '+'-joined clauses of loss:p=..., "+
			"crash:p=...,restart=..., edgedown:p=...,up=... (sim.ParseFaults)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *format != "table" && *format != "csv" && *format != "json" {
		fmt.Fprintf(os.Stderr, "unknown format %q; valid: table, csv, json\n", *format)
		os.Exit(2)
	}
	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "-parallel must be ≥ 1 (got %d)\n", *parallel)
		os.Exit(2)
	}
	if *simWorkers < 1 {
		fmt.Fprintf(os.Stderr, "-simworkers must be ≥ 1 (got %d)\n", *simWorkers)
		os.Exit(2)
	}
	if *engineMode != "step" && *engineMode != "goroutine" {
		fmt.Fprintf(os.Stderr, "unknown -enginemode %q; valid: step, goroutine\n", *engineMode)
		os.Exit(2)
	}
	if *engineRounds < 1 {
		fmt.Fprintf(os.Stderr, "-enginerounds must be ≥ 1 (got %d)\n", *engineRounds)
		os.Exit(2)
	}
	faultPlan, faultErr := sim.ParseFaults(*faultsSpec)
	if faultErr != nil {
		fmt.Fprintf(os.Stderr, "-faults: %v\n", faultErr)
		os.Exit(2)
	}
	if *faultsSpec != "" && *engineSpec == "" {
		fmt.Fprintln(os.Stderr, "-faults requires -engine (the experiment sweep owns its own fault plans; see E13)")
		os.Exit(2)
	}
	if *engineSpec != "" {
		// A spec typo is a usage error (exit 2), same as -topo; graph
		// build errors surface later through the normal error path.
		if _, err := topo.Parse(*engineSpec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	sim.SetDefaultWorkers(*simWorkers)
	selected, ok := bench.SelectSpecs(specs, *exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; valid: %s, all\n", *exp, valid)
		os.Exit(2)
	}
	if *topoSpec != "" {
		tp, err := topo.Parse(*topoSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// Build once up front so spec value errors (e.g. torus:rows=2)
		// surface as a clean message, not a worker panic mid-grid.
		if _, err := tp.Build(seededRNG(*seed)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		selected = bench.OverrideTopo(selected, tp)
	}

	var w io.Writer = os.Stdout
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		outFile = f
		w = f
	}
	// Profile files are created after every usage check (so a flag typo
	// never clobbers an existing profile with a truncated one) but
	// before any work runs, so an unwritable path is still a usage
	// error (exit 2), not a wasted sweep.
	var memFile *os.File
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			os.Exit(2)
		}
		memFile = f
	}
	stopProfiles := func() {}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "-cpuprofile: %v\n", err)
			os.Exit(2)
		}
		stopProfiles = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	// Table.Fprint discards fmt errors, so track the first write failure
	// here: a truncated -out file must not exit 0.
	ew := &errWriter{w: w}

	var err error
	if *engineSpec != "" {
		err = runEngineLoad(ew, *engineSpec, *engineMode, *engineRounds, *seed, faultPlan)
	} else {
		tables := bench.RunParallel(selected, *seed, *parallel)
		switch *format {
		case "table":
			for _, t := range tables {
				t.Fprint(ew)
			}
		case "csv":
			err = bench.WriteRecordsCSV(ew, bench.Records(tables))
		case "json":
			err = bench.WriteRecordsJSON(ew, bench.Records(tables))
		}
	}
	if err == nil {
		err = ew.err
	}
	if outFile != nil {
		if cerr := outFile.Close(); err == nil {
			err = cerr
		}
	}
	stopProfiles()
	if memFile != nil {
		runtime.GC() // settle the heap so the profile reflects retained memory
		if perr := pprof.WriteHeapProfile(memFile); err == nil {
			err = perr
		}
		if cerr := memFile.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runEngineLoad builds the named topology — in the registry's compact
// representation (CSR or implicit), so multi-million-node specs fit in
// memory or fail the budget check with a clear estimate — and drives
// the canonical engine broadcast workload over it in the requested
// execution form, under the -faults plan if one was given, then writes
// a one-line summary including wall-clock. The timer starts at engine
// construction: a scale smoke should bound what a cold run actually
// costs, not just the warm round loop.
func runEngineLoad(w io.Writer, spec, mode string, rounds int, seed int64, faults sim.FaultPlan) error {
	tp, err := topo.Parse(spec)
	if err != nil {
		return err
	}
	est, err := tp.Estimate()
	if err != nil {
		return err
	}
	g, err := tp.BuildTopology(seededRNG(seed))
	if err != nil {
		return err
	}
	start := time.Now()
	e := sim.New(g, sim.WithSeed(seed), sim.WithFaults(faults))
	var res *sim.Result
	if mode == "step" {
		res, err = e.RunProgram(bench.BroadcastSteps(g.N(), rounds))
	} else {
		res, err = e.Run(bench.BroadcastProgram(rounds))
	}
	if err != nil {
		return err
	}
	summary := fmt.Sprintf("engine %s mode=%s repr=%s nodes=%d rounds=%d messages=%d",
		spec, mode, est.Repr, g.N(), res.Rounds, res.Messages)
	if !faults.Empty() {
		summary += fmt.Sprintf(" faults=%q faultdrops=%d crashes=%d restarts=%d",
			faults, res.FaultDrops, res.Crashes, res.Restarts)
	}
	_, werr := fmt.Fprintf(w, "%s elapsed=%s\n", summary, time.Since(start).Round(time.Millisecond))
	return werr
}

// errWriter passes writes through and remembers the first error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	n, err := e.w.Write(p)
	if err != nil && e.err == nil {
		e.err = err
	}
	return n, err
}
