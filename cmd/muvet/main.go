// Command muvet is the repo's static contract checker: a vet tool
// running the eight muvet analyzers (nodeterm, inboxalias, shardrng,
// hotalloc, recordpurity, stepblock, stepalias, ctxretain) over the
// engine, reference engine, record layer and harness. See
// internal/tools/muvet for the contracts and the //muvet:allow /
// //muvet:hotpath annotation grammar.
//
// Usage:
//
//	muvet ./...              analyze packages (re-execs go vet -vettool)
//	muvet -list              print the analyzers
//	go vet -vettool=$(which muvet) ./...
//
// The tool speaks the `go vet -vettool` unit-checker protocol directly
// (-V=full version probe, -flags query, single *.cfg argument), built
// on the standard library only: the type checker imports dependency
// packages from the export-data files the go command lists in the cfg.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"

	"mucongest/internal/tools/muvet"
	"mucongest/internal/tools/muvet/analysis"
)

// version participates in the go command's action cache key: bump it
// when analyzer behavior changes so cached clean verdicts are retired.
// 2.0.0: CFG/dataflow core, step-contract analyzers (stepblock,
// stepalias, ctxretain), inboxalias and hotalloc rebased onto the CFG.
const version = "muvet-2.0.0"

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		// go vet's version probe; the output is part of its cache key.
		fmt.Printf("muvet version %s\n", version)
	case len(args) == 1 && args[0] == "-flags":
		// go vet's flag inventory probe. muvet takes no vet-level flags.
		fmt.Println("[]")
	case len(args) == 1 && args[0] == "-list":
		for _, a := range muvet.Suite() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		if err := runUnit(args[0]); err != nil {
			fmt.Fprintf(os.Stderr, "muvet: %v\n", err)
			os.Exit(1)
		}
	default:
		// Convenience mode: `muvet ./...` re-execs the go command with
		// this binary as the vet tool, which handles package loading,
		// export data and caching.
		self, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "muvet: %v\n", err)
			os.Exit(1)
		}
		cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				os.Exit(ee.ExitCode())
			}
			fmt.Fprintf(os.Stderr, "muvet: %v\n", err)
			os.Exit(1)
		}
	}
}

// vetConfig is the JSON the go command writes for each package when
// invoking a -vettool — the same layout x/tools' unitchecker reads.
// Unused fields are accepted and ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one package from its vet cfg file.
func runUnit(cfgPath string) error {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	// muvet exports no analysis facts, but the go command expects the
	// vetx output to exist for caching; write it first so even
	// diagnostic-bearing exits leave a valid (empty) facts file.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return err
		}
	}
	if cfg.VetxOnly {
		return nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil
			}
			return err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil
	}

	tc := &types.Config{
		Importer: &exportImporter{cfg: &cfg, fset: fset, pkgs: map[string]*types.Package{}},
		Error:    func(error) {}, // collect nothing; first error returned below
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	var diags []analysis.Diagnostic
	importPath := cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	for _, a := range muvet.Suite() {
		name := a.Name
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			ImportPath: importPath,
			TypesInfo:  info,
			Report: func(d analysis.Diagnostic) {
				if d.Category == "" {
					d.Category = name
				}
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	if len(diags) == 0 {
		return nil
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (muvet/%s)\n", fset.Position(d.Pos), d.Message, d.Category)
	}
	os.Exit(2)
	return nil
}

// exportImporter resolves imports from the export-data files the go
// command hands the vet tool (cfg.PackageFile), applying the vendor /
// test-variant translation in cfg.ImportMap. It implements
// types.ImporterFrom by delegating payload decoding to the toolchain's
// own gc importer.
type exportImporter struct {
	cfg  *vetConfig
	fset *token.FileSet
	pkgs map[string]*types.Package
	gc   types.ImporterFrom
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	return ei.ImportFrom(path, ei.cfg.Dir, 0)
}

func (ei *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	canonical := path
	if mapped, ok := ei.cfg.ImportMap[path]; ok {
		canonical = mapped
	}
	if pkg, ok := ei.pkgs[canonical]; ok {
		return pkg, nil
	}
	if ei.gc == nil {
		lookup := func(p string) (io.ReadCloser, error) {
			file, ok := ei.cfg.PackageFile[p]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", p)
			}
			return os.Open(file)
		}
		ei.gc = importer.ForCompiler(ei.fset, "gc", lookup).(types.ImporterFrom)
	}
	pkg, err := ei.gc.ImportFrom(canonical, dir, 0)
	if err != nil {
		return nil, err
	}
	ei.pkgs[canonical] = pkg
	return pkg, nil
}
