package main

import (
	"strings"
	"testing"

	"mucongest/internal/tools/muvet"
)

// TestRegistry pins the analyzer registry the vet driver runs: exactly
// these eight analyzers, in this order, each with a unique name and a
// doc line. Adding or removing an analyzer must update this list (and
// bump the driver version so vet's action cache retires stale clean
// verdicts).
func TestRegistry(t *testing.T) {
	want := []string{
		"nodeterm",
		"inboxalias",
		"shardrng",
		"hotalloc",
		"recordpurity",
		"stepblock",
		"stepalias",
		"ctxretain",
	}
	suite := muvet.Suite()
	if len(suite) != len(want) {
		t.Fatalf("Suite() registers %d analyzers, want %d", len(suite), len(want))
	}
	seen := map[string]bool{}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("Suite()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}

// TestVersionBumped guards the action-cache contract: the driver
// version string must identify this tool and carry the major version
// of the current suite (v2 added the CFG core and the step-contract
// analyzers).
func TestVersionBumped(t *testing.T) {
	if !strings.HasPrefix(version, "muvet-2.") {
		t.Fatalf("version = %q, want a muvet-2.x version for the eight-analyzer suite", version)
	}
}
