// Command mugraph generates and inspects the workload graphs used by
// the experiments: node/edge counts, degree extremes, diameter, lazy
// random-walk mixing time, and triangle count.
//
// Usage:
//
//	mugraph -kind gnp -n 64 -p 0.5
//	mugraph -kind cycliques -k 4 -size 8
//	mugraph -kind hub -n 40 -p 0.3
//	mugraph -kind regular -n 40 -d 8
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mucongest/internal/clique"
	"mucongest/internal/expander"
	"mucongest/internal/graph"
)

func main() {
	kind := flag.String("kind", "gnp", "gnp | cycliques | hub | regular | star | barbell")
	n := flag.Int("n", 48, "node count")
	p := flag.Float64("p", 0.5, "edge probability")
	k := flag.Int("k", 4, "cliques in the cycle (cycliques)")
	size := flag.Int("size", 8, "clique size (cycliques) / half size (barbell)")
	d := flag.Int("d", 8, "degree (regular)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var g *graph.Graph
	switch *kind {
	case "gnp":
		g = graph.Gnp(*n, *p, rng)
	case "cycliques":
		g = graph.CycleOfCliques(*k, *size)
	case "hub":
		g = graph.HubAndBlob(*n, *p, rng)
	case "regular":
		g = graph.RandomRegular(*n, *d, rng)
	case "star":
		g = graph.Star(*n)
	case "barbell":
		g = graph.BarbellExpanders(*size, *p, rng)
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
	fmt.Printf("kind      %s\n", *kind)
	fmt.Printf("n         %d\n", g.N())
	fmt.Printf("m         %d\n", g.M())
	fmt.Printf("maxDeg Δ  %d\n", g.MaxDegree())
	fmt.Printf("avgDeg    %.2f\n", g.AvgDegree())
	fmt.Printf("connected %v\n", g.Connected())
	fmt.Printf("diameter  %d\n", g.Diameter())
	fmt.Printf("τ_mix     %d\n", expander.MixingTime(g, 100000))
	fmt.Printf("triangles %d\n", len(clique.ListAll(g, 3)))
}
