// Command mugraph generates and inspects the workload graphs of the
// topology registry (internal/topo): node/edge counts, degree extremes,
// diameter, lazy random-walk mixing time, and triangle count.
//
// Above 65536 nodes the tool switches to the registry's compact
// representation (CSR adjacency or implicit arithmetic — reported with
// a memory estimate) and skips the superlinear statistics, so
// multi-million-node specs print their shape instead of exhausting
// memory; specs whose compact form still exceeds the build budget fail
// with a clear estimate.
//
// -kind takes a registry spec — a bare family name (defaults apply) or
// family:key=value,...:
//
//	mugraph -kind gnp -n 64 -p 0.5
//	mugraph -kind cycliques -k 4 -size 8
//	mugraph -kind torus:rows=8,cols=8
//	mugraph -kind hypercube -dim 7
//	mugraph -kind powerlaw:n=64,attach=3
//	mugraph -kinds                       # list every family and its parameters
//
// Explicit flags (-n, -p, -k, -size, -d, -rows, -cols, -dim, -attach,
// -conn) override the spec's arguments when the family declares the
// matching parameter; unknown families or parameters exit non-zero.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"mucongest/internal/clique"
	"mucongest/internal/expander"
	"mucongest/internal/graph"
	"mucongest/internal/topo"
)

func main() {
	kind := flag.String("kind", "gnp", "topology spec: family or family:k=v,...")
	list := flag.Bool("kinds", false, "list the registered families and exit")
	seed := flag.Int64("seed", 1, "random seed")
	// Per-parameter override flags, applied only when explicitly set and
	// declared by the chosen family.
	flagFor := map[string]*string{}
	for _, p := range []struct{ name, usage string }{
		{"n", "node count"},
		{"p", "edge probability"},
		{"k", "cliques in the cycle (cycliques)"},
		{"size", "clique size (cycliques) / blob size (barbell)"},
		{"d", "degree (regular)"},
		{"rows", "rows (grid, torus)"},
		{"cols", "columns (grid, torus)"},
		{"dim", "dimension (hypercube)"},
		{"attach", "edges per new node (powerlaw)"},
		{"conn", "resample until connected, 0/1 (gnp)"},
	} {
		flagFor[p.name] = flag.String(p.name, "", p.usage)
	}
	flag.Parse()

	if *list {
		for _, f := range topo.Families() {
			fmt.Printf("%-10s %s\n", f.Name, f.Doc)
			for _, p := range f.Params {
				fmt.Printf("    %-8s default %-6s %s\n", p.Name, p.Default, p.Doc)
			}
		}
		return
	}

	spec, err := topo.Parse(*kind)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Merge explicitly-set flags the chosen family declares; flags
	// irrelevant to the family are ignored, as the pre-registry CLI did.
	for _, f := range topo.Families() {
		if f.Name != spec.Family {
			continue
		}
		for _, p := range f.Params {
			if val := flagFor[p.Name]; val != nil && *val != "" {
				spec = spec.With(p.Name, *val)
			}
		}
	}

	est, err := spec.Estimate()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Large specs: build the compact representation (budget-checked, so
	// an over-budget spec errors instead of OOMing) and report shape
	// without the superlinear statistics.
	const largeN = 65536
	printCompact := func() {
		t, err := spec.BuildTopology(rand.New(rand.NewSource(*seed)))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("topo      %s\n", spec)
		fmt.Printf("repr      %s (~%d bytes)\n", est.Repr, est.Bytes)
		fmt.Printf("n         %d\n", t.N())
		if c, ok := t.(*graph.CSR); ok {
			fmt.Printf("m         %d\n", c.M())
			fmt.Printf("maxDeg Δ  %d\n", c.MaxDegree())
			fmt.Printf("avgDeg    %.2f\n", c.AvgDegree())
			fmt.Printf("connected %v\n", c.Connected())
		} else {
			fmt.Printf("m         %d\n", est.M)
		}
		fmt.Println("diameter, τ_mix and triangles skipped (superlinear scans over the explicit adjacency)")
	}
	if est.N > largeN {
		printCompact()
		return
	}

	g, err := spec.Build(rand.New(rand.NewSource(*seed)))
	if err != nil {
		// Families with explicit-only caps (complete beyond 2048,
		// hypercube beyond dim 20) still have a compact form: report its
		// shape instead of refusing outright.
		if _, terr := spec.BuildTopology(rand.New(rand.NewSource(*seed))); terr == nil {
			printCompact()
			return
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("topo      %s\n", spec)
	fmt.Printf("repr      %s (~%d bytes compact; explicit adjacency built for full stats)\n", est.Repr, est.Bytes)
	fmt.Printf("n         %d\n", g.N())
	fmt.Printf("m         %d\n", g.M())
	fmt.Printf("maxDeg Δ  %d\n", g.MaxDegree())
	fmt.Printf("avgDeg    %.2f\n", g.AvgDegree())
	fmt.Printf("connected %v\n", g.Connected())
	fmt.Printf("diameter  %d\n", g.Diameter())
	fmt.Printf("τ_mix     %d\n", expander.MixingTime(g, 100000))
	fmt.Printf("triangles %d\n", len(clique.ListAll(g, 3)))
}
