module mucongest

go 1.24
