// Package mucongest reproduces "Bounded Memory in Distributed
// Networks" (Ben Basat, Censor-Hillel, Chang, Han, Leitersdorf,
// Schwartzman — SPAA 2025): the μ-CONGEST model, bounded-memory clique
// listing, and the streaming-simulation toolbox. README.md documents
// the build, the muexp/mugraph commands and the experiment map E1–E12;
// the implementation lives under internal/ and is exercised by
// cmd/muexp, the examples/ programs, and the benchmarks in
// bench_test.go.
package mucongest
