// Package mucongest reproduces "Bounded Memory in Distributed
// Networks" (Ben Basat, Censor-Hillel, Chang, Han, Leitersdorf,
// Schwartzman — SPAA 2025): the μ-CONGEST model, bounded-memory clique
// listing, and the streaming-simulation toolbox. README.md documents
// the build and the muexp/mugraph commands; DESIGN.md is the
// architecture tour (engine round loop, determinism, record and
// topology layers); EXPERIMENTS.md maps experiments E1–E12 to the
// paper's theorems with exact invocations and the record schema. The
// implementation lives under internal/ and is exercised by cmd/muexp,
// the examples/ programs, and the benchmarks in bench_test.go.
package mucongest
