// Netquantiles: the Theorem 1.6 application. Every switch holds a batch
// of integer measurements (e.g. per-flow latencies); the network
// computes ε-approximate quantiles of the union using the one-way
// mergeable Greenwald–Khanna sketch: clusters of ≈ √(|I|·M) items are
// summarized locally and the root folds the cluster summaries, in
// O(√(|I|·M) + D) rounds with μ = O(Δ + M).
package main

import (
	"fmt"
	"math/rand"

	"mucongest/internal/lowerbound"
	"mucongest/internal/mergesim"
	"mucongest/internal/sim"
	"mucongest/internal/sketch"
	"mucongest/internal/topo"
)

func main() {
	rng := rand.New(rand.NewSource(9))
	g, err := topo.MustParse("gnp:n=40,p=0.12,conn=1").Build(rng)
	if err != nil {
		panic(err)
	}
	items := make([][]int64, g.N())
	var all []int64
	for v := range items {
		for i := 0; i < 64; i++ {
			x := int64(rng.NormFloat64()*150 + 1000) // latency-like
			items[v] = append(items[v], x)
			all = append(all, x)
		}
	}
	total := mergesim.TotalItems(items)
	eps := 0.05
	kind := sketch.NewGKKind(eps, total)

	sum, res, err := mergesim.RunOneWay(g, items, kind, sim.WithSeed(3))
	if err != nil {
		panic(err)
	}
	gk := sum.(*sketch.GK)

	fmt.Printf("network: n=%d D=%d   |I|=%d items   summary M=%d words\n",
		g.N(), g.Diameter(), total, kind.M())
	fmt.Printf("rounds: %d   (theory O(√(|I|M)+D) = %.0f)\n", res.Rounds,
		lowerbound.OneWayMergeRounds(float64(g.N()), float64(kind.M()),
			float64(total), float64(g.Diameter())))
	for _, phi := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		est := gk.Query(phi)
		var below int64
		for _, x := range all {
			if x < est {
				below++
			}
		}
		fmt.Printf("  φ=%.2f → %5d   (true rank %.3f, εm budget ±%.3f)\n",
			phi, est, float64(below)/float64(total), eps)
	}
}
