// Heavyhitters: the Theorem 1.7 application. Edge labels (e.g. flow
// classes) are Zipf-distributed across the network; the fully-mergeable
// Misra–Gries sketch is merged hierarchically to find all labels of
// frequency ≥ ε·m, whose exact counts are then retrieved with the
// O(ε⁻¹ + D) BFS-tree refinement — the two-stage pipeline described
// after Theorem 1.7 in the paper.
package main

import (
	"fmt"
	"math/rand"

	"mucongest/internal/mergesim"
	"mucongest/internal/sim"
	"mucongest/internal/sketch"
	"mucongest/internal/topo"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	g, err := topo.MustParse("gnp:n=36,p=0.12,conn=1").Build(rng)
	if err != nil {
		panic(err)
	}
	z := rand.NewZipf(rng, 1.3, 1, 99)
	items := make([][]int64, g.N())
	exact := map[int64]int64{}
	var m int64
	for v := range items {
		for i := 0; i < 80; i++ {
			x := int64(z.Uint64()) + 1
			items[v] = append(items[v], x)
			exact[x]++
			m++
		}
	}
	eps := 0.1
	k := int(3.0/eps) + 1
	kind := sketch.NewMGKind(k)
	mu := int64(4 * kind.M())

	sum, res, err := mergesim.RunFully(g, items, kind, mu, sim.WithSeed(1))
	if err != nil {
		panic(err)
	}
	mg := sum.(*sketch.MG)
	thresh := int64(2.0 / 3.0 * eps * float64(m))
	cands := mg.Heavy(thresh)
	fmt.Printf("n=%d D=%d m=%d  sketch k=%d M=%d  sketch rounds=%d\n",
		g.N(), g.Diameter(), m, k, kind.M(), res.Rounds)
	fmt.Printf("candidates ≥ (2/3)εm=%d: %v\n", thresh, cands)

	counts, refineRes, err := mergesim.RunExactCounts(g, items, cands, sim.WithSeed(2))
	if err != nil {
		panic(err)
	}
	fmt.Printf("exact refinement rounds=%d\n", refineRes.Rounds)
	final := int64(eps * float64(m))
	for i, cand := range cands {
		mark := " "
		if counts[i] >= final {
			mark = "*"
		}
		fmt.Printf(" %s label %3d: exact=%5d (sketch est %5d, true %5d)\n",
			mark, cand, counts[i], mg.Estimate(cand), exact[cand])
	}
	fmt.Println("(* = frequency ≥ ε·m)")
}
