// Trianglecensus: the paper's combined end-to-end application (§1.2.2).
// Edges carry colors; the network lists all triangles under the μ
// memory bound (Theorem 1.2), streams each monochromatic triangle's
// color into a fully-mergeable heavy-hitters simulation (Theorem 1.7),
// and reports the per-color frequencies of the frequent monochromatic
// triangles with exact counts.
package main

import (
	"fmt"
	"math/rand"

	"mucongest/internal/graph"
	"mucongest/internal/topo"
	"mucongest/internal/trianglestats"
)

func main() {
	rng := rand.New(rand.NewSource(12))
	g, err := topo.MustParse("gnp:n=40,p=0.45").Build(rng)
	if err != nil {
		panic(err)
	}
	colors := graph.ColorEdges(g, 8, []float64{18, 6, 2, 1, 1, 1, 1, 1}, rng)
	fmt.Printf("colored graph: n=%d m=%d Δ=%d colors=8 (planted heavy colors 1,2)\n",
		g.N(), g.M(), g.MaxDegree())

	res, err := trianglestats.Run(trianglestats.Config{
		G: g, Colors: colors, Mu: int64(2 * g.N()), Eps: 0.15, Seed: 4,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("triangles listed:        %d\n", res.TotalTriangles)
	fmt.Printf("monochromatic:           %d\n", res.MonoTriangles)
	fmt.Printf("listing rounds:          %d\n", res.ListingRounds)
	fmt.Printf("sketch rounds:           %d\n", res.SketchRounds)
	fmt.Printf("exact-refinement rounds: %d\n", res.RefineRounds)
	fmt.Printf("heavy colors (≥ ε·T):    %v\n", res.HeavyColors)
	for col, cnt := range res.ExactCounts {
		fmt.Printf("  color %d: %d monochromatic triangles\n", col, cnt)
	}
}
