// Quickstart: simulate a tiny μ-CONGEST network. Every node runs an
// ordinary Go function on its own goroutine; rounds are synchronized by
// Ctx.Tick; μ is enforced by the engine's word accounting. This example
// builds a BFS tree, aggregates the network-wide degree sum and maximum
// id, and prints the round/memory statistics.
package main

import (
	"fmt"
	"math/rand"

	"mucongest/internal/congest"
	"mucongest/internal/sim"
	"mucongest/internal/topo"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	g, err := topo.MustParse("gnp:n=32,p=0.15,conn=1").Build(rng)
	if err != nil {
		panic(err)
	}
	fmt.Printf("graph: n=%d m=%d Δ=%d diameter=%d\n",
		g.N(), g.M(), g.MaxDegree(), g.Diameter())

	mu := int64(4 * g.MaxDegree()) // μ = O(Δ), the paper's base regime
	engine := sim.New(g, sim.WithMu(mu), sim.WithSeed(7))
	res, err := engine.Run(func(c *sim.Ctx) {
		tree := congest.BuildBFSTree(c, 0, g.N())
		degSum := congest.SumAll(c, tree, g.N(), int64(c.Degree()))
		maxID := congest.MaxAll(c, tree, g.N(), int64(c.ID()))
		if c.ID() == 0 {
			c.Emit(fmt.Sprintf("Σdeg=%d (2m=%d), max id=%d", degSum, 2*g.M(), maxID))
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("root output:   ", res.Outputs[0][0])
	fmt.Println("rounds:        ", res.Rounds)
	fmt.Println("messages:      ", res.Messages)
	fmt.Println("peak words:    ", res.MaxPeakWords(), "of μ =", mu)
	fmt.Printf("μ violations:   %d nodes over μ, %d node-rounds\n",
		len(res.Violations), res.OverMuRounds())
}
