# Developer entry points. CI runs the equivalent steps directly; these
# targets exist for local use and for regenerating committed artifacts.

BENCH_RECORD ?= BENCH_PR4.json

.PHONY: test bench bench-record

test:
	go build ./...
	go test ./...

# The engine micro-benchmark cells, full precision.
bench:
	go test -run '^$$' -bench 'BenchmarkEngineRound' -benchmem .

# Regenerate the committed performance baseline: run every
# BenchmarkEngineRound* cell once, convert the output to the
# mucongest.bench/v1 schema, and validate it. Commit the result when a
# PR moves engine performance.
bench-record:
	go test -run '^$$' -bench 'BenchmarkEngineRound' -benchtime 1x -benchmem . \
		| go run ./internal/tools/benchjson > $(BENCH_RECORD)
	go run ./internal/tools/recordcheck < $(BENCH_RECORD)
	@echo "wrote $(BENCH_RECORD)"
