# Developer entry points. CI runs `make lint` for the static checks and
# the remaining steps directly; these targets exist for local use and
# for regenerating committed artifacts.

BENCH_RECORD ?= BENCH_PR10.json
FUZZTIME ?= 30s
MUVET ?= bin/muvet

# Everything the vettool binary is built from: the driver, the analyzer
# suite, and the shared CFG/dataflow layer. The binary is a real file
# target over these, so repeated `make lint` runs (and CI restoring
# bin/muvet from cache) skip the rebuild when nothing changed.
MUVET_SRC := $(wildcard cmd/muvet/*.go \
	internal/tools/muvet/*.go \
	internal/tools/muvet/analysis/*.go)

.PHONY: test lint muvet bench bench-record diff-harness cover

test:
	go build ./...
	go test ./...

# Build the repo's vettool (eight analyzers enforcing the determinism,
# inbox-aliasing, RNG-derivation, hot-path-allocation, record-purity and
# step-contract — stepblock, stepalias, ctxretain — rules; see
# internal/tools/muvet and DESIGN.md).
$(MUVET): $(MUVET_SRC)
	go build -o $(MUVET) ./cmd/muvet

muvet: $(MUVET)

# Static contract enforcement: gofmt, stock vet, the muvet suite (over
# the default and simdebug build tags), and staticcheck when installed.
lint: $(MUVET)
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	go vet ./...
	go vet -vettool=$(MUVET) ./...
	go vet -vettool=$(MUVET) -tags simdebug ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping"; fi

# Differential verification: the seeded randomized scenario corpus
# (reference engine vs sharded engine, workers 1 and 4), then a native
# fuzz pass over fresh generator seeds. Every engine rewrite must pass
# this before it lands. Tune the fuzz budget with FUZZTIME=… .
diff-harness:
	go test ./internal/harness -run TestDifferentialEngineRandomized -count=1 -v
	go test ./internal/harness -run '^$$' -fuzz FuzzEngineDifferential -fuzztime $(FUZZTIME)

# Coverage over every package: the profile lands in cover.out (for
# `go tool cover -html`), the per-function breakdown in
# coverage-summary.txt, and the total line on stdout. CI runs this
# target and uploads both files as an artifact.
cover:
	go test -coverprofile=cover.out -coverpkg=./... ./...
	go tool cover -func=cover.out > coverage-summary.txt
	tail -n 1 coverage-summary.txt

# The engine micro-benchmark cells, full precision.
bench:
	go test -run '^$$' -bench 'BenchmarkEngineRound' -benchmem .

# Regenerate the committed performance baseline: run every
# BenchmarkEngineRound* cell once, convert the output to the
# mucongest.bench/v1 schema, and validate it. Commit the result when a
# PR moves engine performance.
bench-record:
	go test -run '^$$' -bench 'BenchmarkEngineRound' -benchtime 1x -benchmem . \
		| go run ./internal/tools/benchjson > $(BENCH_RECORD)
	go run ./internal/tools/recordcheck < $(BENCH_RECORD)
	@echo "wrote $(BENCH_RECORD)"
